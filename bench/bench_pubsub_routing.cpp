// E7b — substrate viability: broker-overlay routing and the covering
// ablation (DESIGN.md decision #1).
//
// Reef's topic subscriptions are highly redundant: many users subscribe to
// the same popular feeds, and broad "stream" filters cover narrow per-feed
// ones. Siena-style covering-based pruning should therefore shrink both
// the subscription control traffic and the per-broker routing tables.
// This bench builds a broker chain, attaches Zipf-popular feed
// subscriptions (plus a fraction of broad covering filters), and prints
// the with/without-covering comparison.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "feeds/feed_events_proxy.h"
#include "pubsub/client.h"
#include "pubsub/overlay.h"
#include "pubsub/routing_table.h"
#include "util/rng.h"
#include "util/strings.h"

namespace {

using namespace reef;

pubsub::Filter feed_filter_for(std::size_t feed) {
  return feeds::feed_filter("http://feed" + std::to_string(feed) +
                            ".example/f.rss");
}

struct Result {
  std::uint64_t subs_forwarded = 0;
  std::uint64_t unsubs_forwarded = 0;
  std::size_t total_table = 0;
  std::size_t edge_broker_table = 0;
  std::uint64_t pubs_forwarded = 0;
  std::uint64_t deliveries = 0;
  /// Wire messages vs logical events carried on the publish path
  /// (pub + pubbatch + deliver + deliverbatch) — the batching win.
  std::uint64_t event_wire_msgs = 0;
  std::uint64_t event_units = 0;
  std::uint64_t event_bytes = 0;
};

struct RunConfig {
  bool covering = true;
  std::string engine = "anchor-index";
  bool batching = true;
  std::size_t shard_count = 1;
  std::size_t worker_threads = 0;
  bool prefilter = true;
};

Result run(const RunConfig& rc, std::size_t brokers, std::size_t subscribers,
           std::size_t feeds, double broad_fraction) {
  sim::Simulator sim;
  sim::Network::Config net_config;
  net_config.default_latency = sim::kMillisecond;
  net_config.jitter_fraction = 0.0;
  sim::Network net(sim, net_config);

  pubsub::Broker::Config broker_config;
  broker_config.covering_enabled = rc.covering;
  broker_config.matcher_engine = rc.engine;
  broker_config.batching_enabled = rc.batching;
  broker_config.shard_count = rc.shard_count;
  broker_config.worker_threads = rc.worker_threads;
  broker_config.prefilter_enabled = rc.prefilter;
  pubsub::Overlay overlay(sim, net, broker_config);
  for (std::size_t i = 0; i < brokers; ++i) overlay.add_broker();
  for (std::size_t i = 1; i < brokers; ++i) overlay.link(i - 1, i);

  util::Rng rng(99);
  util::ZipfSampler popularity(feeds, 1.0);
  std::vector<std::unique_ptr<pubsub::Client>> clients;
  for (std::size_t s = 0; s < subscribers; ++s) {
    auto client = std::make_unique<pubsub::Client>(
        sim, net, "sub" + std::to_string(s));
    client->connect(overlay.broker(s % brokers));
    if (rng.chance(broad_fraction)) {
      // A few "give me everything" subscribers: their filter covers every
      // per-feed subscription.
      client->subscribe(pubsub::Filter().and_(pubsub::eq("stream", "feed")));
    }
    const std::size_t per_user = 3 + rng.index(5);
    for (std::size_t f = 0; f < per_user; ++f) {
      const std::size_t feed = popularity.sample(rng);
      client->subscribe(feed_filter_for(feed));
    }
    clients.push_back(std::move(client));
  }
  sim.run_until(sim.now() + sim::kMinute);

  // Publish a burst of events across the feed popularity distribution,
  // in per-tick bundles of 10 so broker-side coalescing has something to
  // merge (the feed proxy flushes whole poll cycles the same way).
  pubsub::Client publisher(sim, net, "pub");
  publisher.connect(overlay.broker(0));
  int seq = 0;
  for (int burst = 0; burst < 50; ++burst) {
    std::vector<pubsub::Event> bundle;
    for (int i = 0; i < 10; ++i) {
      const std::size_t feed = popularity.sample(rng);
      bundle.push_back(
          pubsub::Event()
              .with("stream", "feed")
              .with("feed", "http://feed" + std::to_string(feed) +
                                ".example/f.rss")
              .with("seq", seq++));
    }
    publisher.publish_batch(std::move(bundle));
    sim.run_until(sim.now() + sim::kSecond);
  }
  sim.run_until(sim.now() + sim::kMinute);

  Result result;
  result.subs_forwarded = overlay.total_subs_forwarded();
  result.total_table = overlay.total_table_size();
  result.edge_broker_table = overlay.broker(brokers - 1).table_size();
  result.pubs_forwarded = overlay.total_pubs_forwarded();
  result.deliveries = overlay.total_deliveries();
  for (std::size_t i = 0; i < brokers; ++i) {
    result.unsubs_forwarded += overlay.broker(i).stats().unsubs_forwarded;
  }
  for (const std::string_view type :
       {pubsub::kTypePublish, pubsub::kTypePublishBatch,
        pubsub::kTypeDeliver, pubsub::kTypeDeliverBatch}) {
    const std::string key(type);
    result.event_wire_msgs += net.messages_by_type().get(key);
    result.event_units += net.units_by_type().get(key);
    result.event_bytes += net.bytes_by_type().get(key);
  }
  return result;
}

// --- adaptive flush: latency vs throughput -----------------------------------

struct FlushRow {
  sim::Time delay = 0;
  std::size_t max_events = 0;
  std::size_t max_bytes = 0;
};

struct FlushResult {
  std::uint64_t event_wire_msgs = 0;
  std::uint64_t event_units = 0;
  std::uint64_t flushes_by_events = 0;
  std::uint64_t flushes_by_bytes = 0;
  std::uint64_t flushes_by_delay = 0;
  std::uint64_t flushed_units = 0;
  sim::Time residence_total = 0;
  std::uint64_t deliveries = 0;

  double ev_per_msg() const {
    return event_wire_msgs == 0
               ? 0.0
               : static_cast<double>(event_units) /
                     static_cast<double>(event_wire_msgs);
  }
  double mean_residence() const {
    return flushed_units == 0
               ? 0.0
               : static_cast<double>(residence_total) /
                     static_cast<double>(flushed_units);
  }
};

/// Paced traffic (one event per ms), where strict per-tick flushing has
/// nothing to coalesce: every tick holds one event, so ev/msg pins at ~1
/// and only a delay budget can trade residence for batching.
FlushResult run_flush_sweep(const FlushRow& row, std::size_t brokers,
                            std::size_t subscribers, std::size_t feeds,
                            int events) {
  sim::Simulator sim;
  sim::Network::Config net_config;
  net_config.default_latency = sim::kMillisecond;
  net_config.jitter_fraction = 0.0;
  sim::Network net(sim, net_config);

  pubsub::Broker::Config broker_config;
  broker_config.matcher_engine = "anchor-index";
  broker_config.flush_max_delay_ticks = row.delay;
  broker_config.flush_max_events = row.max_events;
  broker_config.flush_max_bytes = row.max_bytes;
  pubsub::Overlay overlay(sim, net, broker_config);
  for (std::size_t i = 0; i < brokers; ++i) overlay.add_broker();
  for (std::size_t i = 1; i < brokers; ++i) overlay.link(i - 1, i);

  util::Rng rng(99);
  util::ZipfSampler popularity(feeds, 1.0);
  std::vector<std::unique_ptr<pubsub::Client>> clients;
  for (std::size_t s = 0; s < subscribers; ++s) {
    auto client = std::make_unique<pubsub::Client>(
        sim, net, "sub" + std::to_string(s));
    client->connect(overlay.broker(s % brokers));
    const std::size_t per_user = 3 + rng.index(5);
    for (std::size_t f = 0; f < per_user; ++f) {
      client->subscribe(feed_filter_for(popularity.sample(rng)));
    }
    clients.push_back(std::move(client));
  }
  sim.run_until(sim.now() + sim::kMinute);

  pubsub::Client publisher(sim, net, "pub");
  publisher.connect(overlay.broker(0));
  for (int seq = 0; seq < events; ++seq) {
    const std::size_t feed = popularity.sample(rng);
    publisher.publish(pubsub::Event()
                          .with("stream", "feed")
                          .with("feed", "http://feed" + std::to_string(feed) +
                                            ".example/f.rss")
                          .with("seq", seq));
    sim.run_until(sim.now() + sim::kMillisecond);
  }
  sim.run_until(sim.now() + sim::kMinute);

  FlushResult result;
  for (const std::string_view type :
       {pubsub::kTypePublish, pubsub::kTypePublishBatch,
        pubsub::kTypeDeliver, pubsub::kTypeDeliverBatch}) {
    const std::string key(type);
    result.event_wire_msgs += net.messages_by_type().get(key);
    result.event_units += net.units_by_type().get(key);
  }
  for (std::size_t i = 0; i < brokers; ++i) {
    const pubsub::Broker::Stats& stats = overlay.broker(i).stats();
    result.flushes_by_events += stats.flushes_by_events;
    result.flushes_by_bytes += stats.flushes_by_bytes;
    result.flushes_by_delay += stats.flushes_by_delay;
    result.flushed_units += stats.flushed_units;
    result.residence_total += stats.residence_ticks_total;
  }
  result.deliveries = overlay.total_deliveries();
  return result;
}

// --- bm_deliver_topk: scored top-k delivery ----------------------------------

struct TopKResult {
  std::uint64_t deliveries = 0;
  std::uint64_t scored_matches = 0;
  std::uint64_t suppressed_by_k = 0;
  std::uint64_t suppressed_by_threshold = 0;
  std::uint64_t event_bytes = 0;
};

/// Scored-delivery sweep workload: every subscriber holds one broad
/// BM25-scored subscription (stream = "feed", so its top-k window is the
/// whole publication bundle) plus a few neutral per-feed subscriptions.
/// `scoring` off runs the identical workload through the boolean path
/// (plain subscribes, scoring_enabled = false) — the overhead baseline.
TopKResult run_topk(const std::string& engine, bool scoring,
                    std::uint32_t top_k, std::size_t brokers,
                    std::size_t subscribers, std::size_t feeds) {
  sim::Simulator sim;
  sim::Network::Config net_config;
  net_config.default_latency = sim::kMillisecond;
  net_config.jitter_fraction = 0.0;
  sim::Network net(sim, net_config);

  pubsub::Broker::Config broker_config;
  broker_config.matcher_engine = engine;
  broker_config.scoring_enabled = scoring;
  pubsub::Overlay overlay(sim, net, broker_config);
  for (std::size_t i = 0; i < brokers; ++i) overlay.add_broker();
  for (std::size_t i = 1; i < brokers; ++i) overlay.link(i - 1, i);

  pubsub::ScoringSpec spec;
  spec.policy = pubsub::ScoringPolicy::kBm25;
  spec.query = {{"news", 2.0}, {"update", 1.0}, {"alpha", 0.5}};
  spec.text_attrs = {"title"};
  spec.top_k = top_k;

  util::Rng rng(99);
  util::ZipfSampler popularity(feeds, 1.0);
  std::vector<std::unique_ptr<pubsub::Client>> clients;
  for (std::size_t s = 0; s < subscribers; ++s) {
    auto client = std::make_unique<pubsub::Client>(
        sim, net, "sub" + std::to_string(s));
    client->connect(overlay.broker(s % brokers));
    const pubsub::Filter broad =
        pubsub::Filter().and_(pubsub::eq("stream", "feed"));
    if (scoring) {
      client->subscribe_scored(broad, spec);
    } else {
      client->subscribe(broad);
    }
    for (std::size_t f = 0; f < 2; ++f) {
      client->subscribe(feed_filter_for(popularity.sample(rng)));
    }
    clients.push_back(std::move(client));
  }
  sim.run_until(sim.now() + sim::kMinute);

  static constexpr const char* kWords[] = {"alpha", "beta",   "gamma",
                                           "delta", "news",   "feed",
                                           "update", "log"};
  pubsub::Client publisher(sim, net, "pub");
  publisher.connect(overlay.broker(0));
  int seq = 0;
  for (int burst = 0; burst < 25; ++burst) {
    std::vector<pubsub::Event> bundle;
    for (int i = 0; i < 20; ++i) {
      const std::size_t feed = popularity.sample(rng);
      std::string title;
      for (int w = 0; w < 3; ++w) {
        if (w != 0) title += ' ';
        title += kWords[rng.index(8)];
      }
      bundle.push_back(
          pubsub::Event()
              .with("stream", "feed")
              .with("feed", "http://feed" + std::to_string(feed) +
                                ".example/f.rss")
              .with("title", title)
              .with("seq", seq++));
    }
    publisher.publish_batch(std::move(bundle));
    sim.run_until(sim.now() + sim::kSecond);
  }
  sim.run_until(sim.now() + sim::kMinute);

  TopKResult result;
  result.deliveries = overlay.total_deliveries();
  for (std::size_t i = 0; i < brokers; ++i) {
    const pubsub::Broker::Stats& stats = overlay.broker(i).stats();
    result.scored_matches += stats.scored_matches;
    result.suppressed_by_k += stats.suppressed_by_k;
    result.suppressed_by_threshold += stats.suppressed_by_threshold;
  }
  for (const std::string_view type :
       {pubsub::kTypePublish, pubsub::kTypePublishBatch,
        pubsub::kTypeDeliver, pubsub::kTypeDeliverBatch}) {
    result.event_bytes += net.bytes_by_type().get(std::string(type));
  }
  return result;
}

// --- crash recovery: reconvergence sweep -------------------------------------

struct ConvergenceResult {
  bool converged = false;
  sim::Time reconverge_time = 0;   ///< restart -> all fingerprints restored
  std::uint64_t resync_msgs = 0;   ///< anti-entropy messages (req + state)
  std::uint64_t resync_bytes = 0;
  std::uint64_t retransmits = 0;   ///< control retransmits during recovery
};

enum class Topology { kChain, kStar, kTree };

/// Builds the topology, settles a subscription population, crashes one
/// broker, restarts it, and measures how long the anti-entropy resync
/// takes to restore every broker's routing fingerprint bit for bit.
ConvergenceResult run_convergence(Topology topology, std::size_t brokers,
                                  std::size_t target,
                                  std::size_t subscribers) {
  sim::Simulator sim;
  sim::Network::Config net_config;
  net_config.default_latency = sim::kMillisecond;
  net_config.jitter_fraction = 0.0;
  sim::Network net(sim, net_config);

  pubsub::Broker::Config broker_config;
  broker_config.reliable_control = true;
  // Broker links run at 10ms; keep the timeout clear of the acked RTT.
  broker_config.retransmit_timeout = 60 * sim::kMillisecond;
  pubsub::Overlay overlay =
      topology == Topology::kChain
          ? pubsub::Overlay::chain(sim, net, brokers, broker_config)
          : topology == Topology::kStar
                ? pubsub::Overlay::star(sim, net, brokers, broker_config)
                : pubsub::Overlay::tree(sim, net, brokers, 2, broker_config);

  pubsub::ReliableChannel::Config client_channel;
  client_channel.enabled = true;
  client_channel.retransmit_timeout = 60 * sim::kMillisecond;
  util::Rng rng(99);
  util::ZipfSampler popularity(60, 1.0);
  std::vector<std::unique_ptr<pubsub::Client>> clients;
  for (std::size_t s = 0; s < subscribers; ++s) {
    auto client = std::make_unique<pubsub::Client>(
        sim, net, "sub" + std::to_string(s));
    client->connect(overlay.broker(s % brokers));
    client->enable_reliable_control(client_channel);
    const std::size_t per_user = 3 + rng.index(5);
    for (std::size_t f = 0; f < per_user; ++f) {
      client->subscribe(feed_filter_for(popularity.sample(rng)));
    }
    clients.push_back(std::move(client));
  }
  sim.run_until(sim.now() + sim::kMinute);

  std::vector<std::string> before;
  for (std::size_t i = 0; i < brokers; ++i) {
    before.push_back(overlay.broker(i).routing_table().state_fingerprint());
  }
  const auto counters = [&] {
    ConvergenceResult totals;
    for (std::size_t i = 0; i < brokers; ++i) {
      const pubsub::Broker::Stats stats = overlay.broker(i).stats();
      totals.resync_msgs += stats.resync_msgs;
      totals.resync_bytes += stats.resync_bytes;
      totals.retransmits += stats.retransmits;
    }
    for (const auto& client : clients) {
      totals.retransmits += client->control_channel().stats().retransmits;
    }
    return totals;
  };
  const ConvergenceResult base = counters();

  overlay.crash(target);
  sim.run_until(sim.now() + 200 * sim::kMillisecond);
  overlay.restart(target);
  const sim::Time restart_at = sim.now();

  ConvergenceResult result;
  const sim::Time cap = 30 * sim::kSecond;
  while (sim.now() - restart_at < cap) {
    sim.run_until(sim.now() + 5 * sim::kMillisecond);
    bool match = true;
    for (std::size_t i = 0; i < brokers && match; ++i) {
      match = overlay.broker(i).routing_table().state_fingerprint() ==
              before[i];
    }
    if (match) {
      result.converged = true;
      break;
    }
  }
  result.reconverge_time = sim.now() - restart_at;
  const ConvergenceResult after = counters();
  result.resync_msgs = after.resync_msgs - base.resync_msgs;
  result.resync_bytes = after.resync_bytes - base.resync_bytes;
  result.retransmits = after.retransmits - base.retransmits;
  return result;
}

}  // namespace

int main() {
  std::printf("=== E7b: Broker routing, covering ablation ===\n");
  std::printf("chain of 8 brokers, Zipf feed popularity, 500 publications\n\n");
  std::printf("  %11s %6s %14s %14s %12s %12s %12s\n", "subscribers",
              "broad", "subs fwd'd", "tables (sum)", "edge table",
              "pubs fwd'd", "deliveries");
  std::printf("  %s\n", std::string(88, '-').c_str());
  for (const std::size_t subscribers : {20, 50, 100, 200}) {
    for (const double broad : {0.0, 0.1}) {
      const Result with_cover =
          run(RunConfig{true, "anchor-index", true}, 8, subscribers, 60,
              broad);
      const Result without =
          run(RunConfig{false, "anchor-index", true}, 8, subscribers, 60,
              broad);
      std::printf("  %11zu %5.0f%%   cover %7s %14zu %12zu %12s %12s\n",
                  subscribers, broad * 100,
                  reef::util::with_commas(with_cover.subs_forwarded).c_str(),
                  with_cover.total_table, with_cover.edge_broker_table,
                  reef::util::with_commas(with_cover.pubs_forwarded).c_str(),
                  reef::util::with_commas(with_cover.deliveries).c_str());
      std::printf("  %11s %6s no-cover %5s %14zu %12zu %12s %12s\n", "", "",
                  reef::util::with_commas(without.subs_forwarded).c_str(),
                  without.total_table, without.edge_broker_table,
                  reef::util::with_commas(without.pubs_forwarded).c_str(),
                  reef::util::with_commas(without.deliveries).c_str());
    }
  }
  std::printf("\n  deliveries are identical; covering cuts control traffic "
              "and routing state, most visibly with broad subscribers.\n");

  // --- engine x batching: wire traffic on the event path -------------------
  std::printf("\n=== engine x batching: event-path wire traffic ===\n");
  std::printf("chain of 8 brokers, 100 subscribers, 500 events in bursts "
              "of 10\n\n");
  std::printf("  %-12s %-8s %12s %12s %10s %12s %12s\n", "engine", "batch",
              "wire msgs", "events", "ev/msg", "bytes", "deliveries");
  std::printf("  %s\n", std::string(84, '-').c_str());
  for (const char* engine : {"anchor-index", "counting", "brute-force"}) {
    for (const bool batching : {true, false}) {
      const Result r =
          run(RunConfig{true, engine, batching}, 8, 100, 60, 0.0);
      std::printf("  %-12s %-8s %12s %12s %10.1f %12s %12s\n", engine,
                  batching ? "on" : "off",
                  reef::util::with_commas(r.event_wire_msgs).c_str(),
                  reef::util::with_commas(r.event_units).c_str(),
                  r.event_wire_msgs == 0
                      ? 0.0
                      : static_cast<double>(r.event_units) /
                            static_cast<double>(r.event_wire_msgs),
                  reef::util::with_commas(r.event_bytes).c_str(),
                  reef::util::with_commas(r.deliveries).c_str());
    }
  }
  std::printf("\n  engines agree on deliveries; batching collapses the "
              "per-event wire messages (ev/msg > 1). With settled "
              "subscriptions (as here) deliveries match the unbatched "
              "run; only events racing a subscription within one tick "
              "may differ.\n");

  // --- sharded routing core: shard x worker x pre-filter sweep -------------
  std::printf("\n=== sharded routing core: shard x worker x pre-filter "
              "sweep ===\n");
  std::printf("chain of 8 brokers, 100 subscribers, anchor-index inner "
              "engine; deliveries must be identical on every row\n\n");
  std::printf("  %-24s %-7s %-8s %-10s %12s %12s\n", "engine", "shards",
              "workers", "prefilter", "wire msgs", "deliveries");
  std::printf("  %s\n", std::string(80, '-').c_str());
  struct ShardRow {
    const char* engine;
    std::size_t shards;
    std::size_t workers;
    bool prefilter = true;
  };
  for (const ShardRow& row :
       {ShardRow{"anchor-index", 1, 0},
        ShardRow{"sharded:anchor-index", 4, 0, false},
        ShardRow{"sharded:anchor-index", 4, 0},
        ShardRow{"sharded:anchor-index", 4, 2, false},
        ShardRow{"sharded:anchor-index", 4, 2},
        ShardRow{"sharded:counting", 4, 2}}) {
    const Result r = run(
        RunConfig{true, row.engine, true, row.shards, row.workers,
                  row.prefilter},
        8, 100, 60, 0.0);
    std::printf("  %-24s %-7zu %-8zu %-10s %12s %12s\n", row.engine,
                row.shards, row.workers, row.prefilter ? "on" : "off",
                reef::util::with_commas(r.event_wire_msgs).c_str(),
                reef::util::with_commas(r.deliveries).c_str());
  }
  std::printf("\n  sharding partitions each broker's filter state by "
              "anchor attribute; worker threads fan match_batch over the "
              "shards, and the pre-filter routes each event only to the "
              "shards its attributes can reach — without changing a "
              "single delivery.\n");

  // --- adaptive flush: latency vs throughput -------------------------------
  std::printf("\n=== adaptive flush: latency vs throughput sweep ===\n");
  std::printf("chain of 4 brokers, 60 subscribers, 400 events paced 1/ms "
              "(per-tick flushing has nothing to coalesce here)\n\n");
  std::printf("  %-10s %-7s %-9s | %10s %7s %7s %7s %9s %14s %11s\n",
              "delay", "max_ev", "max_bytes", "wire msgs", "ev/msg",
              "fl_ev", "fl_by", "fl_delay", "res(ticks)", "deliveries");
  std::printf("  %s\n", std::string(106, '-').c_str());
  double prev_residence = -1.0;
  bool residence_monotone = true;
  std::uint64_t first_deliveries = 0;
  bool first_row_seen = false;
  bool deliveries_identical = true;
  for (const FlushRow& row :
       {FlushRow{0, 0, 0}, FlushRow{1 * sim::kMillisecond, 0, 0},
        FlushRow{5 * sim::kMillisecond, 0, 0},
        FlushRow{20 * sim::kMillisecond, 0, 0},
        FlushRow{20 * sim::kMillisecond, 8, 0},
        FlushRow{20 * sim::kMillisecond, 0, 600}}) {
    const FlushResult r = run_flush_sweep(row, 4, 60, 30, 400);
    char delay_label[24];
    std::snprintf(delay_label, sizeof(delay_label), "%lldms",
                  static_cast<long long>(row.delay / sim::kMillisecond));
    std::printf("  %-10s %-7zu %-9zu | %10s %7.1f %7s %7s %9s %14.0f %11s\n",
                delay_label, row.max_events, row.max_bytes,
                reef::util::with_commas(r.event_wire_msgs).c_str(),
                r.ev_per_msg(),
                reef::util::with_commas(r.flushes_by_events).c_str(),
                reef::util::with_commas(r.flushes_by_bytes).c_str(),
                reef::util::with_commas(r.flushes_by_delay).c_str(),
                r.mean_residence(),
                reef::util::with_commas(r.deliveries).c_str());
    // Residence must tighten monotonically with the delay budget across
    // the pure-delay rows (the first four), and flush budgets must never
    // change a delivery; both are hard failures (nonzero exit), so a
    // regression fails CI instead of hiding in the report artifact.
    if (row.max_events == 0 && row.max_bytes == 0) {
      if (prev_residence >= 0.0 && r.mean_residence() < prev_residence) {
        residence_monotone = false;
      }
      prev_residence = r.mean_residence();
    }
    if (!first_row_seen) {
      first_deliveries = r.deliveries;
      first_row_seen = true;
    } else if (r.deliveries != first_deliveries) {
      deliveries_identical = false;
    }
  }
  std::printf("\n  residence (mean ticks an event waits in a broker before "
              "its batch is cut) %s monotonically as the delay budget "
              "loosens, buying ev/msg; the event/byte budgets cap batch "
              "size inside the delay window — deliveries are identical on "
              "every row.\n",
              residence_monotone ? "grows" : "DOES NOT GROW (REGRESSION!)");

  // --- bm_deliver_topk: scored top-k delivery sweep ------------------------
  std::printf("\n=== bm_deliver_topk: scored top-k delivery sweep ===\n");
  std::printf("chain of 4 brokers, 60 subscribers each holding one broad "
              "BM25-scored subscription (top-k window = the publication "
              "bundle of 20) plus 2 neutral feed subscriptions; 500 events. "
              "'bool' = scoring disabled baseline, k=unl = scored but "
              "unbounded.\n\n");
  std::printf("  %-14s %-6s %12s %14s %10s %10s %14s\n", "engine", "k",
              "deliveries", "scored match", "supp(k)", "supp(min)",
              "event bytes");
  std::printf("  %s\n", std::string(88, '-').c_str());
  bool topk_ok = true;
  for (const char* engine : {"anchor-index", "counting", "bitset"}) {
    const TopKResult boolean = run_topk(engine, false, 0, 4, 60, 30);
    std::printf("  %-14s %-6s %12s %14s %10s %10s %14s\n", engine, "bool",
                reef::util::with_commas(boolean.deliveries).c_str(), "-",
                "-", "-",
                reef::util::with_commas(boolean.event_bytes).c_str());
    std::uint64_t prev_deliveries = 0;
    for (const std::uint32_t k : {1u, 4u, 16u, 0u}) {
      const TopKResult r = run_topk(engine, true, k, 4, 60, 30);
      char k_label[16];
      if (k == 0) {
        std::snprintf(k_label, sizeof(k_label), "unl");
      } else {
        std::snprintf(k_label, sizeof(k_label), "%u", k);
      }
      std::printf("  %-14s %-6s %12s %14s %10s %10s %14s\n", "", k_label,
                  reef::util::with_commas(r.deliveries).c_str(),
                  reef::util::with_commas(r.scored_matches).c_str(),
                  reef::util::with_commas(r.suppressed_by_k).c_str(),
                  reef::util::with_commas(r.suppressed_by_threshold).c_str(),
                  reef::util::with_commas(r.event_bytes).c_str());
      // Sweep invariants (hard failures, feeding the exit code):
      //   * the k cut suppresses something iff k is finite;
      //   * deliveries grow monotonically as k loosens;
      //   * unbounded scored delivery equals the boolean baseline;
      //   * no threshold suppression (min_score = 0 in this sweep).
      if ((r.suppressed_by_k > 0) != (k != 0)) topk_ok = false;
      if (r.deliveries < prev_deliveries) topk_ok = false;
      if (k == 0 && r.deliveries != boolean.deliveries) topk_ok = false;
      if (r.suppressed_by_threshold != 0) topk_ok = false;
      prev_deliveries = r.deliveries;
    }
  }
  std::printf("\n  the cut binds at the delivery edge only: bounded rows "
              "ship fewer deliver bytes, unbounded scoring reproduces the "
              "boolean delivery set exactly (plus 8 bytes/entry of score), "
              "and every engine agrees row for row.\n");

  // --- maintenance scheduling: churn-count vs skew-triggered ---------------
  std::printf("\n=== maintenance scheduling: churn-count vs skew trigger "
              "===\n");
  std::printf("network-free RoutingTable, 4k subscribe/unsubscribe churn "
              "ops, threshold 256\n\n");
  std::printf("  %-28s %-10s %14s %14s %14s %14s\n", "workload",
              "skew ratio", "maintain runs", "skew triggers",
              "backoff skips", "changes");
  std::printf("  %s\n", std::string(99, '-').c_str());
  const auto churn_run = [](bool skewed_workload, std::size_t skew_ratio) {
    pubsub::RoutingTable::Config config;
    config.engine = "anchor-index";
    config.maintain_churn_threshold = 256;
    config.maintain_max_bucket = 16;
    config.maintain_skew_ratio = skew_ratio;
    pubsub::RoutingTable table(config);
    util::Rng rng(7);
    pubsub::SubscriptionId next = 1;
    std::vector<pubsub::SubscriptionId> live;
    for (int op = 0; op < 4000; ++op) {
      if (!live.empty() && rng.chance(0.4)) {
        const std::size_t victim = rng.index(live.size());
        table.client_unsubscribe(1, live[victim]);
        live[victim] = live.back();
        live.pop_back();
        continue;
      }
      pubsub::Filter f;
      if (skewed_workload && rng.chance(0.5)) {
        // Hot bucket: half the filters pile onto one equality value.
        f.and_(pubsub::eq("hot", 1));
        if (rng.chance(0.5)) {
          f.and_(pubsub::eq("user", static_cast<std::int64_t>(
                                        rng.index(400))));
        }
      } else {
        f.and_(pubsub::eq("user",
                          static_cast<std::int64_t>(rng.index(2000))));
      }
      table.client_subscribe(1, next, f);
      live.push_back(next++);
    }
    return table;
  };
  for (const bool skewed : {false, true}) {
    for (const std::size_t ratio : {std::size_t{0}, std::size_t{8}}) {
      const auto table = churn_run(skewed, ratio);
      char label[16];
      std::snprintf(label, sizeof(label), "%zu", ratio);
      std::printf("  %-28s %-10s %14s %14s %14s %14s\n",
                  skewed ? "skewed (hot bucket)" : "balanced (uniform)",
                  ratio == 0 ? "off" : label,
                  reef::util::with_commas(table.maintain_runs()).c_str(),
                  reef::util::with_commas(table.maintain_skew_triggers())
                      .c_str(),
                  reef::util::with_commas(table.maintain_backoff_skips())
                      .c_str(),
                  reef::util::with_commas(table.maintain_changes()).c_str());
    }
  }
  std::printf("\n  the skew trigger cuts the scheduled no-op passes on the "
              "balanced workload to zero and fires early (before the churn "
              "window closes) once one bucket dwarfs the mean.\n");

  // --- crash recovery: reconvergence sweep ---------------------------------
  std::printf("\n=== crash recovery: reconvergence sweep ===\n");
  std::printf("8 brokers, 96 subscribers, reliable control + anti-entropy "
              "resync; a broker crashes, restarts empty, and every routing "
              "fingerprint must return bit for bit\n\n");
  std::printf("  %-10s %-10s | %14s %12s %12s %12s\n", "topology",
              "crash at", "reconverge", "resync msgs", "resync KB",
              "retransmits");
  std::printf("  %s\n", std::string(80, '-').c_str());
  struct ConvergenceRow {
    const char* label;
    Topology topology;
    const char* pos;
    std::size_t target;
  };
  bool all_converged = true;
  for (const ConvergenceRow& row :
       {ConvergenceRow{"chain-8", Topology::kChain, "middle", 4},
        ConvergenceRow{"chain-8", Topology::kChain, "edge", 7},
        ConvergenceRow{"star-8", Topology::kStar, "hub", 0},
        ConvergenceRow{"star-8", Topology::kStar, "leaf", 3},
        ConvergenceRow{"tree-8/f2", Topology::kTree, "internal", 1},
        ConvergenceRow{"tree-8/f2", Topology::kTree, "leaf", 7}}) {
    const ConvergenceResult r =
        run_convergence(row.topology, 8, row.target, 96);
    all_converged = all_converged && r.converged;
    char time_label[32];
    if (r.converged) {
      std::snprintf(time_label, sizeof(time_label), "%.0f ms",
                    static_cast<double>(r.reconverge_time) /
                        static_cast<double>(sim::kMillisecond));
    } else {
      std::snprintf(time_label, sizeof(time_label), "DNF");
    }
    std::printf("  %-10s %-10s | %14s %12s %12.1f %12s\n", row.label,
                row.pos, time_label,
                reef::util::with_commas(r.resync_msgs).c_str(),
                static_cast<double>(r.resync_bytes) / 1024.0,
                reef::util::with_commas(r.retransmits).c_str());
  }
  std::printf("\n  reconvergence is dominated by hop depth (digest exchange "
              "+ one full-state replay per interface); the hub crash pays "
              "the widest resync, the leaf the cheapest. DNF on any row is "
              "a hard failure.\n");

  if (!residence_monotone || !deliveries_identical || !all_converged ||
      !topk_ok) {
    std::printf("\nFAIL: sweep invariants violated (residence_monotone=%d, "
                "deliveries_identical=%d, crash_reconvergence=%d, "
                "topk_sweep=%d)\n",
                residence_monotone ? 1 : 0, deliveries_identical ? 1 : 0,
                all_converged ? 1 : 0, topk_ok ? 1 : 0);
    return 1;
  }
  return 0;
}
