// E3 — §6: "On average, every user received one new feed recommendation
// per day during our test period."
//
// Runs the full ten-week centralized pipeline and reports the subscribe-
// recommendation rate per user-day, the closed-loop statistics (sidebar
// deliveries, clicks, expiries, automatic unsubscribes), and the manual-
// subscription baseline a diligent human would achieve on the same trace.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "reef/manual_baseline.h"
#include "util/strings.h"
#include "workload/calibration.h"
#include "workload/driver.h"

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  reef::workload::PaperTargets targets;

  reef::workload::ReefExperiment::Config config;
  config.mode = reef::workload::ReefExperiment::Mode::kCentralized;
  config.seed = 2006;
  config.browsing.users = targets.users;
  config.browsing.days = quick ? 10.0 : targets.days;
  // The paper's §3.2 case study has no collaborative component; E4/E5
  // exercise it. Here only direct per-user recommendations count.
  config.server.collaborative_interval = 0;

  std::printf("=== E3: Recommendation rate (paper §6) ===\n");
  std::printf("workload: %zu users, %.0f days, seed %llu%s\n\n",
              config.browsing.users, config.browsing.days,
              static_cast<unsigned long long>(config.seed),
              quick ? "  [--quick]" : "");

  reef::workload::ReefExperiment exp(config);
  exp.run();

  const double days = config.browsing.days;
  auto& topic = exp.server()->topic_recommender();

  std::printf("  %-10s %18s %16s %14s\n", "user", "subscribe recs",
              "recs/day", "active subs");
  std::printf("  %s\n", std::string(62, '-').c_str());
  double total_rate = 0.0;
  for (std::size_t u = 0; u < exp.host_count(); ++u) {
    const auto recs = topic.total_recommended(
        static_cast<reef::attention::UserId>(u));
    const double rate = static_cast<double>(recs) / days;
    total_rate += rate;
    std::printf("  user-%-5zu %18llu %16.2f %14zu\n", u,
                static_cast<unsigned long long>(recs), rate,
                exp.frontend(u).active_feed_subscriptions());
  }
  const double mean_rate = total_rate / static_cast<double>(exp.host_count());
  std::printf("\n  mean recommendations/user/day: paper ~%.1f, measured "
              "%.2f\n",
              targets.recommendations_per_user_day, mean_rate);

  // Closed-loop statistics.
  std::printf("\n  closed loop (sidebar behaviour):\n");
  std::printf("    %-10s %10s %10s %10s %10s %8s\n", "user", "delivered",
              "clicked", "expired", "dismissed", "unsubs");
  for (std::size_t u = 0; u < exp.host_count(); ++u) {
    const auto& stats = exp.frontend(u).stats();
    std::printf("    user-%-5zu %10llu %10llu %10llu %10llu %8llu\n", u,
                static_cast<unsigned long long>(stats.events_received),
                static_cast<unsigned long long>(stats.clicked),
                static_cast<unsigned long long>(stats.expired),
                static_cast<unsigned long long>(stats.dismissed),
                static_cast<unsigned long long>(stats.unsubscribes_applied));
  }

  // Manual baseline on the very same trace: visits-to-notice=10,
  // 15% chance of spotting the feed icon per qualifying visit.
  reef::core::ManualSubscriptionBaseline manual;
  for (const auto& visit : exp.trace()) {
    if (visit.is_ad) continue;
    const reef::web::Site* site = exp.web().find_site(visit.uri.host());
    if (site == nullptr || site->kind != reef::web::SiteKind::kContent) {
      continue;
    }
    manual.on_visit(visit.user, visit.uri.host(), site->feed_urls, visit.at);
  }
  std::printf("\n  manual-subscription baseline (10 visits + 15%% notice):\n");
  std::printf("    %-10s %14s %16s %22s\n", "user", "manual subs",
              "manual/day", "Reef advantage");
  for (std::size_t u = 0; u < exp.host_count(); ++u) {
    const auto user = static_cast<reef::attention::UserId>(u);
    const double manual_rate =
        static_cast<double>(manual.subscriptions(user)) / days;
    const auto reef_total = topic.total_recommended(user);
    const double advantage =
        manual.subscriptions(user) == 0
            ? 0.0
            : static_cast<double>(reef_total) /
                  static_cast<double>(manual.subscriptions(user));
    std::printf("    user-%-5zu %14zu %16.2f %20.1fx\n", u,
                manual.subscriptions(user), manual_rate, advantage);
  }
  return 0;
}
