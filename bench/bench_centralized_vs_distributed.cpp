// E4 — §3 vs §4: centralized vs distributed Reef.
//
// Runs the same browsing workload through both deployments and compares
// what the paper argues qualitatively:
//   * privacy: attention data leaves the host only in the centralized
//     design;
//   * network load: the centralized server re-crawls visited pages, the
//     distributed peer parses its browser cache;
//   * load distribution: server-side storage/compute vs per-peer;
//   * fault tolerance: killing the centralized server stops all
//     recommendations; killing one peer affects only that peer.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/strings.h"
#include "workload/driver.h"

namespace {

using reef::util::with_commas;

struct RunResult {
  std::uint64_t attention_bytes = 0;
  std::uint64_t recommendation_bytes = 0;
  std::uint64_t gossip_bytes = 0;
  std::uint64_t crawl_bytes = 0;
  std::uint64_t server_storage = 0;
  std::uint64_t total_network_msgs = 0;
  std::uint64_t cache_parsed = 0;
  std::uint64_t recs_before_failure = 0;
  std::uint64_t recs_after_failure = 0;
  std::size_t subscriptions = 0;
};

RunResult run(reef::workload::ReefExperiment::Mode mode, double days,
              bool kill_analyzer) {
  reef::workload::ReefExperiment::Config config;
  config.mode = mode;
  config.seed = 2006;
  config.browsing.days = days;
  reef::workload::ReefExperiment exp(config);

  // Failure injection: at 60% of the horizon, the analysis tier fails —
  // the server in the centralized design, one peer's machine otherwise.
  const auto failure_at = static_cast<reef::sim::Time>(
      days * 0.6 * static_cast<double>(reef::sim::kDay));
  std::uint64_t recs_at_failure = 0;
  if (kill_analyzer) {
    exp.simulator().at(failure_at, [&exp, &recs_at_failure, mode] {
      if (mode == reef::workload::ReefExperiment::Mode::kCentralized) {
        recs_at_failure = exp.server()->stats().recommendations_sent;
        exp.network().set_node_up(exp.server()->id(), false);
      } else {
        for (std::size_t u = 0; u < exp.peer_count(); ++u) {
          recs_at_failure +=
              exp.peer(u).frontend().stats().subscribes_applied;
        }
        exp.network().set_node_up(exp.peer(0).id(), false);
      }
    });
  }
  exp.run();

  RunResult result;
  result.attention_bytes = exp.network().bytes_by_type().get(
      std::string(reef::attention::kTypeAttentionBatch));
  result.recommendation_bytes = exp.network().bytes_by_type().get(
      std::string(reef::core::kTypeRecommendation));
  result.gossip_bytes = exp.network().bytes_by_type().get(
      std::string(reef::core::kTypeGossip));
  result.total_network_msgs = exp.network().total_messages();
  if (mode == reef::workload::ReefExperiment::Mode::kCentralized) {
    result.crawl_bytes = exp.server()->crawler().stats().bytes_fetched;
    result.server_storage = exp.server()->stats().storage_bytes;
    result.recs_after_failure =
        exp.server()->stats().recommendations_sent - recs_at_failure;
    for (std::size_t u = 0; u < exp.host_count(); ++u) {
      result.subscriptions += exp.frontend(u).active_feed_subscriptions();
    }
  } else {
    std::uint64_t recs_total = 0;
    for (std::size_t u = 0; u < exp.peer_count(); ++u) {
      result.cache_parsed += exp.peer(u).stats().pages_parsed_from_cache;
      result.subscriptions += exp.frontend(u).active_feed_subscriptions();
      recs_total += exp.peer(u).frontend().stats().subscribes_applied;
    }
    result.recs_after_failure = recs_total - recs_at_failure;
  }
  result.recs_before_failure = recs_at_failure;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const double days = quick ? 7.0 : 35.0;

  std::printf("=== E4: Centralized vs distributed Reef (paper §3/§4) ===\n");
  std::printf("workload: 5 users, %.0f days; analyzer killed at 60%% of "
              "horizon%s\n\n",
              days, quick ? "  [--quick]" : "");

  const RunResult central =
      run(reef::workload::ReefExperiment::Mode::kCentralized, days, true);
  const RunResult distributed =
      run(reef::workload::ReefExperiment::Mode::kDistributed, days, true);

  std::printf("  %-44s %14s %14s\n", "metric", "centralized", "distributed");
  std::printf("  %s\n", std::string(74, '-').c_str());
  std::printf("  %-44s %14s %14s\n", "attention bytes leaving user hosts",
              with_commas(central.attention_bytes).c_str(),
              with_commas(distributed.attention_bytes).c_str());
  std::printf("  %-44s %14s %14s\n", "recommendation push bytes",
              with_commas(central.recommendation_bytes).c_str(),
              with_commas(distributed.recommendation_bytes).c_str());
  std::printf("  %-44s %14s %14s\n", "peer gossip bytes",
              with_commas(central.gossip_bytes).c_str(),
              with_commas(distributed.gossip_bytes).c_str());
  std::printf("  %-44s %14s %14s\n", "crawler re-fetch bytes (server side)",
              with_commas(central.crawl_bytes).c_str(),
              with_commas(distributed.crawl_bytes).c_str());
  std::printf("  %-44s %14s %14s\n", "pages parsed from browser cache",
              with_commas(central.cache_parsed).c_str(),
              with_commas(distributed.cache_parsed).c_str());
  std::printf("  %-44s %14s %14s\n", "attention DB at central server (bytes)",
              with_commas(central.server_storage).c_str(),
              with_commas(distributed.server_storage).c_str());
  std::printf("  %-44s %14s %14s\n", "active feed subscriptions (all users)",
              with_commas(central.subscriptions).c_str(),
              with_commas(distributed.subscriptions).c_str());

  std::printf("\n  failure injection (analysis tier dies at day %.0f):\n",
              days * 0.6);
  std::printf("    centralized: %s recs before, %s after "
              "(server was the single point of failure)\n",
              with_commas(central.recs_before_failure).c_str(),
              with_commas(central.recs_after_failure).c_str());
  std::printf("    distributed: %s subscriptions before, %s after "
              "(only the dead peer stops)\n",
              with_commas(distributed.recs_before_failure).c_str(),
              with_commas(distributed.recs_after_failure).c_str());
  return 0;
}
