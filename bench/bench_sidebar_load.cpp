// Ablation of the two volume-control mechanisms (DESIGN.md decision #5 and
// the §3.2 extension): the closed unsubscription loop and attention-based
// update filtering. The paper's motivation: "we still found enough feeds
// to overwhelm any user with updates".
//
// Three configurations over the same distributed workload:
//   A  no volume control (subscribe-only)
//   B  closed loop (ignored feeds unsubscribed automatically)   [default]
//   C  closed loop + update filter (irrelevant items suppressed)
//
// Reported: sidebar arrivals per user-day, how relevant they were (mean
// user-interest of the events' source sites), and subscriptions at end.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "workload/driver.h"

namespace {

using namespace reef;

struct Outcome {
  double displayed_per_day = 0.0;
  double mean_interest = 0.0;
  std::size_t subscriptions = 0;
  std::uint64_t suppressed = 0;
  std::uint64_t unsubscribed = 0;
};

Outcome run(bool closed_loop, double filter_score, double days) {
  workload::ReefExperiment::Config config;
  config.mode = workload::ReefExperiment::Mode::kDistributed;
  config.seed = 2006;
  config.browsing.days = days;
  if (!closed_loop) {
    // Effectively disable automatic unsubscription.
    config.peer.topic.min_deliveries_for_unsub = ~0ULL;
  }
  config.peer.update_filter.min_score = filter_score;
  workload::ReefExperiment exp(config);

  // Track the interest level of every event that reaches a sidebar by
  // sampling sidebars right before the user behaviour consumes them.
  exp.run();

  Outcome outcome;
  double interest_total = 0.0;
  std::uint64_t displayed = 0;
  for (std::size_t u = 0; u < exp.peer_count(); ++u) {
    auto& frontend = exp.frontend(u);
    const auto& stats = frontend.stats();
    displayed += stats.events_received - frontend.suppressed_by_filter();
    outcome.suppressed += frontend.suppressed_by_filter();
    outcome.unsubscribed += stats.unsubscribes_applied;
    outcome.subscriptions += frontend.active_feed_subscriptions();
    // Mean interest of what remains in the sidebar (proxy for displayed
    // relevance; consumed entries were clicked because they were already
    // interesting).
    for (const auto& entry : frontend.sidebar()) {
      if (const pubsub::Value* site = entry.event.find("site");
          site != nullptr && site->is_string()) {
        if (const web::Site* s = exp.web().find_site(site->as_string())) {
          interest_total += web::TopicMixture::similarity(
              exp.users()[u].interests, s->topics);
          ++outcome.displayed_per_day;  // reuse as counter, fixed below
        }
      }
    }
  }
  const double sampled = outcome.displayed_per_day;
  outcome.mean_interest = sampled > 0 ? interest_total / sampled : 0.0;
  outcome.displayed_per_day =
      static_cast<double>(displayed) /
      (days * static_cast<double>(exp.peer_count()));
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const double days = quick ? 7.0 : 28.0;

  std::printf("=== Sidebar load management ablation (§3.2 extension) ===\n");
  std::printf("distributed Reef, 5 users, %.0f days\n\n", days);
  std::printf("  %-34s %12s %12s %10s %10s %8s\n", "configuration",
              "events/day", "interest", "subs", "suppressed", "unsubs");
  std::printf("  %s\n", std::string(92, '-').c_str());

  struct Row {
    const char* label;
    bool closed_loop;
    double filter;
  };
  double filter_score = 18.0;
  if (const char* env = std::getenv("REEF_FILTER_SCORE")) {
    filter_score = std::atof(env);
  }
  const Row rows[] = {
      {"A: subscribe-only", false, 0.0},
      {"B: + closed unsubscription loop", true, 0.0},
      {"C: + attention update filter", true, filter_score},
  };
  for (const Row& row : rows) {
    const Outcome outcome = run(row.closed_loop, row.filter, days);
    std::printf("  %-34s %12.1f %12.3f %10zu %10llu %8llu\n", row.label,
                outcome.displayed_per_day, outcome.mean_interest,
                outcome.subscriptions,
                static_cast<unsigned long long>(outcome.suppressed),
                static_cast<unsigned long long>(outcome.unsubscribed));
  }
  std::printf("\n  each mechanism trims sidebar volume while holding (or "
              "raising) the mean relevance of what is shown.\n");
  return 0;
}
