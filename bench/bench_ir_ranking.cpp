// E8 — §3.3 footnote 1 ablation: term-selection formulas.
//
// The paper chose "a modified version of Robertson's Offer Weight ...
// which integrates the term frequency measure". This bench runs the E2
// workload with three selectors — raw TF, classic Offer Weight, and the
// TF-integrated Offer Weight — plus a BM25 parameter sweep, showing why
// the paper's choice wins.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "ir/metrics.h"
#include "reef/content_recommender.h"
#include "util/strings.h"
#include "workload/browsing.h"
#include "workload/video_archive.h"

namespace {

using namespace reef;

struct Setup {
  web::TopicModel topics;
  web::SyntheticWeb web;
  workload::BrowsingGenerator browsing;
  workload::VideoArchive archive;
  std::vector<std::vector<std::string>> user_pages;
  std::vector<std::vector<std::string>> reference_pages;
  std::vector<bool> relevant;
  std::vector<std::size_t> airing;

  explicit Setup(std::uint64_t seed, std::size_t pages)
      : topics(topic_config(seed)),
        web(topics, web_config(seed)),
        browsing(web, browsing_config(seed)),
        archive(topics, archive_config(seed)) {
    const auto trace =
        browsing.generate_single_user_trace(pages, 42.0, false);
    for (const auto& visit : trace) {
      if (const auto page = web.fetch(visit.uri);
          page && !page->terms.empty()) {
        user_pages.push_back(page->terms);
      }
    }
    util::Rng rng(seed ^ 0x4ef0);
    const auto& sites = web.content_sites();
    for (int i = 0; i < 3000; ++i) {
      const web::Site& site = web.site(sites[rng.index(sites.size())]);
      if (const auto page = web.fetch(web.page_uri(site, rng.index(30)));
          page && !page->terms.empty()) {
        reference_pages.push_back(page->terms);
      }
    }
    const auto scores = archive.interest_scores(
        browsing.users()[0].interests, 1.2, seed ^ 0x6e0d);
    relevant = workload::VideoArchive::relevant_set(scores, 0.25);
    airing = archive.airing_order();
  }

  static web::TopicModel::Config topic_config(std::uint64_t seed) {
    web::TopicModel::Config config;
    config.seed = seed ^ 0x7091c;
    return config;
  }
  static web::SyntheticWeb::Config web_config(std::uint64_t seed) {
    web::SyntheticWeb::Config config;
    config.seed = seed ^ 0x3eb;
    return config;
  }
  static workload::BrowsingGenerator::Config browsing_config(
      std::uint64_t seed) {
    workload::BrowsingGenerator::Config config;
    config.users = 1;
    config.seed = seed ^ 0xb205;
    return config;
  }
  static workload::VideoArchive::Config archive_config(std::uint64_t seed) {
    workload::VideoArchive::Config config;
    config.seed = seed ^ 0x51de0;
    return config;
  }

  double improvement(ir::TermSelector selector, std::size_t n,
                     ir::Bm25Params params) const {
    core::ContentRecommender::Config config;
    config.selector = selector;
    config.bm25 = params;
    core::ContentRecommender rec(config);
    for (const auto& page : user_pages) rec.add_page(0, page);
    for (const auto& page : reference_pages) rec.add_page(1, page);
    const auto ranked = rec.rank_archive(0, archive.corpus(), n);
    std::vector<std::size_t> order;
    order.reserve(ranked.size());
    for (const auto& r : ranked) order.push_back(r.index);
    return ir::front_improvement(order, airing, relevant, 100);
  }
};

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const std::size_t pages = quick ? 1500 : 10000;
  const std::vector<std::uint64_t> seeds =
      quick ? std::vector<std::uint64_t>{1}
            : std::vector<std::uint64_t>{1, 2, 3};

  std::printf("=== E8: Term-selection ablation (paper §3.3 fn. 1) ===\n");
  std::printf("E2 workload, front=100, N in {5, 30, 100}; mean over %zu "
              "seed(s)%s\n\n",
              seeds.size(), quick ? "  [--quick]" : "");

  std::vector<std::unique_ptr<Setup>> setups;
  for (const auto seed : seeds) {
    setups.push_back(std::make_unique<Setup>(seed, pages));
  }

  const ir::Bm25Params default_params;
  std::printf("  %-20s %12s %12s %12s\n", "selector", "N=5", "N=30",
              "N=100");
  std::printf("  %s\n", std::string(60, '-').c_str());
  for (const auto selector :
       {ir::TermSelector::kRawTf, ir::TermSelector::kOfferWeight,
        ir::TermSelector::kTfOfferWeight}) {
    double at5 = 0;
    double at30 = 0;
    double at100 = 0;
    for (const auto& setup : setups) {
      at5 += setup->improvement(selector, 5, default_params);
      at30 += setup->improvement(selector, 30, default_params);
      at100 += setup->improvement(selector, 100, default_params);
    }
    const auto k = static_cast<double>(setups.size());
    std::printf("  %-20s %+11.1f%% %+11.1f%% %+11.1f%%\n",
                ir::term_selector_name(selector), at5 / k * 100,
                at30 / k * 100, at100 / k * 100);
  }

  std::printf("\n  BM25 parameter sweep (tf-offer-weight, N=30):\n");
  std::printf("  %8s %8s %14s\n", "k1", "b", "improvement");
  std::printf("  %s\n", std::string(34, '-').c_str());
  for (const double k1 : {0.6, 1.2, 2.0}) {
    for (const double b : {0.0, 0.75}) {
      double total = 0;
      for (const auto& setup : setups) {
        total += setup->improvement(ir::TermSelector::kTfOfferWeight, 30,
                                    ir::Bm25Params{k1, b});
      }
      std::printf("  %8.1f %8.2f %+13.1f%%\n", k1, b,
                  total / static_cast<double>(setups.size()) * 100);
    }
  }
  return 0;
}
