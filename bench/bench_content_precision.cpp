// E2 — §3.3 content-based subscriptions: precision vs. number of query
// terms.
//
// One test user browses >10,000 pages over six weeks; the top-N terms of
// their history (modified Offer Weight, TF-integrated) form a query that
// BM25-ranks a 500-story video-news archive. We measure the relative
// improvement in precision-at-front over the airing order, sweeping N
// across the paper's range [5, 500].
//
// Paper's reported points: +12% at N=5, peak +34% at N=30, improvement
// positive "regardless of the number of terms used".
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "ir/metrics.h"
#include "reef/content_recommender.h"
#include "util/strings.h"
#include "workload/browsing.h"
#include "workload/calibration.h"
#include "workload/video_archive.h"

namespace {

struct Workload {
  reef::web::TopicModel topics;
  reef::web::SyntheticWeb web;
  reef::workload::BrowsingGenerator browsing;
  reef::workload::VideoArchive archive;
  reef::core::ContentRecommender recommender;
  std::vector<double> truth_scores;
  std::vector<bool> relevant;
  std::vector<std::size_t> airing;

  static constexpr reef::attention::UserId kUser = 0;
  static constexpr reef::attention::UserId kReference = 1;

  explicit Workload(std::uint64_t seed, std::size_t pages, double rater_noise,
                    double relevant_fraction)
      : topics(topic_config(seed)),
        web(topics, web_config(seed)),
        browsing(web, browsing_config(seed)),
        archive(topics, archive_config(seed)) {
    // The test user's six weeks of browsing.
    const auto trace = browsing.generate_single_user_trace(
        pages, reef::workload::ContentTargets{}.days, /*with_ads=*/false);
    for (const auto& visit : trace) {
      if (const auto page = web.fetch(visit.uri); page && !page->terms.empty()) {
        recommender.add_page(kUser, page->terms);
      }
    }
    // Reference collection for collection statistics (the server's view of
    // "general language"): pages sampled uniformly from the whole Web.
    reef::util::Rng rng(seed ^ 0x4ef0);
    const auto& sites = web.content_sites();
    for (int i = 0; i < 3000; ++i) {
      const reef::web::Site& site = web.site(sites[rng.index(sites.size())]);
      const auto uri = web.page_uri(site, rng.index(30));
      if (const auto page = web.fetch(uri); page && !page->terms.empty()) {
        recommender.add_page(kReference, page->terms);
      }
    }
    // Ground truth: the user ranked the 500 stories by interest.
    truth_scores = archive.interest_scores(browsing.users()[0].interests,
                                           rater_noise, seed ^ 0x6e0d);
    relevant = reef::workload::VideoArchive::relevant_set(truth_scores,
                                                          relevant_fraction);
    airing = archive.airing_order();
  }

  static reef::web::TopicModel::Config topic_config(std::uint64_t seed) {
    reef::web::TopicModel::Config config;
    config.seed = seed ^ 0x7091c;
    return config;
  }
  static reef::web::SyntheticWeb::Config web_config(std::uint64_t seed) {
    reef::web::SyntheticWeb::Config config;
    config.seed = seed ^ 0x3eb;
    return config;
  }
  static reef::workload::BrowsingGenerator::Config browsing_config(
      std::uint64_t seed) {
    reef::workload::BrowsingGenerator::Config config;
    config.users = 1;
    config.seed = seed ^ 0xb205;
    return config;
  }
  static reef::workload::VideoArchive::Config archive_config(
      std::uint64_t seed) {
    reef::workload::VideoArchive::Config config;
    config.stories = reef::workload::ContentTargets{}.stories;
    config.seed = seed ^ 0x51de0;
    return config;
  }

  /// P@front of the top-n query ranking and of the airing-order baseline.
  std::pair<double, double> precision_at(std::size_t n,
                                         std::size_t front) const {
    const auto ranked = recommender.rank_archive(kUser, archive.corpus(), n);
    std::vector<std::size_t> order;
    order.reserve(ranked.size());
    for (const auto& r : ranked) order.push_back(r.index);
    return {reef::ir::precision_at_k(order, relevant, front),
            reef::ir::precision_at_k(airing, relevant, front)};
  }
};

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const reef::workload::ContentTargets targets;
  const std::size_t pages = quick ? 1500 : targets.pages;
  const std::size_t front = 100;  // "the front": top 20% of 500 stories
  // Rater noise: how loosely the user's explicit interest ranking follows
  // their browsing topics (calibrated so the peak improvement lands near
  // the paper's +34%; override with REEF_RATER_NOISE for sensitivity runs).
  double rater_noise = 1.2;
  if (const char* env = std::getenv("REEF_RATER_NOISE")) {
    rater_noise = std::atof(env);
  }
  const double relevant_fraction = 0.25;

  std::printf("=== E2: Content-based subscriptions (paper §3.3) ===\n");
  std::printf(
      "workload: 1 user, %zu pages, %.0f days; archive %zu stories; "
      "front=%zu; selector=tf-offer-weight%s\n\n",
      pages, targets.days, targets.stories, front, quick ? "  [--quick]" : "");

  const std::vector<std::size_t> sweep{5,  10,  20,  30,  50, 75,
                                       100, 150, 200, 300, 500};
  // Average over several seeds: the paper had one user; we report the mean
  // trajectory plus the per-seed range so the shape is not a seed artifact.
  const std::vector<std::uint64_t> seeds =
      quick ? std::vector<std::uint64_t>{1} :
              std::vector<std::uint64_t>{1, 2, 3, 4, 5};

  // Pooled precision across seeds: mean P@front of the query ranking vs
  // mean P@front of the airing order (ratio of means, which does not blow
  // up on individual low-baseline draws the way mean-of-ratios does).
  std::vector<double> query_precision(sweep.size(), 0.0);
  double baseline_precision = 0.0;
  for (const std::uint64_t seed : seeds) {
    Workload workload(seed, pages, rater_noise, relevant_fraction);
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const auto [ours, base] = workload.precision_at(sweep[i], front);
      query_precision[i] += ours;
      if (i == 0) baseline_precision += base;
    }
  }
  const auto seed_count = static_cast<double>(seeds.size());
  for (auto& p : query_precision) p /= seed_count;
  baseline_precision /= seed_count;

  std::printf("  %6s %14s %14s %14s\n", "N", "paper", "improvement",
              "P@front");
  std::printf("  %s\n", std::string(54, '-').c_str());
  double best = -1e9;
  std::size_t best_n = 0;
  bool all_positive = true;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const double improvement =
        (query_precision[i] - baseline_precision) / baseline_precision;
    if (improvement > best) {
      best = improvement;
      best_n = sweep[i];
    }
    if (improvement <= 0) all_positive = false;
    std::string paper = "-";
    if (sweep[i] == 5) paper = "+12%";
    if (sweep[i] == 30) paper = "+34% (peak)";
    std::printf("  %6zu %14s %+13.1f%% %14.3f\n", sweep[i], paper.c_str(),
                improvement * 100, query_precision[i]);
  }
  std::printf("  (airing-order baseline P@%zu = %.3f)\n", front,
              baseline_precision);
  std::printf(
      "\n  peak: +%.1f%% at N=%zu (paper: +34%% at N=30); improvement "
      "positive at every N: %s\n",
      best * 100, best_n, all_positive ? "yes" : "NO");
  return 0;
}
