// E6 — §3.2/§5.3: push-proxy polling amortization.
//
// The paper deploys subscriptions at WAIF FeedEvents proxies because
// "current implementations rely on direct connections between clients and
// the server, so frequent pulling from many users strains network and
// server resources" (Liu et al. [13]). This bench sweeps the subscriber
// count and shows the proxy's feed-side traffic staying flat while direct
// per-client polling grows linearly.
#include <cstdio>
#include <memory>
#include <vector>

#include "feeds/direct_poller.h"
#include "feeds/feed_events_proxy.h"
#include "pubsub/client.h"
#include "util/strings.h"
#include "workload/driver.h"

namespace {

struct FeedWorld {
  reef::web::TopicModel topics;
  reef::web::SyntheticWeb web;
  reef::sim::Simulator sim;
  reef::sim::Network net;
  reef::feeds::FeedService feeds;

  FeedWorld()
      : web(topics, web_config()), net(sim, net_config()),
        feeds(web, reef::feeds::FeedService::Config{}) {}

  static reef::web::SyntheticWeb::Config web_config() {
    reef::web::SyntheticWeb::Config config;
    config.content_sites = 200;
    config.ad_sites = 10;
    config.spam_sites = 0;
    config.feed_site_fraction = 1.0;
    return config;
  }
  static reef::sim::Network::Config net_config() {
    reef::sim::Network::Config config;
    config.default_latency = reef::sim::kMillisecond;
    config.jitter_fraction = 0.0;
    return config;
  }
};

struct Sample {
  std::uint64_t polls = 0;
  std::uint64_t bytes = 0;
};

Sample run_proxy(std::size_t users, std::size_t feeds_per_user,
                 reef::sim::Time horizon) {
  FeedWorld w;
  reef::pubsub::Broker broker(w.sim, w.net, "b0");
  reef::feeds::FeedEventsProxy::Config config;
  config.poll_interval = 30 * reef::sim::kMinute;
  reef::feeds::FeedEventsProxy proxy(w.sim, w.net, w.feeds, broker, config);

  std::vector<std::unique_ptr<reef::pubsub::Client>> clients;
  for (std::size_t u = 0; u < users; ++u) {
    auto client = std::make_unique<reef::pubsub::Client>(
        w.sim, w.net, "u" + std::to_string(u));
    client->connect(broker);
    for (std::size_t f = 0; f < feeds_per_user; ++f) {
      const std::string& url = w.feeds.feed_urls()[f];
      client->subscribe(reef::feeds::feed_filter(url));
      proxy.watch(url);  // one watch registration per (user, feed)
    }
    clients.push_back(std::move(client));
  }
  w.feeds.reset_stats();
  w.sim.run_until(horizon);
  return Sample{w.feeds.stats().polls, w.feeds.stats().bytes_served};
}

Sample run_direct(std::size_t users, std::size_t feeds_per_user,
                  reef::sim::Time horizon) {
  FeedWorld w;
  std::vector<std::unique_ptr<reef::feeds::DirectPoller>> pollers;
  for (std::size_t u = 0; u < users; ++u) {
    auto poller = std::make_unique<reef::feeds::DirectPoller>(
        w.sim, w.feeds, 30 * reef::sim::kMinute);
    for (std::size_t f = 0; f < feeds_per_user; ++f) {
      poller->subscribe(w.feeds.feed_urls()[f]);
    }
    pollers.push_back(std::move(poller));
  }
  w.feeds.reset_stats();
  w.sim.run_until(horizon);
  return Sample{w.feeds.stats().polls, w.feeds.stats().bytes_served};
}

}  // namespace

int main() {
  const reef::sim::Time horizon = 7 * reef::sim::kDay;
  const std::size_t feeds_per_user = 20;

  std::printf("=== E6: Proxy-amortized vs direct feed polling "
              "(paper §3.2/§5.3) ===\n");
  std::printf("workload: %zu shared feeds per user, 30-min poll interval, "
              "7 days\n\n",
              feeds_per_user);
  std::printf("  %6s %16s %16s %16s %16s %8s\n", "users", "direct polls",
              "proxy polls", "direct MB", "proxy MB", "saving");
  std::printf("  %s\n", std::string(84, '-').c_str());
  for (const std::size_t users : {1, 2, 5, 10, 20, 50}) {
    const Sample direct = run_direct(users, feeds_per_user, horizon);
    const Sample proxy = run_proxy(users, feeds_per_user, horizon);
    std::printf("  %6zu %16s %16s %16.1f %16.1f %7.1fx\n", users,
                reef::util::with_commas(direct.polls).c_str(),
                reef::util::with_commas(proxy.polls).c_str(),
                static_cast<double>(direct.bytes) / 1e6,
                static_cast<double>(proxy.bytes) / 1e6,
                static_cast<double>(direct.polls) /
                    static_cast<double>(proxy.polls));
  }
  std::printf("\n  proxy feed-side traffic is independent of the subscriber "
              "count; direct polling scales linearly.\n");
  return 0;
}
