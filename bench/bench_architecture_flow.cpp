// E5 — Figures 1 and 2: the architecture dataflows, step by step.
//
// Replays a small scripted scenario through both deployments and prints
// the message counts on each numbered arrow of the paper's figures:
//
//   Fig. 1 (centralized):  1. Attention   user host -> server
//                          2. Sub/Unsub   server -> frontend (recommend)
//                          3. Sub/Unsub   frontend -> pub/sub substrate
//                          4. Events      substrate -> frontend
//   Fig. 2 (distributed):  1. Sub/Unsub   frontend -> pub/sub substrate
//                          2. Events      substrate -> frontend
//                          (attention and recommendations stay on-host)
#include <cstdio>
#include <string>

#include "workload/driver.h"

namespace {

void report(const char* title, reef::workload::ReefExperiment& exp) {
  const auto& by_type = exp.network().messages_by_type();
  const auto get = [&](std::string_view type) {
    return by_type.get(std::string(type));
  };
  // Event-path counts use logical units so batch messages (pubbatch /
  // deliverbatch, the default since per-tick coalescing) contribute one
  // per event they carry, not one per wire message.
  const auto& by_units = exp.network().units_by_type();
  const auto units = [&](std::string_view type) {
    return by_units.get(std::string(type));
  };
  std::printf("%s\n", title);
  std::printf("    attention batches (1, Fig.1)        %8llu\n",
              static_cast<unsigned long long>(
                  get(reef::attention::kTypeAttentionBatch)));
  std::printf("    recommendation pushes (2, Fig.1)    %8llu\n",
              static_cast<unsigned long long>(
                  get(reef::core::kTypeRecommendation)));
  std::printf("    client sub/unsub ops (3 / 1)        %8llu\n",
              static_cast<unsigned long long>(
                  get(reef::pubsub::kTypeClientSubscribe) +
                  get(reef::pubsub::kTypeClientUnsubscribe)));
  std::printf("    proxy watch/unwatch                 %8llu\n",
              static_cast<unsigned long long>(
                  get(reef::feeds::kTypeWatchFeed) +
                  get(reef::feeds::kTypeUnwatchFeed)));
  std::printf("    event deliveries (4 / 2)            %8llu\n",
              static_cast<unsigned long long>(
                  units(reef::pubsub::kTypeDeliver) +
                  units(reef::pubsub::kTypeDeliverBatch)));
  std::printf("    publications into substrate         %8llu\n",
              static_cast<unsigned long long>(
                  units(reef::pubsub::kTypePublish) +
                  units(reef::pubsub::kTypePublishBatch)));
  std::printf("    peer gossip                         %8llu\n",
              static_cast<unsigned long long>(get(reef::core::kTypeGossip)));
  std::printf("    closed-loop feedback reports        %8llu\n",
              static_cast<unsigned long long>(
                  get(reef::core::kTypeFeedback)));
}

reef::workload::ReefExperiment::Config scenario(
    reef::workload::ReefExperiment::Mode mode) {
  reef::workload::ReefExperiment::Config config;
  config.mode = mode;
  config.seed = 7;
  config.browsing.users = 3;
  config.browsing.days = 5;
  config.server.analysis_interval = 30 * reef::sim::kMinute;
  config.proxy.poll_interval = reef::sim::kHour;
  // Group peers permissively so Fig. 2's gossip arrow is visible.
  config.peer_group_threshold = 0.05;
  config.peer.gossip_interval = 6 * reef::sim::kHour;
  return config;
}

}  // namespace

int main() {
  std::printf("=== E5: Architecture dataflow (paper Fig. 1 / Fig. 2) ===\n");
  std::printf("workload: 3 users, 5 days, seed 7\n\n");
  {
    reef::workload::ReefExperiment exp(
        scenario(reef::workload::ReefExperiment::Mode::kCentralized));
    exp.run();
    report("  Fig. 1 centralized:", exp);
    std::printf("    -> attention flows to the server; the server is never "
                "on the event path\n\n");
  }
  {
    reef::workload::ReefExperiment exp(
        scenario(reef::workload::ReefExperiment::Mode::kDistributed));
    exp.run();
    report("  Fig. 2 distributed:", exp);
    std::printf("    -> zero attention/recommendation traffic: analysis "
                "stayed on the user's host\n");
  }
  return 0;
}
