// IR toolkit microbenchmarks: the text-processing budget behind the
// attention pipeline (tokenize + stem every crawled page) and the
// recommendation path (term selection + BM25 ranking). These bound how
// much server capacity the centralized design needs per crawled page —
// the scaling cost the paper's §3 worries about.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "ir/bm25.h"
#include "ir/term_weighting.h"
#include "ir/tokenizer.h"
#include "web/topic_model.h"

namespace {

using namespace reef;

std::string make_page_text(std::size_t words, std::uint64_t seed) {
  web::TopicModel model;
  util::Rng rng(seed);
  const auto mixture = model.random_mixture(3, rng);
  const auto terms = model.generate_terms(mixture, words, 0.4, rng);
  std::string text;
  for (const auto& t : terms) {
    text += t;
    text += ' ';
  }
  return text;
}

void bm_tokenize(benchmark::State& state) {
  const std::string text = make_page_text(300, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ir::tokenize(text));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(bm_tokenize);

void bm_analyze_full_pipeline(benchmark::State& state) {
  const std::string text = make_page_text(300, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ir::analyze(text));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(bm_analyze_full_pipeline);

void bm_porter_stem(benchmark::State& state) {
  const std::vector<std::string> words = {
      "relational", "conditional",  "generalizations", "hopefulness",
      "electrical", "formalities",  "disagreements",   "trouble",
      "happy",      "maximization", "operators",       "activated"};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ir::porter_stem(words[i]));
    i = (i + 1) % words.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_porter_stem);

void bm_select_terms(benchmark::State& state) {
  const auto pages = static_cast<std::size_t>(state.range(0));
  web::TopicModel model;
  util::Rng rng(3);
  ir::TermStatsAccumulator user;
  ir::TermStatsAccumulator background;
  const auto mixture = model.random_mixture(3, rng);
  for (std::size_t p = 0; p < pages; ++p) {
    user.add_document(model.generate_terms(mixture, 250, 0.4, rng));
    background.add_document(
        model.generate_terms(model.random_mixture(2, rng), 250, 0.4, rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ir::select_terms(
        background, user, ir::TermSelector::kTfOfferWeight, 30));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["vocab"] = static_cast<double>(user.vocabulary_size());
}
BENCHMARK(bm_select_terms)->Arg(100)->Arg(1000)->Arg(5000);

void bm_bm25_rank_archive(benchmark::State& state) {
  const auto stories = static_cast<std::size_t>(state.range(0));
  web::TopicModel model;
  util::Rng rng(4);
  ir::Corpus archive;
  for (std::size_t s = 0; s < stories; ++s) {
    archive.add(ir::Document::from_terms(
        s, model.generate_terms(model.random_mixture(2, rng), 150, 0.35,
                                rng)));
  }
  std::vector<std::string> query;
  const auto mixture = model.random_mixture(3, rng);
  for (int i = 0; i < 30; ++i) {
    query.push_back(model.sample_topic_word(mixture.components[0].first,
                                            rng));
  }
  const ir::Bm25 bm25(archive);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bm25.rank(query));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stories));
}
BENCHMARK(bm_bm25_rank_archive)->Arg(500)->Arg(5000);

}  // namespace

BENCHMARK_MAIN();
