// E1 — §3.2 topic-based subscriptions: browsing-history statistics.
//
// Reproduces the paper's ten-week, five-user experiment: generates the
// browsing trace, runs the full centralized Reef pipeline over it
// (attention upload -> crawl -> classify -> feed discovery ->
// recommendations), and prints the paper's reported numbers next to ours.
//
// Note: the paper's server counts are mutually inconsistent (1713 ad + 807
// once + 906 remaining = 3426 != the stated 2528 total); we calibrate to
// the breakdown and report the stated total alongside. See EXPERIMENTS.md.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "attention/log_stats.h"
#include "util/strings.h"
#include "workload/calibration.h"
#include "workload/driver.h"

namespace {

using reef::util::with_commas;

void row(const char* label, const std::string& paper,
         const std::string& measured) {
  std::printf("  %-40s %14s %14s\n", label, paper.c_str(), measured.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  // --quick shrinks the run for smoke-testing the harness.
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  reef::workload::PaperTargets targets;
  reef::workload::ReefExperiment::Config config;
  config.mode = reef::workload::ReefExperiment::Mode::kCentralized;
  config.seed = 2006;
  config.browsing.users = targets.users;
  config.browsing.days = quick ? 10.0 : targets.days;
  config.server.analysis_interval = 30 * reef::sim::kMinute;
  config.proxy.poll_interval = 30 * reef::sim::kMinute;
  // §3.2 measured direct per-user discovery only (collaborative
  // recommendations are §4/§5.2 features, exercised by E4/E5).
  config.server.collaborative_interval = 0;

  std::printf("=== E1: Topic-based subscriptions (paper §3.2) ===\n");
  std::printf("workload: %zu users, %.0f days, seed %llu%s\n\n",
              config.browsing.users, config.browsing.days,
              static_cast<unsigned long long>(config.seed),
              quick ? "  [--quick]" : "");

  reef::workload::ReefExperiment exp(config);
  exp.run();

  const auto stats = exp.trace_stats();
  const std::size_t remaining = stats.remaining_servers(2);
  const std::size_t feeds_found = exp.feeds_on_remaining_servers(2);

  std::printf("  %-40s %14s %14s\n", "metric", "paper", "measured");
  std::printf("  %s\n", std::string(70, '-').c_str());
  row("total requests", ">" + with_commas(targets.total_requests),
      with_commas(stats.total_requests()));
  row("distinct servers (stated; see note)",
      with_commas(targets.stated_distinct_servers),
      with_commas(stats.distinct_servers()));
  row("ad request share",
      reef::util::format_double(targets.ad_request_fraction * 100, 0) + "%",
      reef::util::format_double(stats.ad_request_fraction() * 100, 1) + "%");
  row("distinct ad servers", with_commas(targets.ad_servers),
      with_commas(stats.ad_servers()));
  row("non-ad servers visited once", with_commas(targets.visited_once),
      with_commas(stats.non_ad_visited_once()));
  row("remaining servers (non-ad, 2+ visits)",
      with_commas(targets.remaining_servers), with_commas(remaining));
  row("non-ad servers total (807+906=1,713)", "1,713",
      with_commas(stats.non_ad_servers()));
  row("distinct RSS feeds on remaining",
      with_commas(targets.feeds_found), with_commas(feeds_found));

  // Pipeline-side numbers (what the running system actually did).
  auto* server = exp.server();
  std::printf("\n  pipeline counters:\n");
  std::printf("    clicks stored at server        %12s\n",
              with_commas(server->stats().clicks_stored).c_str());
  std::printf("    pages crawled                  %12s\n",
              with_commas(server->crawler().stats().fetched).c_str());
  std::printf("    crawls skipped (flagged hosts) %12s\n",
              with_commas(server->crawler().stats().skipped_flagged).c_str());
  std::printf("    crawls skipped (already seen)  %12s\n",
              with_commas(
                  server->crawler().stats().skipped_duplicate).c_str());
  std::printf("    subscribe recommendations sent %12s\n",
              with_commas(server->stats().recommendations_sent).c_str());
  std::size_t active = 0;
  std::uint64_t events = 0;
  for (std::size_t u = 0; u < exp.host_count(); ++u) {
    active += exp.frontend(u).active_feed_subscriptions();
    events += exp.frontend(u).stats().events_received;
  }
  std::printf("    active feed subscriptions      %12s\n",
              with_commas(active).c_str());
  std::printf("    feed events delivered          %12s\n",
              with_commas(events).c_str());
  std::printf("    feeds watched at proxy         %12s\n",
              with_commas(exp.proxy().watched_count()).c_str());
  return 0;
}
