// E7a — substrate viability: event-matching throughput.
//
// google-benchmark microbenchmarks of the matching engines under a
// Reef-like filter population (feed-equality subscriptions plus
// content/range filters), sweeping the subscription-table size. Engines
// are selected by registry name, so a new engine shows up here without
// code changes. The batch benchmarks compare the amortized
// Matcher::match_batch path against a per-event match loop over the same
// events — the win is the broker's per-tick coalescing made visible.
//
// `--smoke` (used by CI) skips google-benchmark and instead runs a quick
// cross-engine correctness pass, a batch-vs-loop timing, a fixed-ratio
// anchor-index-vs-brute-force speedup floor, a bitset-vs-anchor-index
// floor on the dense/high-overlap workload, anchor-index and bitset
// floors over brute force on the eq-free range/prefix workload and the
// suffix/contains/in-set workload, and a
// zero-copy check on the pre-filtered sub-batch path, so the bench
// binary can't bit-rot — and the interned hot path can't silently
// regress — without failing the workflow.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "pubsub/matcher.h"
#include "pubsub/matcher_registry.h"
#include "pubsub/sharded_matcher.h"
#include "util/rng.h"

namespace {

using namespace reef::pubsub;

/// Builds a filter population. `content_share` is the fraction of
/// substring/range filters; the rest are feed-equality subscriptions
/// [stream=feed && feed=<url_i>]. Reef's live population is ~30% content
/// filters; 0% models a pure topic-subscription deployment.
std::vector<Filter> make_filters(std::size_t n, double content_share,
                                 reef::util::Rng& rng) {
  std::vector<Filter> filters;
  filters.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double kind = rng.uniform01();
    if (kind >= content_share) {
      filters.push_back(
          Filter()
              .and_(eq("stream", "feed"))
              .and_(eq("feed", "http://site" +
                                   std::to_string(rng.index(n / 2 + 1)) +
                                   ".example/f.rss")));
    } else if (kind >= content_share / 3.0) {
      filters.push_back(
          Filter()
              .and_(eq("stream", "video"))
              .and_(contains("text", "term" +
                                         std::to_string(rng.index(200)))));
    } else {
      const double lo = rng.uniform(0, 50);
      filters.push_back(Filter()
                            .and_(eq("stream", "quotes"))
                            .and_(ge("price", lo))
                            .and_(lt("price", lo + 10.0)));
    }
  }
  return filters;
}

/// Dense/high-overlap population: every filter is 2-3 equality
/// constraints drawn from a tiny vocabulary (hot x cat x tier is 48
/// combinations), so any event satisfies a large fraction of the table.
/// Candidate-driven engines drown here — each anchor bucket holds ~n/8
/// filters and every candidate pays a full Filter::matches — while the
/// bitset engine resolves ~3 index entries once and sweeps words. This is
/// the workload the bitset smoke floor pins.
std::vector<Filter> make_dense_filters(std::size_t n, reef::util::Rng& rng) {
  std::vector<Filter> filters;
  filters.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Filter f = Filter()
                   .and_(eq("hot", static_cast<std::int64_t>(rng.index(2))))
                   .and_(eq("cat", static_cast<std::int64_t>(rng.index(8))));
    if (rng.chance(0.5)) {
      f.and_(eq("tier", static_cast<std::int64_t>(rng.index(3))));
    }
    filters.push_back(std::move(f));
  }
  return filters;
}

Event make_dense_event(reef::util::Rng& rng) {
  return Event()
      .with("hot", static_cast<std::int64_t>(rng.index(2)))
      .with("cat", static_cast<std::int64_t>(rng.index(8)))
      .with("tier", static_cast<std::int64_t>(rng.index(3)))
      .with("seq", static_cast<std::int64_t>(rng.index(1000)));
}

/// Range/prefix-heavy population: no equality constraint anywhere, so
/// every filter must anchor in the sorted-bounds or prefix-pattern
/// structures (before this PR, all of these fell into the linear scan
/// list). Bounds come from a coarse grid so the bitset engine's
/// entry-level dedup is visible; bands anchor on their upper bound (kLt
/// sorts before kGe), and make_range_event draws prices from the top
/// decile of the grid, so a sorted probe touches a thin slice of the
/// table while brute force pays all n Filter::matches per event.
std::vector<Filter> make_range_filters(std::size_t n, reef::util::Rng& rng) {
  std::vector<Filter> filters;
  filters.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng.index(5)) {
      case 0:
      case 1: {  // 40%: price band [lo, lo + 80)
        const double lo = 10.0 * static_cast<double>(rng.index(100));
        filters.push_back(
            Filter().and_(ge("price", lo)).and_(lt("price", lo + 80.0)));
        break;
      }
      case 2:  // 20%: one-sided "price below threshold", double bound
        filters.push_back(Filter().and_(
            lt("price", 10.0 * static_cast<double>(rng.index(100)))));
        break;
      case 3:  // 20%: same shape with an int bound (cross-type vs the
               // double-valued events; distinct bitset entry identity)
        filters.push_back(Filter().and_(
            le("price", static_cast<std::int64_t>(10 * rng.index(100)))));
        break;
      default:  // 20%: prefix over a 400-pattern path vocabulary
        filters.push_back(Filter().and_(prefix(
            "path", "/feeds/" + std::to_string(rng.index(400)) + "/")));
        break;
    }
  }
  return filters;
}

Event make_range_event(reef::util::Rng& rng) {
  return Event()
      .with("price", 900.0 + rng.uniform(0.0, 100.0))
      .with("path", "/feeds/" + std::to_string(rng.index(400)) + "/item/" +
                        std::to_string(rng.index(50)));
}

/// Suffix/contains-heavy population: tail subscriptions (file extensions
/// and deep item tails sharing reversed-prefix structure), substring
/// subscriptions over a segment vocabulary, and a set-membership slice
/// over a small symbol universe. Before this PR every suffix/contains
/// filter sat in the linear scan list (and in-set didn't exist), so the
/// "indexed" engines were brute force on this entire shape; now suffixes
/// resolve via one binary search per live length over reversed patterns,
/// contains via a length-ordered walk, and in-set via per-member eq
/// buckets (anchor index) or shared residual postings (bitset).
std::vector<Filter> make_suffix_filters(std::size_t n, reef::util::Rng& rng) {
  std::vector<Filter> filters;
  filters.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng.index(10)) {
      case 0:
      case 1:
      case 2:
      case 3:  // 40%: extension subscriptions, ~60 distinct short tails
        filters.push_back(Filter().and_(
            suffix("file", "." + std::to_string(rng.index(60)) + "rss")));
        break;
      case 4:
      case 5:  // 20%: deep tails — long patterns ending in the same
               // extensions, so the reversed table nests them under the
               // short patterns' structure
        filters.push_back(Filter().and_(suffix(
            "file", "/item" + std::to_string(rng.index(300)) + "." +
                        std::to_string(rng.index(60)) + "rss")));
        break;
      case 6:
      case 7:
      case 8:  // 30%: substring subscriptions over a segment vocabulary
        filters.push_back(Filter().and_(contains(
            "file", "/seg" + std::to_string(rng.index(300)) + "/")));
        break;
      default: {  // 10%: set membership over 40 symbols, 2-4 members
        std::vector<Value> members;
        const std::size_t count = 2 + rng.index(3);
        for (std::size_t j = 0; j < count; ++j) {
          members.emplace_back("S" + std::to_string(rng.index(40)));
        }
        filters.push_back(Filter().and_(in_("sym", std::move(members))));
        break;
      }
    }
  }
  return filters;
}

Event make_suffix_event(reef::util::Rng& rng) {
  return Event()
      .with("file", "/srv/seg" + std::to_string(rng.index(300)) + "/item" +
                        std::to_string(rng.index(300)) + "." +
                        std::to_string(rng.index(60)) + "rss")
      .with("sym", "S" + std::to_string(rng.index(40)));
}

Event make_event(std::size_t universe, reef::util::Rng& rng) {
  const double kind = rng.uniform01();
  if (kind < 0.7) {
    return Event()
        .with("stream", "feed")
        .with("feed", "http://site" +
                          std::to_string(rng.index(universe / 2 + 1)) +
                          ".example/f.rss")
        .with("seq", static_cast<std::int64_t>(rng.index(1000)))
        .with("text", "term" + std::to_string(rng.index(200)) + " filler");
  }
  if (kind < 0.9) {
    return Event()
        .with("stream", "video")
        .with("text", "term" + std::to_string(rng.index(200)) +
                          " term" + std::to_string(rng.index(200)));
  }
  return Event()
      .with("stream", "quotes")
      .with("price", rng.uniform(0, 60));
}

std::unique_ptr<Matcher> populated_matcher(const std::string& engine,
                                           std::size_t table_size,
                                           double content_share,
                                           reef::util::Rng& rng) {
  auto matcher = make_matcher(engine);
  const auto filters = make_filters(table_size, content_share, rng);
  for (std::size_t i = 0; i < filters.size(); ++i) {
    matcher->add(i + 1, filters[i]);
  }
  return matcher;
}

// --- per-event matching, engine x table size --------------------------------

void bm_match(benchmark::State& state, const std::string& engine) {
  const auto table_size = static_cast<std::size_t>(state.range(0));
  const double content_share = static_cast<double>(state.range(1)) / 100.0;
  reef::util::Rng rng(42);
  const auto matcher =
      populated_matcher(engine, table_size, content_share, rng);
  std::vector<Event> events;
  for (int i = 0; i < 256; ++i) events.push_back(make_event(table_size, rng));

  std::size_t cursor = 0;
  std::vector<SubscriptionId> hits;
  for (auto _ : state) {
    hits.clear();
    matcher->match(events[cursor], hits);
    benchmark::DoNotOptimize(hits.data());
    cursor = (cursor + 1) % events.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["table"] = static_cast<double>(table_size);
}

// {table size, % content (substring/range) filters}
BENCHMARK_CAPTURE(bm_match, anchor_index, "anchor-index")
    ->Args({100, 0})
    ->Args({1000, 0})
    ->Args({10000, 0})
    ->Args({50000, 0})
    ->Args({1000, 30})
    ->Args({10000, 30});
BENCHMARK_CAPTURE(bm_match, counting, "counting")
    ->Args({100, 0})
    ->Args({1000, 0})
    ->Args({10000, 0})
    ->Args({1000, 30})
    ->Args({10000, 30});
BENCHMARK_CAPTURE(bm_match, bitset, "bitset")
    ->Args({100, 0})
    ->Args({1000, 0})
    ->Args({10000, 0})
    ->Args({1000, 30})
    ->Args({10000, 30});
BENCHMARK_CAPTURE(bm_match, brute_force, "brute-force")
    ->Args({100, 0})
    ->Args({1000, 0})
    ->Args({10000, 0})
    ->Args({1000, 30})
    ->Args({10000, 30});

// --- batch matching: match_batch vs a per-event loop, engine x batch size ---

void bm_match_loop(benchmark::State& state, const std::string& engine) {
  const auto table_size = static_cast<std::size_t>(state.range(0));
  const auto batch_size = static_cast<std::size_t>(state.range(1));
  reef::util::Rng rng(42);
  const auto matcher = populated_matcher(engine, table_size, 0.3, rng);
  std::vector<Event> events;
  for (int i = 0; i < 256; ++i) events.push_back(make_event(table_size, rng));

  std::size_t cursor = 0;
  std::vector<SubscriptionId> hits;
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch_size; ++i) {
      hits.clear();
      matcher->match(events[(cursor + i) % events.size()], hits);
      benchmark::DoNotOptimize(hits.data());
    }
    cursor = (cursor + batch_size) % events.size();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * batch_size));
  state.counters["batch"] = static_cast<double>(batch_size);
}

void bm_match_batch(benchmark::State& state, const std::string& engine) {
  const auto table_size = static_cast<std::size_t>(state.range(0));
  const auto batch_size = static_cast<std::size_t>(state.range(1));
  reef::util::Rng rng(42);
  const auto matcher = populated_matcher(engine, table_size, 0.3, rng);
  std::vector<Event> events;
  for (int i = 0; i < 256; ++i) events.push_back(make_event(table_size, rng));

  std::size_t cursor = 0;
  std::vector<std::vector<SubscriptionId>> hits;
  for (auto _ : state) {
    const std::size_t start = cursor % (events.size() - batch_size + 1);
    matcher->match_batch(
        std::span<const Event>(events.data() + start, batch_size), hits);
    benchmark::DoNotOptimize(hits.data());
    cursor = (cursor + batch_size) % events.size();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * batch_size));
  state.counters["batch"] = static_cast<double>(batch_size);
}

// {table size, batch size}
#define BATCH_ARGS \
  ->Args({10000, 8})->Args({10000, 32})->Args({10000, 128})
BENCHMARK_CAPTURE(bm_match_loop, anchor_index, "anchor-index") BATCH_ARGS;
BENCHMARK_CAPTURE(bm_match_batch, anchor_index, "anchor-index") BATCH_ARGS;
BENCHMARK_CAPTURE(bm_match_loop, counting, "counting") BATCH_ARGS;
BENCHMARK_CAPTURE(bm_match_batch, counting, "counting") BATCH_ARGS;
BENCHMARK_CAPTURE(bm_match_loop, bitset, "bitset") BATCH_ARGS;
BENCHMARK_CAPTURE(bm_match_batch, bitset, "bitset") BATCH_ARGS;
BENCHMARK_CAPTURE(bm_match_loop, brute_force, "brute-force")
    ->Args({2000, 32});
BENCHMARK_CAPTURE(bm_match_batch, brute_force, "brute-force")
    ->Args({2000, 32});
#undef BATCH_ARGS

// --- dense/high-overlap workload: bitset vs candidate-driven engines --------
//
// make_dense_filters above: tiny eq vocabulary, huge bucket overlap. The
// per-(table, batch) pairs put the bitset engine's word streams against
// the anchor index's candidate walks on the population shape each was
// built for the *other* side of — the Reef-like sweep above favors
// selective buckets; this one has none. CI's bench sweep picks these rows
// up via --benchmark_filter='sharded|dense|range', and run_smoke()
// enforces the bitset >= anchor-index floor on this same shape.

void bm_match_batch_dense(benchmark::State& state, const std::string& engine) {
  const auto table_size = static_cast<std::size_t>(state.range(0));
  const auto batch_size = static_cast<std::size_t>(state.range(1));
  reef::util::Rng rng(42);
  auto matcher = make_matcher(engine);
  const auto filters = make_dense_filters(table_size, rng);
  for (std::size_t i = 0; i < filters.size(); ++i) {
    matcher->add(i + 1, filters[i]);
  }
  std::vector<Event> events;
  const std::size_t universe = std::max(batch_size, std::size_t{256});
  for (std::size_t i = 0; i < universe; ++i) {
    events.push_back(make_dense_event(rng));
  }

  std::size_t cursor = 0;
  std::vector<std::vector<SubscriptionId>> hits;
  for (auto _ : state) {
    const std::size_t start = cursor % (events.size() - batch_size + 1);
    matcher->match_batch(
        std::span<const Event>(events.data() + start, batch_size), hits);
    benchmark::DoNotOptimize(hits.data());
    cursor = (cursor + batch_size) % events.size();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * batch_size));
  state.counters["batch"] = static_cast<double>(batch_size);
  state.counters["table"] = static_cast<double>(table_size);
}

// {table size, batch size}
#define DENSE_ARGS \
  ->Args({1000, 128})->Args({10000, 128})->Args({10000, 1024})
BENCHMARK_CAPTURE(bm_match_batch_dense, bitset, "bitset") DENSE_ARGS;
BENCHMARK_CAPTURE(bm_match_batch_dense, anchor_index, "anchor-index")
    DENSE_ARGS;
BENCHMARK_CAPTURE(bm_match_batch_dense, counting, "counting") DENSE_ARGS;
#undef DENSE_ARGS
BENCHMARK_CAPTURE(bm_match_batch_dense, brute_force, "brute-force")
    ->Args({1000, 128});

// --- range/prefix workload: sorted indexes vs the old scan list -------------
//
// make_range_filters above: eq-free bands, thresholds, and prefixes.
// Every one of these anchored in the linear scan list before the sorted
// indexes existed, which degenerated to brute force as the range share
// grew. CI's bench sweep picks these rows up via
// --benchmark_filter='sharded|dense|range', and run_smoke() enforces the
// anchor-index and bitset >= brute-force floors on this same shape.

void bm_match_batch_range(benchmark::State& state, const std::string& engine) {
  const auto table_size = static_cast<std::size_t>(state.range(0));
  const auto batch_size = static_cast<std::size_t>(state.range(1));
  reef::util::Rng rng(42);
  auto matcher = make_matcher(engine);
  const auto filters = make_range_filters(table_size, rng);
  for (std::size_t i = 0; i < filters.size(); ++i) {
    matcher->add(i + 1, filters[i]);
  }
  std::vector<Event> events;
  const std::size_t universe = std::max(batch_size, std::size_t{256});
  for (std::size_t i = 0; i < universe; ++i) {
    events.push_back(make_range_event(rng));
  }

  std::size_t cursor = 0;
  std::vector<std::vector<SubscriptionId>> hits;
  for (auto _ : state) {
    const std::size_t start = cursor % (events.size() - batch_size + 1);
    matcher->match_batch(
        std::span<const Event>(events.data() + start, batch_size), hits);
    benchmark::DoNotOptimize(hits.data());
    cursor = (cursor + batch_size) % events.size();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * batch_size));
  state.counters["batch"] = static_cast<double>(batch_size);
  state.counters["table"] = static_cast<double>(table_size);
}

// {table size, batch size}
#define RANGE_ARGS \
  ->Args({1000, 128})->Args({10000, 128})->Args({10000, 1024})
BENCHMARK_CAPTURE(bm_match_batch_range, anchor_index, "anchor-index")
    RANGE_ARGS;
BENCHMARK_CAPTURE(bm_match_batch_range, bitset, "bitset") RANGE_ARGS;
BENCHMARK_CAPTURE(bm_match_batch_range, counting, "counting") RANGE_ARGS;
#undef RANGE_ARGS
BENCHMARK_CAPTURE(bm_match_batch_range, brute_force, "brute-force")
    ->Args({1000, 128})
    ->Args({10000, 128});

// --- suffix/contains workload: pattern tables vs the old scan list ----------
//
// make_suffix_filters above: tail, substring, and set-membership
// subscriptions — zero eq/range/prefix constraints, so before this PR the
// whole population scanned linearly. CI's bench sweep picks these rows up
// via --benchmark_filter='sharded|dense|range|suffix', and run_smoke()
// enforces the anchor-index and bitset >= brute-force floors on this same
// shape.

void bm_match_batch_suffix(benchmark::State& state,
                           const std::string& engine) {
  const auto table_size = static_cast<std::size_t>(state.range(0));
  const auto batch_size = static_cast<std::size_t>(state.range(1));
  reef::util::Rng rng(42);
  auto matcher = make_matcher(engine);
  const auto filters = make_suffix_filters(table_size, rng);
  for (std::size_t i = 0; i < filters.size(); ++i) {
    matcher->add(i + 1, filters[i]);
  }
  std::vector<Event> events;
  const std::size_t universe = std::max(batch_size, std::size_t{256});
  for (std::size_t i = 0; i < universe; ++i) {
    events.push_back(make_suffix_event(rng));
  }

  std::size_t cursor = 0;
  std::vector<std::vector<SubscriptionId>> hits;
  for (auto _ : state) {
    const std::size_t start = cursor % (events.size() - batch_size + 1);
    matcher->match_batch(
        std::span<const Event>(events.data() + start, batch_size), hits);
    benchmark::DoNotOptimize(hits.data());
    cursor = (cursor + batch_size) % events.size();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * batch_size));
  state.counters["batch"] = static_cast<double>(batch_size);
  state.counters["table"] = static_cast<double>(table_size);
}

// {table size, batch size}
#define SUFFIX_ARGS \
  ->Args({1000, 128})->Args({10000, 128})->Args({10000, 1024})
BENCHMARK_CAPTURE(bm_match_batch_suffix, anchor_index, "anchor-index")
    SUFFIX_ARGS;
BENCHMARK_CAPTURE(bm_match_batch_suffix, bitset, "bitset") SUFFIX_ARGS;
BENCHMARK_CAPTURE(bm_match_batch_suffix, counting, "counting") SUFFIX_ARGS;
#undef SUFFIX_ARGS
BENCHMARK_CAPTURE(bm_match_batch_suffix, brute_force, "brute-force")
    ->Args({1000, 128})
    ->Args({10000, 128});

// --- zero-copy sub-batches: index-span view vs gather-by-copy ---------------
//
// The sharded pre-filter hands every shard an EventBatchView — an index
// span over the original event storage — instead of gathering a copied
// sub-batch (the PR 3 path this PR deleted). This pair quantifies the
// difference on a sparse slice (every 8th event of a 1024-event batch):
// same matching work, with and without the per-event copies.

void bm_match_batch_subview(benchmark::State& state, bool zero_copy) {
  const std::size_t table_size = 10000;
  const std::size_t batch_size = 1024;
  reef::util::Rng rng(42);
  const auto matcher = populated_matcher("anchor-index", table_size, 0.3, rng);
  std::vector<Event> events;
  for (std::size_t i = 0; i < batch_size; ++i) {
    events.push_back(make_event(table_size, rng));
  }
  std::vector<std::uint32_t> indices;
  for (std::uint32_t i = 0; i < batch_size; i += 8) indices.push_back(i);

  std::vector<std::vector<SubscriptionId>> hits;
  for (auto _ : state) {
    if (zero_copy) {
      matcher->match_batch(EventBatchView(events, indices), hits);
    } else {
      std::vector<Event> gathered;  // what the deleted gather path paid
      gathered.reserve(indices.size());
      for (const std::uint32_t i : indices) gathered.push_back(events[i]);
      matcher->match_batch(gathered, hits);
    }
    benchmark::DoNotOptimize(hits.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * indices.size()));
  state.counters["subbatch"] = static_cast<double>(indices.size());
}

BENCHMARK_CAPTURE(bm_match_batch_subview, index_span, true);
BENCHMARK_CAPTURE(bm_match_batch_subview, gather_copy, false);

// --- sharded matching: shard count x engine x batch x pre-filter ------------
//
// The intra-broker parallelism sweep. Events are drawn once and the same
// table population is sharded by anchor-attribute hash; {1 shard, 0
// workers} through the ShardedMatcher wrapper measures pure sharding
// overhead against the bm_match_batch numbers above, the multi-worker rows
// measure the pool win (only visible on multi-core hosts), and the
// pre-filter on/off pairs measure shard-aware event routing. The
// skip_ratio counter (events_skipped / routed+skipped) reports the
// per-shard work the pre-filter removed — counter-based, so the win shows
// even on single-core hosts where wall clock can't.

void bm_match_batch_sharded(benchmark::State& state,
                            const std::string& inner) {
  const auto table_size = static_cast<std::size_t>(state.range(0));
  const auto batch_size = static_cast<std::size_t>(state.range(1));
  const auto shard_count = static_cast<std::size_t>(state.range(2));
  const auto workers = static_cast<std::size_t>(state.range(3));
  const bool prefilter = state.range(4) != 0;
  reef::util::Rng rng(42);
  ShardedMatcher matcher(
      ShardedMatcher::Config{shard_count, workers, inner, prefilter});
  const auto filters = make_filters(table_size, 0.3, rng);
  for (std::size_t i = 0; i < filters.size(); ++i) {
    matcher.add(i + 1, filters[i]);
  }
  std::vector<Event> events;
  const std::size_t universe = std::max(batch_size, std::size_t{256});
  for (std::size_t i = 0; i < universe; ++i) {
    events.push_back(make_event(table_size, rng));
  }

  std::size_t cursor = 0;
  std::vector<std::vector<SubscriptionId>> hits;
  for (auto _ : state) {
    const std::size_t start = cursor % (events.size() - batch_size + 1);
    matcher.match_batch(
        std::span<const Event>(events.data() + start, batch_size), hits);
    benchmark::DoNotOptimize(hits.data());
    cursor = (cursor + batch_size) % events.size();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * batch_size));
  state.counters["batch"] = static_cast<double>(batch_size);
  state.counters["shards"] = static_cast<double>(shard_count);
  state.counters["workers"] = static_cast<double>(workers);
  state.counters["prefilter"] = prefilter ? 1.0 : 0.0;
  const double pairs = static_cast<double>(matcher.events_routed() +
                                           matcher.events_skipped());
  state.counters["skip_ratio"] =
      pairs == 0.0 ? 0.0
                   : static_cast<double>(matcher.events_skipped()) / pairs;
}

// {table size, batch size, shard count, worker threads, pre-filter}. The
// large-batch rows (1024) are the acceptance sweep: sharded 4/4 vs the
// 1/0 baseline, each with its pre-filter off twin.
#define SHARD_SWEEP(table)                                      \
      ->Args({table, 128, 1, 0, 1})                             \
      ->Args({table, 128, 4, 0, 0})                             \
      ->Args({table, 128, 4, 0, 1})                             \
      ->Args({table, 128, 4, 4, 1})                             \
      ->Args({table, 1024, 1, 0, 1})                            \
      ->Args({table, 1024, 2, 2, 1})                            \
      ->Args({table, 1024, 4, 0, 0})                            \
      ->Args({table, 1024, 4, 0, 1})                            \
      ->Args({table, 1024, 4, 4, 0})                            \
      ->Args({table, 1024, 4, 4, 1})                            \
      ->Args({table, 1024, 8, 4, 1})
BENCHMARK_CAPTURE(bm_match_batch_sharded, anchor_index, "anchor-index")
    SHARD_SWEEP(10000) SHARD_SWEEP(50000)->UseRealTime();
BENCHMARK_CAPTURE(bm_match_batch_sharded, counting, "counting")
    SHARD_SWEEP(10000)->UseRealTime();
BENCHMARK_CAPTURE(bm_match_batch_sharded, bitset, "bitset")
    SHARD_SWEEP(10000)->UseRealTime();
BENCHMARK_CAPTURE(bm_match_batch_sharded, brute_force, "brute-force")
    ->Args({2000, 1024, 1, 0, 1})
    ->Args({2000, 1024, 4, 4, 0})
    ->Args({2000, 1024, 4, 4, 1})
    ->UseRealTime();
#undef SHARD_SWEEP

// --- subscription churn ------------------------------------------------------

void bm_subscription_churn(benchmark::State& state) {
  const auto table_size = static_cast<std::size_t>(state.range(0));
  reef::util::Rng rng(7);
  IndexMatcher matcher;
  const auto filters = make_filters(table_size, 0.3, rng);
  for (std::size_t i = 0; i < filters.size(); ++i) {
    matcher.add(i + 1, filters[i]);
  }
  std::size_t next = filters.size() + 1;
  std::size_t victim = 1;
  for (auto _ : state) {
    matcher.remove(victim++);
    matcher.add(next++, filters[rng.index(filters.size())]);
    if (victim > filters.size()) {
      state.SkipWithError("table drained");
      break;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

BENCHMARK(bm_subscription_churn)->Arg(10000)->Iterations(5000);

void bm_covering_check(benchmark::State& state) {
  reef::util::Rng rng(11);
  const auto filters = make_filters(256, 0.3, rng);
  std::size_t a = 0;
  std::size_t b = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filters[a].covers(filters[b]));
    a = (a + 1) % filters.size();
    b = (b + 3) % filters.size();
  }
}

BENCHMARK(bm_covering_check);

// --- --smoke mode (CI) -------------------------------------------------------

int run_smoke() {
  std::printf("bench_pubsub_matching --smoke\n");
  reef::util::Rng rng(42);
  const std::size_t table_size = 5000;
  const auto filters = make_filters(table_size, 0.3, rng);
  std::vector<Event> events;
  for (int i = 0; i < 64; ++i) events.push_back(make_event(table_size, rng));

  // 1. Every registry engine agrees with brute force, per-event and batch.
  BruteForceMatcher oracle;
  for (std::size_t i = 0; i < filters.size(); ++i) {
    oracle.add(i + 1, filters[i]);
  }
  for (const auto& engine_name : MatcherRegistry::instance().names()) {
    const auto engine = make_matcher(engine_name);
    for (std::size_t i = 0; i < filters.size(); ++i) {
      engine->add(i + 1, filters[i]);
    }
    std::vector<std::vector<SubscriptionId>> batched;
    engine->match_batch(events, batched);
    for (std::size_t i = 0; i < events.size(); ++i) {
      auto expected = oracle.match(events[i]);
      auto single = engine->match(events[i]);
      auto from_batch = batched[i];
      std::sort(expected.begin(), expected.end());
      std::sort(single.begin(), single.end());
      std::sort(from_batch.begin(), from_batch.end());
      if (single != expected || from_batch != expected) {
        std::printf("FAIL: %s diverges from oracle on event %zu\n",
                    engine_name.c_str(), i);
        return 1;
      }
    }
    std::printf("  %-12s agrees with oracle (%zu filters, %zu events)\n",
                engine_name.c_str(), table_size, events.size());
  }

  // 2. One quick batch-vs-loop timing on the anchor index.
  const auto matcher = make_matcher("anchor-index");
  for (std::size_t i = 0; i < filters.size(); ++i) {
    matcher->add(i + 1, filters[i]);
  }
  const int rounds = 2000;
  std::vector<SubscriptionId> hits;
  const auto loop_start = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r) {
    for (const Event& event : events) {
      hits.clear();
      matcher->match(event, hits);
      benchmark::DoNotOptimize(hits.data());
    }
  }
  const auto loop_end = std::chrono::steady_clock::now();
  std::vector<std::vector<SubscriptionId>> batch_hits;
  for (int r = 0; r < rounds; ++r) {
    matcher->match_batch(events, batch_hits);
    benchmark::DoNotOptimize(batch_hits.data());
  }
  const auto batch_end = std::chrono::steady_clock::now();
  const auto us = [](auto a, auto b) {
    return std::chrono::duration_cast<std::chrono::microseconds>(b - a)
        .count();
  };
  std::printf("  anchor-index: per-event loop %ldus, match_batch %ldus "
              "(batch=%zu, %d rounds)\n",
              static_cast<long>(us(loop_start, loop_end)),
              static_cast<long>(us(loop_end, batch_end)), events.size(),
              rounds);

  // 2b. The interned anchor-index batch path must beat brute force by a
  // fixed ratio — a floor, not a target (it sits far above it on this
  // workload); a regression that erases the index's advantage (e.g.
  // strings sneaking back into the hot path) fails CI here instead of
  // landing silently.
  {
    constexpr double kMinSpeedup = 3.0;
    constexpr int ratio_rounds = 40;
    const auto brute = make_matcher("brute-force");
    for (std::size_t i = 0; i < filters.size(); ++i) {
      brute->add(i + 1, filters[i]);
    }
    // Min of three trials per engine: scheduler steal and noisy
    // neighbors only ever *add* time, so the minimum is the clean
    // estimate — without this the floor check false-fails on loaded CI
    // runners.
    const auto timed_batch = [&](const Matcher& m) {
      std::vector<std::vector<SubscriptionId>> out;
      long best = std::numeric_limits<long>::max();
      for (int trial = 0; trial < 3; ++trial) {
        const auto start = std::chrono::steady_clock::now();
        for (int r = 0; r < ratio_rounds; ++r) {
          m.match_batch(events, out);
          benchmark::DoNotOptimize(out.data());
        }
        const auto us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
        best = std::min(best, static_cast<long>(us));
      }
      return best;
    };
    const auto anchor_us = timed_batch(*matcher);
    const auto brute_us = timed_batch(*brute);
    const double speedup = anchor_us == 0
                               ? kMinSpeedup
                               : static_cast<double>(brute_us) /
                                     static_cast<double>(anchor_us);
    std::printf("  anchor-index vs brute-force match_batch: %ldus vs %ldus "
                "(%.1fx, floor %.1fx)\n",
                static_cast<long>(anchor_us), static_cast<long>(brute_us),
                speedup, kMinSpeedup);
    if (speedup < kMinSpeedup) {
      std::printf("FAIL: anchor-index batch path fell below the %.1fx "
                  "speedup floor over brute force\n",
                  kMinSpeedup);
      return 1;
    }
  }

  // 2c. On the dense/high-overlap population the bitset engine's word
  // streams must at least match the anchor index's candidate walks — a
  // >= 1.0x floor (it sits well above it; the anchor index pays a full
  // Filter::matches per candidate and every bucket here holds ~n/8 of the
  // table). Same min-of-three discipline as 2b. This is the workload the
  // bitset engine exists for; losing it means the kernel regressed.
  {
    constexpr double kMinRatio = 1.0;
    constexpr int ratio_rounds = 40;
    reef::util::Rng dense_rng(42);
    const std::size_t dense_table = 8000;
    const auto dense_filters = make_dense_filters(dense_table, dense_rng);
    std::vector<Event> dense_events;
    for (int i = 0; i < 64; ++i) {
      dense_events.push_back(make_dense_event(dense_rng));
    }
    const auto bitset = make_matcher("bitset");
    const auto anchor = make_matcher("anchor-index");
    for (std::size_t i = 0; i < dense_filters.size(); ++i) {
      bitset->add(i + 1, dense_filters[i]);
      anchor->add(i + 1, dense_filters[i]);
    }
    const auto timed_batch = [&](const Matcher& m) {
      std::vector<std::vector<SubscriptionId>> out;
      long best = std::numeric_limits<long>::max();
      for (int trial = 0; trial < 3; ++trial) {
        const auto start = std::chrono::steady_clock::now();
        for (int r = 0; r < ratio_rounds; ++r) {
          m.match_batch(dense_events, out);
          benchmark::DoNotOptimize(out.data());
        }
        const auto trial_us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
        best = std::min(best, static_cast<long>(trial_us));
      }
      return best;
    };
    const auto bitset_us = timed_batch(*bitset);
    const auto anchor_us = timed_batch(*anchor);
    const double ratio = bitset_us == 0
                             ? kMinRatio
                             : static_cast<double>(anchor_us) /
                                   static_cast<double>(bitset_us);
    std::printf("  bitset vs anchor-index on dense workload: %ldus vs %ldus "
                "(%.1fx, floor %.1fx, %zu filters)\n",
                static_cast<long>(bitset_us), static_cast<long>(anchor_us),
                ratio, kMinRatio, dense_table);
    if (ratio < kMinRatio) {
      std::printf("FAIL: bitset fell below anchor-index on the dense "
                  "workload (floor %.1fx)\n",
                  kMinRatio);
      return 1;
    }
  }

  // 2d. Range/prefix workload floor: on the eq-free population every
  // filter anchors in the sorted-bounds / prefix-pattern structures, and
  // both index consumers (anchor-index candidate walks, bitset entry
  // resolution) must beat brute force by a fixed ratio. Before the sorted
  // indexes, this whole population sat in the linear scan list and the
  // "indexed" engines WERE brute force here. Same min-of-three
  // discipline as 2b; outputs are also checked against the oracle since
  // section 1 runs a different population.
  {
    // Floors sit well below the observed ratios (anchor-index ~5x,
    // bitset ~2.3x on a single-core dev host) — the bitset pays an
    // entry-bitmap sweep for every satisfied lower bound, so its win on
    // this shape is structurally smaller than the anchor index's.
    constexpr double kAnchorFloor = 2.5;
    constexpr double kBitsetFloor = 1.5;
    constexpr int ratio_rounds = 20;
    const std::size_t range_table = 10000;
    reef::util::Rng range_rng(42);
    const auto range_filters = make_range_filters(range_table, range_rng);
    std::vector<Event> range_events;
    for (int i = 0; i < 64; ++i) {
      range_events.push_back(make_range_event(range_rng));
    }
    const auto brute = make_matcher("brute-force");
    const auto anchor = make_matcher("anchor-index");
    const auto bitset = make_matcher("bitset");
    for (std::size_t i = 0; i < range_filters.size(); ++i) {
      brute->add(i + 1, range_filters[i]);
      anchor->add(i + 1, range_filters[i]);
      bitset->add(i + 1, range_filters[i]);
    }
    std::vector<std::vector<SubscriptionId>> oracle_hits;
    brute->match_batch(range_events, oracle_hits);
    for (auto& row : oracle_hits) std::sort(row.begin(), row.end());
    for (const auto* engine : {&anchor, &bitset}) {
      std::vector<std::vector<SubscriptionId>> engine_hits;
      (*engine)->match_batch(range_events, engine_hits);
      for (auto& row : engine_hits) std::sort(row.begin(), row.end());
      if (engine_hits != oracle_hits) {
        std::printf("FAIL: %s diverges from oracle on the range/prefix "
                    "workload\n",
                    engine == &anchor ? "anchor-index" : "bitset");
        return 1;
      }
    }
    const auto timed_batch = [&](const Matcher& m) {
      std::vector<std::vector<SubscriptionId>> out;
      long best = std::numeric_limits<long>::max();
      for (int trial = 0; trial < 3; ++trial) {
        const auto start = std::chrono::steady_clock::now();
        for (int r = 0; r < ratio_rounds; ++r) {
          m.match_batch(range_events, out);
          benchmark::DoNotOptimize(out.data());
        }
        const auto trial_us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
        best = std::min(best, static_cast<long>(trial_us));
      }
      return best;
    };
    const auto brute_us = timed_batch(*brute);
    const auto anchor_us = timed_batch(*anchor);
    const auto bitset_us = timed_batch(*bitset);
    const auto speedup_of = [&](long engine_us, double floor) {
      return engine_us == 0 ? floor
                            : static_cast<double>(brute_us) /
                                  static_cast<double>(engine_us);
    };
    std::printf("  range/prefix workload (%zu filters): brute %ldus, "
                "anchor-index %ldus (%.1fx, floor %.1fx), bitset %ldus "
                "(%.1fx, floor %.1fx)\n",
                range_table, static_cast<long>(brute_us),
                static_cast<long>(anchor_us),
                speedup_of(anchor_us, kAnchorFloor), kAnchorFloor,
                static_cast<long>(bitset_us),
                speedup_of(bitset_us, kBitsetFloor), kBitsetFloor);
    if (speedup_of(anchor_us, kAnchorFloor) < kAnchorFloor) {
      std::printf("FAIL: anchor-index fell below the %.1fx floor over "
                  "brute force on the range/prefix workload\n",
                  kAnchorFloor);
      return 1;
    }
    if (speedup_of(bitset_us, kBitsetFloor) < kBitsetFloor) {
      std::printf("FAIL: bitset fell below the %.1fx floor over brute "
                  "force on the range/prefix workload\n",
                  kBitsetFloor);
      return 1;
    }
  }

  // 2e. Suffix/contains workload floor: tail, substring, and
  // set-membership subscriptions — the population that sat entirely in
  // the linear scan list before the reversed-pattern and length-ordered
  // tables (and per-member in-set buckets) existed. The anchor index must
  // beat brute force by 2x; the bitset floor is lower (1.25x) because its
  // in-set slice stays a residual posting evaluated once per distinct
  // symbol, a structurally smaller win than the anchor's bucket probes.
  // Same min-of-three discipline and oracle agreement as 2d.
  {
    constexpr double kAnchorFloor = 2.0;
    constexpr double kBitsetFloor = 1.25;
    constexpr int ratio_rounds = 20;
    const std::size_t suffix_table = 10000;
    reef::util::Rng suffix_rng(42);
    const auto suffix_filters = make_suffix_filters(suffix_table, suffix_rng);
    std::vector<Event> suffix_events;
    for (int i = 0; i < 64; ++i) {
      suffix_events.push_back(make_suffix_event(suffix_rng));
    }
    const auto brute = make_matcher("brute-force");
    const auto anchor = make_matcher("anchor-index");
    const auto bitset = make_matcher("bitset");
    for (std::size_t i = 0; i < suffix_filters.size(); ++i) {
      brute->add(i + 1, suffix_filters[i]);
      anchor->add(i + 1, suffix_filters[i]);
      bitset->add(i + 1, suffix_filters[i]);
    }
    std::vector<std::vector<SubscriptionId>> oracle_hits;
    brute->match_batch(suffix_events, oracle_hits);
    for (auto& row : oracle_hits) std::sort(row.begin(), row.end());
    for (const auto* engine : {&anchor, &bitset}) {
      std::vector<std::vector<SubscriptionId>> engine_hits;
      (*engine)->match_batch(suffix_events, engine_hits);
      for (auto& row : engine_hits) std::sort(row.begin(), row.end());
      if (engine_hits != oracle_hits) {
        std::printf("FAIL: %s diverges from oracle on the suffix/contains "
                    "workload\n",
                    engine == &anchor ? "anchor-index" : "bitset");
        return 1;
      }
    }
    const auto timed_batch = [&](const Matcher& m) {
      std::vector<std::vector<SubscriptionId>> out;
      long best = std::numeric_limits<long>::max();
      for (int trial = 0; trial < 3; ++trial) {
        const auto start = std::chrono::steady_clock::now();
        for (int r = 0; r < ratio_rounds; ++r) {
          m.match_batch(suffix_events, out);
          benchmark::DoNotOptimize(out.data());
        }
        const auto trial_us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
        best = std::min(best, static_cast<long>(trial_us));
      }
      return best;
    };
    const auto brute_us = timed_batch(*brute);
    const auto anchor_us = timed_batch(*anchor);
    const auto bitset_us = timed_batch(*bitset);
    const auto speedup_of = [&](long engine_us, double floor) {
      return engine_us == 0 ? floor
                            : static_cast<double>(brute_us) /
                                  static_cast<double>(engine_us);
    };
    std::printf("  suffix/contains workload (%zu filters): brute %ldus, "
                "anchor-index %ldus (%.1fx, floor %.1fx), bitset %ldus "
                "(%.1fx, floor %.1fx)\n",
                suffix_table, static_cast<long>(brute_us),
                static_cast<long>(anchor_us),
                speedup_of(anchor_us, kAnchorFloor), kAnchorFloor,
                static_cast<long>(bitset_us),
                speedup_of(bitset_us, kBitsetFloor), kBitsetFloor);
    if (speedup_of(anchor_us, kAnchorFloor) < kAnchorFloor) {
      std::printf("FAIL: anchor-index fell below the %.1fx floor over "
                  "brute force on the suffix/contains workload\n",
                  kAnchorFloor);
      return 1;
    }
    if (speedup_of(bitset_us, kBitsetFloor) < kBitsetFloor) {
      std::printf("FAIL: bitset fell below the %.1fx floor over brute "
                  "force on the suffix/contains workload\n",
                  kBitsetFloor);
      return 1;
    }
  }

  // 3. Sharded baseline vs worker pool on the same table (keeps the
  // sharded fan-out exercised in CI even though the speedup itself only
  // shows on multi-core hosts).
  for (const std::size_t workers : {std::size_t{0}, std::size_t{4}}) {
    ShardedMatcher sharded(
        ShardedMatcher::Config{4, workers, "anchor-index"});
    for (std::size_t i = 0; i < filters.size(); ++i) {
      sharded.add(i + 1, filters[i]);
    }
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < rounds; ++r) {
      sharded.match_batch(events, batch_hits);
      benchmark::DoNotOptimize(batch_hits.data());
    }
    const auto end = std::chrono::steady_clock::now();
    std::printf("  sharded:anchor-index (4 shards, %zu workers): "
                "match_batch %ldus\n",
                workers, static_cast<long>(us(start, end)));
  }

  // 4. Shard-aware event pre-filtering: on the skewed-anchor workload the
  // pre-filter must skip (event, shard) pairs — the counter-based win that
  // shows even on a single-core host — while producing byte-identical
  // results. A zero skip ratio or any output difference fails the smoke.
  {
    ShardedMatcher with_pf(ShardedMatcher::Config{4, 0, "anchor-index",
                                                  /*prefilter=*/true});
    ShardedMatcher without_pf(ShardedMatcher::Config{4, 0, "anchor-index",
                                                     /*prefilter=*/false});
    for (std::size_t i = 0; i < filters.size(); ++i) {
      with_pf.add(i + 1, filters[i]);
      without_pf.add(i + 1, filters[i]);
    }
    const auto timed = [&](const ShardedMatcher& m) {
      const auto start = std::chrono::steady_clock::now();
      for (int r = 0; r < rounds; ++r) {
        m.match_batch(events, batch_hits);
        benchmark::DoNotOptimize(batch_hits.data());
      }
      return std::chrono::steady_clock::now() - start;
    };
    const std::uint64_t copies_before = Event::copy_count();
    const auto on_time = timed(with_pf);
    if (Event::copy_count() != copies_before) {
      std::printf("FAIL: pre-filtered sub-batches copied events (%llu "
                  "copies; index-span views must be zero-copy)\n",
                  static_cast<unsigned long long>(Event::copy_count() -
                                                  copies_before));
      return 1;
    }
    const auto off_time = timed(without_pf);
    std::vector<std::vector<SubscriptionId>> hits_on;
    std::vector<std::vector<SubscriptionId>> hits_off;
    with_pf.match_batch(events, hits_on);
    without_pf.match_batch(events, hits_off);
    if (hits_on != hits_off) {
      std::printf("FAIL: pre-filter changed match output\n");
      return 1;
    }
    if (with_pf.events_skipped() == 0) {
      std::printf("FAIL: pre-filter skipped no (event, shard) pairs on the "
                  "skewed-anchor workload\n");
      return 1;
    }
    const double pairs = static_cast<double>(with_pf.events_routed() +
                                             with_pf.events_skipped());
    std::printf("  pre-filter (4 shards, 0 workers): on %ldus, off %ldus, "
                "skip_ratio %.2f (%llu of %.0f event-shard pairs skipped)\n",
                static_cast<long>(
                    std::chrono::duration_cast<std::chrono::microseconds>(
                        on_time)
                        .count()),
                static_cast<long>(
                    std::chrono::duration_cast<std::chrono::microseconds>(
                        off_time)
                        .count()),
                static_cast<double>(with_pf.events_skipped()) / pairs,
                static_cast<unsigned long long>(with_pf.events_skipped()),
                pairs);
  }
  std::printf("smoke OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") {
      smoke = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  if (smoke) return run_smoke();
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
