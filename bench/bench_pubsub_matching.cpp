// E7a — substrate viability: event-matching throughput.
//
// google-benchmark microbenchmarks of the two matching engines under a
// Reef-like filter population (feed-equality subscriptions plus
// content/range filters), sweeping the subscription-table size. The
// counting index is the default engine inside every broker; brute force is
// the ablation baseline.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "pubsub/matcher.h"
#include "util/rng.h"

namespace {

using namespace reef::pubsub;

/// Builds a filter population. `content_share` is the fraction of
/// substring/range filters; the rest are feed-equality subscriptions
/// [stream=feed && feed=<url_i>]. Reef's live population is ~30% content
/// filters; 0% models a pure topic-subscription deployment.
std::vector<Filter> make_filters(std::size_t n, double content_share,
                                 reef::util::Rng& rng) {
  std::vector<Filter> filters;
  filters.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double kind = rng.uniform01();
    if (kind >= content_share) {
      filters.push_back(
          Filter()
              .and_(eq("stream", "feed"))
              .and_(eq("feed", "http://site" +
                                   std::to_string(rng.index(n / 2 + 1)) +
                                   ".example/f.rss")));
    } else if (kind >= content_share / 3.0) {
      filters.push_back(
          Filter()
              .and_(eq("stream", "video"))
              .and_(contains("text", "term" +
                                         std::to_string(rng.index(200)))));
    } else {
      const double lo = rng.uniform(0, 50);
      filters.push_back(Filter()
                            .and_(eq("stream", "quotes"))
                            .and_(ge("price", lo))
                            .and_(lt("price", lo + 10.0)));
    }
  }
  return filters;
}

Event make_event(std::size_t universe, reef::util::Rng& rng) {
  const double kind = rng.uniform01();
  if (kind < 0.7) {
    return Event()
        .with("stream", "feed")
        .with("feed", "http://site" +
                          std::to_string(rng.index(universe / 2 + 1)) +
                          ".example/f.rss")
        .with("seq", static_cast<std::int64_t>(rng.index(1000)))
        .with("text", "term" + std::to_string(rng.index(200)) + " filler");
  }
  if (kind < 0.9) {
    return Event()
        .with("stream", "video")
        .with("text", "term" + std::to_string(rng.index(200)) +
                          " term" + std::to_string(rng.index(200)));
  }
  return Event()
      .with("stream", "quotes")
      .with("price", rng.uniform(0, 60));
}

template <typename MatcherT>
void bm_match(benchmark::State& state) {
  const auto table_size = static_cast<std::size_t>(state.range(0));
  const double content_share = static_cast<double>(state.range(1)) / 100.0;
  reef::util::Rng rng(42);
  MatcherT matcher;
  const auto filters = make_filters(table_size, content_share, rng);
  for (std::size_t i = 0; i < filters.size(); ++i) {
    matcher.add(i + 1, filters[i]);
  }
  std::vector<Event> events;
  for (int i = 0; i < 256; ++i) events.push_back(make_event(table_size, rng));

  std::size_t cursor = 0;
  std::vector<SubscriptionId> hits;
  for (auto _ : state) {
    hits.clear();
    matcher.match(events[cursor], hits);
    benchmark::DoNotOptimize(hits.data());
    cursor = (cursor + 1) % events.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["table"] = static_cast<double>(table_size);
}

void bm_match_counting(benchmark::State& state) {
  bm_match<IndexMatcher>(state);
}
void bm_match_brute(benchmark::State& state) {
  bm_match<BruteForceMatcher>(state);
}

// {table size, % content (substring/range) filters}
BENCHMARK(bm_match_counting)
    ->Args({100, 0})
    ->Args({1000, 0})
    ->Args({10000, 0})
    ->Args({50000, 0})
    ->Args({1000, 30})
    ->Args({10000, 30});
BENCHMARK(bm_match_brute)
    ->Args({100, 0})
    ->Args({1000, 0})
    ->Args({10000, 0})
    ->Args({1000, 30})
    ->Args({10000, 30});

void bm_subscription_churn(benchmark::State& state) {
  const auto table_size = static_cast<std::size_t>(state.range(0));
  reef::util::Rng rng(7);
  IndexMatcher matcher;
  const auto filters = make_filters(table_size, 0.3, rng);
  for (std::size_t i = 0; i < filters.size(); ++i) {
    matcher.add(i + 1, filters[i]);
  }
  std::size_t next = filters.size() + 1;
  std::size_t victim = 1;
  for (auto _ : state) {
    matcher.remove(victim++);
    matcher.add(next++, filters[rng.index(filters.size())]);
    if (victim > filters.size()) {
      state.SkipWithError("table drained");
      break;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

BENCHMARK(bm_subscription_churn)->Arg(10000)->Iterations(5000);

void bm_covering_check(benchmark::State& state) {
  reef::util::Rng rng(11);
  const auto filters = make_filters(256, 0.3, rng);
  std::size_t a = 0;
  std::size_t b = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filters[a].covers(filters[b]));
    a = (a + 1) % filters.size();
    b = (b + 3) % filters.size();
  }
}

BENCHMARK(bm_covering_check);

}  // namespace

BENCHMARK_MAIN();
