#include "reef/manual_baseline.h"

namespace reef::core {

const std::vector<std::pair<std::string, sim::Time>>
    ManualSubscriptionBaseline::kEmptyLog;

ManualSubscriptionBaseline::ManualSubscriptionBaseline()
    : ManualSubscriptionBaseline(Config{}) {}

ManualSubscriptionBaseline::ManualSubscriptionBaseline(Config config)
    : config_(config), rng_(config.seed) {}

std::vector<std::string> ManualSubscriptionBaseline::on_visit(
    attention::UserId user, const std::string& host,
    const std::vector<std::string>& feeds_on_site, sim::Time now) {
  UserState& state = users_[user];
  const std::uint64_t visits = ++state.visits[host];
  std::vector<std::string> subscribed_now;
  if (visits < config_.visits_to_notice || feeds_on_site.empty()) {
    return subscribed_now;
  }
  if (!rng_.chance(config_.notice_probability)) return subscribed_now;
  for (const auto& url : feeds_on_site) {
    if (!state.subscribed.insert(url).second) continue;
    state.log.emplace_back(url, now);
    subscribed_now.push_back(url);
  }
  return subscribed_now;
}

std::size_t ManualSubscriptionBaseline::subscriptions(
    attention::UserId user) const {
  const auto it = users_.find(user);
  return it == users_.end() ? 0 : it->second.subscribed.size();
}

const std::vector<std::pair<std::string, sim::Time>>&
ManualSubscriptionBaseline::log(attention::UserId user) const {
  const auto it = users_.find(user);
  return it == users_.end() ? kEmptyLog : it->second.log;
}

}  // namespace reef::core
