#include "reef/update_filter.h"

#include <cmath>

#include "util/strings.h"

namespace reef::core {

double UpdateFilter::score(const std::vector<std::string>& terms,
                           const ir::TermStatsAccumulator& user,
                           const ir::TermStatsAccumulator& background,
                           std::uint32_t min_profile_tf) {
  if (terms.empty() || user.documents() == 0) return 0.0;
  const double user_docs = static_cast<double>(user.documents());
  const double background_docs =
      static_cast<double>(std::max<std::size_t>(background.documents(), 1));
  double total = 0.0;
  for (const auto& term : terms) {
    const auto it = user.evidence().find(term);
    if (it == user.evidence().end()) continue;
    const auto& evidence = it->second;
    if (evidence.raw_tf < min_profile_tf) continue;
    // Affinity: how broadly the user attends to this term, discounted by
    // how unavoidable the term is in general language.
    const double affinity =
        static_cast<double>(evidence.doc_count) / user_docs;
    const double idf =
        std::log(background_docs / (1.0 + background.df(term)));
    total += affinity * std::max(idf, 0.0);
  }
  return total / static_cast<double>(terms.size()) * 100.0;
}

bool UpdateFilter::should_display(const pubsub::Event& event,
                                  const ir::TermStatsAccumulator& user,
                                  const ir::TermStatsAccumulator& background) {
  if (config_.min_score <= 0.0) return true;
  const pubsub::Value* text = event.find("text");
  if (text == nullptr || !text->is_string()) return true;
  ++stats_.scored;
  std::vector<std::string> terms;
  for (const auto piece : util::split_whitespace(text->as_string())) {
    terms.emplace_back(piece);
  }
  const double s = score(terms, user, background, config_.min_profile_tf);
  if (s >= config_.min_score) return true;
  ++stats_.suppressed;
  return false;
}

}  // namespace reef::core
