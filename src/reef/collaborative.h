// Collaborative (group-based) recommendation (§2, §4, §5.2).
//
// Following the I-SPY idea the paper cites, users are clustered into
// interest communities by the overlap of their subscription/visit
// profiles, and feeds popular within a community are recommended to
// members who lack them. The centralized server runs this over all users;
// distributed peers approximate it by gossiping profiles inside a group.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "attention/click.h"
#include "reef/recommendation.h"

namespace reef::core {

class GroupProfiler {
 public:
  struct Config {
    /// Minimum Jaccard similarity to join a community.
    double similarity_threshold = 0.12;
    /// A feed is recommended to the group once this many members have it.
    std::uint32_t min_supporters = 2;
  };

  GroupProfiler() = default;
  explicit GroupProfiler(Config config) : config_(config) {}

  /// Replaces the profile of a user: the set of feeds they are subscribed
  /// to (plus optionally hosts they frequent — any string keys work).
  void set_profile(attention::UserId user,
                   std::unordered_set<std::string> interests);

  /// Jaccard similarity of two user profiles (0 when either is unknown).
  double similarity(attention::UserId a, attention::UserId b) const;

  /// Greedy community detection: seeds a group with the first unassigned
  /// user, adds every user whose similarity to the seed passes the
  /// threshold. Deterministic (users processed in ascending id order).
  std::vector<std::vector<attention::UserId>> groups() const;

  /// Feeds subscribed by >= min_supporters members of `user`'s group that
  /// `user` lacks, as subscribe recommendations (score = supporter count).
  std::vector<Recommendation> recommend_for(attention::UserId user) const;

  const Config& config() const noexcept { return config_; }

 private:
  Config config_;
  std::unordered_map<attention::UserId, std::unordered_set<std::string>>
      profiles_;
};

}  // namespace reef::core
