#include "reef/content_recommender.h"

namespace reef::core {

void ContentRecommender::add_page(attention::UserId user,
                                  const std::vector<std::string>& terms) {
  ir::TermFreqs freqs;
  for (const auto& term : terms) ++freqs[term];
  background_.add_document(freqs);

  auto [it, inserted] = users_.try_emplace(user);
  UserState& state = it->second;
  if (inserted) {
    state.rng = util::Rng(config_.seed ^ (0x9e37u * (user + 1)));
  }
  state.stats.add_document(freqs);
  // Reservoir sampling keeps an unbiased page sample at O(1) memory.
  ++state.pages;
  if (config_.diversity_sample > 0) {
    if (state.sample.size() < config_.diversity_sample) {
      state.sample.push_back(std::move(freqs));
    } else {
      const std::uint64_t slot =
          state.rng.uniform_u64(0, state.pages - 1);
      if (slot < state.sample.size()) {
        state.sample[static_cast<std::size_t>(slot)] = std::move(freqs);
      }
    }
  }
}

std::size_t ContentRecommender::pages_seen(attention::UserId user) const {
  const auto it = users_.find(user);
  return it == users_.end() ? 0 : it->second.stats.documents();
}

std::vector<ir::ScoredTerm> ContentRecommender::build_query(
    attention::UserId user, std::size_t n) const {
  if (n == 0) n = config_.query_terms;
  const auto it = users_.find(user);
  if (it == users_.end()) return {};
  return ir::select_terms(background_, it->second.stats, config_.selector, n);
}

std::vector<ir::ScoredTerm> ContentRecommender::build_query_diverse(
    attention::UserId user, std::size_t n, double lambda) const {
  if (n == 0) n = config_.query_terms;
  const auto it = users_.find(user);
  if (it == users_.end()) return {};
  const auto candidates = ir::select_terms(background_, it->second.stats,
                                           config_.selector, n * 3);
  return ir::diversify_terms(candidates, it->second.sample, lambda, n);
}

std::vector<ir::RankedDoc> ContentRecommender::rank_archive(
    attention::UserId user, const ir::Corpus& archive, std::size_t n) const {
  const auto query = build_query(user, n);
  std::vector<std::string> terms;
  terms.reserve(query.size());
  for (const auto& [term, score] : query) terms.push_back(term);
  return ir::Bm25(archive, config_.bm25).rank(terms);
}

std::vector<Recommendation> ContentRecommender::content_subscriptions(
    attention::UserId user, const std::string& stream,
    std::size_t max_terms) const {
  std::vector<Recommendation> recs;
  for (const auto& [term, score] : build_query(user, max_terms)) {
    Recommendation rec;
    rec.action = RecAction::kSubscribe;
    rec.filter = pubsub::Filter()
                     .and_(pubsub::eq("stream", stream))
                     .and_(pubsub::contains("text", term));
    rec.reason = "content query term '" + term + "'";
    rec.score = score;
    recs.push_back(std::move(rec));
  }
  return recs;
}

}  // namespace reef::core
