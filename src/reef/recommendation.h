// Recommendations: the currency between the recommendation service and the
// subscription frontend (§2.2). A recommendation either asks the frontend
// to place a subscription (with everything needed to do so: the pub/sub
// filter and, for feed subscriptions, the feed URL to register at the
// push proxy) or to retract one.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "pubsub/filter.h"

namespace reef::core {

enum class RecAction : std::uint8_t { kSubscribe, kUnsubscribe };

struct Recommendation {
  RecAction action = RecAction::kSubscribe;
  /// The pub/sub filter to place or retract.
  pubsub::Filter filter;
  /// Non-empty for Web-feed subscriptions: the URL to watch/unwatch at the
  /// FeedEvents proxy.
  std::string feed_url;
  /// Which recommender produced this and why (diagnostics, tests).
  std::string reason;
  /// Relative confidence (recommender-specific scale).
  double score = 0.0;

  std::size_t wire_size() const noexcept {
    return 16 + filter.wire_size() + feed_url.size() + reason.size();
  }
};

/// Server -> frontend push of recommendations (centralized design, Fig. 1
/// step 2).
struct RecommendationMsg {
  std::vector<Recommendation> recommendations;

  std::size_t wire_size() const noexcept {
    std::size_t bytes = 16;
    for (const auto& r : recommendations) bytes += r.wire_size();
    return bytes;
  }
};

inline constexpr std::string_view kTypeRecommendation = "reef.recommend";

}  // namespace reef::core
