// Centralized Reef server (Fig. 1, §3).
//
// One server node receives attention batches from every user's recorder
// (step 1), stores the clicks, periodically crawls the visited URIs,
// parses pages for feeds and keywords, runs the topic / content /
// collaborative recommenders, and pushes recommendations back to each
// user's subscription frontend (step 2). The frontend then performs the
// sub/unsub operations (step 3) and receives events (step 4) directly
// from the pub/sub substrate — the server is never on the event path.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "attention/click.h"
#include "attention/parser.h"
#include "reef/collaborative.h"
#include "reef/content_recommender.h"
#include "reef/frontend.h"
#include "reef/topic_recommender.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "web/crawler.h"

namespace reef::core {

class CentralizedServer final : public sim::Node {
 public:
  struct Config {
    /// Crawl + recommend cycle period ("batched for periodic crawling").
    sim::Time analysis_interval = 30 * sim::kMinute;
    /// Collaborative group recommendations run this often (0 = disabled).
    sim::Time collaborative_interval = 24 * sim::kHour;
    TopicRecommender::Config topic;
    ContentRecommender::Config content;
    GroupProfiler::Config collaborative;
  };

  struct Stats {
    std::uint64_t batches_received = 0;
    std::uint64_t clicks_stored = 0;
    std::uint64_t storage_bytes = 0;      ///< attention DB growth
    std::uint64_t recommendations_sent = 0;
    std::uint64_t recommendation_msgs = 0;
    std::uint64_t collaborative_recs = 0;
  };

  CentralizedServer(sim::Simulator& sim, sim::Network& net,
                    const web::SyntheticWeb& web, Config config);
  ~CentralizedServer();
  CentralizedServer(const CentralizedServer&) = delete;
  CentralizedServer& operator=(const CentralizedServer&) = delete;

  sim::NodeId id() const noexcept { return id_; }

  /// Registers a user's frontend client node so recommendations can be
  /// pushed to it.
  void register_user(attention::UserId user, sim::NodeId frontend_node);

  void handle_message(const sim::Message& msg) override;

  /// Runs one analysis cycle immediately (also runs on the timer).
  void run_analysis_cycle();
  /// Runs one collaborative cycle immediately.
  void run_collaborative_cycle();

  const Stats& stats() const noexcept { return stats_; }
  const web::Crawler& crawler() const noexcept { return crawler_; }
  TopicRecommender& topic_recommender() noexcept { return topic_; }
  ContentRecommender& content_recommender() noexcept { return content_; }
  GroupProfiler& group_profiler() noexcept { return collaborative_; }
  /// All clicks stored for a user (the server-side attention database).
  const std::vector<attention::Click>& user_clicks(
      attention::UserId user) const;

 private:
  void on_attention_batch(const attention::ClickBatch& batch);
  void on_feedback(const FeedbackMsg& msg);
  void send_recommendations(attention::UserId user,
                            std::vector<Recommendation> recs);

  sim::Simulator& sim_;
  sim::Network& net_;
  sim::NodeId id_;
  Config config_;
  const web::SyntheticWeb& web_;
  web::Crawler crawler_;
  attention::FeedUrlParser feed_parser_;
  attention::KeywordParser keyword_parser_;
  TopicRecommender topic_;
  ContentRecommender content_;
  GroupProfiler collaborative_;

  std::unordered_map<attention::UserId, sim::NodeId> frontends_;
  std::unordered_map<attention::UserId, std::vector<attention::Click>>
      click_db_;
  /// Server-wide feed knowledge: host -> feeds discovered by any crawl.
  std::unordered_map<std::string, std::vector<std::string>> known_feeds_;
  /// (user, uri) pairs waiting for the next crawl cycle.
  std::deque<attention::Click> crawl_queue_;
  /// Feeds each user is known to be subscribed to (for collaborative
  /// profiles), updated from recommendations we sent.
  std::unordered_map<attention::UserId, std::unordered_set<std::string>>
      user_feeds_;

  sim::TimerId analysis_timer_ = 0;
  sim::TimerId collaborative_timer_ = 0;
  Stats stats_;
};

}  // namespace reef::core
