// Content-based subscription recommender (§3.3).
//
// Accumulates the pages each user attended to, builds a top-N term query
// with the (TF-integrated) Offer Weight selector, and uses it two ways:
//
//   1. to rank a document archive with BM25 (the paper's video-news case
//      study: "the queries determined the order in which news stories
//      were returned"), and
//   2. to derive content-based pub/sub subscriptions: one substring
//      filter per query term over the event's text attribute, so future
//      matching stories are pushed as they are published.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "attention/click.h"
#include "ir/bm25.h"
#include "ir/corpus.h"
#include "ir/term_weighting.h"
#include "reef/recommendation.h"
#include "util/rng.h"

namespace reef::core {

class ContentRecommender {
 public:
  struct Config {
    std::size_t query_terms = 30;  ///< the paper's optimum N
    ir::TermSelector selector = ir::TermSelector::kTfOfferWeight;
    ir::Bm25Params bm25;
    /// Per-user reservoir of page samples kept for co-occurrence-based
    /// query diversification (build_query_diverse). 0 disables sampling.
    std::size_t diversity_sample = 300;
    std::uint64_t seed = 0xd1ce;
  };

  ContentRecommender() = default;
  explicit ContentRecommender(Config config) : config_(config) {}

  /// Accumulates one attended page into the user's profile (terms are the
  /// analyzed page text) and into the shared background statistics.
  void add_page(attention::UserId user,
                const std::vector<std::string>& terms);

  std::size_t pages_seen(attention::UserId user) const;
  /// Shared background statistics over everything all users attended to
  /// (the centralized server's view; a distributed peer holds only its own
  /// user's pages). O(vocabulary) memory — pages are not retained.
  const ir::TermStatsAccumulator& background() const noexcept {
    return background_;
  }
  /// Per-user term statistics; nullptr for unknown users. Used by the
  /// update filter to judge incoming events against the user's profile.
  const ir::TermStatsAccumulator* user_stats(attention::UserId user) const {
    const auto it = users_.find(user);
    return it == users_.end() ? nullptr : &it->second.stats;
  }

  /// Builds the user's top-`n` query (n=0 uses config.query_terms).
  std::vector<ir::ScoredTerm> build_query(attention::UserId user,
                                          std::size_t n = 0) const;

  /// Diversity-aware query (§3.3 open problem): over-selects 3n candidate
  /// terms, then applies maximal-marginal-relevance over the user's page
  /// reservoir so the query spans distinct interest clusters instead of
  /// being dominated by the largest one. lambda=1 reduces to build_query.
  std::vector<ir::ScoredTerm> build_query_diverse(attention::UserId user,
                                                  std::size_t n = 0,
                                                  double lambda = 0.7) const;

  /// Ranks an archive corpus with BM25 against the user's query.
  std::vector<ir::RankedDoc> rank_archive(attention::UserId user,
                                          const ir::Corpus& archive,
                                          std::size_t n = 0) const;

  /// Derives per-term content subscriptions over events shaped
  /// {stream=<stream>, text=<terms>} — one contains-filter per term.
  std::vector<Recommendation> content_subscriptions(
      attention::UserId user, const std::string& stream,
      std::size_t max_terms = 10) const;

  const Config& config() const noexcept { return config_; }

 private:
  struct UserState {
    ir::TermStatsAccumulator stats;
    /// Reservoir sample of page term-vectors for diversification.
    std::vector<ir::TermFreqs> sample;
    std::uint64_t pages = 0;
    util::Rng rng{0xd1ce};
  };

  Config config_;
  ir::TermStatsAccumulator background_;
  std::unordered_map<attention::UserId, UserState> users_;
};

}  // namespace reef::core
