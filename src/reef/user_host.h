// A user's machine in the *centralized* design (Fig. 1): it runs only the
// thin components — attention recorder (browser extension) and
// subscription frontend — while parsing and recommendation happen at the
// server. The host node receives RecommendationMsg pushes and applies
// them; clicking sidebar events loops back into the recorder.
#pragma once

#include <cstdint>
#include <memory>

#include "attention/recorder.h"
#include "reef/frontend.h"
#include "sim/network.h"
#include "web/browser_cache.h"
#include "web/web.h"

namespace reef::core {

class UserHost final : public sim::Node {
 public:
  struct Config {
    attention::AttentionRecorder::Config recorder;
    SubscriptionFrontend::Config frontend;
    /// How often closed-loop statistics are pushed to the server.
    sim::Time feedback_interval = 12 * sim::kHour;
    std::size_t cache_pages = 4000;
  };

  UserHost(sim::Simulator& sim, sim::Network& net,
           const web::SyntheticWeb& web, pubsub::Broker& broker,
           attention::UserId user, Config config);

  sim::NodeId id() const noexcept { return id_; }
  attention::UserId user() const noexcept { return user_; }

  /// Wires the Reef server (attention batches + feedback go there) and
  /// the FeedEvents proxy (watch/unwatch for feed subscriptions).
  void connect(sim::NodeId server, sim::NodeId proxy);

  /// One browser navigation: the page is rendered (cached) and the
  /// request is logged by the attention recorder.
  void browse(const util::Uri& uri, bool from_notification = false);

  void handle_message(const sim::Message& msg) override;

  SubscriptionFrontend& frontend() noexcept { return frontend_; }
  attention::AttentionRecorder& recorder() noexcept { return recorder_; }
  web::BrowserCache& cache() noexcept { return cache_; }
  std::uint64_t recommendations_received() const noexcept {
    return recommendations_received_;
  }

 private:
  sim::Simulator& sim_;
  sim::Network& net_;
  const web::SyntheticWeb& web_;
  attention::UserId user_;
  sim::NodeId id_;
  sim::NodeId server_ = sim::kNoNode;
  web::BrowserCache cache_;
  SubscriptionFrontend frontend_;
  attention::AttentionRecorder recorder_;
  std::uint64_t recommendations_received_ = 0;
};

}  // namespace reef::core
