// Subscription frontend (§2.2, §3.1): executes recommendations against the
// pub/sub substrate (and the FeedEvents proxy for feed subscriptions),
// and models the sidebar where delivered events are displayed:
//
//   "The events from subscriptions are displayed in a sidebar ... The
//    user may click on the event to view it in the browsing panel or
//    click on a button to delete it. If the user ignores the event for a
//    certain period of time, it expires and disappears from the list."
//
// Clicking an entry reports the opened link to the attention hook — that
// is the closed loop: the click lands in the attention recorder and reads
// as positive feedback. Per-feed delivered/clicked tallies are pushed to
// the recommendation service periodically for unsubscribe decisions.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "attention/click.h"
#include "feeds/feed_events_proxy.h"
#include "pubsub/client.h"
#include "reef/recommendation.h"

namespace reef::core {

/// One row of per-feed closed-loop statistics.
struct FeedbackRow {
  std::string feed_url;
  std::uint64_t delivered = 0;
  std::uint64_t clicked = 0;
};

/// Frontend -> recommendation service feedback push.
struct FeedbackMsg {
  attention::UserId user = 0;
  std::vector<FeedbackRow> rows;

  std::size_t wire_size() const noexcept {
    std::size_t bytes = 16;
    for (const auto& r : rows) bytes += 20 + r.feed_url.size();
    return bytes;
  }
};

inline constexpr std::string_view kTypeFeedback = "reef.feedback";

class SubscriptionFrontend {
 public:
  struct Config {
    /// Ignored events disappear after this long.
    sim::Time event_ttl = 8 * sim::kHour;
    /// Sidebar holds at most this many entries (oldest expire early).
    std::size_t sidebar_capacity = 50;
  };

  struct SidebarEntry {
    std::uint64_t entry_id = 0;
    pubsub::Event event;
    sim::Time arrived = 0;
    std::string feed_url;  ///< empty for non-feed events
  };

  struct Stats {
    std::uint64_t events_received = 0;
    std::uint64_t clicked = 0;
    std::uint64_t dismissed = 0;
    std::uint64_t expired = 0;
    std::uint64_t subscribes_applied = 0;
    std::uint64_t unsubscribes_applied = 0;
  };

  /// Reports a click on a delivered event (the closed loop back into the
  /// attention recorder): URI opened + from_notification flag.
  using AttentionHook = std::function<void(const util::Uri&)>;
  /// Receives the periodic closed-loop statistics.
  using FeedbackSink = std::function<void(FeedbackMsg&&)>;

  SubscriptionFrontend(sim::Simulator& sim, sim::Network& net,
                       pubsub::Broker& broker, attention::UserId user,
                       Config config);
  ~SubscriptionFrontend();
  SubscriptionFrontend(const SubscriptionFrontend&) = delete;
  SubscriptionFrontend& operator=(const SubscriptionFrontend&) = delete;

  /// Wires the FeedEvents proxy used for feed recommendations (watch /
  /// unwatch travel as network messages so their cost is metered).
  void set_proxy(sim::NodeId proxy) { proxy_ = proxy; }
  void set_attention_hook(AttentionHook hook) {
    attention_hook_ = std::move(hook);
  }
  void set_feedback_sink(FeedbackSink sink, sim::Time interval);

  /// Optional update filter (§3.2 extension): events for which the
  /// predicate returns false are suppressed before reaching the sidebar.
  /// Suppressed events still count as delivered for the closed loop.
  using DisplayPredicate = std::function<bool(const pubsub::Event&)>;
  void set_display_predicate(DisplayPredicate predicate) {
    display_predicate_ = std::move(predicate);
  }
  std::uint64_t suppressed_by_filter() const noexcept {
    return suppressed_by_filter_;
  }

  /// Executes a recommendation (subscribe or unsubscribe).
  void apply(const Recommendation& rec);
  void apply_all(const std::vector<Recommendation>& recs);

  bool is_subscribed_to_feed(const std::string& url) const {
    return feed_subs_.contains(url);
  }
  std::size_t active_feed_subscriptions() const noexcept {
    return feed_subs_.size();
  }
  /// URLs of all feeds currently subscribed (sorted, deterministic).
  std::vector<std::string> subscribed_feeds() const;

  /// Current sidebar (expired entries pruned on access).
  const std::deque<SidebarEntry>& sidebar();
  /// Opens an entry: reports the link to the attention hook, removes the
  /// entry, counts the click for the entry's feed. Unknown ids ignored.
  void click_entry(std::uint64_t entry_id);
  /// Deletes an entry without opening it.
  void dismiss_entry(std::uint64_t entry_id);

  /// Forces a feedback push now (also runs on the configured interval).
  void emit_feedback();

  const Stats& stats() const noexcept { return stats_; }
  attention::UserId user() const noexcept { return user_; }
  pubsub::Client& client() noexcept { return client_; }

 private:
  void on_deliver(const pubsub::Event& event);
  void prune_expired();
  void drop_entry(std::deque<SidebarEntry>::iterator it, bool clicked);

  sim::Simulator& sim_;
  sim::Network& net_;
  attention::UserId user_;
  Config config_;
  pubsub::Client client_;
  sim::NodeId proxy_ = sim::kNoNode;
  AttentionHook attention_hook_;
  FeedbackSink feedback_sink_;
  DisplayPredicate display_predicate_;
  std::uint64_t suppressed_by_filter_ = 0;
  sim::TimerId feedback_timer_ = 0;

  /// feed url -> pub/sub subscription id
  std::unordered_map<std::string, pubsub::SubscriptionId> feed_subs_;
  /// non-feed filters by canonical key
  std::unordered_map<std::string, pubsub::SubscriptionId> other_subs_;
  /// per-feed closed-loop tallies
  std::unordered_map<std::string, FeedbackRow> tallies_;
  /// seen event guids (dedup across overlapping content subscriptions)
  std::unordered_map<std::string, bool> seen_guids_;

  std::deque<SidebarEntry> sidebar_;
  std::uint64_t next_entry_ = 1;
  Stats stats_;
};

}  // namespace reef::core
