#include "reef/user_host.h"

#include <any>

#include "util/log.h"

namespace reef::core {

UserHost::UserHost(sim::Simulator& sim, sim::Network& net,
                   const web::SyntheticWeb& web, pubsub::Broker& broker,
                   attention::UserId user, Config config)
    : sim_(sim),
      net_(net),
      web_(web),
      user_(user),
      cache_(config.cache_pages),
      frontend_(sim, net, broker, user, config.frontend),
      recorder_(
          sim, user, config.recorder,
          // Recorder sink: ship batches to the server once connected.
          [this](attention::ClickBatch&& batch) {
            if (server_ == sim::kNoNode) return;
            const std::size_t bytes = batch.wire_size();
            net_.send(id_, server_,
                      std::string(attention::kTypeAttentionBatch),
                      std::move(batch), bytes);
          }) {
  id_ = net_.attach(*this, "user-host-" + std::to_string(user));
  // Closed loop: clicking a sidebar event opens the link in the browser.
  frontend_.set_attention_hook(
      [this](const util::Uri& uri) { browse(uri, true); });
  frontend_.set_feedback_sink(
      [this](FeedbackMsg&& msg) {
        if (server_ == sim::kNoNode) return;
        const std::size_t bytes = msg.wire_size();
        net_.send(id_, server_, std::string(kTypeFeedback), std::move(msg),
                  bytes);
      },
      config.feedback_interval);
}

void UserHost::connect(sim::NodeId server, sim::NodeId proxy) {
  server_ = server;
  frontend_.set_proxy(proxy);
}

void UserHost::browse(const util::Uri& uri, bool from_notification) {
  if (const auto page = web_.fetch(uri)) cache_.put(*page);
  recorder_.record(uri, from_notification);
}

void UserHost::handle_message(const sim::Message& msg) {
  if (msg.type != kTypeRecommendation) {
    util::log_warn("user-host") << "unknown message " << msg.type;
    return;
  }
  const auto& rec_msg = std::any_cast<const RecommendationMsg&>(msg.payload);
  recommendations_received_ += rec_msg.recommendations.size();
  frontend_.apply_all(rec_msg.recommendations);
}

}  // namespace reef::core
