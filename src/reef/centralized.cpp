#include "reef/centralized.h"

#include <any>

#include "util/log.h"

namespace reef::core {

CentralizedServer::CentralizedServer(sim::Simulator& sim, sim::Network& net,
                                     const web::SyntheticWeb& web,
                                     Config config)
    : sim_(sim),
      net_(net),
      config_(config),
      web_(web),
      crawler_(web),
      topic_(config.topic),
      content_(config.content),
      collaborative_(config.collaborative) {
  id_ = net_.attach(*this, "reef-server");
  analysis_timer_ = sim_.every(config_.analysis_interval,
                               config_.analysis_interval,
                               [this] { run_analysis_cycle(); });
  if (config_.collaborative_interval > 0) {
    collaborative_timer_ = sim_.every(config_.collaborative_interval,
                                      config_.collaborative_interval,
                                      [this] { run_collaborative_cycle(); });
  }
}

CentralizedServer::~CentralizedServer() {
  sim_.cancel(analysis_timer_);
  if (collaborative_timer_ != 0) sim_.cancel(collaborative_timer_);
}

void CentralizedServer::register_user(attention::UserId user,
                                      sim::NodeId frontend_node) {
  frontends_[user] = frontend_node;
}

void CentralizedServer::handle_message(const sim::Message& msg) {
  if (msg.type == attention::kTypeAttentionBatch) {
    on_attention_batch(
        std::any_cast<const attention::ClickBatch&>(msg.payload));
  } else if (msg.type == kTypeFeedback) {
    on_feedback(std::any_cast<const FeedbackMsg&>(msg.payload));
  } else {
    util::log_warn("reef-server") << "unknown message " << msg.type;
  }
}

void CentralizedServer::on_attention_batch(
    const attention::ClickBatch& batch) {
  ++stats_.batches_received;
  auto& db = click_db_[batch.user];
  for (const auto& click : batch.clicks) {
    ++stats_.clicks_stored;
    stats_.storage_bytes += click.wire_size();
    db.push_back(click);
    topic_.on_click(batch.user, click.uri);
    crawl_queue_.push_back(click);
  }
}

void CentralizedServer::on_feedback(const FeedbackMsg& msg) {
  for (const auto& row : msg.rows) {
    topic_.on_feedback(msg.user, row.feed_url, row.delivered, row.clicked);
  }
  // Recommendations resulting from feedback (unsubscribes) go out on the
  // next analysis cycle together with everything else.
}

void CentralizedServer::run_analysis_cycle() {
  // Crawl everything queued since the last cycle.
  std::unordered_set<attention::UserId> touched;
  while (!crawl_queue_.empty()) {
    const attention::Click click = std::move(crawl_queue_.front());
    crawl_queue_.pop_front();
    web::CrawlResult result = crawler_.crawl(click.uri);
    touched.insert(click.user);
    const std::string& host = click.uri.host();

    if (result.fetched && !result.feed_urls.empty()) {
      // Feed knowledge is server-wide: once discovered, every registered
      // user's visit counts can trigger recommendations for this host.
      auto& known = known_feeds_[host];
      bool grew = false;
      for (const auto& url : result.feed_urls) {
        if (std::find(known.begin(), known.end(), url) == known.end()) {
          known.push_back(url);
          grew = true;
        }
      }
      if (grew) {
        for (const auto& [user, node] : frontends_) {
          topic_.on_feeds_found(user, host, known);
          touched.insert(user);
        }
      }
    } else if (const auto it = known_feeds_.find(host);
               it != known_feeds_.end()) {
      topic_.on_feeds_found(click.user, host, it->second);
    }

    // Content profile: every content click contributes terms. A duplicate
    // URI was fetched before, so the server parses its stored copy (no new
    // network traffic; the synthetic web regenerates pages
    // deterministically, standing in for the server's page store).
    if (result.fetched && !result.terms.empty()) {
      content_.add_page(click.user, result.terms);
    } else if (result.duplicate &&
               result.host_flag == web::HostFlag::kClean) {
      if (const auto page = web_.fetch(click.uri);
          page && !page->terms.empty()) {
        content_.add_page(click.user, page->terms);
      }
    }
  }
  // Push any pending recommendations.
  for (const attention::UserId user : touched) {
    send_recommendations(user, topic_.take(user));
  }
  // Users whose feedback generated unsubscribes but who had no new clicks:
  for (const auto& [user, node] : frontends_) {
    if (touched.contains(user)) continue;
    send_recommendations(user, topic_.take(user));
  }
}

void CentralizedServer::run_collaborative_cycle() {
  for (const auto& [user, feeds] : user_feeds_) {
    collaborative_.set_profile(user, feeds);
  }
  for (const auto& [user, node] : frontends_) {
    std::vector<Recommendation> recs = collaborative_.recommend_for(user);
    if (recs.empty()) continue;
    stats_.collaborative_recs += recs.size();
    // Track them as subscribed so they are not re-recommended forever.
    for (const auto& rec : recs) user_feeds_[user].insert(rec.feed_url);
    send_recommendations(user, std::move(recs));
  }
}

void CentralizedServer::send_recommendations(attention::UserId user,
                                             std::vector<Recommendation> recs) {
  if (recs.empty()) return;
  const auto it = frontends_.find(user);
  if (it == frontends_.end()) return;
  for (const auto& rec : recs) {
    if (rec.action == RecAction::kSubscribe && !rec.feed_url.empty()) {
      user_feeds_[user].insert(rec.feed_url);
    } else if (rec.action == RecAction::kUnsubscribe) {
      user_feeds_[user].erase(rec.feed_url);
    }
  }
  stats_.recommendations_sent += recs.size();
  ++stats_.recommendation_msgs;
  RecommendationMsg msg{std::move(recs)};
  const std::size_t bytes = msg.wire_size();
  net_.send(id_, it->second, std::string(kTypeRecommendation),
            std::move(msg), bytes);
}

const std::vector<attention::Click>& CentralizedServer::user_clicks(
    attention::UserId user) const {
  static const std::vector<attention::Click> kEmpty;
  const auto it = click_db_.find(user);
  return it == click_db_.end() ? kEmpty : it->second;
}

}  // namespace reef::core
