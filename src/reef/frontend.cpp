#include "reef/frontend.h"

#include "util/log.h"

namespace reef::core {

SubscriptionFrontend::SubscriptionFrontend(sim::Simulator& sim,
                                           sim::Network& net,
                                           pubsub::Broker& broker,
                                           attention::UserId user,
                                           Config config)
    : sim_(sim),
      net_(net),
      user_(user),
      config_(config),
      client_(sim, net, "frontend-" + std::to_string(user)) {
  client_.connect(broker);
}

SubscriptionFrontend::~SubscriptionFrontend() {
  if (feedback_timer_ != 0) sim_.cancel(feedback_timer_);
}

void SubscriptionFrontend::set_feedback_sink(FeedbackSink sink,
                                             sim::Time interval) {
  feedback_sink_ = std::move(sink);
  if (feedback_timer_ != 0) sim_.cancel(feedback_timer_);
  feedback_timer_ =
      sim_.every(interval, interval, [this] { emit_feedback(); });
}

void SubscriptionFrontend::apply(const Recommendation& rec) {
  if (rec.action == RecAction::kSubscribe) {
    if (!rec.feed_url.empty()) {
      if (feed_subs_.contains(rec.feed_url)) return;  // already placed
      const auto sub_id = client_.subscribe(
          rec.filter,
          [this](const pubsub::Event& event, pubsub::SubscriptionId) {
            on_deliver(event);
          });
      feed_subs_.emplace(rec.feed_url, sub_id);
      if (proxy_ != sim::kNoNode) {
        net_.send(client_.id(), proxy_,
                  std::string(feeds::kTypeWatchFeed),
                  feeds::WatchFeedMsg{rec.feed_url},
                  24 + rec.feed_url.size());
      }
    } else {
      if (other_subs_.contains(rec.filter.key())) return;
      const auto sub_id = client_.subscribe(
          rec.filter,
          [this](const pubsub::Event& event, pubsub::SubscriptionId) {
            on_deliver(event);
          });
      other_subs_.emplace(rec.filter.key(), sub_id);
    }
    ++stats_.subscribes_applied;
    return;
  }

  // Unsubscribe
  if (!rec.feed_url.empty()) {
    const auto it = feed_subs_.find(rec.feed_url);
    if (it == feed_subs_.end()) return;
    client_.unsubscribe(it->second);
    feed_subs_.erase(it);
    if (proxy_ != sim::kNoNode) {
      net_.send(client_.id(), proxy_, std::string(feeds::kTypeUnwatchFeed),
                feeds::UnwatchFeedMsg{rec.feed_url},
                24 + rec.feed_url.size());
    }
  } else {
    const auto it = other_subs_.find(rec.filter.key());
    if (it == other_subs_.end()) return;
    client_.unsubscribe(it->second);
    other_subs_.erase(it);
  }
  ++stats_.unsubscribes_applied;
}

void SubscriptionFrontend::apply_all(const std::vector<Recommendation>& recs) {
  for (const auto& rec : recs) apply(rec);
}

void SubscriptionFrontend::on_deliver(const pubsub::Event& event) {
  // Dedup: overlapping content subscriptions may match the same story.
  if (const pubsub::Value* guid = event.find("guid");
      guid != nullptr && guid->is_string()) {
    if (!seen_guids_.emplace(guid->as_string(), true).second) return;
  }
  ++stats_.events_received;
  SidebarEntry entry;
  entry.entry_id = next_entry_++;
  entry.event = event;
  entry.arrived = sim_.now();
  if (const pubsub::Value* feed = event.find("feed");
      feed != nullptr && feed->is_string()) {
    entry.feed_url = feed->as_string();
    ++tallies_[entry.feed_url].delivered;
    tallies_[entry.feed_url].feed_url = entry.feed_url;
  }
  // Update filtering (§3.2 extension): irrelevant events never reach the
  // sidebar. They still counted as delivered above, so a feed that only
  // produces suppressed events will eventually be unsubscribed by the
  // closed loop.
  if (display_predicate_ && !display_predicate_(event)) {
    ++suppressed_by_filter_;
    return;
  }
  sidebar_.push_back(std::move(entry));
  prune_expired();
  while (sidebar_.size() > config_.sidebar_capacity) {
    ++stats_.expired;
    sidebar_.pop_front();
  }
}

void SubscriptionFrontend::prune_expired() {
  const sim::Time cutoff = sim_.now() - config_.event_ttl;
  while (!sidebar_.empty() && sidebar_.front().arrived < cutoff) {
    ++stats_.expired;
    sidebar_.pop_front();
  }
}

const std::deque<SubscriptionFrontend::SidebarEntry>&
SubscriptionFrontend::sidebar() {
  prune_expired();
  return sidebar_;
}

void SubscriptionFrontend::drop_entry(
    std::deque<SidebarEntry>::iterator it, bool clicked) {
  if (clicked) {
    if (!it->feed_url.empty()) ++tallies_[it->feed_url].clicked;
    ++stats_.clicked;
    if (attention_hook_) {
      if (const pubsub::Value* link = it->event.find("link");
          link != nullptr && link->is_string()) {
        if (const auto uri = util::Uri::parse(link->as_string())) {
          attention_hook_(*uri);
        }
      }
    }
  } else {
    ++stats_.dismissed;
  }
  sidebar_.erase(it);
}

void SubscriptionFrontend::click_entry(std::uint64_t entry_id) {
  for (auto it = sidebar_.begin(); it != sidebar_.end(); ++it) {
    if (it->entry_id == entry_id) {
      drop_entry(it, /*clicked=*/true);
      return;
    }
  }
}

void SubscriptionFrontend::dismiss_entry(std::uint64_t entry_id) {
  for (auto it = sidebar_.begin(); it != sidebar_.end(); ++it) {
    if (it->entry_id == entry_id) {
      drop_entry(it, /*clicked=*/false);
      return;
    }
  }
}

std::vector<std::string> SubscriptionFrontend::subscribed_feeds() const {
  std::vector<std::string> urls;
  urls.reserve(feed_subs_.size());
  for (const auto& [url, sub] : feed_subs_) urls.push_back(url);
  std::sort(urls.begin(), urls.end());
  return urls;
}

void SubscriptionFrontend::emit_feedback() {
  if (!feedback_sink_ || tallies_.empty()) return;
  FeedbackMsg msg;
  msg.user = user_;
  msg.rows.reserve(tallies_.size());
  for (const auto& [url, row] : tallies_) msg.rows.push_back(row);
  feedback_sink_(std::move(msg));
}

}  // namespace reef::core
