#include "reef/topic_recommender.h"

#include "feeds/feed_events_proxy.h"

namespace reef::core {

void TopicRecommender::on_click(attention::UserId user,
                                const util::Uri& uri) {
  UserState& state = users_[user];
  ++state.visits[uri.host()];
  maybe_recommend_host(state, uri.host());
}

void TopicRecommender::on_feeds_found(
    attention::UserId user, const std::string& host,
    const std::vector<std::string>& feed_urls) {
  UserState& state = users_[user];
  auto& known = state.feeds_by_host[host];
  for (const auto& url : feed_urls) {
    if (std::find(known.begin(), known.end(), url) == known.end()) {
      known.push_back(url);
    }
  }
  maybe_recommend_host(state, host);
}

void TopicRecommender::maybe_recommend_host(UserState& state,
                                            const std::string& host) {
  const auto visits_it = state.visits.find(host);
  if (visits_it == state.visits.end() ||
      visits_it->second < config_.min_site_visits) {
    return;
  }
  const auto feeds_it = state.feeds_by_host.find(host);
  if (feeds_it == state.feeds_by_host.end()) return;
  for (const auto& url : feeds_it->second) {
    if (state.recommended.contains(url) || state.retracted.contains(url)) {
      continue;
    }
    state.recommended.insert(url);
    ++state.total_subscribes;
    Recommendation rec;
    rec.action = RecAction::kSubscribe;
    rec.filter = feeds::feed_filter(url);
    rec.feed_url = url;
    rec.reason = "feed on site visited " +
                 std::to_string(visits_it->second) + " times";
    rec.score = static_cast<double>(visits_it->second);
    state.pending.push_back(std::move(rec));
  }
}

void TopicRecommender::on_feedback(attention::UserId user,
                                   const std::string& feed_url,
                                   std::uint64_t delivered,
                                   std::uint64_t clicked) {
  UserState& state = users_[user];
  if (!state.recommended.contains(feed_url)) return;
  if (delivered < config_.min_deliveries_for_unsub) return;
  const double ctr =
      static_cast<double>(clicked) / static_cast<double>(delivered);
  if (ctr > config_.max_ignored_ctr) return;
  state.recommended.erase(feed_url);
  state.retracted.insert(feed_url);
  Recommendation rec;
  rec.action = RecAction::kUnsubscribe;
  rec.filter = feeds::feed_filter(feed_url);
  rec.feed_url = feed_url;
  rec.reason = "ignored " + std::to_string(delivered - clicked) + " of " +
               std::to_string(delivered) + " deliveries";
  rec.score = ctr;
  state.pending.push_back(std::move(rec));
}

std::vector<Recommendation> TopicRecommender::take(attention::UserId user) {
  const auto it = users_.find(user);
  if (it == users_.end()) return {};
  std::vector<Recommendation> out = std::move(it->second.pending);
  it->second.pending.clear();
  return out;
}

std::uint64_t TopicRecommender::total_recommended(
    attention::UserId user) const {
  const auto it = users_.find(user);
  return it == users_.end() ? 0 : it->second.total_subscribes;
}

}  // namespace reef::core
