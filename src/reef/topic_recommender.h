// Topic-based subscription recommender (§3.2).
//
// Tracks, per user, how often each Web server was visited and which feeds
// were discovered there (by the crawler centrally or the cache-parser
// locally). When a server crosses the visit threshold, its feeds become
// subscribe recommendations — each feed recommended at most once per
// user. Closed-loop feedback (deliveries vs. clicks per subscription)
// produces unsubscribe recommendations for feeds the user keeps ignoring,
// implementing §2.2's "closed-loop system that requires no explicit user
// feedback".
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "attention/click.h"
#include "reef/recommendation.h"

namespace reef::core {

class TopicRecommender {
 public:
  struct Config {
    /// A server's feeds are recommended once the user visited it this
    /// many times ("users tend to visit the same sources repeatedly").
    std::uint64_t min_site_visits = 2;
    /// Unsubscribe when at least this many events were delivered...
    std::uint64_t min_deliveries_for_unsub = 12;
    /// ...and the click-through rate stayed below this bound.
    double max_ignored_ctr = 0.05;
  };

  TopicRecommender() = default;
  explicit TopicRecommender(Config config) : config_(config) {}

  /// Feed one user click (visit counting).
  void on_click(attention::UserId user, const util::Uri& uri);

  /// Report feeds discovered on `host` (crawler / cache-parser output).
  void on_feeds_found(attention::UserId user, const std::string& host,
                      const std::vector<std::string>& feed_urls);

  /// Closed-loop statistics for an active feed subscription.
  void on_feedback(attention::UserId user, const std::string& feed_url,
                   std::uint64_t delivered, std::uint64_t clicked);

  /// Drains pending recommendations for `user`.
  std::vector<Recommendation> take(attention::UserId user);

  /// Total subscribe recommendations ever produced for `user`.
  std::uint64_t total_recommended(attention::UserId user) const;

  const Config& config() const noexcept { return config_; }

 private:
  struct UserState {
    std::unordered_map<std::string, std::uint64_t> visits;       // host -> n
    std::unordered_map<std::string, std::vector<std::string>> feeds_by_host;
    std::unordered_set<std::string> recommended;  // feed URLs, sub'd once
    std::unordered_set<std::string> retracted;    // don't re-recommend
    std::vector<Recommendation> pending;
    std::uint64_t total_subscribes = 0;
  };

  void maybe_recommend_host(UserState& state, const std::string& host);

  Config config_;
  std::unordered_map<attention::UserId, UserState> users_;
};

}  // namespace reef::core
