// Manual-subscription baseline.
//
// The paper's motivation (§1) is that "having to manage subscriptions
// manually ... can discourage users from using a notification system".
// This baseline models what a diligent-but-human user achieves without
// Reef: they only subscribe to a feed when a site has become an obvious
// habit (many visits) AND they notice the feed (probabilistic, since feed
// autodiscovery is invisible in most browsers). Comparing its discovered-
// feed count and time-to-subscribe against the automatic recommender
// quantifies the benefit of automation.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "attention/click.h"
#include "util/rng.h"

namespace reef::core {

class ManualSubscriptionBaseline {
 public:
  struct Config {
    /// A human only bothers after this many visits to the same site.
    std::uint64_t visits_to_notice = 10;
    /// Even then, the feed icon is noticed with this probability per
    /// qualifying visit.
    double notice_probability = 0.15;
    std::uint64_t seed = 0x3a2a1;
  };

  ManualSubscriptionBaseline();
  explicit ManualSubscriptionBaseline(Config config);

  /// Feed one visit; `feeds_on_site` is what autodiscovery would expose.
  /// Returns the feeds the user subscribes to at this moment (usually
  /// empty).
  std::vector<std::string> on_visit(
      attention::UserId user, const std::string& host,
      const std::vector<std::string>& feeds_on_site, sim::Time now);

  std::size_t subscriptions(attention::UserId user) const;
  /// Time of each manual subscription (for time-to-subscribe comparisons).
  const std::vector<std::pair<std::string, sim::Time>>& log(
      attention::UserId user) const;

 private:
  struct UserState {
    std::unordered_map<std::string, std::uint64_t> visits;
    std::unordered_set<std::string> subscribed;
    std::vector<std::pair<std::string, sim::Time>> log;
  };

  Config config_;
  util::Rng rng_;
  std::unordered_map<attention::UserId, UserState> users_;
  static const std::vector<std::pair<std::string, sim::Time>> kEmptyLog;
};

}  // namespace reef::core
