#include "reef/distributed.h"

#include <any>

#include "util/log.h"

namespace reef::core {

DistributedPeer::DistributedPeer(sim::Simulator& sim, sim::Network& net,
                                 const web::SyntheticWeb& web,
                                 pubsub::Broker& broker,
                                 attention::UserId user, Config config)
    : sim_(sim),
      net_(net),
      web_(web),
      user_(user),
      config_(config),
      cache_(config.cache_pages),
      frontend_(sim, net, broker, user, config.frontend),
      recorder_(sim, user, config.recorder,
                // The sink stays local: clicks are processed on-host and
                // never leave the machine.
                [this](attention::ClickBatch&& batch) {
                  for (const auto& click : batch.clicks) {
                    process_click(click);
                  }
                  apply_pending();
                }),
      topic_(config.topic),
      content_(config.content),
      update_filter_(config.update_filter) {
  id_ = net_.attach(*this, "peer-" + std::to_string(user));
  frontend_.set_attention_hook(
      [this](const util::Uri& uri) { browse(uri, true); });
  if (config_.update_filter.min_score > 0.0) {
    // §3.2 extension: judge every incoming event against the profile the
    // content recommender accumulates from this user's own pages.
    frontend_.set_display_predicate([this](const pubsub::Event& event) {
      const auto* profile = content_.user_stats(user_);
      if (profile == nullptr) return true;
      return update_filter_.should_display(event, *profile,
                                           content_.background());
    });
  }
  frontend_.set_feedback_sink(
      [this](FeedbackMsg&& msg) {
        for (const auto& row : msg.rows) {
          topic_.on_feedback(user_, row.feed_url, row.delivered, row.clicked);
        }
        apply_pending();
      },
      config.feedback_interval);
  if (config_.gossip_interval > 0) {
    gossip_timer_ = sim_.every(config_.gossip_interval,
                               config_.gossip_interval,
                               [this] { send_gossip(); });
  }
}

DistributedPeer::~DistributedPeer() {
  if (gossip_timer_ != 0) sim_.cancel(gossip_timer_);
}

void DistributedPeer::add_group_peer(sim::NodeId peer) {
  group_peers_.push_back(peer);
}

void DistributedPeer::browse(const util::Uri& uri, bool from_notification) {
  if (const auto page = web_.fetch(uri)) cache_.put(*page);
  recorder_.record(uri, from_notification);
}

void DistributedPeer::process_click(const attention::Click& click) {
  ++visits_[click.uri.host()];
  topic_.on_click(user_, click.uri);
  if (classifier_.should_skip(click.uri.host())) return;
  // Parse from the browser cache — no crawl traffic (§4).
  auto page = cache_.get(click.uri);
  if (!page) {
    ++stats_.cache_misses_skipped;
    return;
  }
  ++stats_.pages_parsed_from_cache;
  const web::Site* site = page->site;
  if (site != nullptr && site->kind != web::SiteKind::kContent) {
    classifier_.record(click.uri.host(), site->kind == web::SiteKind::kAd
                                             ? web::HostFlag::kAd
                                             : web::HostFlag::kSpam);
    return;
  }
  attention::Click click_copy = click;
  const auto tokens = feed_parser_.parse(click_copy, &*page);
  std::vector<std::string> feed_urls;
  feed_urls.reserve(tokens.size());
  for (const auto& token : tokens) {
    if (token.name == "feed") feed_urls.push_back(token.value.as_string());
  }
  if (!feed_urls.empty()) {
    topic_.on_feeds_found(user_, click.uri.host(), feed_urls);
  }
  if (!page->terms.empty()) content_.add_page(user_, page->terms);
}

void DistributedPeer::apply_pending() {
  frontend_.apply_all(topic_.take(user_));
}

void DistributedPeer::send_gossip() {
  if (group_peers_.empty()) return;
  GossipMsg msg;
  msg.user = user_;
  // The frontend is authoritative for what is actually subscribed.
  msg.feeds = frontend_.subscribed_feeds();
  if (msg.feeds.empty()) return;
  for (const sim::NodeId peer : group_peers_) {
    GossipMsg copy = msg;
    const std::size_t bytes = copy.wire_size();
    ++stats_.gossip_sent;
    net_.send(id_, peer, std::string(kTypeGossip), std::move(copy), bytes);
  }
}

void DistributedPeer::handle_message(const sim::Message& msg) {
  if (msg.type != kTypeGossip) {
    util::log_warn("peer") << "unknown message " << msg.type;
    return;
  }
  const auto& gossip = std::any_cast<const GossipMsg&>(msg.payload);
  ++stats_.gossip_received;
  for (const auto& url : gossip.feeds) {
    if (frontend_.is_subscribed_to_feed(url)) continue;
    const auto uri = util::Uri::parse(url);
    if (!uri) continue;
    const auto it = visits_.find(uri->host());
    const std::uint64_t local_visits = it == visits_.end() ? 0 : it->second;
    if (local_visits < config_.gossip_min_visits) continue;
    Recommendation rec;
    rec.action = RecAction::kSubscribe;
    rec.filter = feeds::feed_filter(url);
    rec.feed_url = url;
    rec.reason = "gossiped by peer " + std::to_string(gossip.user);
    rec.score = static_cast<double>(local_visits);
    ++stats_.gossip_adopted;
    frontend_.apply(rec);
  }
}

std::uint64_t DistributedPeer::visits(const std::string& host) const {
  const auto it = visits_.find(host);
  return it == visits_.end() ? 0 : it->second;
}

}  // namespace reef::core
