#include "reef/collaborative.h"

#include <algorithm>

#include "feeds/feed_events_proxy.h"

namespace reef::core {

void GroupProfiler::set_profile(attention::UserId user,
                                std::unordered_set<std::string> interests) {
  profiles_[user] = std::move(interests);
}

double GroupProfiler::similarity(attention::UserId a,
                                 attention::UserId b) const {
  const auto it_a = profiles_.find(a);
  const auto it_b = profiles_.find(b);
  if (it_a == profiles_.end() || it_b == profiles_.end()) return 0.0;
  const auto& small = it_a->second.size() <= it_b->second.size()
                          ? it_a->second
                          : it_b->second;
  const auto& large = it_a->second.size() <= it_b->second.size()
                          ? it_b->second
                          : it_a->second;
  if (large.empty()) return 0.0;
  std::size_t common = 0;
  for (const auto& key : small) {
    if (large.contains(key)) ++common;
  }
  const std::size_t unioned = small.size() + large.size() - common;
  return unioned == 0 ? 0.0
                      : static_cast<double>(common) /
                            static_cast<double>(unioned);
}

std::vector<std::vector<attention::UserId>> GroupProfiler::groups() const {
  std::vector<attention::UserId> users;
  users.reserve(profiles_.size());
  for (const auto& [user, profile] : profiles_) users.push_back(user);
  std::sort(users.begin(), users.end());

  std::vector<std::vector<attention::UserId>> out;
  std::unordered_set<attention::UserId> assigned;
  for (const attention::UserId seed : users) {
    if (assigned.contains(seed)) continue;
    std::vector<attention::UserId> group{seed};
    assigned.insert(seed);
    for (const attention::UserId candidate : users) {
      if (assigned.contains(candidate)) continue;
      if (similarity(seed, candidate) >= config_.similarity_threshold) {
        group.push_back(candidate);
        assigned.insert(candidate);
      }
    }
    out.push_back(std::move(group));
  }
  return out;
}

std::vector<Recommendation> GroupProfiler::recommend_for(
    attention::UserId user) const {
  const auto profile_it = profiles_.find(user);
  if (profile_it == profiles_.end()) return {};

  // Find the user's group.
  std::vector<attention::UserId> peers;
  for (const auto& group : groups()) {
    if (std::find(group.begin(), group.end(), user) != group.end()) {
      peers = group;
      break;
    }
  }

  // Count supporters per feed among the peers (excluding the user).
  std::unordered_map<std::string, std::uint32_t> support;
  for (const attention::UserId peer : peers) {
    if (peer == user) continue;
    for (const auto& feed : profiles_.at(peer)) ++support[feed];
  }

  std::vector<Recommendation> recs;
  for (const auto& [feed, supporters] : support) {
    if (supporters < config_.min_supporters) continue;
    if (profile_it->second.contains(feed)) continue;
    Recommendation rec;
    rec.action = RecAction::kSubscribe;
    rec.filter = feeds::feed_filter(feed);
    rec.feed_url = feed;
    rec.reason = "popular in interest group (" +
                 std::to_string(supporters) + " members)";
    rec.score = supporters;
    recs.push_back(std::move(rec));
  }
  std::sort(recs.begin(), recs.end(),
            [](const Recommendation& a, const Recommendation& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.feed_url < b.feed_url;
            });
  return recs;
}

}  // namespace reef::core
