// A peer in the *distributed* design (Fig. 2, §4): attention recorder,
// attention parser, recommendation service AND subscription frontend all
// run on the user's host. Attention data never leaves the machine; pages
// are parsed out of the browser cache instead of being re-crawled; the
// only inter-peer traffic is the optional recommendation gossip within an
// interest group (§5.2).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "attention/parser.h"
#include "attention/recorder.h"
#include "reef/content_recommender.h"
#include "reef/frontend.h"
#include "reef/topic_recommender.h"
#include "reef/update_filter.h"
#include "sim/network.h"
#include "web/browser_cache.h"
#include "web/ad_classifier.h"
#include "web/web.h"

namespace reef::core {

/// Peer-to-peer profile exchange: the sender's current feed set.
struct GossipMsg {
  attention::UserId user = 0;
  std::vector<std::string> feeds;

  std::size_t wire_size() const noexcept {
    std::size_t bytes = 16;
    for (const auto& f : feeds) bytes += f.size() + 4;
    return bytes;
  }
};

inline constexpr std::string_view kTypeGossip = "reef.gossip";

class DistributedPeer final : public sim::Node {
 public:
  struct Config {
    attention::AttentionRecorder::Config recorder;
    SubscriptionFrontend::Config frontend;
    TopicRecommender::Config topic;
    ContentRecommender::Config content;
    /// Profile gossip period within the interest group (0 = disabled).
    sim::Time gossip_interval = 12 * sim::kHour;
    sim::Time feedback_interval = 12 * sim::kHour;
    std::size_t cache_pages = 4000;
    /// Adopt a gossiped feed when its site was visited at least this many
    /// times locally (the peer signal substitutes for repeat visits).
    std::uint64_t gossip_min_visits = 1;
    /// Attention-based update filtering (§3.2 extension). min_score 0
    /// (default) disables it; positive values suppress events whose text
    /// does not resemble the user's attention profile.
    UpdateFilter::Config update_filter{.min_score = 0.0};
  };

  struct Stats {
    std::uint64_t pages_parsed_from_cache = 0;
    std::uint64_t cache_misses_skipped = 0;
    std::uint64_t gossip_sent = 0;
    std::uint64_t gossip_received = 0;
    std::uint64_t gossip_adopted = 0;
  };

  DistributedPeer(sim::Simulator& sim, sim::Network& net,
                  const web::SyntheticWeb& web, pubsub::Broker& broker,
                  attention::UserId user, Config config);
  ~DistributedPeer();
  DistributedPeer(const DistributedPeer&) = delete;
  DistributedPeer& operator=(const DistributedPeer&) = delete;

  sim::NodeId id() const noexcept { return id_; }
  attention::UserId user() const noexcept { return user_; }

  void set_proxy(sim::NodeId proxy) { frontend_.set_proxy(proxy); }
  /// Adds a group member to gossip with (their node id).
  void add_group_peer(sim::NodeId peer);

  /// One browser navigation; the entire Reef pipeline runs locally.
  void browse(const util::Uri& uri, bool from_notification = false);

  void handle_message(const sim::Message& msg) override;

  SubscriptionFrontend& frontend() noexcept { return frontend_; }
  attention::AttentionRecorder& recorder() noexcept { return recorder_; }
  TopicRecommender& topic_recommender() noexcept { return topic_; }
  ContentRecommender& content_recommender() noexcept { return content_; }
  const UpdateFilter& update_filter() const noexcept {
    return update_filter_;
  }
  web::BrowserCache& cache() noexcept { return cache_; }
  const Stats& stats() const noexcept { return stats_; }
  /// Host visit counts (used by tests and the gossip-adoption policy).
  std::uint64_t visits(const std::string& host) const;

 private:
  void process_click(const attention::Click& click);
  void apply_pending();
  void send_gossip();

  sim::Simulator& sim_;
  sim::Network& net_;
  const web::SyntheticWeb& web_;
  attention::UserId user_;
  sim::NodeId id_;
  Config config_;

  web::BrowserCache cache_;
  web::AdClassifier classifier_;
  attention::FeedUrlParser feed_parser_;
  SubscriptionFrontend frontend_;
  attention::AttentionRecorder recorder_;
  TopicRecommender topic_;
  ContentRecommender content_;
  UpdateFilter update_filter_;

  std::unordered_map<std::string, std::uint64_t> visits_;
  std::vector<sim::NodeId> group_peers_;
  sim::TimerId gossip_timer_ = 0;
  Stats stats_;
};

}  // namespace reef::core
