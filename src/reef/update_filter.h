// Attention-based filtering of updates — the §3.2 future-work item:
// "Even though most feeds are updated infrequently, we still found enough
//  feeds to overwhelm any user with updates. We are currently
//  investigating approaches to using attention data for filtering of
//  updates and for removing subscriptions."
//
// The unsubscription half is the closed loop in TopicRecommender; this is
// the filtering half: each incoming event's text is scored against the
// user's term profile (the same attention-derived statistics the content
// recommender maintains), and events below a relevance threshold are
// suppressed from the sidebar instead of competing for the user's
// attention.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/term_weighting.h"
#include "pubsub/event.h"

namespace reef::core {

class UpdateFilter {
 public:
  struct Config {
    /// Events scoring below this are suppressed. 0 disables filtering.
    double min_score = 0.35;
    /// Terms with fewer user occurrences than this carry no evidence
    /// (guards against one-off noise in the profile).
    std::uint32_t min_profile_tf = 2;
  };

  struct Stats {
    std::uint64_t scored = 0;
    std::uint64_t suppressed = 0;
  };

  UpdateFilter() = default;
  explicit UpdateFilter(Config config) : config_(config) {}

  /// Relevance of a term sequence to the user profile: the mean, over the
  /// event's terms, of the user's affinity for the term discounted by how
  /// common the term is in the background collection. Roughly "how much
  /// of this text is vocabulary this user dwells on".
  static double score(const std::vector<std::string>& terms,
                      const ir::TermStatsAccumulator& user,
                      const ir::TermStatsAccumulator& background,
                      std::uint32_t min_profile_tf = 2);

  /// Splits an event's "text" attribute and scores it. Events without a
  /// text attribute pass (nothing to judge them by).
  bool should_display(const pubsub::Event& event,
                      const ir::TermStatsAccumulator& user,
                      const ir::TermStatsAccumulator& background);

  const Config& config() const noexcept { return config_; }
  const Stats& stats() const noexcept { return stats_; }

 private:
  Config config_;
  Stats stats_;
};

}  // namespace reef::core
