#include "web/topic_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

namespace reef::web {

namespace {
// Syllable inventory for pronounceable, stem-stable synthetic words.
// All syllables are consonant+vowel(+consonant) so Porter stemming leaves
// the generated words untouched in practice.
constexpr const char* kOnsets[] = {"b",  "d",  "f",  "g",  "k",  "l",
                                   "m",  "n",  "p",  "r",  "s",  "t",
                                   "v",  "z",  "br", "dr", "gr", "kr",
                                   "pl", "st", "tr", "sk"};
constexpr const char* kNuclei[] = {"a", "e", "i", "o", "u", "ai", "ou", "ea"};
constexpr const char* kCodas[] = {"",  "n", "m", "r", "l",
                                  "k", "t", "x", "th"};
}  // namespace

Vocabulary::Vocabulary(std::size_t size, std::uint64_t seed) {
  words_.reserve(size);
  util::Rng rng(seed);
  std::unordered_set<std::string> seen;
  // Deterministic generation with rejection of duplicates and of words that
  // collide with stopwords.
  while (words_.size() < size) {
    std::string word;
    const std::size_t syllables = 2 + rng.index(2);  // 2-3 syllables
    for (std::size_t s = 0; s < syllables; ++s) {
      word += kOnsets[rng.index(std::size(kOnsets))];
      word += kNuclei[rng.index(std::size(kNuclei))];
      if (s + 1 == syllables) word += kCodas[rng.index(std::size(kCodas))];
    }
    if (!seen.insert(word).second) continue;
    words_.push_back(std::move(word));
  }
}

double TopicMixture::similarity(const TopicMixture& a, const TopicMixture& b) {
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (const auto& [topic_a, weight_a] : a.components) {
    na += weight_a * weight_a;
    for (const auto& [topic_b, weight_b] : b.components) {
      if (topic_a == topic_b) dot += weight_a * weight_b;
    }
  }
  for (const auto& [topic_b, weight_b] : b.components) nb += weight_b * weight_b;
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

TopicModel::TopicModel() : TopicModel(Config{}) {}

TopicModel::TopicModel(Config config)
    : config_(config),
      vocab_(config.vocabulary_size, config.seed ^ 0x5a5a5a5a),
      topic_word_sampler_(config.words_per_topic, config.topic_zipf),
      background_sampler_(config.vocabulary_size, config.background_zipf) {
  if (config_.words_per_topic > config_.vocabulary_size) {
    throw std::invalid_argument("words_per_topic exceeds vocabulary");
  }
  util::Rng rng(config.seed);

  // Background order: fixed permutation so that background popularity is
  // unrelated to word index (and thus to topic membership).
  background_order_.resize(config_.vocabulary_size);
  std::iota(background_order_.begin(), background_order_.end(), 0u);
  rng.shuffle(background_order_);

  // Each topic samples its core words without replacement from the whole
  // vocabulary; overlap between topics arises naturally by collision.
  topic_words_.resize(config_.topic_count);
  for (auto& words : topic_words_) {
    std::vector<std::uint32_t> all(config_.vocabulary_size);
    std::iota(all.begin(), all.end(), 0u);
    // Partial Fisher-Yates: take the first words_per_topic of a shuffle.
    for (std::size_t i = 0; i < config_.words_per_topic; ++i) {
      const std::size_t j = i + rng.index(all.size() - i);
      std::swap(all[i], all[j]);
    }
    words.assign(all.begin(),
                 all.begin() + static_cast<std::ptrdiff_t>(
                                   config_.words_per_topic));
  }
}

const std::string& TopicModel::sample_topic_word(TopicId topic,
                                                 util::Rng& rng) const {
  const auto& words = topic_words_.at(topic);
  return vocab_.word(words[topic_word_sampler_.sample(rng)]);
}

const std::string& TopicModel::sample_background_word(util::Rng& rng) const {
  return vocab_.word(background_order_[background_sampler_.sample(rng)]);
}

std::vector<std::string> TopicModel::generate_terms(
    const TopicMixture& mixture, std::size_t length,
    double background_fraction, util::Rng& rng) const {
  std::vector<std::string> terms;
  terms.reserve(length);
  std::vector<double> weights;
  weights.reserve(mixture.components.size());
  for (const auto& [topic, weight] : mixture.components) {
    weights.push_back(weight);
  }
  const bool has_topics = !weights.empty();
  const util::DiscreteSampler component_sampler =
      has_topics ? util::DiscreteSampler(weights)
                 : util::DiscreteSampler(std::vector<double>{1.0});
  for (std::size_t i = 0; i < length; ++i) {
    if (!has_topics || rng.chance(background_fraction)) {
      terms.push_back(sample_background_word(rng));
    } else {
      const std::size_t component = component_sampler.sample(rng);
      terms.push_back(
          sample_topic_word(mixture.components[component].first, rng));
    }
  }
  return terms;
}

TopicMixture TopicModel::random_mixture(std::size_t k, util::Rng& rng,
                                        double decay) const {
  k = std::min(k, topic_count());
  TopicMixture mixture;
  std::vector<bool> used(topic_count(), false);
  double total = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    TopicId topic = 0;
    do {
      topic = static_cast<TopicId>(rng.index(topic_count()));
    } while (used[topic]);
    used[topic] = true;
    // Exponentially decaying weights give one dominant interest plus minor
    // ones, matching how the paper describes diverse user interests.
    const double weight = std::pow(decay, static_cast<double>(i)) *
                          (0.75 + 0.5 * rng.uniform01());
    mixture.components.emplace_back(topic, weight);
    total += weight;
  }
  for (auto& [topic, weight] : mixture.components) weight /= total;
  std::sort(mixture.components.begin(), mixture.components.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return mixture;
}

std::vector<std::string> TopicModel::topic_core(TopicId topic,
                                                std::size_t top_n) const {
  const auto& words = topic_words_.at(topic);
  std::vector<std::string> out;
  const std::size_t n = std::min(top_n, words.size());
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(vocab_.word(words[i]));
  return out;
}

}  // namespace reef::web
