#include "web/web.h"

#include <cassert>

#include "util/hash.h"

namespace reef::web {

const char* site_kind_name(SiteKind kind) noexcept {
  switch (kind) {
    case SiteKind::kContent:
      return "content";
    case SiteKind::kAd:
      return "ad";
    case SiteKind::kSpam:
      return "spam";
  }
  return "?";
}

namespace {

// Host-name fragments. Content hosts look like "daily-copper.example.org";
// ad hosts deliberately carry the tell-tale substrings real ad/tracking
// networks use, which the heuristic side of the AdClassifier keys on.
constexpr const char* kContentWords[] = {
    "daily",  "copper", "north",  "harbor", "pixel",  "river", "summit",
    "cedar",  "falcon", "lumen",  "quartz", "ember",  "atlas", "breeze",
    "violet", "marble", "meadow", "comet",  "signal", "fjord", "tundra",
    "aurora", "bright", "canyon", "delta",  "ridge",  "polar", "sable"};
constexpr const char* kContentTlds[] = {"example.org", "example.com",
                                        "example.net", "example.no"};
constexpr const char* kAdPatterns[] = {"ads",     "adserv", "track",
                                       "metrics", "banner", "click",
                                       "pixel-tag", "doubleplus"};
constexpr const char* kSpamPatterns[] = {"free-prize", "casino-win",
                                         "cheap-deal", "best-offer"};

std::string make_content_host(std::uint32_t index, util::Rng& rng) {
  std::string host;
  host += kContentWords[rng.index(std::size(kContentWords))];
  host += '-';
  host += kContentWords[rng.index(std::size(kContentWords))];
  host += std::to_string(index);
  host += '.';
  host += kContentTlds[rng.index(std::size(kContentTlds))];
  return host;
}

std::string make_ad_host(std::uint32_t index, util::Rng& rng) {
  std::string host;
  host += kAdPatterns[rng.index(std::size(kAdPatterns))];
  host += std::to_string(index);
  host += ".example-net.com";
  return host;
}

std::string make_spam_host(std::uint32_t index, util::Rng& rng) {
  std::string host;
  host += kSpamPatterns[rng.index(std::size(kSpamPatterns))];
  host += std::to_string(index);
  host += ".example-biz.com";
  return host;
}

}  // namespace

SyntheticWeb::SyntheticWeb(const TopicModel& topics, Config config)
    : topics_(topics), config_(config) {
  build_sites(config);
}

void SyntheticWeb::build_sites(Config config) {
  util::Rng rng(config.seed);
  sites_.reserve(config.content_sites + config.ad_sites + config.spam_sites);

  for (std::size_t i = 0; i < config.content_sites; ++i) {
    Site site;
    site.index = static_cast<std::uint32_t>(sites_.size());
    site.host = make_content_host(site.index, rng);
    site.kind = SiteKind::kContent;
    const std::size_t topic_k = 1 + rng.index(config.max_topics_per_site);
    site.topics = topics_.random_mixture(topic_k, rng);
    site.multimedia = rng.chance(config.multimedia_fraction);
    if (rng.chance(config.feed_site_fraction)) {
      // Geometric-ish count with the configured mean, clamped to [1, 3].
      std::size_t feeds = 1;
      while (feeds < 3 &&
             rng.chance((config.mean_feeds_per_site - 1.0) / 2.0)) {
        ++feeds;
      }
      static constexpr const char* kFeedNames[] = {"index", "news",
                                                   "comments"};
      for (std::size_t f = 0; f < feeds; ++f) {
        site.feed_urls.push_back("http://" + site.host + "/feeds/" +
                                 kFeedNames[f] + ".rss");
      }
      total_feeds_ += feeds;
    }
    content_indices_.push_back(site.index);
    by_host_.emplace(site.host, site.index);
    sites_.push_back(std::move(site));
    ++content_count_;
  }

  for (std::size_t i = 0; i < config.ad_sites; ++i) {
    Site site;
    site.index = static_cast<std::uint32_t>(sites_.size());
    site.host = make_ad_host(site.index, rng);
    site.kind = SiteKind::kAd;
    ad_indices_.push_back(site.index);
    by_host_.emplace(site.host, site.index);
    sites_.push_back(std::move(site));
    ++ad_count_;
  }

  for (std::size_t i = 0; i < config.spam_sites; ++i) {
    Site site;
    site.index = static_cast<std::uint32_t>(sites_.size());
    site.host = make_spam_host(site.index, rng);
    site.kind = SiteKind::kSpam;
    by_host_.emplace(site.host, site.index);
    sites_.push_back(std::move(site));
  }
}

const Site* SyntheticWeb::find_site(std::string_view host) const {
  const auto it = by_host_.find(std::string(host));
  return it == by_host_.end() ? nullptr : &sites_[it->second];
}

util::Uri SyntheticWeb::page_uri(const Site& site,
                                 std::uint64_t page_number) const {
  return util::Uri::from_parts("http", site.host, 0,
                               "/page/" + std::to_string(page_number), "");
}

std::optional<WebPage> SyntheticWeb::fetch(const util::Uri& uri) const {
  const Site* site = find_site(uri.host());
  if (site == nullptr) return std::nullopt;

  WebPage page;
  page.uri = uri;
  page.site = site;

  // Deterministic per-page stream: content depends only on the URI.
  util::Rng rng(util::fnv1a64(uri.to_string()) ^ config_.seed);

  if (site->kind != SiteKind::kContent) {
    // Ad and spam responses are tiny and content-free.
    page.bytes = 200 + rng.index(800);
    return page;
  }
  if (site->multimedia) {
    page.bytes = 100'000 + rng.index(900'000);
    page.feed_links = site->feed_urls;
    return page;  // no text terms: flagged as multimedia, not indexed
  }
  const std::size_t length =
      config_.page_length_min +
      rng.index(config_.page_length_max - config_.page_length_min + 1);
  page.terms = topics_.generate_terms(site->topics, length,
                                      config_.page_background_fraction, rng);
  page.feed_links = site->feed_urls;
  page.bytes = 2'000 + 8 * length + rng.index(4'000);
  return page;
}

}  // namespace reef::web
