// Ad/spam/multimedia classification of visited hosts (§3.1).
//
// The paper's crawler analyzes fetched pages, "looks for ad servers and
// spam sites, as well as multimedia, and flags them as such in the
// database, ensuring they will not be crawled again". We model that as a
// heuristic host classifier (pattern rules, like public ad-block lists)
// plus a persistent flag store fed by crawl results; once flagged, a host
// is never re-crawled.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

namespace reef::web {

enum class HostFlag : std::uint8_t {
  kUnknown,
  kClean,
  kAd,
  kSpam,
  kMultimedia,
};

const char* host_flag_name(HostFlag flag) noexcept;

class AdClassifier {
 public:
  /// Pure-pattern heuristic on the host name (stateless): returns kAd or
  /// kSpam when a known pattern matches, kUnknown otherwise.
  static HostFlag classify_host_name(std::string_view host) noexcept;

  /// Current flag for a host (kUnknown if never seen).
  HostFlag flag(std::string_view host) const;

  /// Records a flag for a host (crawler feedback). Flags only escalate:
  /// once ad/spam/multimedia, a host never reverts to clean.
  void record(std::string_view host, HostFlag flag);

  /// True when the host should be skipped by the crawler (flagged
  /// ad/spam/multimedia, either by pattern or by record()).
  bool should_skip(std::string_view host) const;

  std::size_t flagged_count() const noexcept;
  std::size_t known_count() const noexcept { return flags_.size(); }

 private:
  std::unordered_map<std::string, HostFlag> flags_;
};

}  // namespace reef::web
