#include "web/crawler.h"

namespace reef::web {

Crawler::Crawler(const SyntheticWeb& web) : web_(web) {}

CrawlResult Crawler::crawl(const util::Uri& uri) {
  CrawlResult result;
  result.uri = uri;
  ++stats_.requested;

  if (classifier_.should_skip(uri.host())) {
    result.host_flag = classifier_.flag(uri.host());
    if (result.host_flag == HostFlag::kUnknown) {
      result.host_flag = AdClassifier::classify_host_name(uri.host());
    }
    ++stats_.skipped_flagged;
    return result;
  }
  if (!crawled_.insert(uri.to_string()).second) {
    ++stats_.skipped_duplicate;
    result.duplicate = true;
    result.host_flag = classifier_.flag(uri.host());
    return result;
  }

  const auto page = web_.fetch(uri);
  if (!page) {
    ++stats_.unknown_host;
    return result;
  }
  result.fetched = true;
  result.bytes = page->bytes;
  ++stats_.fetched;
  stats_.bytes_fetched += page->bytes;

  // Classify from the fetched page (ground truth is visible to the crawler
  // the same way a human-built rule set would see it: by site behaviour).
  switch (page->site->kind) {
    case SiteKind::kAd:
      result.host_flag = HostFlag::kAd;
      break;
    case SiteKind::kSpam:
      result.host_flag = HostFlag::kSpam;
      break;
    case SiteKind::kContent:
      result.host_flag =
          page->site->multimedia ? HostFlag::kMultimedia : HostFlag::kClean;
      break;
  }
  classifier_.record(uri.host(), result.host_flag);

  if (result.host_flag == HostFlag::kClean ||
      result.host_flag == HostFlag::kMultimedia) {
    result.feed_urls = page->feed_links;
    stats_.feeds_found += page->feed_links.size();
    result.terms = page->terms;
  }
  return result;
}

std::vector<CrawlResult> Crawler::crawl_batch(
    const std::vector<util::Uri>& uris) {
  std::vector<CrawlResult> results;
  results.reserve(uris.size());
  for (const auto& uri : uris) results.push_back(crawl(uri));
  return results;
}

}  // namespace reef::web
