// Per-user browser cache (§4): in the distributed design "crawling of
// documents fetched by the user is typically unnecessary as they may be
// available from the browser's cache. Thus, network load is reduced."
//
// LRU cache keyed by URI; the distributed Reef peer consults it before
// issuing any network fetch, and the hit/miss counters feed the E4
// centralized-vs-distributed network-load comparison.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "web/web.h"

namespace reef::web {

class BrowserCache {
 public:
  /// `capacity` = maximum cached pages (LRU eviction).
  explicit BrowserCache(std::size_t capacity = 5000);

  /// Records a page the browser just rendered.
  void put(const WebPage& page);

  /// Cache lookup; refreshes recency on hit.
  std::optional<WebPage> get(const util::Uri& uri);

  bool contains(const util::Uri& uri) const;

  std::size_t size() const noexcept { return map_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  double hit_rate() const noexcept {
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) /
                                  static_cast<double>(total);
  }

 private:
  struct Entry {
    std::string key;
    WebPage page;
  };

  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace reef::web
