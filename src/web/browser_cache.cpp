#include "web/browser_cache.h"

namespace reef::web {

BrowserCache::BrowserCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void BrowserCache::put(const WebPage& page) {
  const std::string key = page.uri.to_string();
  if (const auto it = map_.find(key); it != map_.end()) {
    it->second->page = page;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, page});
  map_.emplace(key, lru_.begin());
  if (map_.size() > capacity_) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

std::optional<WebPage> BrowserCache::get(const util::Uri& uri) {
  const auto it = map_.find(uri.to_string());
  if (it == map_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->page;
}

bool BrowserCache::contains(const util::Uri& uri) const {
  return map_.contains(uri.to_string());
}

}  // namespace reef::web
