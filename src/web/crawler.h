// The Reef server's crawler (§3.1): retrieves pages the users visited,
// classifies hosts (ad / spam / multimedia), extracts feed autodiscovery
// links and page keywords, and never re-crawls flagged hosts or
// already-crawled URIs.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "web/ad_classifier.h"
#include "web/web.h"

namespace reef::web {

/// Outcome of crawling one URI.
struct CrawlResult {
  util::Uri uri;
  HostFlag host_flag = HostFlag::kUnknown;
  bool fetched = false;            ///< false when skipped or unknown host
  bool duplicate = false;          ///< true when the URI was crawled before
  bool from_cache = false;         ///< true when served by a BrowserCache
  std::vector<std::string> feed_urls;   ///< autodiscovery links found
  std::vector<std::string> terms;       ///< analyzed page terms
  std::size_t bytes = 0;           ///< network bytes this crawl cost
};

class Crawler {
 public:
  struct Stats {
    std::uint64_t requested = 0;     ///< URIs submitted
    std::uint64_t fetched = 0;       ///< pages actually retrieved
    std::uint64_t skipped_flagged = 0;
    std::uint64_t skipped_duplicate = 0;
    std::uint64_t unknown_host = 0;
    std::uint64_t bytes_fetched = 0;
    std::uint64_t feeds_found = 0;   ///< non-distinct autodiscovery hits
  };

  explicit Crawler(const SyntheticWeb& web);

  /// Crawls one URI, honoring the flag store and the crawled-set. The
  /// classifier is shared state: flagging feeds back into future skips.
  CrawlResult crawl(const util::Uri& uri);

  /// Batch convenience (the Reef server crawls click batches).
  std::vector<CrawlResult> crawl_batch(const std::vector<util::Uri>& uris);

  const AdClassifier& classifier() const noexcept { return classifier_; }
  const Stats& stats() const noexcept { return stats_; }

 private:
  const SyntheticWeb& web_;
  AdClassifier classifier_;
  std::unordered_set<std::string> crawled_;
  Stats stats_;
};

}  // namespace reef::web
