// Synthetic language model for the Web/video simulation.
//
// The paper's content experiments run over real Web pages and broadcast-
// news transcripts, which we do not have offline. We substitute a topic
// model: a deterministic vocabulary of pronounceable synthetic words, a
// set of topics (each a Zipf distribution over its own word subset plus
// overlap), and a background distribution. Pages and video stories draw
// their text from a topic mixture plus background noise — exactly the
// structure (topical core + common-language noise) that drives the term-
// selection and BM25 behaviour measured in §3.3.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace reef::web {

/// Deterministic synthetic vocabulary: word(i) is stable across runs and
/// platforms and tokenizes/stems to itself (lower-case letters only).
class Vocabulary {
 public:
  explicit Vocabulary(std::size_t size, std::uint64_t seed = 0x90cab);

  std::size_t size() const noexcept { return words_.size(); }
  const std::string& word(std::size_t i) const { return words_.at(i); }
  const std::vector<std::string>& words() const noexcept { return words_; }

 private:
  std::vector<std::string> words_;
};

/// Identifier of a topic within a TopicModel.
using TopicId = std::uint32_t;

/// A sparse topic mixture: (topic, weight) pairs, weights summing to ~1.
struct TopicMixture {
  std::vector<std::pair<TopicId, double>> components;

  /// Cosine-style similarity of two sparse mixtures in topic space.
  static double similarity(const TopicMixture& a, const TopicMixture& b);
};

/// K topics over a shared vocabulary. Each topic owns a "core" block of
/// words (Zipf-weighted) plus samples from the global background; text
/// generation mixes topic draws with background noise.
class TopicModel {
 public:
  struct Config {
    std::size_t vocabulary_size = 8000;
    std::size_t topic_count = 50;
    std::size_t words_per_topic = 150;
    /// Zipf exponent for within-topic word popularity.
    double topic_zipf = 1.25;
    /// Zipf exponent for the background (general-language) distribution.
    double background_zipf = 1.0;
    std::uint64_t seed = 0x70b1c;
  };

  TopicModel();
  explicit TopicModel(Config config);

  std::size_t topic_count() const noexcept { return topic_words_.size(); }
  const Vocabulary& vocabulary() const noexcept { return vocab_; }

  /// Draws one word from a topic's distribution.
  const std::string& sample_topic_word(TopicId topic, util::Rng& rng) const;

  /// Draws one word from the background distribution.
  const std::string& sample_background_word(util::Rng& rng) const;

  /// Generates `length` terms: with probability `background_fraction` a
  /// background word, otherwise a word from a mixture component chosen by
  /// weight. Returns space-joined text (feed it to ir::analyze or use the
  /// terms directly).
  std::vector<std::string> generate_terms(const TopicMixture& mixture,
                                          std::size_t length,
                                          double background_fraction,
                                          util::Rng& rng) const;

  /// Draws a random sparse mixture with `k` components (weights normalized,
  /// descending). `decay` sets how fast component weights fall off: small
  /// values give one dominant topic, values near 1 give balanced interests.
  TopicMixture random_mixture(std::size_t k, util::Rng& rng,
                              double decay = 0.55) const;

  /// The `top_n` most probable core words of a topic (for tests/debug).
  std::vector<std::string> topic_core(TopicId topic, std::size_t top_n) const;

 private:
  Config config_;
  Vocabulary vocab_;
  /// topic -> word indices (rank order: index 0 is the most likely word)
  std::vector<std::vector<std::uint32_t>> topic_words_;
  util::ZipfSampler topic_word_sampler_;
  util::ZipfSampler background_sampler_;
  /// background rank -> word index (a fixed permutation)
  std::vector<std::uint32_t> background_order_;
};

}  // namespace reef::web
