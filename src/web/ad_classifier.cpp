#include "web/ad_classifier.h"

#include <array>

#include "util/strings.h"

namespace reef::web {

const char* host_flag_name(HostFlag flag) noexcept {
  switch (flag) {
    case HostFlag::kUnknown:
      return "unknown";
    case HostFlag::kClean:
      return "clean";
    case HostFlag::kAd:
      return "ad";
    case HostFlag::kSpam:
      return "spam";
    case HostFlag::kMultimedia:
      return "multimedia";
  }
  return "?";
}

HostFlag AdClassifier::classify_host_name(std::string_view host) noexcept {
  static constexpr std::array<std::string_view, 8> kAdPatterns = {
      "ads",     "adserv",    "track", "metrics",
      "banner",  "click",     "pixel-tag", "doubleplus"};
  static constexpr std::array<std::string_view, 4> kSpamPatterns = {
      "free-prize", "casino-win", "cheap-deal", "best-offer"};
  for (const auto pattern : kSpamPatterns) {
    if (host.find(pattern) != std::string_view::npos) return HostFlag::kSpam;
  }
  for (const auto pattern : kAdPatterns) {
    if (host.find(pattern) != std::string_view::npos) return HostFlag::kAd;
  }
  return HostFlag::kUnknown;
}

HostFlag AdClassifier::flag(std::string_view host) const {
  const auto it = flags_.find(std::string(host));
  return it == flags_.end() ? HostFlag::kUnknown : it->second;
}

void AdClassifier::record(std::string_view host, HostFlag new_flag) {
  auto [it, inserted] = flags_.emplace(std::string(host), new_flag);
  if (inserted) return;
  // Escalate only: clean/unknown can become flagged, never the reverse.
  if (it->second == HostFlag::kClean || it->second == HostFlag::kUnknown) {
    it->second = new_flag;
  }
}

bool AdClassifier::should_skip(std::string_view host) const {
  const HostFlag recorded = flag(host);
  if (recorded == HostFlag::kAd || recorded == HostFlag::kSpam ||
      recorded == HostFlag::kMultimedia) {
    return true;
  }
  if (recorded == HostFlag::kClean) return false;
  const HostFlag heuristic = classify_host_name(host);
  return heuristic == HostFlag::kAd || heuristic == HostFlag::kSpam;
}

std::size_t AdClassifier::flagged_count() const noexcept {
  std::size_t n = 0;
  for (const auto& [host, flag] : flags_) {
    if (flag == HostFlag::kAd || flag == HostFlag::kSpam ||
        flag == HostFlag::kMultimedia) {
      ++n;
    }
  }
  return n;
}

}  // namespace reef::web
