// The synthetic Web: sites, pages, and deterministic page generation.
//
// Sites come in three kinds — content, ad, and spam — matching the classes
// the paper's crawler distinguishes (§3.1: "It looks for ad servers and
// spam sites, as well as multimedia, and flags them"). Content sites carry
// a topic mixture and may expose Web feeds via autodiscovery links on
// every page. Page text is generated deterministically from the page URI,
// so the centralized crawler and a user's browser cache observe identical
// content.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/rng.h"
#include "util/uri.h"
#include "web/topic_model.h"

namespace reef::web {

enum class SiteKind : std::uint8_t { kContent, kAd, kSpam };

const char* site_kind_name(SiteKind kind) noexcept;

/// Static description of one Web server.
struct Site {
  std::uint32_t index = 0;
  std::string host;
  SiteKind kind = SiteKind::kContent;
  TopicMixture topics;           ///< empty for ad/spam sites
  std::vector<std::string> feed_urls;  ///< advertised via autodiscovery
  /// True if the site mainly serves multimedia (flagged, not crawled for
  /// text). Only content sites can be multimedia.
  bool multimedia = false;
};

/// A materialized page: text terms plus autodiscovery feed links plus
/// outbound ad requests a browser would trigger when rendering it.
struct WebPage {
  util::Uri uri;
  const Site* site = nullptr;
  std::vector<std::string> terms;       ///< analyzed content terms
  std::vector<std::string> feed_links;  ///< feed URLs discoverable here
  std::size_t bytes = 0;                ///< simulated transfer size
};

/// Generator + registry for the simulated Web.
class SyntheticWeb {
 public:
  struct Config {
    std::size_t content_sites = 4200;
    std::size_t ad_sites = 2200;
    std::size_t spam_sites = 150;
    /// Fraction of content sites that expose at least one feed.
    double feed_site_fraction = 0.385;
    /// Among feed-bearing sites: expected feeds per site (1..3).
    double mean_feeds_per_site = 1.35;
    /// Fraction of content sites that are multimedia-heavy.
    double multimedia_fraction = 0.04;
    /// Topics mixed into each content site (1..k).
    std::size_t max_topics_per_site = 3;
    std::size_t page_length_min = 120;
    std::size_t page_length_max = 420;
    /// Fraction of page terms drawn from the background distribution.
    double page_background_fraction = 0.45;
    std::uint64_t seed = 0x3eb517e5;
  };

  SyntheticWeb(const TopicModel& topics, Config config);

  const TopicModel& topic_model() const noexcept { return topics_; }

  std::size_t site_count() const noexcept { return sites_.size(); }
  std::size_t content_site_count() const noexcept { return content_count_; }
  std::size_t ad_site_count() const noexcept { return ad_count_; }

  const Site& site(std::size_t index) const { return sites_.at(index); }
  /// Lookup by host; nullptr when unknown.
  const Site* find_site(std::string_view host) const;

  /// Indices of all content sites (for workload generation).
  const std::vector<std::uint32_t>& content_sites() const noexcept {
    return content_indices_;
  }
  const std::vector<std::uint32_t>& ad_sites() const noexcept {
    return ad_indices_;
  }

  /// Deterministically materializes the page at `uri` (same URI -> same
  /// page forever). Unknown host returns nullopt.
  std::optional<WebPage> fetch(const util::Uri& uri) const;

  /// A browsable URI on the given site (path chosen by `page_number`).
  util::Uri page_uri(const Site& site, std::uint64_t page_number) const;

  /// Total number of distinct feeds across all sites.
  std::size_t total_feeds() const noexcept { return total_feeds_; }

 private:
  void build_sites(Config config);

  const TopicModel& topics_;
  Config config_;
  std::vector<Site> sites_;
  std::vector<std::uint32_t> content_indices_;
  std::vector<std::uint32_t> ad_indices_;
  std::unordered_map<std::string, std::uint32_t> by_host_;
  std::size_t content_count_ = 0;
  std::size_t ad_count_ = 0;
  std::size_t total_feeds_ = 0;
};

}  // namespace reef::web
