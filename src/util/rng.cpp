#include "util/rng.h"

#include <algorithm>
#include <cassert>

namespace reef::util {

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  assert(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t rank = 0; rank < n; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank + 1), s);
    cdf_[rank] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t rank) const noexcept {
  if (rank >= cdf_.size()) return 0.0;
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

DiscreteSampler::DiscreteSampler(std::span<const double> weights) {
  assert(!weights.empty());
  cdf_.resize(weights.size());
  double total = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    assert(weights[i] >= 0.0);
    total += weights[i];
    cdf_[i] = total;
  }
  assert(total > 0.0);
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

std::size_t DiscreteSampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace reef::util
