// Small, dependency-free hashing helpers shared across modules.
#pragma once

#include <cstdint>
#include <string_view>

namespace reef::util {

/// 64-bit FNV-1a over an arbitrary byte string. Stable across platforms,
/// used wherever a deterministic content hash is needed (e.g. mapping a
/// URL to a synthetic page, deduplicating feed items).
constexpr std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Combines a hash with another value (boost-style mix, 64-bit).
constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                     std::uint64_t value) noexcept {
  value *= 0xff51afd7ed558ccdULL;
  value ^= value >> 33;
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace reef::util
