// Deterministic pseudo-random number generation for all Reef simulations.
//
// Every stochastic component in this repository draws from util::Rng seeded
// with an explicit 64-bit seed, so whole experiments are reproducible
// byte-for-byte. The generator is xoshiro256** (Blackman & Vigna), seeded
// via splitmix64 as its authors recommend; it is small, fast, and has no
// global state.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace reef::util {

/// Advances a splitmix64 state and returns the next 64-bit output.
/// Used for seeding and for cheap stateless hashing of seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic PRNG (xoshiro256**) with convenience distributions.
///
/// Value-semantic: copying an Rng forks the stream (both copies produce the
/// same subsequent values). Use `fork(tag)` to derive independent
/// sub-streams for sub-components from one master seed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a 64-bit seed. Equal seeds produce equal
  /// streams on every platform.
  explicit Rng(std::uint64_t seed = 0x5eedULL) noexcept { reseed(seed); }

  /// Re-initializes the state from `seed`, discarding the current stream.
  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derives an independent generator for a sub-component. The derived
  /// stream depends on both this generator's original seed and `tag`, but
  /// does not consume numbers from this stream.
  [[nodiscard]] Rng fork(std::uint64_t tag) const noexcept {
    std::uint64_t sm = state_[0] ^ (tag * 0x9e3779b97f4a7c15ULL) ^ state_[3];
    return Rng{splitmix64(sm)};
  }

  /// UniformRandomBitGenerator interface: next raw 64-bit value.
  std::uint64_t operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept {
    const std::uint64_t span = hi - lo;
    if (span == max()) return (*this)();
    // Debiased modulo (Lemire-style rejection kept simple and portable).
    const std::uint64_t bound = span + 1;
    const std::uint64_t limit = max() - max() % bound;
    std::uint64_t x = (*this)();
    while (x >= limit) x = (*this)();
    return lo + x % bound;
  }

  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) noexcept {
    return static_cast<std::size_t>(uniform_u64(0, n - 1));
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) noexcept { return uniform01() < p; }

  /// Exponentially distributed value with the given rate (mean 1/rate).
  double exponential(double rate) noexcept {
    double u = uniform01();
    while (u <= 0.0) u = uniform01();
    return -std::log(u) / rate;
  }

  /// Standard normal via Box–Muller (no cached second value, keeps state
  /// minimal and deterministic under forking).
  double normal(double mean = 0.0, double stddev = 1.0) noexcept {
    double u1 = uniform01();
    while (u1 <= 0.0) u1 = uniform01();
    const double u2 = uniform01();
    const double r = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * r * std::cos(6.283185307179586 * u2);
  }

  /// Poisson-distributed count with the given mean. Uses Knuth's method for
  /// small means and a normal approximation above 64 (adequate for
  /// workload generation).
  std::uint64_t poisson(double mean) noexcept {
    if (mean <= 0.0) return 0;
    if (mean > 64.0) {
      const double v = normal(mean, std::sqrt(mean));
      return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
    }
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double product = uniform01();
    while (product > limit) {
      ++k;
      product *= uniform01();
    }
    return k;
  }

  /// Geometric number of failures before first success, success prob p.
  std::uint64_t geometric(double p) noexcept {
    if (p >= 1.0) return 0;
    double u = uniform01();
    while (u <= 0.0) u = uniform01();
    return static_cast<std::uint64_t>(std::log(u) / std::log(1.0 - p));
  }

  /// Picks a uniformly random element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) noexcept {
    return items[index(items.size())];
  }
  template <typename T>
  const T& pick(const std::vector<T>& items) noexcept {
    return items[index(items.size())];
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[index(i)]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Samples from a Zipf(s) distribution over ranks {0, .., n-1} using a
/// precomputed CDF. Rank 0 is the most popular item. Used for site
/// popularity, term frequencies, and feed update rates.
class ZipfSampler {
 public:
  /// Builds the sampler for `n` ranks with exponent `s` (s=0 is uniform;
  /// larger s concentrates mass on low ranks). Requires n > 0.
  ZipfSampler(std::size_t n, double s);

  /// Draws one rank in [0, size()).
  std::size_t sample(Rng& rng) const noexcept;

  /// Probability mass of a given rank.
  double pmf(std::size_t rank) const noexcept;

  std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cumulative, cdf_.back() == 1.0
};

/// Samples from an arbitrary discrete distribution given non-negative
/// weights (not necessarily normalized).
class DiscreteSampler {
 public:
  explicit DiscreteSampler(std::span<const double> weights);

  std::size_t sample(Rng& rng) const noexcept;
  std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace reef::util
