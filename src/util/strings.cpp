#include "util/strings.h"

#include <array>
#include <cctype>
#include <charconv>
#include <cstdio>

namespace reef::util {

std::string to_lower(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::vector<std::string_view> split(std::string_view text, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> split_whitespace(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    const std::size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) out.push_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view text) noexcept {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out.append(separator);
    out.append(pieces[i]);
  }
  return out;
}

std::string format_double(double value, int precision) {
  std::array<char, 64> buf{};
  const int n = std::snprintf(buf.data(), buf.size(), "%.*f", precision, value);
  return std::string(buf.data(), n > 0 ? static_cast<std::size_t>(n) : 0);
}

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace reef::util
