#include "util/thread_pool.h"

#include <utility>

namespace reef::util {

ThreadPool::ThreadPool(std::size_t threads) {
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::drain_job(const std::function<void(std::size_t)>& fn,
                           std::size_t n) {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    try {
      fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    // Release-ordering publishes the task's writes to the caller, which
    // acquires by re-reading remaining_ under the done_cv_ predicate.
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      fn = job_;
      n = job_size_;
      ++active_;
    }
    if (fn != nullptr) drain_job(*fn, n);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_.empty() || n == 1) {
    // Same contract as the pooled path: every index runs, the first
    // exception is rethrown once the job is drained.
    std::exception_ptr error;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    job_size_ = n;
    next_.store(0, std::memory_order_relaxed);
    remaining_.store(n, std::memory_order_relaxed);
    first_error_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();
  drain_job(fn, n);  // the caller participates
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] {
    return remaining_.load(std::memory_order_acquire) == 0 && active_ == 0;
  });
  job_ = nullptr;
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace reef::util
