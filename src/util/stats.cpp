#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "util/strings.h"

namespace reef::util {

void Summary::add(double sample) {
  samples_.push_back(sample);
  sum_ += sample;
  sorted_ = false;
}

double Summary::mean() const noexcept {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double Summary::stddev() const noexcept {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double ss = 0.0;
  for (const double s : samples_) ss += (s - m) * (s - m);
  return std::sqrt(ss / static_cast<double>(samples_.size() - 1));
}

double Summary::min() const noexcept {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const noexcept {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::percentile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double clamped = std::clamp(q, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(samples_.size())));
  return samples_[rank == 0 ? 0 : rank - 1];
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  assert(hi > lo && buckets > 0);
}

void Histogram::add(double sample) noexcept {
  const double unit = (sample - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(
      unit * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out += format_double(bucket_lo(i), 2);
    out += " | ";
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    out.append(bar, '#');
    out += ' ';
    out += std::to_string(counts_[i]);
    out += '\n';
  }
  return out;
}

std::uint64_t Counter::get(const std::string& key) const {
  const auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second;
}

std::uint64_t Counter::total() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& [key, n] : counts_) sum += n;
  return sum;
}

std::vector<std::pair<std::string, std::uint64_t>> Counter::top(
    std::size_t k) const {
  std::vector<std::pair<std::string, std::uint64_t>> items(counts_.begin(),
                                                           counts_.end());
  std::sort(items.begin(), items.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (items.size() > k) items.resize(k);
  return items;
}

}  // namespace reef::util
