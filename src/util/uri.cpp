#include "util/uri.h"

#include <charconv>

#include "util/strings.h"

namespace reef::util {

std::optional<Uri> Uri::parse(std::string_view text) {
  text = trim(text);
  const std::size_t scheme_end = text.find("://");
  if (scheme_end == std::string_view::npos || scheme_end == 0) {
    return std::nullopt;
  }
  Uri uri;
  uri.scheme_ = to_lower(text.substr(0, scheme_end));
  std::string_view rest = text.substr(scheme_end + 3);
  if (rest.empty()) return std::nullopt;

  const std::size_t path_start = rest.find_first_of("/?#");
  std::string_view authority =
      path_start == std::string_view::npos ? rest : rest.substr(0, path_start);
  if (authority.empty()) return std::nullopt;

  // Strip userinfo if present (rare in attention logs, but cheap to handle).
  if (const std::size_t at = authority.rfind('@');
      at != std::string_view::npos) {
    authority = authority.substr(at + 1);
  }

  std::string_view host = authority;
  if (const std::size_t colon = authority.rfind(':');
      colon != std::string_view::npos) {
    const std::string_view port_text = authority.substr(colon + 1);
    std::uint32_t port = 0;
    const auto [ptr, ec] = std::from_chars(
        port_text.data(), port_text.data() + port_text.size(), port);
    if (ec == std::errc{} && ptr == port_text.data() + port_text.size() &&
        port > 0 && port <= 0xffff) {
      host = authority.substr(0, colon);
      uri.port_ = static_cast<std::uint16_t>(port);
    }
  }
  if (host.empty()) return std::nullopt;
  uri.host_ = to_lower(host);

  // Elide scheme-default ports so equal resources compare equal.
  if ((uri.scheme_ == "http" && uri.port_ == 80) ||
      (uri.scheme_ == "https" && uri.port_ == 443)) {
    uri.port_ = 0;
  }

  if (path_start == std::string_view::npos) {
    uri.path_ = "/";
    return uri;
  }
  std::string_view tail = rest.substr(path_start);
  // Drop the fragment entirely; it never reaches the server.
  if (const std::size_t frag = tail.find('#');
      frag != std::string_view::npos) {
    tail = tail.substr(0, frag);
  }
  const std::size_t q = tail.find('?');
  if (q == std::string_view::npos) {
    uri.path_ = tail.empty() ? "/" : std::string(tail);
  } else {
    uri.path_ = q == 0 ? "/" : std::string(tail.substr(0, q));
    uri.query_ = std::string(tail.substr(q + 1));
  }
  if (uri.path_.empty() || uri.path_[0] != '/') {
    uri.path_.insert(uri.path_.begin(), '/');
  }
  return uri;
}

Uri Uri::from_parts(std::string scheme, std::string host, std::uint16_t port,
                    std::string path, std::string query) {
  Uri uri;
  uri.scheme_ = std::move(scheme);
  uri.host_ = std::move(host);
  uri.port_ = port;
  uri.path_ = path.empty() ? "/" : std::move(path);
  if (uri.path_[0] != '/') uri.path_.insert(uri.path_.begin(), '/');
  uri.query_ = std::move(query);
  return uri;
}

std::string Uri::to_string() const {
  std::string out = scheme_;
  out += "://";
  out += host_;
  if (port_ != 0) {
    out += ':';
    out += std::to_string(port_);
  }
  out += path_;
  if (!query_.empty()) {
    out += '?';
    out += query_;
  }
  return out;
}

}  // namespace reef::util
