#include "util/log.h"

#include <atomic>

namespace reef::util {

namespace {
std::atomic<LogLevel> g_threshold{LogLevel::kWarn};

constexpr std::string_view level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel log_threshold() noexcept {
  return g_threshold.load(std::memory_order_relaxed);
}

void set_log_threshold(LogLevel level) noexcept {
  g_threshold.store(level, std::memory_order_relaxed);
}

namespace detail {
void emit(LogLevel level, std::string_view component, std::string_view text) {
  std::cerr << '[' << level_name(level) << "] " << component << ": " << text
            << '\n';
}
}  // namespace detail

}  // namespace reef::util
