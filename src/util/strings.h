// String helpers used throughout Reef (tokenization lives in ir/, these are
// the generic pieces).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace reef::util {

/// ASCII lower-casing (the simulation vocabulary is ASCII by construction).
std::string to_lower(std::string_view text);

/// Splits on a single-character delimiter; empty fields are preserved.
std::vector<std::string_view> split(std::string_view text, char delim);

/// Splits on any run of whitespace; empty fields are dropped.
std::vector<std::string_view> split_whitespace(std::string_view text);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text) noexcept;

/// Joins pieces with a separator.
std::string join(const std::vector<std::string>& pieces,
                 std::string_view separator);

/// True if `text` contains `needle` (case-sensitive).
inline bool contains(std::string_view text, std::string_view needle) noexcept {
  return text.find(needle) != std::string_view::npos;
}

/// Renders a double with fixed precision (no locale surprises).
std::string format_double(double value, int precision);

/// Renders a count with thousands separators, e.g. 77283 -> "77,283".
std::string with_commas(std::uint64_t value);

}  // namespace reef::util
