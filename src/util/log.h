// Minimal leveled logger. Benches and examples print structured tables to
// stdout; the logger is for diagnostics and goes to stderr so it never
// pollutes experiment output.
#pragma once

#include <iostream>
#include <sstream>
#include <string_view>

namespace reef::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are discarded.
LogLevel log_threshold() noexcept;
void set_log_threshold(LogLevel level) noexcept;

namespace detail {
void emit(LogLevel level, std::string_view component, std::string_view text);
}

/// Streams a single log line on destruction, e.g.:
///   Logger(LogLevel::kInfo, "broker") << "routed " << n << " events";
class Logger {
 public:
  Logger(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;
  ~Logger() {
    if (level_ >= log_threshold()) {
      detail::emit(level_, component_, stream_.str());
    }
  }

  template <typename T>
  Logger& operator<<(const T& value) {
    if (level_ >= log_threshold()) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream stream_;
};

inline Logger log_debug(std::string_view component) {
  return Logger(LogLevel::kDebug, component);
}
inline Logger log_info(std::string_view component) {
  return Logger(LogLevel::kInfo, component);
}
inline Logger log_warn(std::string_view component) {
  return Logger(LogLevel::kWarn, component);
}
inline Logger log_error(std::string_view component) {
  return Logger(LogLevel::kError, component);
}

}  // namespace reef::util
