// Fixed-size worker pool for intra-broker parallelism.
//
// The pool exposes exactly one primitive, parallel_for: run fn(0..n-1)
// across the workers plus the calling thread and block until every index
// has completed. Tasks are claimed from a shared atomic cursor, so the
// *assignment* of indices to threads is nondeterministic — callers that
// need deterministic output (the sharded matcher does) must write each
// task's result to its own slot and merge in index order afterwards.
//
// A pool built with zero threads spawns nothing and runs parallel_for
// inline on the caller, which keeps `worker_threads = 0` configurations
// free of any threading machinery (the ablation baseline).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace reef::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = inline mode, no threads at all).
  explicit ThreadPool(std::size_t threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all workers. Must not race a parallel_for in progress.
  ~ThreadPool();

  std::size_t thread_count() const noexcept { return threads_.size(); }

  /// Runs fn(i) for every i in [0, n), distributing indices over the
  /// workers and the calling thread, and returns when all have finished.
  /// `fn` must be safe to invoke concurrently from several threads. If any
  /// invocation throws, the first exception is rethrown here (remaining
  /// indices still run). Not reentrant: one parallel_for at a time.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  /// Claims indices from next_ and runs them until the job is exhausted.
  void drain_job(const std::function<void(std::size_t)>& fn, std::size_t n);

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;

  // Current job, all written under mutex_ in parallel_for before workers
  // are woken. `remaining_` counts unfinished indices; `active_` counts
  // workers currently inside drain_job so parallel_for never returns (and
  // never invalidates job_) while a late-waking worker still holds it.
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_size_ = 0;
  std::uint64_t generation_ = 0;
  std::atomic<std::size_t> next_{0};
  std::atomic<std::size_t> remaining_{0};
  std::size_t active_ = 0;
  std::exception_ptr first_error_;

  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace reef::util
