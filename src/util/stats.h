// Lightweight descriptive statistics used by benches and experiment
// harnesses (means, percentiles, histograms, counters).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace reef::util {

/// Accumulates samples and reports summary statistics. Samples are kept so
/// exact percentiles can be computed; intended for experiment-sized data
/// (millions of points at most).
class Summary {
 public:
  void add(double sample);

  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 points.
  double stddev() const noexcept;
  double min() const noexcept;
  double max() const noexcept;
  /// Exact percentile by nearest-rank; q in [0, 100].
  double percentile(double q) const;
  double median() const { return percentile(50.0); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge buckets. Useful for latency and inter-arrival plots in benches.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double sample) noexcept;
  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const noexcept { return counts_[i]; }
  double bucket_lo(std::size_t i) const noexcept;
  std::uint64_t total() const noexcept { return total_; }

  /// Renders an ASCII bar chart (one line per bucket), for bench output.
  std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Ordered string-keyed counters: the workhorse for experiment tallies
/// (requests per server class, feeds per site, etc.).
class Counter {
 public:
  void add(const std::string& key, std::uint64_t n = 1) { counts_[key] += n; }
  std::uint64_t get(const std::string& key) const;
  std::uint64_t total() const noexcept;
  std::size_t distinct() const noexcept { return counts_.size(); }
  const std::map<std::string, std::uint64_t>& items() const noexcept {
    return counts_;
  }

  /// Keys sorted by descending count (ties broken by key).
  std::vector<std::pair<std::string, std::uint64_t>> top(std::size_t k) const;

 private:
  std::map<std::string, std::uint64_t> counts_;
};

}  // namespace reef::util
