// A minimal URI type sufficient for the Reef attention pipeline.
//
// The attention recorder logs outgoing HTTP request URIs; the parser and
// ad-classifier key on host names and paths. We implement the subset of
// RFC 3986 that matters for that pipeline: scheme://host[:port]/path?query.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace reef::util {

/// Parsed, normalized URI. Value type; comparable and hashable.
class Uri {
 public:
  Uri() = default;

  /// Parses a URI string. Returns std::nullopt when the input lacks a
  /// scheme or host. Scheme and host are lower-cased; an absent path
  /// normalizes to "/"; default ports (http:80, https:443) are dropped.
  static std::optional<Uri> parse(std::string_view text);

  /// Builds a URI from parts (already-normalized inputs expected).
  static Uri from_parts(std::string scheme, std::string host,
                        std::uint16_t port, std::string path,
                        std::string query);

  const std::string& scheme() const noexcept { return scheme_; }
  const std::string& host() const noexcept { return host_; }
  /// Port (0 means the scheme default was used and elided).
  std::uint16_t port() const noexcept { return port_; }
  const std::string& path() const noexcept { return path_; }
  const std::string& query() const noexcept { return query_; }

  /// The registrable site key used to aggregate clicks per Web server,
  /// e.g. "news.example.org". (The paper counts "distinct Web servers";
  /// we use host as that unit.)
  const std::string& server_key() const noexcept { return host_; }

  /// Canonical textual form.
  std::string to_string() const;

  friend bool operator==(const Uri& a, const Uri& b) noexcept = default;
  friend auto operator<=>(const Uri& a, const Uri& b) noexcept = default;

 private:
  std::string scheme_;
  std::string host_;
  std::uint16_t port_ = 0;
  std::string path_ = "/";
  std::string query_;
};

}  // namespace reef::util

template <>
struct std::hash<reef::util::Uri> {
  std::size_t operator()(const reef::util::Uri& uri) const noexcept {
    return std::hash<std::string>{}(uri.to_string());
  }
};
