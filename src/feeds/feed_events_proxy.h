// WAIF-style "FeedEvents" push proxy (paper §3.2, [2]).
//
// The proxy wraps pull-based Web feeds with a push interface: it polls
// each *watched* feed once per interval — regardless of how many users
// subscribed — and publishes new items into the content-based pub/sub
// substrate as events:
//
//   {stream="feed", feed=<url>, site=<host>, guid=<id>, seq=<n>,
//    link=<story url>, text=<item terms>}
//
// Subscribers place filters like [feed = <url>] via their own pub/sub
// clients; interest registration (watch/unwatch) reaches the proxy as
// network messages so its cost is metered.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "feeds/feed_service.h"
#include "pubsub/client.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace reef::feeds {

/// Payloads for interest registration with the proxy.
struct WatchFeedMsg {
  std::string url;
};
struct UnwatchFeedMsg {
  std::string url;
};

inline constexpr std::string_view kTypeWatchFeed = "feeds.watch";
inline constexpr std::string_view kTypeUnwatchFeed = "feeds.unwatch";

/// Builds the pub/sub event for a feed item (shared with tests/benches).
pubsub::Event make_feed_event(const FeedItem& item,
                              const std::string& site_host);

/// The filter a frontend uses to receive one feed's items.
pubsub::Filter feed_filter(const std::string& url);

class FeedEventsProxy final : public sim::Node {
 public:
  struct Config {
    sim::Time poll_interval = 30 * sim::kMinute;
    std::uint64_t seed = 0x9f0c5;
  };

  struct Stats {
    std::uint64_t watch_requests = 0;
    std::uint64_t unwatch_requests = 0;
    std::uint64_t polls = 0;
    std::uint64_t poll_bytes = 0;
    std::uint64_t items_published = 0;
  };

  /// The proxy attaches itself to `net` and publishes through `broker`.
  FeedEventsProxy(sim::Simulator& sim, sim::Network& net,
                  FeedService& feeds, pubsub::Broker& broker, Config config);

  sim::NodeId id() const noexcept { return id_; }

  /// Local API (used when caller and proxy are co-located; remote callers
  /// send WatchFeedMsg/UnwatchFeedMsg instead).
  void watch(const std::string& url);
  void unwatch(const std::string& url);

  std::size_t watched_count() const noexcept { return watched_.size(); }
  const Stats& stats() const noexcept { return stats_; }

  void handle_message(const sim::Message& msg) override;

 private:
  struct Watched {
    std::uint32_t refcount = 0;
    std::uint64_t last_seq = 0;
  };

  void poll_all();

  sim::Simulator& sim_;
  sim::Network& net_;
  FeedService& feeds_;
  Config config_;
  pubsub::Client publisher_;
  sim::NodeId id_;
  std::unordered_map<std::string, Watched> watched_;
  Stats stats_;
};

}  // namespace reef::feeds
