#include "feeds/feed_service.h"

#include <algorithm>
#include <cmath>

#include "util/hash.h"

namespace reef::feeds {

FeedService::FeedService(const web::SyntheticWeb& web, Config config)
    : web_(web), config_(config) {
  util::Rng seeder(config.seed);
  for (std::size_t i = 0; i < web.site_count(); ++i) {
    const web::Site& site = web.site(i);
    for (const auto& url : site.feed_urls) {
      FeedState state;
      state.url = url;
      state.site = &site;
      // Heavy-tailed per-feed update rate (items/day).
      const double raw =
          std::exp(seeder.normal(config.log_rate_mu, config.log_rate_sigma));
      state.rate_per_day =
          std::clamp(raw, config.min_rate_per_day, config.max_rate_per_day);
      state.rng = util::Rng(util::fnv1a64(url) ^ config.seed);
      // First publication somewhere within the first mean interval.
      const double mean_interval_days = 1.0 / state.rate_per_day;
      state.next_publish = static_cast<sim::Time>(
          state.rng.uniform01() * mean_interval_days *
          static_cast<double>(sim::kDay));
      urls_.push_back(url);
      feeds_.emplace(url, std::move(state));
    }
  }
}

bool FeedService::has_feed(std::string_view url) const {
  return feeds_.contains(std::string(url));
}

double FeedService::rate_per_day(std::string_view url) const {
  const auto it = feeds_.find(std::string(url));
  return it == feeds_.end() ? 0.0 : it->second.rate_per_day;
}

FeedItem FeedService::make_item(FeedState& feed, sim::Time at) {
  FeedItem item;
  item.seq = feed.next_seq++;
  item.feed_url = feed.url;
  item.guid = feed.url + "#" + std::to_string(item.seq);
  item.published_at = at;
  item.link = "http://" + feed.site->host + "/story/" +
              std::to_string(item.seq);
  const std::size_t length =
      config_.item_terms_min +
      feed.rng.index(config_.item_terms_max - config_.item_terms_min + 1);
  // Item text follows the site's topics with light background noise (news
  // items are more on-topic than full pages).
  item.terms = web_.topic_model().generate_terms(feed.site->topics, length,
                                                 0.25, feed.rng);
  ++stats_.items_generated;
  return item;
}

void FeedService::advance(FeedState& feed, sim::Time now) {
  while (feed.next_publish <= now) {
    const sim::Time at = feed.next_publish;
    feed.window.push_back(make_item(feed, at));
    while (feed.window.size() > config_.window) feed.window.pop_front();
    const double interval_days = feed.rng.exponential(feed.rate_per_day);
    const auto delta = static_cast<sim::Time>(
        interval_days * static_cast<double>(sim::kDay));
    feed.next_publish = at + std::max<sim::Time>(delta, sim::kSecond);
  }
}

PollResult FeedService::poll(std::string_view url, std::uint64_t since,
                             sim::Time now) {
  PollResult result;
  ++stats_.polls;
  const auto it = feeds_.find(std::string(url));
  if (it == feeds_.end()) {
    result.bytes = 128;  // 404 response
    stats_.bytes_served += result.bytes;
    return result;
  }
  FeedState& feed = it->second;
  advance(feed, now);

  result.found = true;
  result.latest_seq = feed.next_seq - 1;
  result.bytes = config_.poll_base_bytes;
  for (const FeedItem& item : feed.window) {
    // A real feed document carries the whole window every poll; only the
    // new items are *returned*, but all of them cost bytes.
    result.bytes += item.wire_size();
    if (item.seq > since) result.items.push_back(item);
  }
  stats_.items_served += result.items.size();
  stats_.bytes_served += result.bytes;
  return result;
}

}  // namespace reef::feeds
