// Web-feed model (RSS/Atom abstracted to what matters for the system:
// identity, update process, and recent-items window).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace reef::feeds {

/// One entry of a feed.
struct FeedItem {
  std::string guid;        ///< globally unique: "<feed-url>#<seq>"
  std::string feed_url;
  std::uint64_t seq = 0;   ///< 1-based, monotone per feed
  sim::Time published_at = 0;
  std::vector<std::string> terms;  ///< analyzed item text (title+summary)
  std::string link;        ///< the story URL on the originating site

  /// Simulated wire size of this item inside a feed document. Cached after
  /// first computation (items are immutable once published; polls touch
  /// every windowed item each cycle, so this is on the hot path).
  std::size_t wire_size() const noexcept {
    if (cached_bytes_ == 0) {
      std::size_t bytes = 96 + guid.size() + link.size();
      for (const auto& t : terms) bytes += t.size() + 1;
      cached_bytes_ = bytes;
    }
    return cached_bytes_;
  }

 private:
  mutable std::size_t cached_bytes_ = 0;
};

/// Result of polling a feed.
struct PollResult {
  bool found = false;              ///< false: unknown feed URL
  std::vector<FeedItem> items;     ///< items with seq > since, oldest first
  std::uint64_t latest_seq = 0;    ///< current head of the feed
  std::size_t bytes = 0;           ///< simulated transfer size of the poll
};

}  // namespace reef::feeds
