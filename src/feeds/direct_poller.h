// Baseline for E6: the pre-push status quo where every client polls every
// feed it follows directly (the behaviour Liu et al. [13] showed "strains
// network and server resources with unnecessary traffic").
//
// One DirectPoller per user; it polls each subscribed feed on the same
// interval the proxy uses, so the comparison isolates the architecture
// (per-client vs amortized polling), not the freshness target.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "feeds/feed_service.h"
#include "sim/simulator.h"

namespace reef::feeds {

class DirectPoller {
 public:
  using ItemHandler = std::function<void(const FeedItem&)>;

  struct Stats {
    std::uint64_t polls = 0;
    std::uint64_t poll_bytes = 0;
    std::uint64_t items_received = 0;
  };

  DirectPoller(sim::Simulator& sim, FeedService& feeds,
               sim::Time poll_interval, ItemHandler handler = {});
  ~DirectPoller();
  DirectPoller(const DirectPoller&) = delete;
  DirectPoller& operator=(const DirectPoller&) = delete;

  void subscribe(const std::string& url);
  void unsubscribe(const std::string& url);
  std::size_t subscription_count() const noexcept { return last_seq_.size(); }

  const Stats& stats() const noexcept { return stats_; }

 private:
  void poll_all();

  sim::Simulator& sim_;
  FeedService& feeds_;
  ItemHandler handler_;
  std::unordered_map<std::string, std::uint64_t> last_seq_;
  sim::TimerId timer_ = 0;
  Stats stats_;
};

}  // namespace reef::feeds
