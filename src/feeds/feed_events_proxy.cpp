#include "feeds/feed_events_proxy.h"

#include <any>

#include "util/log.h"
#include "util/strings.h"

namespace reef::feeds {

pubsub::Event make_feed_event(const FeedItem& item,
                              const std::string& site_host) {
  std::string text;
  for (const auto& term : item.terms) {
    if (!text.empty()) text += ' ';
    text += term;
  }
  return pubsub::Event()
      .with("stream", "feed")
      .with("feed", item.feed_url)
      .with("site", site_host)
      .with("guid", item.guid)
      .with("seq", static_cast<std::int64_t>(item.seq))
      .with("link", item.link)
      .with("text", std::move(text));
}

pubsub::Filter feed_filter(const std::string& url) {
  return pubsub::Filter()
      .and_(pubsub::eq("stream", "feed"))
      .and_(pubsub::eq("feed", url));
}

FeedEventsProxy::FeedEventsProxy(sim::Simulator& sim, sim::Network& net,
                                 FeedService& feeds, pubsub::Broker& broker,
                                 Config config)
    : sim_(sim),
      net_(net),
      feeds_(feeds),
      config_(config),
      publisher_(sim, net, "feed-proxy-pub") {
  id_ = net_.attach(*this, "feed-proxy");
  publisher_.connect(broker);
  sim_.every(config_.poll_interval, config_.poll_interval,
             [this] { poll_all(); });
}

void FeedEventsProxy::watch(const std::string& url) {
  ++stats_.watch_requests;
  Watched& w = watched_[url];
  if (w.refcount++ == 0) {
    // Start from the current head: subscribers get *new* items, not
    // history (matches RSS reader semantics).
    const PollResult head = feeds_.poll(url, ~0ULL, sim_.now());
    ++stats_.polls;
    stats_.poll_bytes += head.bytes;
    w.last_seq = head.latest_seq;
  }
}

void FeedEventsProxy::unwatch(const std::string& url) {
  ++stats_.unwatch_requests;
  const auto it = watched_.find(url);
  if (it == watched_.end()) return;
  if (--it->second.refcount == 0) watched_.erase(it);
}

void FeedEventsProxy::poll_all() {
  // Collect the whole poll cycle and publish it as one PublishBatchMsg:
  // the broker matches the burst through the amortized batch path and one
  // wire message replaces one-per-story.
  std::vector<pubsub::Event> cycle;
  for (auto& [url, watched] : watched_) {
    if (watched.refcount == 0) continue;
    PollResult result = feeds_.poll(url, watched.last_seq, sim_.now());
    ++stats_.polls;
    stats_.poll_bytes += result.bytes;
    if (!result.found) continue;
    watched.last_seq = result.latest_seq;
    for (const FeedItem& item : result.items) {
      // The originating site's host is the feed URL's host
      // (http://<host>/feeds/...), so no registry lookup is needed.
      std::string host;
      if (const auto uri = util::Uri::parse(url)) host = uri->host();
      cycle.push_back(make_feed_event(item, host));
      ++stats_.items_published;
    }
  }
  publisher_.publish_batch(std::move(cycle));  // no-op on an empty cycle
}

void FeedEventsProxy::handle_message(const sim::Message& msg) {
  if (msg.type == kTypeWatchFeed) {
    watch(std::any_cast<const WatchFeedMsg&>(msg.payload).url);
  } else if (msg.type == kTypeUnwatchFeed) {
    unwatch(std::any_cast<const UnwatchFeedMsg&>(msg.payload).url);
  } else {
    util::log_warn("feed-proxy") << "unknown message type " << msg.type;
  }
}

}  // namespace reef::feeds
