// The population of Web feeds and their update processes.
//
// Every feed advertised by a SyntheticWeb content site is registered here.
// Each feed publishes items by a Poisson process whose rate is drawn from
// a heavy-tailed distribution — Liu et al. [13] (the paper's citation for
// feed behaviour) measured that most feeds update infrequently while a
// small head updates many times per day. Items are materialized lazily
// and deterministically at poll time, so the simulation cost is
// proportional to polls, not to simulated time.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "feeds/feed.h"
#include "sim/time.h"
#include "util/rng.h"
#include "web/web.h"

namespace reef::feeds {

class FeedService {
 public:
  struct Config {
    /// Window of items a poll can return (RSS documents carry the tail).
    std::size_t window = 20;
    /// Item text length bounds (terms).
    std::size_t item_terms_min = 30;
    std::size_t item_terms_max = 90;
    /// Log-normal update-rate parameters (per day): exp(N(mu, sigma)).
    double log_rate_mu = -0.7;
    double log_rate_sigma = 1.5;
    double max_rate_per_day = 48.0;
    double min_rate_per_day = 0.02;
    /// Base bytes of a feed document before items.
    std::size_t poll_base_bytes = 320;
    std::uint64_t seed = 0xfeed5;
  };

  struct Stats {
    std::uint64_t polls = 0;
    std::uint64_t bytes_served = 0;
    std::uint64_t items_served = 0;
    std::uint64_t items_generated = 0;
  };

  FeedService(const web::SyntheticWeb& web, Config config);

  std::size_t feed_count() const noexcept { return feeds_.size(); }
  bool has_feed(std::string_view url) const;
  const std::vector<std::string>& feed_urls() const noexcept { return urls_; }

  /// Update rate (expected items/day) of a feed; 0 when unknown.
  double rate_per_day(std::string_view url) const;

  /// Polls a feed at simulation time `now`, returning the items with
  /// seq > `since`. Mutates lazy generation state; callers account the
  /// returned `bytes` as network traffic on their side.
  PollResult poll(std::string_view url, std::uint64_t since, sim::Time now);

  const Stats& stats() const noexcept { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

 private:
  struct FeedState {
    std::string url;
    const web::Site* site = nullptr;
    double rate_per_day = 0.1;
    sim::Time next_publish = 0;
    std::uint64_t next_seq = 1;
    std::deque<FeedItem> window;
    util::Rng rng{0};
  };

  void advance(FeedState& feed, sim::Time now);
  FeedItem make_item(FeedState& feed, sim::Time at);

  const web::SyntheticWeb& web_;
  Config config_;
  std::unordered_map<std::string, FeedState> feeds_;
  std::vector<std::string> urls_;
  Stats stats_;
};

}  // namespace reef::feeds
