#include "feeds/direct_poller.h"

namespace reef::feeds {

DirectPoller::DirectPoller(sim::Simulator& sim, FeedService& feeds,
                           sim::Time poll_interval, ItemHandler handler)
    : sim_(sim), feeds_(feeds), handler_(std::move(handler)) {
  timer_ = sim_.every(poll_interval, poll_interval, [this] { poll_all(); });
}

DirectPoller::~DirectPoller() { sim_.cancel(timer_); }

void DirectPoller::subscribe(const std::string& url) {
  if (last_seq_.contains(url)) return;
  // Anchor at the current head so only future items are delivered.
  const PollResult head = feeds_.poll(url, ~0ULL, sim_.now());
  ++stats_.polls;
  stats_.poll_bytes += head.bytes;
  last_seq_.emplace(url, head.latest_seq);
}

void DirectPoller::unsubscribe(const std::string& url) {
  last_seq_.erase(url);
}

void DirectPoller::poll_all() {
  for (auto& [url, since] : last_seq_) {
    PollResult result = feeds_.poll(url, since, sim_.now());
    ++stats_.polls;
    stats_.poll_bytes += result.bytes;
    if (!result.found) continue;
    since = result.latest_seq;
    stats_.items_received += result.items.size();
    if (handler_) {
      for (const FeedItem& item : result.items) handler_(item);
    }
  }
}

}  // namespace reef::feeds
