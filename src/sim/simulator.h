// Discrete-event simulation kernel.
//
// A Simulator owns a time-ordered queue of callbacks. Components schedule
// work with `at` / `after` / `every`; the experiment driver advances the
// clock with `run_until`. Events scheduled for the same instant run in
// scheduling order (a strict total order makes every run deterministic).
//
// Two guarantees protocol code builds on:
//   - Same-instant FIFO: `after(0, fn)` runs fn at the *current* instant,
//     after every callback already queued for it. The broker's per-tick
//     flush (Broker::Config::flush_max_delay_ticks = 0) uses this to see
//     every arrival of the tick before cutting wire messages.
//   - Intra-tick emission: a callback may schedule more work (including
//     zero-delay sends) for the instant it is running in; the queue is
//     live. The broker's budget-tripped flushes emit wire messages
//     mid-tick this way, from inside handle_message.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace reef::sim {

/// Handle for cancelling a periodic timer created with `every`.
using TimerId = std::uint64_t;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time. Starts at 0.
  Time now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `when`. Scheduling in the past (or at
  /// the current instant) runs at the current time, after already-queued
  /// events for that time.
  void at(Time when, std::function<void()> fn);

  /// Schedules `fn` after a relative delay (>= 0).
  void after(Time delay, std::function<void()> fn) {
    at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Schedules `fn` to run first at `first` and then every `period`
  /// thereafter until cancelled. Requires period > 0.
  TimerId every(Time first, Time period, std::function<void()> fn);

  /// Cancels a periodic timer. Safe to call from inside the timer callback
  /// and idempotent.
  void cancel(TimerId id) { cancelled_.insert(id); }

  /// Runs the single earliest event. Returns false if the queue is empty.
  bool step();

  /// Runs every event with time <= `until`, then sets now() = until.
  /// Returns the number of events executed. This is the normal driver for
  /// experiments (periodic timers never drain, so `run_until` bounds them).
  std::size_t run_until(Time until);

  /// Runs until the queue is empty. Only valid when no periodic timers are
  /// live; the `max_events` guard turns runaway schedules into an error.
  std::size_t run(std::size_t max_events = 100'000'000);

  /// Number of events currently queued (cancelled periodic firings still
  /// count until they surface).
  std::size_t pending() const noexcept { return queue_.size(); }

  /// Total events executed over the simulator's lifetime.
  std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;  // tie-break: FIFO within an instant
    std::function<void()> fn;
    TimerId timer = 0;  // nonzero for periodic entries
    Time period = 0;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void execute(Entry entry);

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<TimerId> cancelled_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  TimerId next_timer_ = 1;
  std::uint64_t executed_ = 0;
};

}  // namespace reef::sim
