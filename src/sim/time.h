// Simulated time. All Reef components take time from sim::Simulator, never
// from the wall clock, so experiments covering "ten weeks of browsing" run
// in milliseconds and are exactly reproducible.
#pragma once

#include <cstdint>
#include <string>

namespace reef::sim {

/// Simulation timestamp / duration in microseconds. A plain integer type is
/// used (rather than std::chrono) so arithmetic with rates and RNG-drawn
/// intervals stays unceremonious; the unit is fixed module-wide.
using Time = std::int64_t;

inline constexpr Time kMicrosecond = 1;
inline constexpr Time kMillisecond = 1000 * kMicrosecond;
inline constexpr Time kSecond = 1000 * kMillisecond;
inline constexpr Time kMinute = 60 * kSecond;
inline constexpr Time kHour = 60 * kMinute;
inline constexpr Time kDay = 24 * kHour;
inline constexpr Time kWeek = 7 * kDay;

/// Converts a duration in (possibly fractional) seconds to a Time.
constexpr Time from_seconds(double seconds) noexcept {
  return static_cast<Time>(seconds * static_cast<double>(kSecond));
}

/// Converts a Time to fractional seconds.
constexpr double to_seconds(Time t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Converts a Time to fractional days (the natural unit of the paper's
/// ten-week experiment).
constexpr double to_days(Time t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kDay);
}

/// Human-readable rendering, e.g. "2d 03:15:07.250" — used in traces.
std::string format_time(Time t);

}  // namespace reef::sim
