#include "sim/simulator.h"

#include <cassert>
#include <cstdio>
#include <stdexcept>

namespace reef::sim {

std::string format_time(Time t) {
  const bool negative = t < 0;
  if (negative) t = -t;
  const Time days = t / kDay;
  const Time hours = (t % kDay) / kHour;
  const Time minutes = (t % kHour) / kMinute;
  const Time seconds = (t % kMinute) / kSecond;
  const Time millis = (t % kSecond) / kMillisecond;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s%lldd %02lld:%02lld:%02lld.%03lld",
                negative ? "-" : "", static_cast<long long>(days),
                static_cast<long long>(hours), static_cast<long long>(minutes),
                static_cast<long long>(seconds),
                static_cast<long long>(millis));
  return buf;
}

void Simulator::at(Time when, std::function<void()> fn) {
  assert(fn);
  if (when < now_) when = now_;
  queue_.push(Entry{when, next_seq_++, std::move(fn), 0, 0});
}

TimerId Simulator::every(Time first, Time period, std::function<void()> fn) {
  assert(fn);
  if (period <= 0) throw std::invalid_argument("every: period must be > 0");
  const TimerId id = next_timer_++;
  if (first < now_) first = now_;
  queue_.push(Entry{first, next_seq_++, std::move(fn), id, period});
  return id;
}

void Simulator::execute(Entry entry) {
  now_ = entry.when;
  if (entry.timer != 0) {
    if (const auto it = cancelled_.find(entry.timer);
        it != cancelled_.end()) {
      cancelled_.erase(it);
      return;  // cancelled periodic timer: drop without running
    }
    // Reschedule before running so the callback may cancel its own timer.
    Entry next = entry;
    next.when = entry.when + entry.period;
    next.seq = next_seq_++;
    queue_.push(std::move(next));
  }
  ++executed_;
  entry.fn();
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  Entry entry = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  execute(std::move(entry));
  return true;
}

std::size_t Simulator::run_until(Time until) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().when <= until) {
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    execute(std::move(entry));
    ++n;
  }
  if (now_ < until) now_ = until;
  return n;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t n = 0;
  while (step()) {
    if (++n > max_events) {
      throw std::runtime_error(
          "Simulator::run exceeded max_events; "
          "did a periodic timer leak into run()?");
    }
  }
  return n;
}

}  // namespace reef::sim
