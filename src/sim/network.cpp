#include "sim/network.h"

#include <cassert>
#include <utility>

namespace reef::sim {

Network::Network(Simulator& sim, Config config)
    : sim_(sim), config_(config), rng_(config.seed) {}

NodeId Network::attach(Node& node, std::string name) {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(&node);
  names_.push_back(std::move(name));
  up_.push_back(true);
  bytes_received_.push_back(0);
  messages_received_.push_back(0);
  return id;
}

void Network::set_latency(NodeId a, NodeId b, Time latency) {
  assert(a < nodes_.size() && b < nodes_.size() && latency >= 0);
  link_latency_[link_key(a, b)] = latency;
}

void Network::set_partitioned(NodeId a, NodeId b, bool blocked) {
  assert(a < nodes_.size() && b < nodes_.size());
  partitioned_[link_key(a, b)] = blocked;
}

void Network::set_node_up(NodeId id, bool up) {
  assert(id < nodes_.size());
  up_[id] = up;
}

void Network::set_loss_probability(NodeId a, NodeId b, double probability) {
  assert(a < nodes_.size() && b < nodes_.size());
  assert(probability >= 0.0 && probability <= 1.0);
  if (probability == 0.0) {
    loss_probability_.erase(link_key(a, b));
  } else {
    loss_probability_[link_key(a, b)] = probability;
  }
}

Time Network::latency_between(NodeId a, NodeId b) noexcept {
  if (a == b) return 0;
  Time base = config_.default_latency;
  if (const auto it = link_latency_.find(link_key(a, b));
      it != link_latency_.end()) {
    base = it->second;
  }
  if (config_.jitter_fraction <= 0.0 || base == 0) return base;
  const double jitter =
      rng_.uniform01() * config_.jitter_fraction * static_cast<double>(base);
  return base + static_cast<Time>(jitter);
}

std::optional<Time> Network::send(NodeId from, NodeId to, std::string type,
                                  std::any payload, std::size_t bytes,
                                  std::size_t units) {
  if (to >= nodes_.size() || from >= nodes_.size()) {
    ++dropped_unknown_dest_;
    return std::nullopt;
  }
  ++total_messages_;
  total_bytes_ += bytes;
  total_units_ += units;
  by_type_.add(type);
  bytes_by_type_.add(type, bytes);
  units_by_type_.add(type, units);

  // Lossy-link draw at send time, from the same deterministic stream as
  // jitter — but only when this link actually has a loss probability, so
  // lossless runs consume the stream exactly as before (golden traces).
  bool lost_to_link = false;
  if (!loss_probability_.empty()) {
    if (const auto it = loss_probability_.find(link_key(from, to));
        it != loss_probability_.end()) {
      lost_to_link = rng_.uniform01() < it->second;
    }
  }

  const Time latency = latency_between(from, to);
  Time deliver_at = sim_.now() + latency;
  if (config_.fifo_links) {
    const std::uint64_t directed =
        (static_cast<std::uint64_t>(from) << 32) | to;
    Time& last = last_delivery_[directed];
    if (deliver_at < last) deliver_at = last;
    last = deliver_at;
  }
  Message msg{from, to, std::move(type), bytes, std::move(payload)};
  sim_.at(deliver_at, [this, msg = std::move(msg), lost_to_link]() mutable {
    // Evaluate failures at delivery time: a crash or partition that happens
    // while the message is in flight loses it. Cause attribution is
    // ordered down > partition > loss, so a message that would have died
    // twice counts once, under the harder fault.
    if (!up_[msg.to] || !up_[msg.from]) {
      ++dropped_by_down_;
      return;
    }
    if (const auto it = partitioned_.find(link_key(msg.from, msg.to));
        it != partitioned_.end() && it->second) {
      ++dropped_by_partition_;
      return;
    }
    if (lost_to_link) {
      ++dropped_by_loss_;
      return;
    }
    bytes_received_[msg.to] += msg.bytes;
    ++messages_received_[msg.to];
    nodes_[msg.to]->handle_message(msg);
  });
  return deliver_at;
}

std::uint64_t Network::bytes_received(NodeId id) const {
  assert(id < bytes_received_.size());
  return bytes_received_[id];
}

std::uint64_t Network::messages_received(NodeId id) const {
  assert(id < messages_received_.size());
  return messages_received_[id];
}

void Network::reset_stats() {
  total_messages_ = 0;
  total_bytes_ = 0;
  total_units_ = 0;
  dropped_by_down_ = 0;
  dropped_by_partition_ = 0;
  dropped_by_loss_ = 0;
  dropped_unknown_dest_ = 0;
  by_type_ = util::Counter{};
  bytes_by_type_ = util::Counter{};
  units_by_type_ = util::Counter{};
  bytes_received_.assign(bytes_received_.size(), 0);
  messages_received_.assign(messages_received_.size(), 0);
}

}  // namespace reef::sim
