// Simulated message-passing network.
//
// Nodes attach to a Network and exchange asynchronous messages; the network
// delays each message by a per-link latency plus deterministic jitter and
// meters every message for the traffic-accounting experiments (E4, E6).
// Failure injection (node crash, link partition) is built in because the
// paper's distributed design is motivated by eliminating the centralized
// single point of failure.
#pragma once

#include <any>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/simulator.h"
#include "util/rng.h"
#include "util/stats.h"

namespace reef::sim {

/// Dense node identifier assigned by Network::attach.
using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = 0xffffffff;

/// A message in flight. `bytes` is the logical wire size used for traffic
/// accounting; `payload` carries an arbitrary value the receiver casts back
/// (each protocol in this repo documents its payload types).
struct Message {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  std::string type;
  std::size_t bytes = 0;
  std::any payload;
};

/// Interface for anything that can receive messages from the network.
/// Implementations must outlive the Network they attach to.
class Node {
 public:
  virtual ~Node() = default;
  /// Called exactly once per delivered message, at delivery time.
  virtual void handle_message(const Message& msg) = 0;
};

/// Point-to-point message-passing substrate with latency, jitter, traffic
/// metering, and failure injection. All state changes are deterministic
/// given the seed.
class Network {
 public:
  struct Config {
    Time default_latency = 20 * kMillisecond;
    /// Jitter drawn uniformly from [0, jitter_fraction * latency].
    double jitter_fraction = 0.25;
    /// When true (default), deliveries on each directed (from, to) pair are
    /// never reordered: a message sent later is delivered no earlier than
    /// one sent before it (TCP-like). Protocol code in pubsub/ relies on
    /// this for subscription control traffic.
    bool fifo_links = true;
    std::uint64_t seed = 42;
  };

  Network(Simulator& sim, Config config);

  /// Registers a node (non-owning) and returns its id. `name` labels the
  /// node in stats output.
  NodeId attach(Node& node, std::string name);

  std::size_t node_count() const noexcept { return nodes_.size(); }
  const std::string& node_name(NodeId id) const { return names_.at(id); }

  /// Overrides the symmetric latency of the (a, b) link.
  void set_latency(NodeId a, NodeId b, Time latency);

  /// Blocks or unblocks the (a, b) link (messages in either direction are
  /// dropped while blocked).
  void set_partitioned(NodeId a, NodeId b, bool blocked);

  /// Marks a node down/up. Messages to a down node are dropped at delivery
  /// time (so a crash mid-flight loses in-flight traffic, as in life).
  void set_node_up(NodeId id, bool up);
  bool node_up(NodeId id) const { return up_.at(id); }

  /// Sets the symmetric per-message loss probability of the (a, b) link
  /// (0 = lossless, the default). The drop decision is drawn at send time
  /// from the network's deterministic stream — but only for links with a
  /// nonzero probability, so runs that never set one see the exact jitter
  /// stream (and therefore traces) they always did.
  void set_loss_probability(NodeId a, NodeId b, double probability);

  /// Sends a message; it will be delivered via Node::handle_message after
  /// the link latency (+jitter). Self-sends are delivered asynchronously
  /// with zero latency. Returns the delivery time, or nullopt if the
  /// message was dropped at send time (unknown destination).
  ///
  /// Safe to call from inside handle_message, including for the instant
  /// currently executing (intra-tick emission — the broker's
  /// budget-tripped flushes send mid-tick this way). Jitter is drawn per
  /// send from one deterministic stream, so two runs issuing the same
  /// sends in the same order see identical delivery times.
  ///
  /// `units` is the number of logical payloads the wire message carries
  /// (default 1); batched protocols (PublishBatchMsg, DeliverBatchMsg)
  /// pass the batch size so the accounting can separate wire messages
  /// from the events they amortize.
  std::optional<Time> send(NodeId from, NodeId to, std::string type,
                           std::any payload, std::size_t bytes,
                           std::size_t units = 1);

  // --- traffic accounting -------------------------------------------------
  std::uint64_t total_messages() const noexcept { return total_messages_; }
  std::uint64_t total_bytes() const noexcept { return total_bytes_; }
  /// Logical payloads carried (>= total_messages; the gap is what
  /// batching amortized away).
  std::uint64_t total_units() const noexcept { return total_units_; }
  /// Total drops across every cause (the sum of the per-cause counters).
  std::uint64_t dropped_messages() const noexcept {
    return dropped_by_down_ + dropped_by_partition_ + dropped_by_loss_ +
           dropped_unknown_dest_;
  }
  // Per-cause drop counters, split out so fault-injection failures are
  // diagnosable (one opaque total can't say whether a partition window or
  // a lossy link ate a control message).
  std::uint64_t dropped_by_down() const noexcept { return dropped_by_down_; }
  std::uint64_t dropped_by_partition() const noexcept {
    return dropped_by_partition_;
  }
  std::uint64_t dropped_by_loss() const noexcept { return dropped_by_loss_; }
  std::uint64_t dropped_unknown_dest() const noexcept {
    return dropped_unknown_dest_;
  }
  /// Message, byte, and logical-unit counts keyed by message type.
  const util::Counter& messages_by_type() const noexcept { return by_type_; }
  const util::Counter& bytes_by_type() const noexcept {
    return bytes_by_type_;
  }
  const util::Counter& units_by_type() const noexcept {
    return units_by_type_;
  }
  /// Bytes received per node (for the centralized-vs-distributed load
  /// comparison).
  std::uint64_t bytes_received(NodeId id) const;
  std::uint64_t messages_received(NodeId id) const;
  void reset_stats();

 private:
  static std::uint64_t link_key(NodeId a, NodeId b) noexcept {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }
  Time latency_between(NodeId a, NodeId b) noexcept;

  Simulator& sim_;
  Config config_;
  util::Rng rng_;
  std::vector<Node*> nodes_;
  std::vector<std::string> names_;
  std::vector<bool> up_;
  std::unordered_map<std::uint64_t, Time> link_latency_;
  std::unordered_map<std::uint64_t, bool> partitioned_;
  std::unordered_map<std::uint64_t, double> loss_probability_;
  /// Last scheduled delivery time per *directed* (from, to) pair, for FIFO.
  std::unordered_map<std::uint64_t, Time> last_delivery_;

  std::uint64_t total_messages_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_units_ = 0;
  std::uint64_t dropped_by_down_ = 0;
  std::uint64_t dropped_by_partition_ = 0;
  std::uint64_t dropped_by_loss_ = 0;
  std::uint64_t dropped_unknown_dest_ = 0;
  util::Counter by_type_;
  util::Counter bytes_by_type_;
  util::Counter units_by_type_;
  std::vector<std::uint64_t> bytes_received_;
  std::vector<std::uint64_t> messages_received_;
};

}  // namespace reef::sim
