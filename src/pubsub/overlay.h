// Broker overlay construction. Owns a set of brokers, wires them into an
// acyclic topology over the simulated network, and aggregates stats.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "pubsub/broker.h"
#include "util/rng.h"

namespace reef::pubsub {

class Overlay {
 public:
  Overlay(sim::Simulator& sim, sim::Network& net, Broker::Config config = {});

  /// Creates a new broker named "broker-<i>". Returns its index.
  std::size_t add_broker();

  /// Links brokers `a` and `b` (indices). Throws if the link would close a
  /// cycle — the routing protocol requires an acyclic overlay.
  void link(std::size_t a, std::size_t b,
            sim::Time latency = 10 * sim::kMillisecond);

  Broker& broker(std::size_t i) { return *brokers_.at(i); }
  const Broker& broker(std::size_t i) const { return *brokers_.at(i); }
  std::size_t size() const noexcept { return brokers_.size(); }

  // --- fault injection ------------------------------------------------------
  /// Crashes broker `i`: the node goes down (in-flight traffic to and
  /// from it is lost) and its in-memory routing state is dropped.
  void crash(std::size_t i);
  /// Brings broker `i` back up with an empty routing table; with
  /// Broker::Config::reliable_control on, anti-entropy resync against its
  /// neighbors and clients rebuilds the state (see Broker::restart).
  void restart(std::size_t i);
  /// Blocks/unblocks the link between brokers `a` and `b` (indices).
  void set_link_partitioned(std::size_t a, std::size_t b, bool blocked);
  /// Sets the loss probability of the link between brokers `a` and `b`.
  void set_link_loss(std::size_t a, std::size_t b, double probability);

  // --- canned topologies ----------------------------------------------------
  /// brokers in a line: 0-1-2-...-(n-1)
  static Overlay chain(sim::Simulator& sim, sim::Network& net, std::size_t n,
                       Broker::Config config = {});
  /// broker 0 is the hub
  static Overlay star(sim::Simulator& sim, sim::Network& net, std::size_t n,
                      Broker::Config config = {});
  /// complete k-ary tree rooted at 0
  static Overlay tree(sim::Simulator& sim, sim::Network& net, std::size_t n,
                      std::size_t fanout, Broker::Config config = {});
  /// random spanning tree (node i attaches to a uniform node < i)
  static Overlay random_tree(sim::Simulator& sim, sim::Network& net,
                             std::size_t n, util::Rng& rng,
                             Broker::Config config = {});

  // --- aggregate stats --------------------------------------------------------
  std::size_t total_table_size() const;
  std::uint64_t total_subs_forwarded() const;
  std::uint64_t total_pubs_forwarded() const;
  std::uint64_t total_deliveries() const;

 private:
  std::size_t find_root(std::size_t v);  // union-find for cycle detection

  sim::Simulator& sim_;
  sim::Network& net_;
  Broker::Config config_;
  std::vector<std::unique_ptr<Broker>> brokers_;
  std::vector<std::size_t> uf_parent_;
};

}  // namespace reef::pubsub
