#include "pubsub/filter.h"

#include <algorithm>

namespace reef::pubsub {

namespace {

/// Stable ordering for canonical form: attribute, then op, then value
/// text, then (for `in`) the member list — without the last key two
/// distinct sets on one attribute would be sort-equivalent and the
/// canonical order (hence Filter::key) would depend on insertion order.
bool constraint_less(const Constraint& a, const Constraint& b) {
  if (a.attribute() != b.attribute()) return a.attribute() < b.attribute();
  if (a.op() != b.op()) return a.op() < b.op();
  if (a.value().to_string() != b.value().to_string()) {
    return a.value().to_string() < b.value().to_string();
  }
  const auto& ma = a.members();
  const auto& mb = b.members();
  return std::lexicographical_compare(
      ma.begin(), ma.end(), mb.begin(), mb.end(),
      [](const Value& x, const Value& y) {
        return x.to_string() < y.to_string();
      });
}

}  // namespace

Filter::Filter(std::vector<Constraint> constraints)
    : constraints_(std::move(constraints)) {
  canonicalize();
}

Filter&& Filter::and_(Constraint c) && {
  constraints_.push_back(std::move(c));
  canonicalize();
  return std::move(*this);
}

Filter& Filter::and_(Constraint c) & {
  constraints_.push_back(std::move(c));
  canonicalize();
  return *this;
}

void Filter::canonicalize() {
  std::sort(constraints_.begin(), constraints_.end(), constraint_less);
  constraints_.erase(std::unique(constraints_.begin(), constraints_.end()),
                     constraints_.end());
  key_.clear();
}

bool Filter::matches(const Event& event) const noexcept {
  for (const auto& c : constraints_) {
    const Value* v = event.find(c.attr_id());  // interned: no string touch
    if (v == nullptr || !c.matches(*v)) return false;
  }
  return true;
}

bool Filter::covers(const Filter& other) const noexcept {
  // Every constraint of ours must be implied by some constraint of theirs
  // on the same attribute. (Constraints are sorted by attribute, but a
  // linear scan is fine at subscription-table sizes; the matcher handles
  // the hot path.)
  for (const auto& ours : constraints_) {
    bool covered = false;
    for (const auto& theirs : other.constraints_) {
      if (ours.covers(theirs)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

std::string Filter::to_string() const {
  if (constraints_.empty()) return "[*]";
  std::string out = "[";
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    if (i != 0) out += " && ";
    out += constraints_[i].to_string();
  }
  out += ']';
  return out;
}

const std::string& Filter::key() const {
  if (key_.empty()) key_ = to_string();
  return key_;
}

std::size_t Filter::wire_size() const noexcept {
  std::size_t bytes = 8;  // envelope
  for (const auto& c : constraints_) bytes += c.wire_size();
  return bytes;
}

}  // namespace reef::pubsub
