#include "pubsub/bitset_matcher.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "pubsub/range_index.h"

namespace reef::pubsub {

// --- slot space -------------------------------------------------------------

FilterSlot BitsetMatcher::acquire_slot() {
  if (!free_slots_.empty()) {
    const FilterSlot slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  const FilterSlot slot = static_cast<FilterSlot>(slots_.size());
  slots_.emplace_back();
  const std::size_t needed = (slots_.size() + kWordBits - 1) / kWordBits;
  if (needed > words_) {
    // Capacity doubling: every bitmap in the engine is resized together,
    // so amortize the pass instead of paying it once per 64 slots.
    grow_words(std::max(needed, words_ * 2));
  }
  return slot;
}

void BitsetMatcher::grow_words(std::size_t min_words) {
  words_ = min_words;
  live_.resize(words_, 0);
  zero_req_.resize(words_, 0);
  for (auto& slice : required_) slice.resize(words_, 0);
  for (auto& [attr, by_value] : eq_) {
    for (auto& [value, entry] : by_value) entry.bits.resize(words_, 0);
  }
  for (auto& [attr, entries] : range_) {
    for (auto& posting : entries.lower) posting.entry.bits.resize(words_, 0);
    for (auto& posting : entries.upper) posting.entry.bits.resize(words_, 0);
  }
  for (auto& [attr, entries] : prefix_) {
    for (auto& posting : entries.postings) {
      posting.entry.bits.resize(words_, 0);
    }
  }
  for (auto& [attr, entries] : suffix_) {
    for (auto& posting : entries.postings) {
      posting.entry.bits.resize(words_, 0);
    }
  }
  for (auto& [attr, entries] : contains_) {
    for (auto& posting : entries.postings) {
      posting.entry.bits.resize(words_, 0);
    }
  }
  for (auto& [attr, postings] : noneq_) {
    for (auto& posting : postings) posting.entry.bits.resize(words_, 0);
  }
}

void BitsetMatcher::ensure_slices(std::uint32_t required) {
  const std::size_t needed = std::bit_width(required);
  while (required_.size() < needed) required_.emplace_back(words_, 0);
}

// --- index maintenance ------------------------------------------------------

template <typename EqFn, typename NonEqFn>
std::uint32_t BitsetMatcher::for_each_entry(const Filter& filter, EqFn&& eq_fn,
                                            NonEqFn&& noneq_fn) const {
  std::uint32_t count = 0;
  // Filter canonicalization exactly-dedups constraints, but two *distinct*
  // eq constraints (int 3 vs double 3.0) still collapse onto one canonical
  // index entry — they must count as one requirement or the filter could
  // never fire. Filters are small; a linear seen-list beats a hash set.
  std::vector<std::pair<AttrId, Value>> seen_eq;
  for (const auto& c : filter.constraints()) {
    if (c.op() == Op::kEq) {
      Value canonical = canonical_numeric(c.value());
      bool duplicate = false;
      for (const auto& [attr, value] : seen_eq) {
        if (attr == c.attr_id() && value == canonical) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      seen_eq.emplace_back(c.attr_id(), std::move(canonical));
      eq_fn(c.attr_id(), seen_eq.back().second);
    } else {
      noneq_fn(c);
    }
    ++count;
  }
  return count;
}

void BitsetMatcher::add(SubscriptionId id, Filter filter) {
  remove(id);  // replace semantics
  const FilterSlot slot = acquire_slot();
  const std::size_t w = slot / kWordBits;
  const Word bit = Word{1} << (slot % kWordBits);
  const std::uint32_t required = for_each_entry(
      filter,
      [&](AttrId attr, const Value& canonical) {
        Entry& entry = eq_[attr][canonical];
        if (entry.bits.empty()) {
          entry.bits.assign(words_, 0);
          ++entries_;
        }
        entry.bits[w] |= bit;
        ++entry.slot_count;
      },
      [&](const Constraint& c) {
        // Distinct constraints map to distinct entries in every class:
        // range keys on (bound class, strictness, strict value identity) —
        // cross-type compare-equal bounds like `< 3` and `< 3.0` stay
        // separate entries that a probe always satisfies together, so the
        // per-filter requirement count stays exact — prefix/suffix/
        // contains key on the pattern, and the residual class (ne/exists,
        // in-set, unindexable shapes) on full constraint identity.
        Entry* entry = nullptr;
        if (is_sortable_range(c)) {
          RangeEntries& entries = range_[c.attr_id()];
          auto& postings =
              is_lower_bound_op(c.op()) ? entries.lower : entries.upper;
          const bool strict = is_strict_op(c.op());
          auto it = std::find_if(postings.begin(), postings.end(),
                                 [&](const RangePosting& p) {
                                   return p.strict == strict &&
                                          p.bound == c.value();
                                 });
          if (it == postings.end()) {
            RangePosting posting{c.value(), strict, Entry{}};
            posting.entry.bits.assign(words_, 0);
            if (is_lower_bound_op(c.op())) {
              it = postings.insert(
                  std::upper_bound(postings.begin(), postings.end(), posting,
                                   lower_bound_order<RangePosting>),
                  std::move(posting));
            } else {
              it = postings.insert(
                  std::upper_bound(postings.begin(), postings.end(), posting,
                                   upper_bound_order<RangePosting>),
                  std::move(posting));
            }
            ++entries_;
          }
          entry = &it->entry;
        } else if (is_sortable_prefix(c)) {
          PrefixEntries& entries = prefix_[c.attr_id()];
          const std::string& pattern = c.value().as_string();
          auto it = prefix_posting_pos(entries.postings, pattern);
          if (it == entries.postings.end() || it->prefix != pattern) {
            it = entries.postings.insert(it, PrefixPosting{pattern, Entry{}});
            it->entry.bits.assign(words_, 0);
            add_prefix_length(entries.lengths, pattern.size());
            ++entries_;
          }
          entry = &it->entry;
        } else if (is_sortable_suffix(c)) {
          PrefixEntries& entries = suffix_[c.attr_id()];
          const std::string pattern = reversed(c.value().as_string());
          auto it = prefix_posting_pos(entries.postings, pattern);
          if (it == entries.postings.end() || it->prefix != pattern) {
            it = entries.postings.insert(it, PrefixPosting{pattern, Entry{}});
            it->entry.bits.assign(words_, 0);
            add_prefix_length(entries.lengths, pattern.size());
            ++entries_;
          }
          entry = &it->entry;
        } else if (is_sortable_contains(c)) {
          ContainsEntries& entries = contains_[c.attr_id()];
          const std::string& pattern = c.value().as_string();
          auto it = contains_posting_pos(entries.postings, pattern);
          if (it == entries.postings.end() || it->pattern != pattern) {
            it = entries.postings.insert(it,
                                         ContainsPosting{pattern, Entry{}});
            it->entry.bits.assign(words_, 0);
            ++entries_;
          }
          entry = &it->entry;
        } else {
          auto& postings = noneq_[c.attr_id()];
          NonEqPosting* posting = nullptr;
          for (auto& p : postings) {
            if (p.constraint == c) {
              posting = &p;
              break;
            }
          }
          if (posting == nullptr) {
            posting = &postings.emplace_back(NonEqPosting{c, Entry{}});
            posting->entry.bits.assign(words_, 0);
            ++entries_;
          }
          entry = &posting->entry;
        }
        entry->bits[w] |= bit;
        ++entry->slot_count;
      });
  ensure_slices(required);
  for (std::size_t s = 0; s < required_.size(); ++s) {
    if ((required >> s) & 1u) required_[s][w] |= bit;
  }
  live_[w] |= bit;
  if (required == 0) zero_req_[w] |= bit;
  Slot& stored = slots_[slot];
  stored.sub = id;
  stored.filter = std::move(filter);
  stored.required = required;
  slot_of_.emplace(id, slot);
}

void BitsetMatcher::remove(SubscriptionId id) {
  const auto it = slot_of_.find(id);
  if (it == slot_of_.end()) return;
  const FilterSlot slot = it->second;
  const std::size_t w = slot / kWordBits;
  const Word bit = Word{1} << (slot % kWordBits);
  for_each_entry(
      slots_[slot].filter,
      [&](AttrId attr, const Value& canonical) {
        const auto attr_it = eq_.find(attr);
        const auto value_it = attr_it->second.find(canonical);
        Entry& entry = value_it->second;
        entry.bits[w] &= ~bit;
        if (--entry.slot_count == 0) {
          attr_it->second.erase(value_it);
          if (attr_it->second.empty()) eq_.erase(attr_it);
          --entries_;
        }
      },
      [&](const Constraint& c) {
        if (is_sortable_range(c)) {
          const auto attr_it = range_.find(c.attr_id());
          RangeEntries& entries = attr_it->second;
          auto& postings =
              is_lower_bound_op(c.op()) ? entries.lower : entries.upper;
          const bool strict = is_strict_op(c.op());
          const auto posting_it =
              std::find_if(postings.begin(), postings.end(),
                           [&](const RangePosting& p) {
                             return p.strict == strict &&
                                    p.bound == c.value();
                           });
          Entry& entry = posting_it->entry;
          entry.bits[w] &= ~bit;
          if (--entry.slot_count == 0) {
            postings.erase(posting_it);
            if (entries.lower.empty() && entries.upper.empty()) {
              range_.erase(attr_it);
            }
            --entries_;
          }
        } else if (is_sortable_prefix(c)) {
          const auto attr_it = prefix_.find(c.attr_id());
          PrefixEntries& entries = attr_it->second;
          const std::string& pattern = c.value().as_string();
          const auto posting_it =
              prefix_posting_pos(entries.postings, pattern);
          Entry& entry = posting_it->entry;
          entry.bits[w] &= ~bit;
          if (--entry.slot_count == 0) {
            remove_prefix_length(entries.lengths, pattern.size());
            entries.postings.erase(posting_it);
            if (entries.postings.empty()) prefix_.erase(attr_it);
            --entries_;
          }
        } else if (is_sortable_suffix(c)) {
          const auto attr_it = suffix_.find(c.attr_id());
          PrefixEntries& entries = attr_it->second;
          const std::string pattern = reversed(c.value().as_string());
          const auto posting_it =
              prefix_posting_pos(entries.postings, pattern);
          Entry& entry = posting_it->entry;
          entry.bits[w] &= ~bit;
          if (--entry.slot_count == 0) {
            remove_prefix_length(entries.lengths, pattern.size());
            entries.postings.erase(posting_it);
            if (entries.postings.empty()) suffix_.erase(attr_it);
            --entries_;
          }
        } else if (is_sortable_contains(c)) {
          const auto attr_it = contains_.find(c.attr_id());
          ContainsEntries& entries = attr_it->second;
          const std::string& pattern = c.value().as_string();
          const auto posting_it =
              contains_posting_pos(entries.postings, pattern);
          Entry& entry = posting_it->entry;
          entry.bits[w] &= ~bit;
          if (--entry.slot_count == 0) {
            entries.postings.erase(posting_it);
            if (entries.postings.empty()) contains_.erase(attr_it);
            --entries_;
          }
        } else {
          const auto attr_it = noneq_.find(c.attr_id());
          auto& postings = attr_it->second;
          const auto posting_it =
              std::find_if(postings.begin(), postings.end(),
                           [&](const NonEqPosting& p) {
                             return p.constraint == c;
                           });
          Entry& entry = posting_it->entry;
          entry.bits[w] &= ~bit;
          if (--entry.slot_count == 0) {
            postings.erase(posting_it);
            if (postings.empty()) noneq_.erase(attr_it);
            --entries_;
          }
        }
      });
  live_[w] &= ~bit;
  zero_req_[w] &= ~bit;
  for (auto& slice : required_) slice[w] &= ~bit;
  slots_[slot] = Slot{};  // release the filter's memory while freelisted
  free_slots_.push_back(slot);
  slot_of_.erase(it);
}

std::optional<FilterSlot> BitsetMatcher::slot_of(SubscriptionId id) const {
  const auto it = slot_of_.find(id);
  if (it == slot_of_.end()) return std::nullopt;
  return it->second;
}

// --- matching ---------------------------------------------------------------

void BitsetMatcher::collect_satisfied(AttrId attr, const Value& canonical,
                                      std::vector<const Entry*>& out) const {
  if (const auto attr_it = eq_.find(attr); attr_it != eq_.end()) {
    if (const auto value_it = attr_it->second.find(canonical);
        value_it != attr_it->second.end()) {
      out.push_back(&value_it->second);
    }
  }
  if (const auto range_it = range_.find(attr);
      range_it != range_.end() && range_sortable(canonical)) {
    // Sorted-bound probes (see range_index.h): satisfied lower bounds are
    // a prefix of the array, satisfied upper bounds a suffix. Probing the
    // canonical value is exact — int -> double canonicalization only
    // happens when the image is exact, and Value::compare is value-based
    // across the types either way.
    const RangeEntries& entries = range_it->second;
    const std::size_t lower_end =
        lower_satisfied_end(entries.lower, canonical);
    for (std::size_t k = 0; k < lower_end; ++k) {
      out.push_back(&entries.lower[k].entry);
    }
    for (std::size_t k = upper_satisfied_begin(entries.upper, canonical);
         k < entries.upper.size(); ++k) {
      out.push_back(&entries.upper[k].entry);
    }
  }
  if (const auto prefix_it = prefix_.find(attr);
      prefix_it != prefix_.end() && canonical.is_string()) {
    probe_prefixes(prefix_it->second.postings, prefix_it->second.lengths,
                   canonical.as_string(), [&](const PrefixPosting& posting) {
                     out.push_back(&posting.entry);
                   });
  }
  if (const auto suffix_it = suffix_.find(attr);
      suffix_it != suffix_.end() && canonical.is_string()) {
    // Reversed-pattern table: one reversal of the event string, then the
    // prefix probes (see range_index.h).
    const std::string rev = reversed(canonical.as_string());
    probe_prefixes(suffix_it->second.postings, suffix_it->second.lengths,
                   rev, [&](const PrefixPosting& posting) {
                     out.push_back(&posting.entry);
                   });
  }
  if (const auto contains_it = contains_.find(attr);
      contains_it != contains_.end() && canonical.is_string()) {
    probe_contains(contains_it->second.postings, canonical.as_string(),
                   [&](const ContainsPosting& posting) {
                     out.push_back(&posting.entry);
                   });
  }
  if (const auto noneq_it = noneq_.find(attr); noneq_it != noneq_.end()) {
    // Evaluated against the *canonical* value in the single-event path too,
    // so the batch path (which groups by canonical value) provably agrees:
    // every operator's result is invariant under int -> double
    // canonicalization (numeric comparisons compare numerics, string ops
    // reject non-strings of either type, exists ignores the value).
    for (const auto& posting : noneq_it->second) {
      if (posting.constraint.matches(canonical)) out.push_back(&posting.entry);
    }
  }
}

void BitsetMatcher::accumulate(const std::vector<Word>& bits,
                               std::vector<Word>& counters) const {
  const std::size_t slices = required_.size();
  for (std::size_t w = 0; w < words_; ++w) {
    Word carry = bits[w];
    if (carry == 0) continue;
    for (std::size_t s = 0; s < slices && carry != 0; ++s) {
      Word& slice = counters[s * words_ + w];
      const Word next = slice & carry;
      slice ^= carry;
      carry = next;
    }
    // No carry-out is possible: a slot's counter never exceeds its own
    // requirement (each distinct entry is satisfied at most once per
    // event) and the slices cover the largest requirement registered.
  }
}

void BitsetMatcher::emit_matches(const std::vector<Word>& counters,
                                 std::vector<SubscriptionId>& out) const {
  const std::size_t slices = required_.size();
  for (std::size_t w = 0; w < words_; ++w) {
    Word diff = 0;
    for (std::size_t s = 0; s < slices; ++s) {
      diff |= counters[s * words_ + w] ^ required_[s][w];
    }
    Word fire = live_[w] & ~diff;
    while (fire != 0) {
      const auto b = static_cast<std::size_t>(std::countr_zero(fire));
      fire &= fire - 1;
      out.push_back(slots_[w * kWordBits + b].sub);
    }
  }
}

void BitsetMatcher::emit_universal(std::vector<SubscriptionId>& out) const {
  for (std::size_t w = 0; w < words_; ++w) {
    Word fire = zero_req_[w];
    while (fire != 0) {
      const auto b = static_cast<std::size_t>(std::countr_zero(fire));
      fire &= fire - 1;
      out.push_back(slots_[w * kWordBits + b].sub);
    }
  }
}

void BitsetMatcher::match(const Event& event,
                          std::vector<SubscriptionId>& out) const {
  if (slot_of_.empty()) return;
  std::vector<const Entry*> satisfied;
  for (const auto& [attr, value] : event.attrs()) {
    collect_satisfied(attr, canonical_numeric(value), satisfied);
  }
  if (satisfied.empty()) {
    // Zero satisfied entries means exactly the requirement-0 (universal)
    // slots fire; skip the counter pass.
    emit_universal(out);
    return;
  }
  std::vector<Word> counters(required_.size() * words_, 0);
  for (const Entry* entry : satisfied) accumulate(entry->bits, counters);
  emit_matches(counters, out);
}

void BitsetMatcher::match_batch(
    const EventBatchView& events,
    std::vector<std::vector<SubscriptionId>>& out) const {
  out.assign(events.size(), {});
  if (slot_of_.empty() || events.empty()) return;
  if (entries_ == 0) {
    // Only universal filters are registered.
    for (auto& hits : out) emit_universal(hits);
    return;
  }
  // Phase 1 — resolve satisfied index entries, amortized across the batch.
  // Occurrences are grouped by attribute (same dense-table / sorted-flat
  // strategy pair as IndexMatcher::match_batch, same thresholds) and then
  // by canonical value, so each eq probe and each noneq predicate runs
  // once per distinct (attribute, value) of the whole batch. The result is
  // one satisfied-entry list per event — a pure function of that event and
  // the registered filters, so per-event output is independent of the rest
  // of the batch (contract invariant 2).
  std::size_t occurrence_count = 0;
  AttrId max_attr = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& attrs = events[i].attrs();
    occurrence_count += attrs.size();
    if (!attrs.empty()) max_attr = std::max(max_attr, attrs.back().first);
  }
  std::vector<std::vector<const Entry*>> satisfied(events.size());
  using Occurrences = std::vector<std::pair<std::uint32_t, const Value*>>;
  const auto match_group = [&](AttrId attr, const Occurrences& occurrences) {
    if (!eq_.contains(attr) && !range_.contains(attr) &&
        !prefix_.contains(attr) && !suffix_.contains(attr) &&
        !contains_.contains(attr) && !noneq_.contains(attr)) {
      return;
    }
    std::unordered_map<Value, std::vector<std::uint32_t>> by_value;
    for (const auto& [i, value] : occurrences) {
      by_value[canonical_numeric(*value)].push_back(i);
    }
    std::vector<const Entry*> group_entries;
    for (const auto& [value, event_positions] : by_value) {
      group_entries.clear();
      collect_satisfied(attr, value, group_entries);
      if (group_entries.empty()) continue;
      for (const std::uint32_t i : event_positions) {
        satisfied[i].insert(satisfied[i].end(), group_entries.begin(),
                            group_entries.end());
      }
    }
  };
  const std::size_t id_span = static_cast<std::size_t>(max_attr) + 1;
  if (id_span <= 4 * occurrence_count + 64) {
    std::vector<Occurrences> by_attr(id_span);
    std::vector<AttrId> touched;
    for (std::uint32_t i = 0; i < events.size(); ++i) {
      for (const auto& [attr, value] : events[i].attrs()) {
        auto& occurrences = by_attr[attr];
        if (occurrences.empty()) touched.push_back(attr);
        occurrences.emplace_back(i, &value);
      }
    }
    std::sort(touched.begin(), touched.end());
    for (const AttrId attr : touched) match_group(attr, by_attr[attr]);
  } else {
    std::vector<std::pair<AttrId, std::pair<std::uint32_t, const Value*>>>
        flat;
    flat.reserve(occurrence_count);
    for (std::uint32_t i = 0; i < events.size(); ++i) {
      for (const auto& [attr, value] : events[i].attrs()) {
        flat.emplace_back(attr, std::make_pair(i, &value));
      }
    }
    std::sort(flat.begin(), flat.end(),
              [](const auto& a, const auto& b) {
                return a.first != b.first ? a.first < b.first
                                          : a.second.first < b.second.first;
              });
    Occurrences occurrences;
    for (std::size_t o = 0; o < flat.size();) {
      const AttrId attr = flat[o].first;
      occurrences.clear();
      for (; o < flat.size() && flat[o].first == attr; ++o) {
        occurrences.push_back(flat[o].second);
      }
      match_group(attr, occurrences);
    }
  }
  // Phase 2 — per event: ripple-carry the satisfied bitmaps into the
  // counter slices (reused scratch, re-zeroed per event) and run the
  // threshold pass. Word loops only; no hash probe survives phase 1.
  std::vector<Word> counters(required_.size() * words_, 0);
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (satisfied[i].empty()) {
      emit_universal(out[i]);
      continue;
    }
    std::fill(counters.begin(), counters.end(), 0);
    for (const Entry* entry : satisfied[i]) accumulate(entry->bits, counters);
    emit_matches(counters, out[i]);
  }
}

}  // namespace reef::pubsub
