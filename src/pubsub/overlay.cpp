#include "pubsub/overlay.h"

namespace reef::pubsub {

Overlay::Overlay(sim::Simulator& sim, sim::Network& net,
                 Broker::Config config)
    : sim_(sim), net_(net), config_(config) {}

std::size_t Overlay::add_broker() {
  const std::size_t index = brokers_.size();
  brokers_.push_back(std::make_unique<Broker>(
      sim_, net_, "broker-" + std::to_string(index), config_));
  uf_parent_.push_back(index);
  return index;
}

std::size_t Overlay::find_root(std::size_t v) {
  while (uf_parent_[v] != v) {
    uf_parent_[v] = uf_parent_[uf_parent_[v]];
    v = uf_parent_[v];
  }
  return v;
}

void Overlay::link(std::size_t a, std::size_t b, sim::Time latency) {
  if (a >= brokers_.size() || b >= brokers_.size() || a == b) {
    throw std::invalid_argument("Overlay::link: bad broker index");
  }
  const std::size_t ra = find_root(a);
  const std::size_t rb = find_root(b);
  if (ra == rb) {
    throw std::invalid_argument(
        "Overlay::link would create a cycle; the routing protocol requires "
        "an acyclic overlay");
  }
  uf_parent_[ra] = rb;
  net_.set_latency(brokers_[a]->id(), brokers_[b]->id(), latency);
  brokers_[a]->add_neighbor(*brokers_[b]);
  brokers_[b]->add_neighbor(*brokers_[a]);
}

void Overlay::crash(std::size_t i) {
  Broker& broker = *brokers_.at(i);
  net_.set_node_up(broker.id(), false);
  broker.crash();
}

void Overlay::restart(std::size_t i) {
  Broker& broker = *brokers_.at(i);
  net_.set_node_up(broker.id(), true);
  broker.restart();
}

void Overlay::set_link_partitioned(std::size_t a, std::size_t b,
                                   bool blocked) {
  net_.set_partitioned(brokers_.at(a)->id(), brokers_.at(b)->id(), blocked);
}

void Overlay::set_link_loss(std::size_t a, std::size_t b,
                            double probability) {
  net_.set_loss_probability(brokers_.at(a)->id(), brokers_.at(b)->id(),
                            probability);
}

Overlay Overlay::chain(sim::Simulator& sim, sim::Network& net, std::size_t n,
                       Broker::Config config) {
  Overlay overlay(sim, net, config);
  for (std::size_t i = 0; i < n; ++i) overlay.add_broker();
  for (std::size_t i = 1; i < n; ++i) overlay.link(i - 1, i);
  return overlay;
}

Overlay Overlay::star(sim::Simulator& sim, sim::Network& net, std::size_t n,
                      Broker::Config config) {
  Overlay overlay(sim, net, config);
  for (std::size_t i = 0; i < n; ++i) overlay.add_broker();
  for (std::size_t i = 1; i < n; ++i) overlay.link(0, i);
  return overlay;
}

Overlay Overlay::tree(sim::Simulator& sim, sim::Network& net, std::size_t n,
                      std::size_t fanout, Broker::Config config) {
  if (fanout == 0) throw std::invalid_argument("tree fanout must be > 0");
  Overlay overlay(sim, net, config);
  for (std::size_t i = 0; i < n; ++i) overlay.add_broker();
  for (std::size_t i = 1; i < n; ++i) overlay.link((i - 1) / fanout, i);
  return overlay;
}

Overlay Overlay::random_tree(sim::Simulator& sim, sim::Network& net,
                             std::size_t n, util::Rng& rng,
                             Broker::Config config) {
  Overlay overlay(sim, net, config);
  for (std::size_t i = 0; i < n; ++i) overlay.add_broker();
  for (std::size_t i = 1; i < n; ++i) {
    overlay.link(rng.index(i), i);
  }
  return overlay;
}

std::size_t Overlay::total_table_size() const {
  std::size_t total = 0;
  for (const auto& b : brokers_) total += b->table_size();
  return total;
}

std::uint64_t Overlay::total_subs_forwarded() const {
  std::uint64_t total = 0;
  for (const auto& b : brokers_) total += b->stats().subs_forwarded;
  return total;
}

std::uint64_t Overlay::total_pubs_forwarded() const {
  std::uint64_t total = 0;
  for (const auto& b : brokers_) total += b->stats().pubs_forwarded;
  return total;
}

std::uint64_t Overlay::total_deliveries() const {
  std::uint64_t total = 0;
  for (const auto& b : brokers_) total += b->stats().deliveries;
  return total;
}

}  // namespace reef::pubsub
