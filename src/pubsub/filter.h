// Filters: conjunctions of constraints — the subscription language of the
// substrate. A filter matches an event iff every constraint is satisfied
// by the event's value for that attribute (absent attribute => no match).
//
// Filters carry the covering relation up from constraints: f1 covers f2 iff
// every event matching f2 matches f1. The broker overlay uses covering to
// avoid propagating subscriptions that are already implied upstream.
#pragma once

#include <string>
#include <vector>

#include "pubsub/constraint.h"
#include "pubsub/event.h"

namespace reef::pubsub {

class Filter {
 public:
  Filter() = default;
  explicit Filter(std::vector<Constraint> constraints);

  /// Fluent building: Filter().and_(eq("symbol","ACME")).and_(gt("price",5))
  Filter&& and_(Constraint c) &&;
  Filter& and_(Constraint c) &;

  const std::vector<Constraint>& constraints() const noexcept {
    return constraints_;
  }
  bool empty() const noexcept { return constraints_.empty(); }
  std::size_t size() const noexcept { return constraints_.size(); }

  /// True iff every constraint is satisfied by `event`. The empty filter
  /// matches every event (universal subscription).
  bool matches(const Event& event) const noexcept;

  /// Sound covering test: true only if every event matching `other` also
  /// matches this filter. Conservative (sufficient condition: each of our
  /// constraints is covered by some constraint of `other` on the same
  /// attribute). The empty filter covers everything.
  bool covers(const Filter& other) const noexcept;

  /// Canonical text form; doubles as a stable identity key for routing
  /// tables (constraints are kept sorted).
  std::string to_string() const;

  /// Canonical identity key (same as to_string but cheaper to compare).
  const std::string& key() const;

  std::size_t wire_size() const noexcept;

  friend bool operator==(const Filter& a, const Filter& b) noexcept {
    return a.constraints_ == b.constraints_;
  }

 private:
  void canonicalize();

  std::vector<Constraint> constraints_;
  mutable std::string key_;  // lazily rendered canonical form
};

}  // namespace reef::pubsub
