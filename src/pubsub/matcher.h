// Event-to-subscription matching engines.
//
// Two implementations share one interface: a brute-force scanner (the
// correctness oracle in tests, and the ablation baseline in benches) and a
// counting-index matcher in the style of Gryphon/Siena: constraints are
// indexed per attribute, equality constraints through a hash table, and a
// filter fires when all of its constraints have been satisfied by the
// event under evaluation.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "pubsub/event.h"
#include "pubsub/filter.h"

namespace reef::pubsub {

/// Identifier a matcher client associates with a registered filter.
using SubscriptionId = std::uint64_t;

/// Common interface of the matching engines.
class Matcher {
 public:
  virtual ~Matcher() = default;

  /// Registers `filter` under `id`. Re-adding an existing id replaces it.
  virtual void add(SubscriptionId id, Filter filter) = 0;

  /// Removes a registration; unknown ids are ignored.
  virtual void remove(SubscriptionId id) = 0;

  /// Appends the ids of all filters matching `event` to `out` (order
  /// unspecified; no duplicates).
  virtual void match(const Event& event,
                     std::vector<SubscriptionId>& out) const = 0;

  /// Number of registered filters.
  virtual std::size_t size() const noexcept = 0;

  virtual std::string name() const = 0;

  /// Convenience wrapper returning a fresh vector.
  std::vector<SubscriptionId> match(const Event& event) const {
    std::vector<SubscriptionId> out;
    match(event, out);
    return out;
  }
};

/// Baseline: linear scan over all registered filters.
class BruteForceMatcher final : public Matcher {
 public:
  using Matcher::match;
  void add(SubscriptionId id, Filter filter) override;
  void remove(SubscriptionId id) override;
  void match(const Event& event,
             std::vector<SubscriptionId>& out) const override;
  std::size_t size() const noexcept override { return filters_.size(); }
  std::string name() const override { return "brute-force"; }

 private:
  std::unordered_map<SubscriptionId, Filter> filters_;
};

/// Anchor-index matcher. Every filter is indexed in exactly one place — a
/// hash bucket keyed by its most *selective* equality constraint (the one
/// whose (attribute, value) bucket is currently smallest), or, for filters
/// without equality constraints, a per-attribute scan list. Matching an
/// event probes the buckets of the event's own attribute values and fully
/// evaluates only the candidates found there. Anchoring on the smallest
/// bucket steers filters away from non-selective attributes (every feed
/// subscription carries stream="feed"; anchoring there would degenerate to
/// a linear scan — the classic content-based-matching pitfall).
class IndexMatcher final : public Matcher {
 public:
  using Matcher::match;
  void add(SubscriptionId id, Filter filter) override;
  void remove(SubscriptionId id) override;
  void match(const Event& event,
             std::vector<SubscriptionId>& out) const override;
  std::size_t size() const noexcept override { return filters_.size(); }
  std::string name() const override { return "anchor-index"; }

  /// Introspection for benches: filters anchored in equality buckets vs.
  /// sitting on per-attribute scan lists.
  std::size_t eq_anchored() const noexcept { return eq_count_; }
  std::size_t scan_anchored() const noexcept { return scan_count_; }

 private:
  /// Normalizes numerics to double so that Eq(3) and an event value 3.0
  /// land in the same hash bucket (Value::compare treats them as equal).
  static Value canonical(const Value& v);

  struct Entry {
    Filter filter;
    bool eq_anchor = false;
    std::string anchor_attr;
    Value anchor_value;  // only meaningful when eq_anchor
  };

  std::unordered_map<SubscriptionId, Entry> filters_;
  /// attribute -> canonical value -> filters anchored on (attr = value)
  std::unordered_map<std::string,
                     std::unordered_map<Value, std::vector<SubscriptionId>>>
      eq_;
  /// attribute -> filters (without eq constraints) anchored on it
  std::unordered_map<std::string, std::vector<SubscriptionId>> scan_;
  std::vector<SubscriptionId> universal_;  // empty filters match everything
  std::size_t eq_count_ = 0;
  std::size_t scan_count_ = 0;
};

/// Backwards-compatible alias (the original implementation used the
/// Siena/Gryphon counting scheme; the anchor index superseded it).
using CountingMatcher = IndexMatcher;

/// Factory used by broker configuration.
std::unique_ptr<Matcher> make_matcher(bool use_index);

}  // namespace reef::pubsub
