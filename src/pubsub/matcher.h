// Event-to-subscription matching engines.
//
// Four implementations share one interface, selected by name through the
// MatcherRegistry (see matcher_registry.h):
//   "brute-force"  — linear scan; the correctness oracle in tests and the
//                    ablation baseline in benches.
//   "anchor-index" — every filter anchored in exactly one per-op index
//                    structure: an equality hash bucket (keyed by its most
//                    selective eq constraint, or every member of its first
//                    in-set), a sorted numeric range bound array, a sorted
//                    string prefix table, a reversed-pattern suffix table,
//                    a length-sorted contains table, or the residual scan
//                    list.
//   "counting"     — classic Gryphon/Siena counting algorithm: constraints
//                    indexed per attribute, a filter fires when all of its
//                    constraints have been satisfied by the event.
//   "bitset"       — posting lists as dense bitmaps over filter slots;
//                    batch matching is AND/ANDNOT/popcount word streams
//                    with a bit-sliced counting threshold pass (see
//                    bitset_matcher.h).
//
// Every engine keys its indices by interned AttrId (see attr_table.h), so
// the per-event inner loop is integer probes — no string hashing or
// compares survive past construction.
//
// All engines expose a batch entry point, match_batch, which amortizes
// index probes and candidate fetches across a batch of events; the
// broker's per-tick publication coalescing feeds it. Batches are passed as
// an EventBatchView — a span of events plus an optional index span
// selecting a sub-batch *in place* — so the sharded layer's pre-filtered
// sub-batches reach the inner engines without copying a single Event.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "pubsub/attr_table.h"
#include "pubsub/event.h"
#include "pubsub/filter.h"
#include "pubsub/scoring.h"

namespace reef::pubsub {

/// Identifier a matcher client associates with a registered filter.
using SubscriptionId = std::uint64_t;

/// One scored boolean match: the subscription plus its relevance under the
/// subscription's ScoringSpec (kConstantScore when it has none).
struct ScoredHit {
  SubscriptionId id = 0;
  double score = kConstantScore;

  friend bool operator==(const ScoredHit&, const ScoredHit&) = default;
};

/// Registry of the non-neutral scoring specs among a matcher's
/// subscriptions, consulted by Matcher::match_batch_scored. Subscriptions
/// absent here score kConstantScore. Kept outside the engines on purpose:
/// scores *decorate* boolean matching (they are a pure function of (spec,
/// event), computed after the match), so no engine — sharded or not —
/// needs to know scoring exists, and identical match sets imply identical
/// scored output by construction.
class ScoringIndex {
 public:
  /// Registers (or replaces) the spec for `id`. Neutral specs are
  /// dropped — they are indistinguishable from absence.
  void set(SubscriptionId id, ScoringSpec spec) {
    if (spec.neutral()) {
      specs_.erase(id);
    } else {
      specs_[id] = std::move(spec);
    }
  }
  void erase(SubscriptionId id) { specs_.erase(id); }
  /// Spec for `id`, or nullptr when it scores the neutral constant. The
  /// pointer is stable until that id is set/erased (node-based map).
  const ScoringSpec* find(SubscriptionId id) const {
    const auto it = specs_.find(id);
    return it == specs_.end() ? nullptr : &it->second;
  }
  std::size_t size() const noexcept { return specs_.size(); }
  bool empty() const noexcept { return specs_.empty(); }

 private:
  std::unordered_map<SubscriptionId, ScoringSpec> specs_;
};

/// Normalizes ints with an exact double image to that double, so Eq(3) and
/// an event value 3.0 land in the same hash bucket (Value::compare treats
/// them as equal). Ints beyond 2^53 whose image would round keep their int
/// identity — no double compares equal to them, so the buckets stay
/// correctly distinct. Identity on non-numeric values.
Value canonical_numeric(const Value& v);

/// A zero-copy view of (a subset of) an event batch: the backing span plus
/// an optional index span selecting which events, in which order. The
/// sharded layer's pre-filter builds index lists once per batch and hands
/// each shard its slice of the original storage — no Event is ever copied
/// or moved. Both spans must outlive the view; the view itself is two
/// pointers and two sizes.
class EventBatchView {
 public:
  /// The whole batch, in order.
  explicit EventBatchView(std::span<const Event> events) noexcept
      : events_(events), all_(true) {}
  /// The sub-batch events_[indices_[0]], events_[indices_[1]], ...
  /// Every index must be < events.size().
  EventBatchView(std::span<const Event> events,
                 std::span<const std::uint32_t> indices) noexcept
      : events_(events), indices_(indices), all_(false) {}

  std::size_t size() const noexcept {
    return all_ ? events_.size() : indices_.size();
  }
  bool empty() const noexcept { return size() == 0; }
  const Event& operator[](std::size_t pos) const noexcept {
    return all_ ? events_[pos] : events_[indices_[pos]];
  }
  /// Position in the *backing* span of the view's pos-th event.
  std::uint32_t backing_index(std::size_t pos) const noexcept {
    return all_ ? static_cast<std::uint32_t>(pos) : indices_[pos];
  }
  /// True when the view is the whole backing span in order.
  bool spans_all() const noexcept { return all_; }
  std::span<const Event> backing() const noexcept { return events_; }

 private:
  std::span<const Event> events_;
  std::span<const std::uint32_t> indices_;
  bool all_ = true;
};

/// Equality-bucket shape introspection, feeding the routing table's
/// skew-triggered maintenance (fire Matcher::maintain early when
/// largest/mean crosses a ratio, skip the pass when balanced). Engines
/// without equality buckets report all-zero and are treated as balanced —
/// their maintain() is a no-op anyway.
struct EqBucketStats {
  std::size_t largest = 0;  ///< size of the largest equality bucket
  std::size_t buckets = 0;  ///< number of live equality buckets
  std::size_t filters = 0;  ///< filters living in those buckets
  /// Identity hash of the largest bucket's (attribute, value) key; 0 when
  /// there are no buckets. The routing table's zero-change backoff uses it
  /// to distinguish "the pinned bucket grew" (stay suppressed) from "a
  /// different bucket took over as largest" (re-arm — the newcomer may be
  /// movable). Ties between equal-size buckets resolve to the first seen,
  /// which is unspecified but stable between consecutive unmodified
  /// samples; a spurious key flip costs at most one extra maintain pass.
  std::size_t largest_key = 0;
};

/// Common interface of the matching engines.
///
/// ## The Matcher contract
///
/// Every engine behind MatcherRegistry is held to three invariants; the
/// differential fuzz harness (tests/pubsub_differential_fuzz_test.cpp)
/// replays adversarial schedules through every registered engine against
/// the brute-force oracle to enforce them:
///
///   1. **Set semantics.** match / match_batch report exactly the ids of
///      the registered filters the event satisfies — no duplicates, order
///      unspecified. Engines are interchangeable up to hit order; callers
///      that need canonical output sort (the Broker does).
///   2. **Batch-composition independence.** The per-event output of
///      match_batch is a function of the event and the registered filters
///      only — never of which other events share the view, their order,
///      or whether the view is a sub-batch. A sub-batch view produces
///      exactly the hit lists the full batch would have produced at those
///      positions. The sharded layer's zero-copy pre-filter is built on
///      this: it hands each shard an index-span view and splices shard
///      outputs back by backing index.
///   3. **Maintenance transparency.** maintain() may restructure internal
///      state (re-anchor filters, rebuild buckets) but must never change
///      any match result — only probe cost. It may run at any point
///      between operations; the fuzz harness interleaves it with churn.
///
/// eq_bucket_stats() is introspection, not contract output: a consistent
/// snapshot of the engine's equality-bucket shape *at the call*, used by
/// the routing table to schedule maintenance (fire early on skew, skip
/// provable no-op passes, stand down on pinned buckets). All-zero stats
/// mean "nothing to repair" and must only be returned when maintain() is
/// a no-op on the engine's current state.
class Matcher {
 public:
  virtual ~Matcher() = default;

  /// Registers `filter` under `id`. Re-adding an existing id replaces it.
  virtual void add(SubscriptionId id, Filter filter) = 0;

  /// Removes a registration; unknown ids are ignored.
  virtual void remove(SubscriptionId id) = 0;

  /// Appends the ids of all filters matching `event` to `out` (order
  /// unspecified; no duplicates).
  virtual void match(const Event& event,
                     std::vector<SubscriptionId>& out) const = 0;

  /// Batch matching: replaces `out` with one hit vector per event of the
  /// view, parallel to the view's order (per-event contract as for
  /// `match`). Per-event output is independent of which other events share
  /// the view — a sub-batch view produces exactly the hit lists the full
  /// batch would have produced at those positions (the sharded layer's
  /// zero-copy pre-filter relies on this; the differential fuzz harness
  /// enforces it). The base implementation loops over `match`; engines
  /// override it to amortize index probes across the batch.
  virtual void match_batch(const EventBatchView& events,
                           std::vector<std::vector<SubscriptionId>>& out) const;

  /// Convenience overload for whole-span callers (broker, tests, benches).
  void match_batch(std::span<const Event> events,
                   std::vector<std::vector<SubscriptionId>>& out) const {
    match_batch(EventBatchView(events), out);
  }

  /// Scored batch matching: runs the engine's match_batch, then decorates
  /// each hit with score_event under its spec in `scoring` (kConstantScore
  /// for ids with no spec). Non-virtual on purpose — scoring happens on
  /// the calling thread *after* the (possibly sharded, multi-threaded)
  /// boolean match merges, so every engine inherits the same scored
  /// output for the same match sets, and the batch-composition
  /// independence of contract point 2 extends to scores: a sub-batch view
  /// produces exactly the (id, score) lists the full batch would have at
  /// those positions.
  void match_batch_scored(const EventBatchView& events,
                          const ScoringIndex& scoring,
                          std::vector<std::vector<ScoredHit>>& out) const;

  void match_batch_scored(std::span<const Event> events,
                          const ScoringIndex& scoring,
                          std::vector<std::vector<ScoredHit>>& out) const {
    match_batch_scored(EventBatchView(events), scoring, out);
  }

  /// Number of registered filters.
  virtual std::size_t size() const noexcept = 0;

  virtual std::string name() const = 0;

  /// Optional structural-maintenance hook. The routing layer calls it on a
  /// churn schedule (RoutingTable::Config::maintain_churn_threshold) so
  /// engines whose probe cost degrades under adversarial add/remove
  /// patterns can repair themselves in the production path: the anchor
  /// index re-runs anchor selection for filters stranded in equality
  /// buckets larger than `max_bucket` (IndexMatcher::rebalance), the
  /// sharded layer fans the call out to its shards. Must never change
  /// match results — only probe cost. Returns the number of structural
  /// changes made; the default (engines with no amortized state) is a
  /// no-op returning 0.
  virtual std::size_t maintain(std::size_t max_bucket) {
    (void)max_bucket;
    return 0;
  }

  /// Equality-bucket shape for skew-triggered maintenance; engines with no
  /// equality buckets (or no amortized state worth repairing) report
  /// all-zero. An engine that overrides maintain() with real repair work
  /// SHOULD override this too: the routing table gates its skew-triggered
  /// scheduling on these stats, and falls back to the plain churn
  /// schedule only while an engine has never reported a nonzero shape.
  /// Semantics: `largest` is the population of the single biggest
  /// equality bucket, `buckets` the number of live (non-empty) buckets,
  /// `filters` the total population across them — so filters/buckets is
  /// the mean the skew ratio compares against. The snapshot must be
  /// consistent (one logical point in time) but carries no freshness
  /// guarantee beyond the call; the scheduler tolerates staleness of up
  /// to one churn op by construction (it re-samples every check).
  virtual EqBucketStats eq_bucket_stats() const noexcept { return {}; }

  /// Convenience wrapper returning a fresh vector.
  std::vector<SubscriptionId> match(const Event& event) const {
    std::vector<SubscriptionId> out;
    match(event, out);
    return out;
  }
};

/// Baseline: linear scan over all registered filters.
class BruteForceMatcher final : public Matcher {
 public:
  using Matcher::match;
  using Matcher::match_batch;
  void add(SubscriptionId id, Filter filter) override;
  void remove(SubscriptionId id) override;
  void match(const Event& event,
             std::vector<SubscriptionId>& out) const override;
  /// One pass over the table with the events in the inner loop (each
  /// filter is fetched once per batch instead of once per event).
  void match_batch(const EventBatchView& events,
                   std::vector<std::vector<SubscriptionId>>& out)
      const override;
  std::size_t size() const noexcept override { return filters_.size(); }
  std::string name() const override { return "brute-force"; }

 private:
  std::unordered_map<SubscriptionId, Filter> filters_;
};

/// Anchor-index matcher. Every filter is indexed in exactly one place,
/// picked by anchor priority:
///
///   1. a hash bucket keyed by its most *selective* equality constraint
///      (the one whose (attribute, value) bucket is currently smallest);
///   2. absent eq constraints, the equality buckets of its first `in`
///      constraint: the filter is posted under *every* bucketable member
///      (an event value hits at most one member bucket, so the filter is
///      found at most once per probe);
///   3. absent those, a *sorted numeric bound array* for its first range
///      constraint (`<` `<=` `>` `>=` with a numeric bound): matching
///      binary-searches the event value against the sorted lower/upper
///      bound arrays and enumerates exactly the satisfied postings —
///      never the unsatisfied ones;
///   4. absent those, a *sorted string prefix table* for its first prefix
///      constraint: lexicographic binary probes, one per live pattern
///      length (see range_index.h for the probe arithmetic shared with
///      the bitset engine);
///   5. absent those, a *reversed-pattern suffix table* for its first
///      suffix constraint: the same prefix probes run against the
///      reversed event string;
///   6. absent those, a *length-sorted substring table* for its first
///      contains constraint: one shared walk bounded by the event
///      string's length, one find() per distinct live pattern;
///   7. otherwise a residual per-attribute scan list (ne/exists, the
///      in-sets with no bucketable member, and range/prefix/suffix/
///      contains shapes the sorted structures cannot hold: string or NaN
///      bounds, non-string patterns). With every string search op
///      anchored in its own structure, only genuinely shapeless
///      constraints remain here.
///
/// Matching an event probes the structures of the event's own attribute
/// values and fully evaluates only the candidates found there; any anchor
/// is correct because it is a *necessary* condition of its filter (an
/// event matching the filter satisfies the anchor constraint, so the
/// probe finds it). Anchoring on the smallest eq bucket steers filters
/// away from non-selective attributes (every feed subscription carries
/// stream="feed"; anchoring there would degenerate to a linear scan — the
/// classic content-based-matching pitfall).
class IndexMatcher final : public Matcher {
 public:
  using Matcher::match;
  using Matcher::match_batch;
  void add(SubscriptionId id, Filter filter) override;
  void remove(SubscriptionId id) override;
  void match(const Event& event,
             std::vector<SubscriptionId>& out) const override;
  /// Amortized batch path: the batch is flattened to (AttrId, event)
  /// occurrences and sorted by integer id, so each index probe runs once
  /// per distinct (attribute, value) across the batch — not once per
  /// event — and each candidate filter is fetched once per bucket and
  /// evaluated against only the events that reached its bucket.
  void match_batch(const EventBatchView& events,
                   std::vector<std::vector<SubscriptionId>>& out)
      const override;
  std::size_t size() const noexcept override { return filters_.size(); }
  std::string name() const override { return "anchor-index"; }

  /// Introspection for tests and benches: filters anchored per structure
  /// (equality buckets, in-member buckets, sorted range arrays, prefix /
  /// suffix / contains tables, residual scan lists).
  std::size_t eq_anchored() const noexcept { return eq_count_; }
  std::size_t in_anchored() const noexcept { return in_count_; }
  std::size_t range_anchored() const noexcept { return range_count_; }
  std::size_t prefix_anchored() const noexcept { return prefix_count_; }
  std::size_t suffix_anchored() const noexcept { return suffix_count_; }
  std::size_t contains_anchored() const noexcept { return contains_count_; }
  std::size_t scan_anchored() const noexcept { return scan_count_; }
  /// Attribute a filter is currently anchored on (empty string for the
  /// universal list; nullopt for unknown ids). Test/bench introspection
  /// for the anchor-rebalancing behavior.
  std::optional<std::string> anchor_attribute(SubscriptionId id) const;
  /// Size of the largest equality bucket (0 when none exist).
  std::size_t largest_eq_bucket() const noexcept;
  /// Largest / count / population of the equality buckets — O(1): the
  /// shape is maintained incrementally at every bucket push/erase (a size
  /// histogram of bucket identity keys), so the routing table's skew
  /// sampling never pays a bucket scan. The largest size can fall at most
  /// one step per removal, so the downward search is amortized O(1) too.
  EqBucketStats eq_bucket_stats() const noexcept override;

  /// Anchor maintenance under adversarial churn: anchors are chosen at add
  /// time against the bucket sizes of that moment, so a long-lived filter
  /// can sit in a bucket that has since grown far past its alternatives.
  /// This pass re-runs anchor selection (in ascending id order, so it is
  /// deterministic) for every filter living in an equality bucket larger
  /// than `max_bucket` — and a filter moves only if another of its
  /// equality buckets is strictly smaller than its current one at that
  /// point of the pass. Returns how many filters moved. Matching is
  /// correct for *any* anchor assignment — the pass only affects probe
  /// cost. Filters whose sole equality constraint is the hot one are
  /// pinned (they are skipped outright); largest_eq_bucket() stays above
  /// `max_bucket` in that case — the skew the churn test documents.
  std::size_t rebalance(std::size_t max_bucket);

  /// Maintenance hook: anchor rebalancing is this engine's structural
  /// repair (rebalance() itself no-ops cheaply when no bucket exceeds
  /// `max_bucket`).
  std::size_t maintain(std::size_t max_bucket) override {
    return rebalance(max_bucket);
  }

 private:
  enum class AnchorKind : std::uint8_t {
    kUniversal,  // empty filter, universal list
    kEqBucket,   // equality hash bucket
    kIn,         // equality buckets of every bucketable in-member
    kRange,      // sorted numeric bound array (lower or upper)
    kPrefix,     // sorted string prefix table
    kSuffix,     // reversed-pattern suffix table
    kContains,   // length-sorted substring table
    kScan,       // residual per-attribute scan list
  };

  struct Entry {
    Filter filter;
    AnchorKind kind = AnchorKind::kUniversal;
    AttrId anchor_attr = kNoAttrId;  // kNoAttrId = universal list
    Value anchor_value;  // eq: canonical bucket key; range: the bound;
                         // prefix/suffix/contains: the original pattern;
                         // kIn: unused (removal re-finds the filter's
                         // first in constraint); otherwise unused
    bool anchor_strict = false;  // range: strict (< / >) bound
    bool anchor_lower = false;   // range: lower (>/>=) vs upper (</<=)
  };

  /// One range anchor posting: a sorted bound with its strictness.
  struct RangePosting {
    Value bound;  // numeric, non-NaN (is_sortable_range gatekeeps)
    bool strict;
    SubscriptionId id;
  };
  struct RangeIndex {
    std::vector<RangePosting> lower;  // >/>= — lower_bound_order
    std::vector<RangePosting> upper;  // </<= — upper_bound_order
  };
  /// One distinct prefix pattern with the filters anchored on it.
  struct PrefixPosting {
    std::string prefix;
    std::vector<SubscriptionId> ids;
  };
  struct PrefixIndex {
    std::vector<PrefixPosting> postings;  // sorted by pattern, distinct
    /// sorted (pattern length, live patterns of that length)
    std::vector<std::pair<std::size_t, std::size_t>> lengths;
  };
  /// One distinct contains pattern with the filters anchored on it.
  struct ContainsPosting {
    std::string pattern;
    std::vector<SubscriptionId> ids;
  };
  struct ContainsIndex {
    /// sorted by (pattern length, pattern), distinct
    std::vector<ContainsPosting> postings;
  };

  /// Incremental eq-bucket-stats bookkeeping, called at every bucket
  /// push/erase with the bucket's new size (hist bins hold identity keys
  /// so largest_key falls out of the histogram).
  void note_bucket_grew(AttrId attr, const Value& value,
                        std::size_t new_size);
  void note_bucket_shrank(AttrId attr, const Value& value,
                          std::size_t new_size);

  std::unordered_map<SubscriptionId, Entry> filters_;
  /// attribute id -> canonical value -> filters anchored on (attr = value)
  std::unordered_map<AttrId,
                     std::unordered_map<Value, std::vector<SubscriptionId>>,
                     AttrIdHash>
      eq_;
  /// attribute id -> sorted range bound arrays of the filters anchored on
  /// a numeric range constraint of that attribute
  std::unordered_map<AttrId, RangeIndex, AttrIdHash> range_;
  /// attribute id -> sorted prefix table of the filters anchored on a
  /// string prefix constraint of that attribute
  std::unordered_map<AttrId, PrefixIndex, AttrIdHash> prefix_;
  /// attribute id -> reversed-pattern table of the filters anchored on a
  /// string suffix constraint of that attribute (PrefixIndex over the
  /// reversed patterns; probed with the reversed event string)
  std::unordered_map<AttrId, PrefixIndex, AttrIdHash> suffix_;
  /// attribute id -> length-sorted substring table of the filters
  /// anchored on a string contains constraint of that attribute
  std::unordered_map<AttrId, ContainsIndex, AttrIdHash> contains_;
  /// attribute id -> residual filters (no indexable anchor shape)
  std::unordered_map<AttrId, std::vector<SubscriptionId>, AttrIdHash> scan_;
  std::vector<SubscriptionId> universal_;  // empty filters match everything
  std::size_t eq_count_ = 0;
  std::size_t in_count_ = 0;
  std::size_t range_count_ = 0;
  std::size_t prefix_count_ = 0;
  std::size_t suffix_count_ = 0;
  std::size_t contains_count_ = 0;
  std::size_t scan_count_ = 0;
  /// Total postings across the equality buckets (an in-anchored filter
  /// occupies one posting per bucketable member, so this is what
  /// EqBucketStats::filters reports — not eq_count_).
  std::size_t eq_postings_ = 0;
  /// Bucket-size histogram: size -> {bucket identity key -> buckets of
  /// that size under that key}. Keys are hash_combine(attr, hash(value)) —
  /// the same identity EqBucketStats::largest_key reports — and carry a
  /// count so a (vanishingly unlikely) key collision stays correct.
  std::unordered_map<std::size_t,
                     std::unordered_map<std::size_t, std::size_t>>
      eq_size_hist_;
  std::size_t eq_buckets_ = 0;   // live (non-empty) buckets
  std::size_t eq_largest_ = 0;   // size of the largest bucket
  std::size_t eq_largest_key_ = 0;  // its identity key (0 when none)
};

/// Counting matcher (Gryphon/Siena style). Every constraint of every
/// filter is indexed per attribute — equality constraints through a hash
/// table on the canonical value, the rest on a per-attribute list. An
/// event walks its own attributes, tallies one count per satisfied
/// constraint, and a filter fires when its count reaches its constraint
/// total. Unlike the anchor index, constraints are evaluated at most once
/// each; the cost is the per-match counting table.
class CountingMatcher final : public Matcher {
 public:
  using Matcher::match;
  using Matcher::match_batch;
  void add(SubscriptionId id, Filter filter) override;
  void remove(SubscriptionId id) override;
  void match(const Event& event,
             std::vector<SubscriptionId>& out) const override;
  std::size_t size() const noexcept override { return filters_.size(); }
  std::string name() const override { return "counting"; }

  /// Introspection: indexed constraint postings (eq + non-eq).
  std::size_t posting_count() const noexcept { return postings_; }

 private:
  struct NonEqPosting {
    Constraint constraint;
    SubscriptionId id;
  };

  std::unordered_map<SubscriptionId, Filter> filters_;
  /// attribute id -> canonical value -> filters with an (attr = value)
  /// equality constraint (one posting per constraint).
  std::unordered_map<AttrId,
                     std::unordered_map<Value, std::vector<SubscriptionId>>,
                     AttrIdHash>
      eq_;
  /// attribute id -> non-equality constraint postings on that attribute.
  std::unordered_map<AttrId, std::vector<NonEqPosting>, AttrIdHash> noneq_;
  std::vector<SubscriptionId> universal_;  // empty filters match everything
  std::size_t postings_ = 0;
};

}  // namespace reef::pubsub
