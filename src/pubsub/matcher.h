// Event-to-subscription matching engines.
//
// Three implementations share one interface, selected by name through the
// MatcherRegistry (see matcher_registry.h):
//   "brute-force"  — linear scan; the correctness oracle in tests and the
//                    ablation baseline in benches.
//   "anchor-index" — every filter indexed in exactly one hash bucket keyed
//                    by its most selective equality constraint.
//   "counting"     — classic Gryphon/Siena counting algorithm: constraints
//                    indexed per attribute, a filter fires when all of its
//                    constraints have been satisfied by the event.
//
// All engines expose a batch entry point, match_batch, which amortizes
// index probes and candidate fetches across a span of events; the broker's
// per-tick publication coalescing feeds it.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "pubsub/event.h"
#include "pubsub/filter.h"

namespace reef::pubsub {

/// Identifier a matcher client associates with a registered filter.
using SubscriptionId = std::uint64_t;

/// Normalizes numerics to double so that Eq(3) and an event value 3.0 land
/// in the same hash bucket (Value::compare treats them as equal). Identity
/// on non-numeric values.
Value canonical_numeric(const Value& v);

/// Common interface of the matching engines.
class Matcher {
 public:
  virtual ~Matcher() = default;

  /// Registers `filter` under `id`. Re-adding an existing id replaces it.
  virtual void add(SubscriptionId id, Filter filter) = 0;

  /// Removes a registration; unknown ids are ignored.
  virtual void remove(SubscriptionId id) = 0;

  /// Appends the ids of all filters matching `event` to `out` (order
  /// unspecified; no duplicates).
  virtual void match(const Event& event,
                     std::vector<SubscriptionId>& out) const = 0;

  /// Batch matching: replaces `out` with one hit vector per event,
  /// parallel to `events` (per-event contract as for `match`). The base
  /// implementation loops over `match`; engines override it to amortize
  /// index probes and candidate evaluation across the batch.
  virtual void match_batch(std::span<const Event> events,
                           std::vector<std::vector<SubscriptionId>>& out) const;

  /// Number of registered filters.
  virtual std::size_t size() const noexcept = 0;

  virtual std::string name() const = 0;

  /// Optional structural-maintenance hook. The routing layer calls it on a
  /// churn schedule (RoutingTable::Config::maintain_churn_threshold) so
  /// engines whose probe cost degrades under adversarial add/remove
  /// patterns can repair themselves in the production path: the anchor
  /// index re-runs anchor selection for filters stranded in equality
  /// buckets larger than `max_bucket` (IndexMatcher::rebalance), the
  /// sharded layer fans the call out to its shards. Must never change
  /// match results — only probe cost. Returns the number of structural
  /// changes made; the default (engines with no amortized state) is a
  /// no-op returning 0.
  virtual std::size_t maintain(std::size_t max_bucket) {
    (void)max_bucket;
    return 0;
  }

  /// Convenience wrapper returning a fresh vector.
  std::vector<SubscriptionId> match(const Event& event) const {
    std::vector<SubscriptionId> out;
    match(event, out);
    return out;
  }
};

/// Baseline: linear scan over all registered filters.
class BruteForceMatcher final : public Matcher {
 public:
  using Matcher::match;
  void add(SubscriptionId id, Filter filter) override;
  void remove(SubscriptionId id) override;
  void match(const Event& event,
             std::vector<SubscriptionId>& out) const override;
  /// One pass over the table with the events in the inner loop (each
  /// filter is fetched once per batch instead of once per event).
  void match_batch(std::span<const Event> events,
                   std::vector<std::vector<SubscriptionId>>& out)
      const override;
  std::size_t size() const noexcept override { return filters_.size(); }
  std::string name() const override { return "brute-force"; }

 private:
  std::unordered_map<SubscriptionId, Filter> filters_;
};

/// Anchor-index matcher. Every filter is indexed in exactly one place — a
/// hash bucket keyed by its most *selective* equality constraint (the one
/// whose (attribute, value) bucket is currently smallest), or, for filters
/// without equality constraints, a per-attribute scan list. Matching an
/// event probes the buckets of the event's own attribute values and fully
/// evaluates only the candidates found there. Anchoring on the smallest
/// bucket steers filters away from non-selective attributes (every feed
/// subscription carries stream="feed"; anchoring there would degenerate to
/// a linear scan — the classic content-based-matching pitfall).
class IndexMatcher final : public Matcher {
 public:
  using Matcher::match;
  void add(SubscriptionId id, Filter filter) override;
  void remove(SubscriptionId id) override;
  void match(const Event& event,
             std::vector<SubscriptionId>& out) const override;
  /// Amortized batch path: events are grouped by attribute and canonical
  /// value first, so each index probe runs once per distinct (attribute,
  /// value) across the batch — not once per event — and each candidate
  /// filter is fetched once per bucket and evaluated against only the
  /// events that reached its bucket.
  void match_batch(std::span<const Event> events,
                   std::vector<std::vector<SubscriptionId>>& out)
      const override;
  std::size_t size() const noexcept override { return filters_.size(); }
  std::string name() const override { return "anchor-index"; }

  /// Introspection for benches: filters anchored in equality buckets vs.
  /// sitting on per-attribute scan lists.
  std::size_t eq_anchored() const noexcept { return eq_count_; }
  std::size_t scan_anchored() const noexcept { return scan_count_; }
  /// Attribute a filter is currently anchored on (empty string for the
  /// universal list; nullopt for unknown ids). Test/bench introspection
  /// for the anchor-rebalancing behavior.
  std::optional<std::string> anchor_attribute(SubscriptionId id) const;
  /// Size of the largest equality bucket (0 when none exist).
  std::size_t largest_eq_bucket() const noexcept;

  /// Anchor maintenance under adversarial churn: anchors are chosen at add
  /// time against the bucket sizes of that moment, so a long-lived filter
  /// can sit in a bucket that has since grown far past its alternatives.
  /// This pass re-runs anchor selection (in ascending id order, so it is
  /// deterministic) for every filter living in an equality bucket larger
  /// than `max_bucket` — and a filter moves only if another of its
  /// equality buckets is strictly smaller than its current one at that
  /// point of the pass. Returns how many filters moved. Matching is
  /// correct for *any* anchor assignment — the pass only affects probe
  /// cost. Filters whose sole equality constraint is the hot one are
  /// pinned (they are skipped outright); largest_eq_bucket() stays above
  /// `max_bucket` in that case — the skew the churn test documents.
  std::size_t rebalance(std::size_t max_bucket);

  /// Maintenance hook: anchor rebalancing is this engine's structural
  /// repair (rebalance() itself no-ops cheaply when no bucket exceeds
  /// `max_bucket`).
  std::size_t maintain(std::size_t max_bucket) override {
    return rebalance(max_bucket);
  }

 private:
  struct Entry {
    Filter filter;
    bool eq_anchor = false;
    std::string anchor_attr;
    Value anchor_value;  // only meaningful when eq_anchor
  };

  std::unordered_map<SubscriptionId, Entry> filters_;
  /// attribute -> canonical value -> filters anchored on (attr = value)
  std::unordered_map<std::string,
                     std::unordered_map<Value, std::vector<SubscriptionId>>>
      eq_;
  /// attribute -> filters (without eq constraints) anchored on it
  std::unordered_map<std::string, std::vector<SubscriptionId>> scan_;
  std::vector<SubscriptionId> universal_;  // empty filters match everything
  std::size_t eq_count_ = 0;
  std::size_t scan_count_ = 0;
};

/// Counting matcher (Gryphon/Siena style). Every constraint of every
/// filter is indexed per attribute — equality constraints through a hash
/// table on the canonical value, the rest on a per-attribute list. An
/// event walks its own attributes, tallies one count per satisfied
/// constraint, and a filter fires when its count reaches its constraint
/// total. Unlike the anchor index, constraints are evaluated at most once
/// each; the cost is the per-match counting table.
class CountingMatcher final : public Matcher {
 public:
  using Matcher::match;
  void add(SubscriptionId id, Filter filter) override;
  void remove(SubscriptionId id) override;
  void match(const Event& event,
             std::vector<SubscriptionId>& out) const override;
  std::size_t size() const noexcept override { return filters_.size(); }
  std::string name() const override { return "counting"; }

  /// Introspection: indexed constraint postings (eq + non-eq).
  std::size_t posting_count() const noexcept { return postings_; }

 private:
  struct NonEqPosting {
    Constraint constraint;
    SubscriptionId id;
  };

  std::unordered_map<SubscriptionId, Filter> filters_;
  /// attribute -> canonical value -> filters with an (attr = value)
  /// equality constraint (one posting per constraint).
  std::unordered_map<std::string,
                     std::unordered_map<Value, std::vector<SubscriptionId>>>
      eq_;
  /// attribute -> non-equality constraint postings on that attribute.
  std::unordered_map<std::string, std::vector<NonEqPosting>> noneq_;
  std::vector<SubscriptionId> universal_;  // empty filters match everything
  std::size_t postings_ = 0;
};

}  // namespace reef::pubsub
