// Events (notifications) for the content-based pub/sub substrate: a set of
// typed name-value attributes plus a monotone sequence id for tracing.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "pubsub/attr_table.h"
#include "pubsub/value.h"

namespace reef::pubsub {

/// Monotone identifier for an event instance (assigned by publishers).
using EventId = std::uint64_t;

/// An immutable-after-construction notification. Attribute names are
/// interned through the process-wide AttrTable at construction, and the
/// attributes live in a flat vector sorted by AttrId — matching engines
/// iterate and probe by integer id, never touching the strings. The
/// canonical textual form (to_string), wire size, and equality semantics
/// are byte-for-byte identical to the original name-keyed representation
/// (tests/pubsub_attr_table_test.cpp pins the golden strings).
class Event {
 public:
  Event() = default;

  // Copies are counted (relaxed, process-global) so the zero-copy batch
  // contract is testable: the sharded pre-filter's index-span sub-batches
  // must not copy a single Event (tests/pubsub_sharding_test.cpp and the
  // bench smoke assert copy_count() stays flat across match_batch).
  Event(const Event& other) : attrs_(other.attrs_), id_(other.id_) {
    copy_count_.fetch_add(1, std::memory_order_relaxed);
  }
  Event& operator=(const Event& other) {
    attrs_ = other.attrs_;
    id_ = other.id_;
    copy_count_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  Event(Event&&) noexcept = default;
  Event& operator=(Event&&) noexcept = default;

  /// Process-wide count of Event copy-constructions/assignments since
  /// start. Monotone; test code diffs it around a call under test.
  static std::uint64_t copy_count() noexcept {
    return copy_count_.load(std::memory_order_relaxed);
  }

  /// Fluent construction: Event().with("symbol", "ACME").with("price", 12.5)
  /// `name` is interned process-wide and never freed — attribute names
  /// must stay a bounded, schema-like vocabulary (dynamic data belongs in
  /// the Value); see the AttrTable cardinality note.
  Event&& with(std::string_view name, Value value) && {
    set(AttrTable::instance().intern(name), std::move(value));
    return std::move(*this);
  }
  Event& with(std::string_view name, Value value) & {
    set(AttrTable::instance().intern(name), std::move(value));
    return *this;
  }

  /// Attribute lookup by name; returns nullptr when absent. Names never
  /// interned by any event or filter cannot be present.
  const Value* find(std::string_view name) const noexcept {
    const AttrId id = AttrTable::instance().lookup(name);
    return id == kNoAttrId ? nullptr : find(id);
  }

  /// Hot-path attribute lookup by interned id (early-exit linear scan
  /// over the id-sorted flat storage — events carry a handful of
  /// attributes, where the scan beats binary search).
  const Value* find(AttrId id) const noexcept;

  bool has(std::string_view name) const noexcept { return find(name); }
  std::size_t size() const noexcept { return attrs_.size(); }
  bool empty() const noexcept { return attrs_.empty(); }

  /// Flat attribute storage, sorted by AttrId. The matching engines'
  /// iteration surface; names are recovered via AttrTable::name when a
  /// human-readable form is needed.
  const std::vector<std::pair<AttrId, Value>>& attrs() const noexcept {
    return attrs_;
  }

  EventId id() const noexcept { return id_; }
  void set_id(EventId id) noexcept { id_ = id; }

  /// Approximate wire size in bytes for traffic accounting.
  std::size_t wire_size() const noexcept;

  /// Canonical text, e.g. {price=12.5, symbol="ACME"} — attributes in
  /// name order, exactly as the original map-backed representation.
  std::string to_string() const;

  /// Same attribute set with the same values. AttrIds biject with names,
  /// so comparing the id-sorted flat vectors is equivalent to comparing
  /// the original name-sorted maps.
  friend bool operator==(const Event& a, const Event& b) noexcept {
    return a.attrs_ == b.attrs_;
  }

 private:
  void set(AttrId id, Value value);

  static std::atomic<std::uint64_t> copy_count_;

  std::vector<std::pair<AttrId, Value>> attrs_;  // sorted by AttrId
  EventId id_ = 0;
};

}  // namespace reef::pubsub
