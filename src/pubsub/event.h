// Events (notifications) for the content-based pub/sub substrate: a set of
// typed name-value attributes plus a monotone sequence id for tracing.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "pubsub/value.h"

namespace reef::pubsub {

/// Monotone identifier for an event instance (assigned by publishers).
using EventId = std::uint64_t;

/// An immutable-after-construction notification. Attributes are kept in a
/// sorted map so textual forms and wire sizes are canonical.
class Event {
 public:
  Event() = default;

  /// Fluent construction: Event().with("symbol", "ACME").with("price", 12.5)
  Event&& with(std::string name, Value value) && {
    attrs_.insert_or_assign(std::move(name), std::move(value));
    return std::move(*this);
  }
  Event& with(std::string name, Value value) & {
    attrs_.insert_or_assign(std::move(name), std::move(value));
    return *this;
  }

  /// Attribute lookup; returns nullptr when absent.
  const Value* find(std::string_view name) const noexcept;

  bool has(std::string_view name) const noexcept { return find(name); }
  std::size_t size() const noexcept { return attrs_.size(); }
  bool empty() const noexcept { return attrs_.empty(); }

  const std::map<std::string, Value, std::less<>>& attributes()
      const noexcept {
    return attrs_;
  }

  EventId id() const noexcept { return id_; }
  void set_id(EventId id) noexcept { id_ = id; }

  /// Approximate wire size in bytes for traffic accounting.
  std::size_t wire_size() const noexcept;

  /// Canonical text, e.g. {price=12.5, symbol="ACME"}.
  std::string to_string() const;

  friend bool operator==(const Event& a, const Event& b) noexcept {
    return a.attrs_ == b.attrs_;
  }

 private:
  std::map<std::string, Value, std::less<>> attrs_;
  EventId id_ = 0;
};

}  // namespace reef::pubsub
