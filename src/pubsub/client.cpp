#include "pubsub/client.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <unordered_set>

#include "util/hash.h"
#include "util/log.h"

namespace reef::pubsub {

Client::Client(sim::Simulator& sim, sim::Network& net, std::string name)
    : sim_(sim), net_(net), name_(std::move(name)),
      channel_(sim, net, ReliableChannel::Config{}) {
  id_ = net_.attach(*this, name_);
  channel_.bind(id_);
  channel_.set_deliver(
      [this](sim::NodeId from, const CtrlOp& op) { on_ctrl_op(from, op); });
  // A higher epoch from the broker means it restarted: our stream state
  // there is gone, so start over at seq 1. The broker's resync request
  // (the op that carried the new epoch) then triggers the full replay.
  channel_.set_on_peer_restart(
      [this](sim::NodeId peer) { channel_.reset_peer_send(peer); });
}

void Client::enable_reliable_control(ReliableChannel::Config config) {
  channel_.configure(config);
}

void Client::connect(Broker& broker) {
  broker_ = broker.id();
  broker.attach_client(id_);
}

SubscriptionId Client::subscribe(Filter filter, Handler handler) {
  // An empty Handler must stay empty after wrapping so deliveries keep
  // routing to the inbox.
  ScoredHandler scored;
  if (handler) {
    scored = [inner = std::move(handler)](const Event& event,
                                          SubscriptionId sub,
                                          double /*score*/) {
      inner(event, sub);
    };
  }
  return subscribe_scored(std::move(filter), ScoringSpec{}, std::move(scored));
}

SubscriptionId Client::subscribe_scored(Filter filter, ScoringSpec scoring,
                                        ScoredHandler handler) {
  assert(connected() && "subscribe before connect");
  const SubscriptionId sub_id =
      (static_cast<std::uint64_t>(id_) << 32) | next_sub_++;
  handlers_.emplace(sub_id, std::move(handler));
  if (channel_.enabled()) {
    subs_.emplace(sub_id, ClientSubscription{sub_id, filter, scoring});
    CtrlOp op;
    op.kind = CtrlOp::Kind::kClientSubscribe;
    op.sub_id = sub_id;
    op.filter = std::move(filter);
    op.scoring = std::move(scoring);
    channel_.send(broker_, std::move(op));
    return sub_id;
  }
  const std::size_t bytes = filter.wire_size() + 16 + scoring.wire_size();
  net_.send(id_, broker_, std::string(kTypeClientSubscribe),
            ClientSubscribeMsg{sub_id, std::move(filter), std::move(scoring)},
            bytes);
  return sub_id;
}

std::vector<SubscriptionId> Client::subscribe_any(
    std::vector<Filter> filters, Handler handler) {
  // Share one dedup set across the branch subscriptions: events carry a
  // publisher-assigned id, so an event matching several branches is
  // delivered in one DeliverMsg listing each branch — the shared set makes
  // the user handler fire once.
  auto seen = std::make_shared<std::unordered_set<EventId>>();
  auto shared_handler = std::make_shared<Handler>(std::move(handler));
  std::vector<SubscriptionId> ids;
  ids.reserve(filters.size());
  for (auto& filter : filters) {
    ids.push_back(subscribe(
        std::move(filter),
        [seen, shared_handler](const Event& event, SubscriptionId sub) {
          if (!seen->insert(event.id()).second) return;
          if (*shared_handler) (*shared_handler)(event, sub);
        }));
  }
  return ids;
}

void Client::unsubscribe(SubscriptionId id) {
  if (handlers_.erase(id) == 0) return;
  subs_.erase(id);
  if (channel_.enabled()) {
    CtrlOp op;
    op.kind = CtrlOp::Kind::kClientUnsubscribe;
    op.sub_id = id;
    channel_.send(broker_, std::move(op));
    return;
  }
  net_.send(id_, broker_, std::string(kTypeClientUnsubscribe),
            ClientUnsubscribeMsg{id}, 16);
}

void Client::publish(Event event) {
  assert(connected() && "publish before connect");
  event.set_id((static_cast<std::uint64_t>(id_) << 32) | next_event_id_++);
  ++published_;
  const std::size_t bytes = publish_msg_wire_size(event);
  net_.send(id_, broker_, std::string(kTypePublish),
            PublishMsg{std::move(event)}, bytes);
}

void Client::publish_batch(std::vector<Event> events) {
  assert(connected() && "publish before connect");
  if (events.empty()) return;
  if (events.size() == 1) {  // no batch framing for a single event
    publish(std::move(events.front()));
    return;
  }
  for (Event& event : events) {
    event.set_id((static_cast<std::uint64_t>(id_) << 32) | next_event_id_++);
    ++published_;
  }
  const std::size_t bytes = publish_batch_wire_size(events);
  const std::size_t units = events.size();
  net_.send(id_, broker_, std::string(kTypePublishBatch),
            PublishBatchMsg{std::move(events)}, bytes, units);
}

void Client::on_ctrl_op(sim::NodeId from, const CtrlOp& op) {
  if (op.kind != CtrlOp::Kind::kResyncRequest) {
    util::log_warn("client") << name_ << ": unexpected control op";
    return;
  }
  // The broker restarted and asks what we subscribe to, sending its digest
  // of our registrations (same formula as RoutingTable::client_iface_digest,
  // so matching state is recognized without a replay).
  std::uint64_t digest = 0;
  for (const auto& [sub_id, sub] : subs_) {
    digest ^= util::hash_combine(util::fnv1a64(sub.filter.key()), sub_id);
    // Scoring folds in only when non-neutral, so unscored state keeps the
    // PR 9 digest value (see RoutingTable::client_iface_digest).
    if (!sub.scoring.neutral()) {
      digest ^= util::hash_combine(sub.scoring.hash(), sub_id);
    }
  }
  if (digest == op.digest) return;
  CtrlOp reply;
  reply.kind = CtrlOp::Kind::kClientResyncState;
  reply.subs.reserve(subs_.size());
  for (const auto& [sub_id, sub] : subs_) reply.subs.push_back(sub);
  std::sort(reply.subs.begin(), reply.subs.end(),
            [](const auto& a, const auto& b) { return a.sub_id < b.sub_id; });
  channel_.send(from, std::move(reply));
}

void Client::handle_message(const sim::Message& msg) {
  if (channel_.on_message(msg)) return;
  if (msg.type == kTypeDeliver) {
    on_deliver(std::any_cast<const DeliverMsg&>(msg.payload));
  } else if (msg.type == kTypeDeliverBatch) {
    ++batches_received_;
    const auto& batch = std::any_cast<const DeliverBatchMsg&>(msg.payload);
    for (const DeliverMsg& item : batch.items) on_deliver(item);
  } else {
    util::log_warn("client") << name_ << ": unexpected message " << msg.type;
  }
}

void Client::on_deliver(const DeliverMsg& deliver) {
  for (std::size_t i = 0; i < deliver.matched.size(); ++i) {
    const SubscriptionId sub_id = deliver.matched[i];
    const auto it = handlers_.find(sub_id);
    if (it == handlers_.end()) continue;  // already unsubscribed: drop
    ++deliveries_;
    const double score =
        i < deliver.scores.size() ? deliver.scores[i] : kConstantScore;
    if (it->second) {
      it->second(deliver.event, sub_id, score);
    } else {
      inbox_.emplace_back(deliver.event, sub_id);
    }
  }
}

}  // namespace reef::pubsub
