// String-keyed registry of matching-engine factories.
//
// Broker configuration, benches, and examples select an engine by name
// ("brute-force", "anchor-index", "counting", "bitset") instead of
// hard-coding a type; new engines register themselves without touching
// broker code.
//
// Any engine can additionally be wrapped in the sharded-routing layer by
// prefixing its name with "sharded:" (e.g. "sharded:anchor-index"): the
// sharded variants of the built-ins are pre-registered, and create() falls
// back to wrapping any other registered engine on demand. Bare registry
// creation uses kDefaultShardCount shards and no worker threads; code that
// wants specific shard/worker counts (RoutingTable, benches) constructs
// ShardedMatcher with an explicit Config instead.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "pubsub/matcher.h"

namespace reef::pubsub {

// Canonical names of the built-in engines.
inline constexpr std::string_view kBruteForceEngine = "brute-force";
inline constexpr std::string_view kAnchorIndexEngine = "anchor-index";
inline constexpr std::string_view kCountingEngine = "counting";
inline constexpr std::string_view kBitsetEngine = "bitset";

/// Name prefix selecting the sharded wrapper around an inner engine.
inline constexpr std::string_view kShardedPrefix = "sharded:";

/// Default engine used by brokers when a Config does not name one.
inline constexpr std::string_view kDefaultEngine = kAnchorIndexEngine;

/// Returns the inner engine name when `engine` names a sharded engine
/// ("sharded:<inner>"), nullopt otherwise.
std::optional<std::string> sharded_inner_engine(std::string_view engine);

class MatcherRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Matcher>()>;

  /// Process-wide registry, pre-populated with the built-in engines.
  static MatcherRegistry& instance();

  /// Registers (or replaces) a factory under `name`.
  void add(std::string name, Factory factory);

  bool contains(const std::string& name) const {
    return factories_.contains(name);
  }

  /// Instantiates the engine registered under `name`; throws
  /// std::invalid_argument (listing the known names) for unknown engines.
  std::unique_ptr<Matcher> create(const std::string& name) const;

  /// Registered engine names, sorted.
  std::vector<std::string> names() const;

 private:
  MatcherRegistry();  // registers the built-ins

  std::map<std::string, Factory> factories_;
};

/// Convenience wrapper over MatcherRegistry::instance().create(engine).
std::unique_ptr<Matcher> make_matcher(const std::string& engine);

}  // namespace reef::pubsub
