#include "pubsub/scoring.h"

#include <algorithm>
#include <unordered_map>

#include "ir/bm25.h"
#include "ir/tokenizer.h"
#include "util/hash.h"

namespace reef::pubsub {

const char* scoring_policy_name(ScoringPolicy policy) noexcept {
  switch (policy) {
    case ScoringPolicy::kConstant: return "constant";
    case ScoringPolicy::kBm25: return "bm25";
  }
  return "unknown";
}

std::size_t ScoringSpec::wire_size() const noexcept {
  if (neutral()) return 0;
  // policy tag + top_k + min_score framing, then the query terms (term
  // bytes + 8-byte weight + 2 bytes framing) and attribute names (2 bytes
  // framing each) — mirrors the filter/constraint accounting style in
  // messages.h.
  std::size_t bytes = 1 + 4 + 8;
  for (const ir::ScoredTerm& term : query) bytes += term.term.size() + 10;
  for (const std::string& attr : text_attrs) bytes += attr.size() + 2;
  return bytes;
}

std::uint64_t ScoringSpec::hash() const noexcept {
  if (neutral()) return 0;
  std::uint64_t h = util::fnv1a64(summary());
  return h == 0 ? 1 : h;  // keep "non-neutral" distinguishable from absent
}

std::string ScoringSpec::summary() const {
  std::string out = "score(";
  out += scoring_policy_name(policy);
  out += " k=" + std::to_string(top_k);
  out += " min=" + Value(min_score).to_string();
  out += " q=[";
  for (std::size_t i = 0; i < query.size(); ++i) {
    if (i > 0) out += ',';
    out += query[i].term + ":" + Value(query[i].score).to_string();
  }
  out += "] attrs=[";
  for (std::size_t i = 0; i < text_attrs.size(); ++i) {
    if (i > 0) out += ',';
    out += text_attrs[i];
  }
  out += "])";
  return out;
}

double score_event(const ScoringSpec& spec, const Event& event) {
  if (spec.policy == ScoringPolicy::kConstant) return kConstantScore;
  // One bag of words over the designated text attributes, in spec order.
  std::unordered_map<std::string, std::uint32_t> tf;
  std::size_t len = 0;
  for (const std::string& attr : spec.text_attrs) {
    const Value* value = event.find(attr);
    if (value == nullptr || !value->is_string()) continue;
    for (std::string& token : ir::tokenize(value->as_string())) {
      ++tf[std::move(token)];
      ++len;
    }
  }
  if (len == 0) return 0.0;
  const ir::Bm25Params params;
  const double norm =
      params.k1 *
      (1.0 - params.b +
       params.b * static_cast<double>(len) / kScoringAvgDocLen);
  double score = 0.0;
  // Summation order is the query order — fixed by the spec, so the
  // floating-point result is bit-identical everywhere.
  for (const ir::ScoredTerm& term : spec.query) {
    const auto it = tf.find(term.term);
    if (it == tf.end()) continue;
    const double weight = std::max(term.score, 0.0);
    const double freq = static_cast<double>(it->second);
    score += weight * freq * (params.k1 + 1.0) / (freq + norm);
  }
  return score;
}

void TopKSelector::offer(double score, std::uint32_t order) {
  const Entry entry{score, order};
  if (k_ == 0) {  // unlimited: everything survives, no heap discipline
    heap_.push_back(entry);
    return;
  }
  // Strict weak order "a is a better keep than b"; the heap's maximum
  // under it is the *worst* kept candidate, sitting at the root.
  const auto better = [](const Entry& a, const Entry& b) {
    return worse(b, a);
  };
  if (heap_.size() < k_) {
    heap_.push_back(entry);
    std::push_heap(heap_.begin(), heap_.end(), better);
    return;
  }
  if (worse(entry, heap_.front())) return;  // not better than the worst kept
  std::pop_heap(heap_.begin(), heap_.end(), better);
  heap_.back() = entry;
  std::push_heap(heap_.begin(), heap_.end(), better);
}

std::vector<std::uint32_t> TopKSelector::take() {
  std::vector<std::uint32_t> orders;
  orders.reserve(heap_.size());
  for (const Entry& entry : heap_) orders.push_back(entry.order);
  heap_.clear();
  std::sort(orders.begin(), orders.end());
  return orders;
}

}  // namespace reef::pubsub
