// Bitset posting-list matching engine ("bitset" in MatcherRegistry).
//
// The classic IR answer to batch matching: every constraint index entry is
// a dense, word-aligned bitmap over a stable *filter-slot* id space, and
// matching an event is a stream of bitmap word loops — no per-event hash
// probes over candidate lists, no per-event candidate vectors, no
// Filter::matches calls on the hot path at all.
//
// ## Slot space
//
// Each registered filter occupies one FilterSlot (uint32_t), the bit
// position every index bitmap uses for it. Slots freed by remove() go on a
// freelist and are reused by the next add(), so the bit space stays
// compact under churn instead of growing with the all-time subscription
// count; all bitmaps share one word width, grown together (capacity
// doubling) when the slot space outgrows it.
//
// ## Index entries
//
// Equality constraints index as eq[attr][canonical value] -> bitmap of the
// slots carrying that constraint (cross-type numerics collapse onto one
// entry via canonical_numeric, exactly like the hash engines' buckets).
// Numeric range constraints (< <= > >=) index as *sorted bound arrays* per
// attribute — one bitmap entry per distinct bound — and resolve per event
// value by the same binary-search probes as the anchor index (see
// range_index.h): the satisfied lower bounds are a prefix of the sorted
// array, the satisfied upper bounds a suffix, so no range predicate is
// ever *evaluated* on the hot path, satisfied entries are enumerated.
// String prefix constraints index as a sorted pattern table probed with
// one lexicographic binary search per live pattern length; suffix
// constraints as the same table over *reversed* patterns, probed with the
// reversed event string; contains constraints as a (length, pattern)-
// sorted table walked in ascending pattern length with one find() per
// surviving distinct pattern (see range_index.h for all three probes,
// shared with the anchor index). Every other operator (ne/exists, in-set,
// plus range/pattern shapes the sorted structures cannot hold) indexes as
// noneq[attr] -> (constraint, bitmap) postings, one per *distinct*
// constraint — filters sharing `text =$ ".log"` share one entry, so the
// predicate is evaluated once per event (or once per distinct value in a
// batch), not once per filter. All resolved entries feed the same
// threshold pass below.
//
// ## Matching: bitmap counters + threshold pass
//
// A filter (a conjunction) fires when *all* of its distinct entries are
// satisfied. Per event the engine accumulates, for every satisfied index
// entry, that entry's bitmap into a bit-sliced counter table: slice b
// holds bit b of every slot's satisfied-entry count, and adding a bitmap
// is a ripple-carry word loop (XOR + AND carry chains — word-parallel
// addition across 64 slots at a time). The per-slot *required* counts
// (number of distinct entries, fixed at add time) live in matching
// required-count slices, so the final threshold pass is pure word math:
//
//   fire_word = live & ~OR_b(count_b XOR required_b)
//
// i.e. a slot fires iff its counter equals its requirement and the slot is
// live (AND/ANDNOT over words); matches are emitted straight from the set
// bits via countr_zero/popcount. Universal (empty) filters hold slots with
// requirement 0 and fall out of the same equation — an attribute-free
// event satisfies no entries, every counter is 0, and exactly the
// requirement-0 slots fire (the engine keeps that zero-entry answer as a
// precomputed bitmap so empty events skip the counter pass entirely).
//
// This is the batched CountingMatcher the ROADMAP asked for: a batched
// counting table *is* bitmap intersection with count thresholds. It wins
// on dense/high-overlap filter populations — many filters per
// (attribute, value) bucket — where the anchor index degenerates to
// fetching and fully evaluating huge candidate lists per event; see the
// dense workload in bench_pubsub_matching and the bitset-vs-anchor floor
// in its --smoke mode.
//
// Scratch memory (the counter slices) is allocated per call, never stored,
// so the const matching methods stay safe to call concurrently, like every
// other engine (ROADMAP item 5's per-tick arenas are the planned home for
// this scratch).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "pubsub/attr_table.h"
#include "pubsub/matcher.h"

namespace reef::pubsub {

/// Dense bit position of a registered filter in every index bitmap; stable
/// for the registration's lifetime, reused (via the freelist) after
/// removal.
using FilterSlot = std::uint32_t;

class BitsetMatcher final : public Matcher {
 public:
  using Matcher::match;
  using Matcher::match_batch;
  void add(SubscriptionId id, Filter filter) override;
  void remove(SubscriptionId id) override;
  void match(const Event& event,
             std::vector<SubscriptionId>& out) const override;
  /// Amortized batch path: the batch is grouped to (attribute, canonical
  /// value) occurrence lists, each eq entry is probed and each noneq
  /// predicate evaluated once per distinct value across the batch, and
  /// the per-event counter accumulation + threshold pass run over the
  /// collected entry bitmaps — word loops only.
  void match_batch(const EventBatchView& events,
                   std::vector<std::vector<SubscriptionId>>& out)
      const override;
  std::size_t size() const noexcept override { return slot_of_.size(); }
  std::string name() const override { return "bitset"; }

  // --- introspection (tests and benches) ------------------------------------
  /// High-water slot count (live + freelisted): how wide the bit space is.
  std::size_t slot_capacity() const noexcept { return slots_.size(); }
  /// Current bitmap width in 64-bit words (shared by every index entry).
  std::size_t word_count() const noexcept { return words_; }
  /// Counter/required bit slices currently needed (ceil log2(max required
  /// + 1) over live filters; never shrinks).
  std::size_t slice_count() const noexcept { return required_.size(); }
  /// Live index entries (eq value entries + distinct noneq postings).
  std::size_t entry_count() const noexcept { return entries_; }
  /// Slot currently assigned to `id` (nullopt for unknown ids). Pins the
  /// freelist-reuse behavior in tests.
  std::optional<FilterSlot> slot_of(SubscriptionId id) const;

 private:
  using Word = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;

  /// One index entry: the slots whose filters carry this constraint.
  struct Entry {
    std::vector<Word> bits;    // words_ wide, like every bitmap here
    std::size_t slot_count = 0;  // set bits; entry is erased at zero
  };
  struct NonEqPosting {
    Constraint constraint;
    Entry entry;
  };
  /// One distinct range bound with the slots carrying that constraint.
  struct RangePosting {
    Value bound;  // numeric, non-NaN (is_sortable_range gatekeeps)
    bool strict;
    Entry entry;
  };
  struct RangeEntries {
    std::vector<RangePosting> lower;  // >/>= — lower_bound_order
    std::vector<RangePosting> upper;  // </<= — upper_bound_order
  };
  /// One distinct prefix pattern with the slots carrying that constraint.
  struct PrefixPosting {
    std::string prefix;
    Entry entry;
  };
  struct PrefixEntries {
    std::vector<PrefixPosting> postings;  // sorted by pattern, distinct
    /// sorted (pattern length, live patterns of that length)
    std::vector<std::pair<std::size_t, std::size_t>> lengths;
  };
  /// One distinct contains pattern with the slots carrying that constraint.
  struct ContainsPosting {
    std::string pattern;
    Entry entry;
  };
  struct ContainsEntries {
    /// sorted by (pattern length, pattern), distinct
    std::vector<ContainsPosting> postings;
  };
  struct Slot {
    SubscriptionId sub = 0;
    Filter filter;
    std::uint32_t required = 0;  // distinct index entries referenced
  };

  FilterSlot acquire_slot();
  void grow_words(std::size_t min_words);
  void ensure_slices(std::uint32_t required);
  /// Invokes `eq_fn(attr, canonical_value)` / `noneq_fn(constraint)` once
  /// per *distinct* index entry of `filter` (duplicate eq entries arise
  /// from cross-type numeric constraints collapsing onto one canonical
  /// value; noneq constraints are already exactly-deduplicated by Filter
  /// canonicalization). Returns the distinct-entry count.
  template <typename EqFn, typename NonEqFn>
  std::uint32_t for_each_entry(const Filter& filter, EqFn&& eq_fn,
                               NonEqFn&& noneq_fn) const;

  /// Appends the entry bitmaps satisfied by (attr, value) to `out`.
  void collect_satisfied(AttrId attr, const Value& canonical,
                         std::vector<const Entry*>& out) const;
  /// Ripple-carry add of `bits` into the slice-major counter table.
  void accumulate(const std::vector<Word>& bits,
                  std::vector<Word>& counters) const;
  /// Threshold pass: emits the subscription ids of every live slot whose
  /// counter equals its requirement.
  void emit_matches(const std::vector<Word>& counters,
                    std::vector<SubscriptionId>& out) const;
  /// Fast path for events that satisfied no entry: exactly the
  /// requirement-0 (universal) slots fire.
  void emit_universal(std::vector<SubscriptionId>& out) const;

  std::unordered_map<SubscriptionId, FilterSlot> slot_of_;
  std::vector<Slot> slots_;            // indexed by FilterSlot
  std::vector<FilterSlot> free_slots_;  // LIFO freelist
  /// attribute id -> canonical value -> slots with that eq constraint.
  std::unordered_map<AttrId, std::unordered_map<Value, Entry>, AttrIdHash>
      eq_;
  /// attribute id -> sorted distinct range-bound entries on that attribute.
  std::unordered_map<AttrId, RangeEntries, AttrIdHash> range_;
  /// attribute id -> sorted distinct prefix-pattern entries.
  std::unordered_map<AttrId, PrefixEntries, AttrIdHash> prefix_;
  /// attribute id -> sorted distinct *reversed* suffix-pattern entries
  /// (PrefixEntries layout; probed with the reversed event string).
  std::unordered_map<AttrId, PrefixEntries, AttrIdHash> suffix_;
  /// attribute id -> length-sorted distinct contains-pattern entries.
  std::unordered_map<AttrId, ContainsEntries, AttrIdHash> contains_;
  /// attribute id -> residual distinct non-equality postings (operators
  /// the sorted structures cannot hold; evaluated per distinct value).
  std::unordered_map<AttrId, std::vector<NonEqPosting>, AttrIdHash> noneq_;
  std::vector<Word> live_;      // occupied slots
  std::vector<Word> zero_req_;  // live slots with requirement 0 (universal)
  /// Required-count bit slices: required_[b] bit s == bit b of slot s's
  /// distinct-entry count. Grows (never shrinks) with the largest
  /// requirement seen.
  std::vector<std::vector<Word>> required_;
  std::size_t words_ = 0;
  std::size_t entries_ = 0;
};

}  // namespace reef::pubsub
