// Content-based pub/sub broker (Siena-style subscription forwarding).
//
// Brokers form an *acyclic* overlay. The routing logic — which filters are
// reachable through which interface, covering-based pruning of forwarded
// subscriptions, and event-to-interface matching — lives in RoutingTable;
// the Broker is a thin adapter that decodes protocol messages, feeds the
// table, and ships the table's answers over the simulated network.
//
// Publications crossing the broker are *coalesced per interface within a
// sim tick*: instead of one wire message per event, everything bound for
// the same neighbor (or client) at the same instant leaves in a single
// PublishBatchMsg / DeliverBatchMsg, and inbound batches are matched
// through the amortized Matcher::match_batch path.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pubsub/matcher_registry.h"
#include "pubsub/messages.h"
#include "pubsub/routing_table.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace reef::pubsub {

class Broker final : public sim::Node {
 public:
  struct Config {
    /// Covering-based pruning of forwarded subscriptions (ablation knob).
    bool covering_enabled = true;
    /// Matching engine, by MatcherRegistry name ("brute-force",
    /// "anchor-index", "counting", a "sharded:<inner>" variant, or
    /// anything registered at runtime).
    std::string matcher_engine = std::string(kDefaultEngine);
    /// Filter-state shards inside this broker's routing table. 0 = auto
    /// (plain engines stay unsharded — the ablation baseline — and
    /// "sharded:" engines get their default shard count); any explicit
    /// value shards `matcher_engine` by anchor-attribute hash.
    std::size_t shard_count = 0;
    /// Worker threads fanning batch matching over the shards; 0 matches
    /// inline on the simulator thread. Match output is bit-identical for
    /// every setting (tests/pubsub_sharding_test.cpp holds this).
    std::size_t worker_threads = 0;
    /// Shard-aware event pre-filtering inside a sharded matcher: events
    /// are routed only to shards whose anchored filters can possibly
    /// match them. Ablation knob; deliveries and traffic counters are
    /// byte-identical on or off (the differential fuzz harness holds
    /// this), only per-shard matching work differs.
    bool prefilter_enabled = true;
    /// Subscription add/removes between Matcher::maintain passes (anchor
    /// rebalancing under churn); 0 disables churn-driven maintenance.
    std::size_t maintain_churn_threshold = kDefaultMaintainChurnThreshold;
    /// Equality-bucket bound handed to Matcher::maintain.
    std::size_t maintain_max_bucket = kDefaultMaintainMaxBucket;
    /// Skew ratio arming skew-triggered maintenance (fire early when
    /// largest/mean equality bucket exceeds it, skip churn-scheduled
    /// passes while balanced); 0 = churn-count-only scheduling.
    std::size_t maintain_skew_ratio = kDefaultMaintainSkewRatio;
    /// Coalesce publications/deliveries per interface within a sim tick
    /// (ablation knob; off = one wire message per event, as the seed did).
    /// Matching results are identical either way; the one observable
    /// difference is an event racing a subscription in the same tick —
    /// deferring the event to end-of-tick can let the subscription be
    /// installed upstream first (pub/sub gives no ordering guarantee in
    /// that window).
    bool batching_enabled = true;
  };

  struct Stats {
    std::uint64_t subs_received = 0;    ///< control msgs in (sub+unsub)
    std::uint64_t subs_forwarded = 0;   ///< SubscribeMsg sent to neighbors
    std::uint64_t unsubs_forwarded = 0; ///< UnsubscribeMsg sent to neighbors
    std::uint64_t pubs_received = 0;    ///< events in (batch counts each)
    std::uint64_t pubs_forwarded = 0;   ///< events out to neighbors
    std::uint64_t pub_msgs_sent = 0;    ///< wire messages carrying them
    std::uint64_t deliveries = 0;       ///< (event, client) deliveries
    std::uint64_t deliver_msgs_sent = 0; ///< wire messages carrying them
    std::uint64_t matches_run = 0;      ///< matcher invocations (batch = 1)
  };

  Broker(sim::Simulator& sim, sim::Network& net, std::string name);
  Broker(sim::Simulator& sim, sim::Network& net, std::string name,
         Config config);

  sim::NodeId id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }

  /// Declares `other` a neighbor of this broker (one direction; the
  /// overlay helper wires both). The resulting graph must stay acyclic.
  void add_neighbor(Broker& other);

  /// Registers an attached client so deliveries can reach it. Called by
  /// Client::connect.
  void attach_client(sim::NodeId client);

  void handle_message(const sim::Message& msg) override;

  // --- introspection --------------------------------------------------------
  const Stats& stats() const noexcept { return stats_; }
  /// Total filters stored across all interfaces (routing-table size).
  std::size_t table_size() const noexcept { return table_.size(); }
  /// Filters currently forwarded to (i.e. requested from) a neighbor.
  std::size_t forwarded_size(sim::NodeId neighbor) const {
    return table_.forwarded_size(neighbor);
  }
  std::size_t neighbor_count() const noexcept { return neighbors_.size(); }
  const std::vector<sim::NodeId>& neighbors() const noexcept {
    return neighbors_;
  }
  const RoutingTable& routing_table() const noexcept { return table_; }

 private:
  void on_client_subscribe(sim::NodeId from, const ClientSubscribeMsg& msg);
  void on_client_unsubscribe(sim::NodeId from,
                             const ClientUnsubscribeMsg& msg);
  void on_broker_subscribe(sim::NodeId from, const SubscribeMsg& msg);
  void on_broker_unsubscribe(sim::NodeId from, const UnsubscribeMsg& msg);
  void on_publish(sim::NodeId from, const Event& event);
  void on_publish_batch(sim::NodeId from, const PublishBatchMsg& msg);

  /// Files one matched event into the per-interface output queues (or
  /// sends immediately when batching is disabled).
  void route_event(sim::NodeId from, const Event& event,
                   const std::vector<RoutingTable::Destination>& hits);

  /// Sends the refresh diff for `neighbor` computed by the routing table.
  void refresh_neighbor(sim::NodeId neighbor);
  void refresh_all_neighbors_except(sim::NodeId except);

  // --- per-tick output coalescing ---
  void enqueue_publish(sim::NodeId neighbor, const Event& event);
  void enqueue_delivery(sim::NodeId client, const Event& event,
                        std::vector<SubscriptionId> subs);
  void schedule_flush();
  void flush_pending();
  void send_publishes(sim::NodeId neighbor, std::vector<Event> events);
  void send_deliveries(sim::NodeId client, std::vector<DeliverMsg> items);

  sim::Simulator& sim_;
  sim::Network& net_;
  std::string name_;
  Config config_;
  sim::NodeId id_;

  std::vector<sim::NodeId> neighbors_;
  RoutingTable table_;

  /// Events awaiting the end-of-tick flush, per destination interface.
  /// Ordered maps so the flush emits wire messages in interface order —
  /// part of the engine- and scheduling-independent output contract (see
  /// route_event).
  std::map<sim::NodeId, std::vector<Event>> pending_pubs_;
  std::map<sim::NodeId, std::vector<DeliverMsg>> pending_delivers_;
  bool flush_scheduled_ = false;

  Stats stats_;
};

}  // namespace reef::pubsub
