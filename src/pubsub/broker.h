// Content-based pub/sub broker (Siena-style subscription forwarding).
//
// Brokers form an *acyclic* overlay. Each broker keeps, per interface
// (neighbor broker or attached client), the set of filters reachable
// through that interface, and forwards a publication out of every
// interface with at least one matching filter (except the one it arrived
// on). Subscriptions are flooded toward all brokers, pruned by the
// covering relation: a filter is not forwarded to a neighbor if a filter
// already forwarded to that neighbor covers it. The pruning is the
// classic Siena optimization and can be disabled for the ablation bench.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "pubsub/matcher.h"
#include "pubsub/messages.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace reef::pubsub {

class Broker final : public sim::Node {
 public:
  struct Config {
    /// Covering-based pruning of forwarded subscriptions (ablation knob).
    bool covering_enabled = true;
    /// Counting-index matcher (true) vs brute-force scan (false).
    bool use_counting_matcher = true;
  };

  struct Stats {
    std::uint64_t subs_received = 0;    ///< control msgs in (sub+unsub)
    std::uint64_t subs_forwarded = 0;   ///< SubscribeMsg sent to neighbors
    std::uint64_t unsubs_forwarded = 0; ///< UnsubscribeMsg sent to neighbors
    std::uint64_t pubs_received = 0;
    std::uint64_t pubs_forwarded = 0;   ///< PublishMsg sent to neighbors
    std::uint64_t deliveries = 0;       ///< DeliverMsg sent to clients
    std::uint64_t matches_run = 0;      ///< matcher invocations
  };

  Broker(sim::Simulator& sim, sim::Network& net, std::string name);
  Broker(sim::Simulator& sim, sim::Network& net, std::string name,
         Config config);

  sim::NodeId id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }

  /// Declares `other` a neighbor of this broker (one direction; the
  /// overlay helper wires both). The resulting graph must stay acyclic.
  void add_neighbor(Broker& other);

  /// Registers an attached client so deliveries can reach it. Called by
  /// Client::connect.
  void attach_client(sim::NodeId client);

  void handle_message(const sim::Message& msg) override;

  // --- introspection --------------------------------------------------------
  const Stats& stats() const noexcept { return stats_; }
  /// Total filters stored across all interfaces (routing-table size).
  std::size_t table_size() const noexcept;
  /// Filters currently forwarded to (i.e. requested from) a neighbor.
  std::size_t forwarded_size(sim::NodeId neighbor) const;
  std::size_t neighbor_count() const noexcept { return neighbors_.size(); }
  const std::vector<sim::NodeId>& neighbors() const noexcept {
    return neighbors_;
  }

 private:
  struct ClientIface {
    std::unordered_map<SubscriptionId, std::uint64_t> engine_ids;
  };
  struct BrokerIface {
    /// Aggregated filters received from this neighbor, by canonical key.
    std::unordered_map<std::string, std::uint64_t> engine_ids;
    /// Filters we have forwarded *to* this neighbor, by canonical key.
    std::unordered_map<std::string, Filter> forwarded;
  };
  struct EngineEntry {
    Filter filter;
    sim::NodeId iface = sim::kNoNode;
    bool from_broker = false;
    SubscriptionId client_sub = 0;  // valid when !from_broker
  };

  void on_client_subscribe(sim::NodeId from, const ClientSubscribeMsg& msg);
  void on_client_unsubscribe(sim::NodeId from,
                             const ClientUnsubscribeMsg& msg);
  void on_broker_subscribe(sim::NodeId from, const SubscribeMsg& msg);
  void on_broker_unsubscribe(sim::NodeId from, const UnsubscribeMsg& msg);
  void on_publish(sim::NodeId from, const Event& event);

  std::uint64_t add_entry(Filter filter, sim::NodeId iface, bool from_broker,
                          SubscriptionId client_sub);
  void remove_entry(std::uint64_t engine_id);

  /// Recomputes the set of filters that should be forwarded to `neighbor`
  /// and sends the subscribe/unsubscribe diff.
  void refresh_neighbor(sim::NodeId neighbor);
  void refresh_all_neighbors_except(sim::NodeId except);

  /// Filters visible on interfaces other than `excluded` (deduplicated by
  /// canonical key).
  std::map<std::string, Filter> filters_not_from(sim::NodeId excluded) const;

  /// Reduces a key->filter set to its maximal elements under covering.
  static std::map<std::string, Filter> minimal_cover(
      std::map<std::string, Filter> filters);

  sim::Simulator& sim_;
  sim::Network& net_;
  std::string name_;
  Config config_;
  sim::NodeId id_;

  std::vector<sim::NodeId> neighbors_;
  std::unordered_map<sim::NodeId, BrokerIface> broker_ifaces_;
  std::unordered_map<sim::NodeId, ClientIface> client_ifaces_;

  std::unique_ptr<Matcher> matcher_;
  std::unordered_map<std::uint64_t, EngineEntry> entries_;
  std::uint64_t next_engine_id_ = 1;

  Stats stats_;
};

}  // namespace reef::pubsub
