// Content-based pub/sub broker (Siena-style subscription forwarding).
//
// Brokers form an *acyclic* overlay. The routing logic — which filters are
// reachable through which interface, covering-based pruning of forwarded
// subscriptions, and event-to-interface matching — lives in RoutingTable;
// the Broker is a thin adapter that decodes protocol messages, feeds the
// table, and ships the table's answers over the simulated network.
//
// Publications crossing the broker are *coalesced per interface* under an
// adaptive flush policy: instead of one wire message per event, everything
// bound for the same neighbor (or client) leaves in a single
// PublishBatchMsg / DeliverBatchMsg, and inbound batches are matched
// through the amortized Matcher::match_batch path.
//
// ## Flush-policy invariants (Config::flush_max_{events,bytes,delay_ticks})
//
// When a pending per-interface batch is flushed is governed by three
// budgets; *what* it contains is not:
//
//   1. Delivery sets are budget-independent. A budget decides only how
//      pending output is cut into wire messages and when they leave; every
//      (event, interface, subscription) delivery the match sets imply is
//      eventually sent exactly once, in enqueue order per interface, for
//      every budget setting. (One caveat inherited from per-tick batching:
//      holding an event longer can let it race a subscription change
//      in flight — pub/sub gives no ordering guarantee in that window.
//      With settled subscriptions, delivery sets are identical across all
//      budgets; the differential fuzz harness holds this.)
//   2. Output is order-canonical. Timer-driven flushes visit pending
//      interfaces in interface-id order and client matched-sub lists are
//      sorted, so any two configurations that produce the same batch
//      boundaries produce byte-identical wire traffic. Budget trips flush
//      mid-tick — synchronously, at the enqueue that tripped the budget —
//      which is deterministic too: enqueues happen in interface-id order
//      per matched event.
//   3. flush_max_delay_ticks = 0 with unlimited event/byte budgets is
//      exactly the per-tick coalescing of PR 1-4: the flush runs at the
//      current instant after every already-queued arrival (the Simulator
//      guarantees same-instant FIFO), so one wire message carries the
//      whole tick's output, byte for byte as before.
//   4. Every flush is attributed to exactly one cause in Stats
//      (flushes_by_events / flushes_by_bytes / flushes_by_delay; the event
//      budget wins when both size budgets trip on the same enqueue), and
//      per-event residence (flush time minus enqueue time, in sim clock
//      ticks) accumulates in residence_ticks_total — the bench's
//      latency-vs-throughput sweep reads both.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "pubsub/matcher_registry.h"
#include "pubsub/messages.h"
#include "pubsub/reliable_channel.h"
#include "pubsub/routing_table.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace reef::pubsub {

class Broker final : public sim::Node {
 public:
  struct Config {
    /// Covering-based pruning of forwarded subscriptions (ablation knob).
    bool covering_enabled = true;
    /// Matching engine, by MatcherRegistry name ("brute-force",
    /// "anchor-index", "counting", a "sharded:<inner>" variant, or
    /// anything registered at runtime).
    std::string matcher_engine = std::string(kDefaultEngine);
    /// Filter-state shards inside this broker's routing table. 0 = auto
    /// (plain engines stay unsharded — the ablation baseline — and
    /// "sharded:" engines get their default shard count); any explicit
    /// value shards `matcher_engine` by anchor-attribute hash.
    std::size_t shard_count = 0;
    /// Worker threads fanning batch matching over the shards; 0 matches
    /// inline on the simulator thread. Match output is bit-identical for
    /// every setting (tests/pubsub_sharding_test.cpp holds this).
    std::size_t worker_threads = 0;
    /// Shard-aware event pre-filtering inside a sharded matcher: events
    /// are routed only to shards whose anchored filters can possibly
    /// match them. Ablation knob; deliveries and traffic counters are
    /// byte-identical on or off (the differential fuzz harness holds
    /// this), only per-shard matching work differs.
    bool prefilter_enabled = true;
    /// Subscription add/removes between Matcher::maintain passes (anchor
    /// rebalancing under churn); 0 disables churn-driven maintenance.
    std::size_t maintain_churn_threshold = kDefaultMaintainChurnThreshold;
    /// Equality-bucket bound handed to Matcher::maintain.
    std::size_t maintain_max_bucket = kDefaultMaintainMaxBucket;
    /// Skew ratio arming skew-triggered maintenance (fire early when
    /// largest/mean equality bucket exceeds it, skip churn-scheduled
    /// passes while balanced); 0 = churn-count-only scheduling.
    std::size_t maintain_skew_ratio = kDefaultMaintainSkewRatio;
    /// Scored delivery (see scoring.h): publications are matched through
    /// the scored batch path and each client subscription's ScoringSpec
    /// (top_k / min_score) is applied per publication batch before
    /// deliveries are enqueued. Off by default — the boolean path of
    /// PR 1-9, byte for byte. With it on, subscriptions whose spec is
    /// neutral still produce byte-identical wire output to the disabled
    /// path (the neutral property the fuzz tier pins); only non-neutral
    /// specs attach scores and can suppress deliveries.
    bool scoring_enabled = false;
    /// Coalesce publications/deliveries per interface within a sim tick
    /// (ablation knob; off = one wire message per event, as the seed did,
    /// and the flush budgets below are moot).
    /// Matching results are identical either way; the one observable
    /// difference is an event racing a subscription in the same tick —
    /// deferring the event to end-of-tick can let the subscription be
    /// installed upstream first (pub/sub gives no ordering guarantee in
    /// that window).
    bool batching_enabled = true;
    /// Adaptive flush: a pending per-interface batch is sent as soon as it
    /// holds this many events (0 = unlimited). Trips mid-tick: the wire
    /// message leaves synchronously at the enqueue that filled the batch,
    /// bounding batch size under heavy fan-in at the cost of more
    /// messages. See the flush-policy invariants above.
    std::size_t flush_max_events = 0;
    /// Adaptive flush: byte-budget twin of flush_max_events, metered with
    /// the shared batch wire-size accounting in messages.h (batch header
    /// plus per-entry framing). A pending batch is sent as soon as its
    /// wire size reaches this budget (0 = unlimited).
    std::size_t flush_max_bytes = 0;
    /// Adaptive flush: how long (in sim clock ticks, i.e. sim::Time
    /// microseconds) pending output may wait for more arrivals before the
    /// timer-driven flush sends it. 0 = flush at the end of the current
    /// instant — the strict per-tick coalescing of PR 1-4 and the
    /// ablation baseline. Larger values coalesce *across* ticks: fewer,
    /// larger wire messages, at up to this much added delivery latency
    /// per event (the bench's latency-vs-throughput sweep quantifies the
    /// trade). The deadline is armed when output goes pending with no
    /// timer in flight, so it is a *max* residence bound: later arrivals
    /// ride an already-armed timer and wait at most the remainder of its
    /// window, never longer than the budget.
    sim::Time flush_max_delay_ticks = 0;
    /// Reliable control channel: subscription traffic (broker-broker and
    /// client-broker) rides per-peer sequenced streams with cumulative
    /// acks and timeout/backoff retransmission, so partitions and lossy
    /// links can delay but never lose a subscribe/unsubscribe. Off by
    /// default: the seed's raw best-effort messages, byte for byte.
    bool reliable_control = false;
    /// Initial retransmission timeout of the reliable channel; doubles
    /// per retry up to retransmit_timeout_max.
    sim::Time retransmit_timeout = 50 * sim::kMillisecond;
    sim::Time retransmit_timeout_max = sim::kSecond;
    /// Neighbor-liveness heartbeat period; 0 (default) disables
    /// heartbeats and suspicion entirely.
    sim::Time heartbeat_period = 0;
    /// How long a neighbor may stay silent before it is suspected and its
    /// routes quarantined (data-plane traffic stops being forwarded into
    /// the black hole; control traffic keeps retransmitting). 0 = four
    /// heartbeat periods. Any message from the neighbor un-quarantines.
    sim::Time suspicion_timeout = 0;
  };

  struct Stats {
    std::uint64_t subs_received = 0;    ///< control msgs in (sub+unsub)
    std::uint64_t subs_forwarded = 0;   ///< SubscribeMsg sent to neighbors
    std::uint64_t unsubs_forwarded = 0; ///< UnsubscribeMsg sent to neighbors
    std::uint64_t pubs_received = 0;    ///< events in (batch counts each)
    std::uint64_t pubs_forwarded = 0;   ///< events out to neighbors
    std::uint64_t pub_msgs_sent = 0;    ///< wire messages carrying them
    std::uint64_t deliveries = 0;       ///< (event, client) deliveries
    std::uint64_t deliver_msgs_sent = 0; ///< wire messages carrying them
    std::uint64_t matches_run = 0;      ///< matcher invocations (batch = 1)
    // --- scored delivery (Config::scoring_enabled; see scoring.h) ---
    /// Relevance scores computed for candidate deliveries to non-neutral
    /// subscriptions (the scored-fanout volume before suppression).
    std::uint64_t scored_matches = 0;
    /// Candidate deliveries cut by a subscription's top-k bound.
    std::uint64_t suppressed_by_k = 0;
    /// Candidate deliveries scoring below a subscription's min_score.
    std::uint64_t suppressed_by_threshold = 0;
    // --- adaptive-flush introspection (see the flush-policy invariants) ---
    std::uint64_t flushes_by_events = 0; ///< wire msgs sent on the event budget
    std::uint64_t flushes_by_bytes = 0;  ///< wire msgs sent on the byte budget
    std::uint64_t flushes_by_delay = 0;  ///< wire msgs sent by the flush timer
    /// Logical units (events / deliveries) that went through the batching
    /// path, denominating residence_ticks_total.
    std::uint64_t flushed_units = 0;
    /// Sum over flushed units of (flush time - enqueue time) in sim clock
    /// ticks; mean event residence = residence_ticks_total / flushed_units.
    /// 0 under per-tick flushing (everything leaves the instant it arrived).
    sim::Time residence_ticks_total = 0;
    // --- fault tolerance (reliable_control / heartbeat_period) ---
    std::uint64_t retransmits = 0;     ///< control msgs resent on timeout
    std::uint64_t acks_sent = 0;       ///< cumulative acks emitted
    std::uint64_t heartbeats_sent = 0; ///< liveness probes to neighbors
    std::uint64_t suspicions = 0;      ///< neighbor quarantine transitions
    std::uint64_t resync_msgs = 0;     ///< anti-entropy msgs sent (req+state)
    std::uint64_t resync_bytes = 0;    ///< their wire bytes
  };

  Broker(sim::Simulator& sim, sim::Network& net, std::string name);
  Broker(sim::Simulator& sim, sim::Network& net, std::string name,
         Config config);

  sim::NodeId id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }

  /// Declares `other` a neighbor of this broker (one direction; the
  /// overlay helper wires both). The resulting graph must stay acyclic.
  void add_neighbor(Broker& other);

  /// Registers an attached client so deliveries can reach it. Called by
  /// Client::connect.
  void attach_client(sim::NodeId client);

  void handle_message(const sim::Message& msg) override;

  // --- crash/restart lifecycle ----------------------------------------------
  /// Crashes the broker: its in-memory routing table and pending output
  /// are lost and every timer stands down. The caller (Overlay::crash)
  /// also marks the node down so in-flight traffic is dropped.
  void crash();

  /// Restarts a crashed broker with an *empty* routing table: the static
  /// topology (neighbor and client interfaces) is re-declared, and with
  /// reliable_control on, anti-entropy resync requests go to every
  /// neighbor and client to rebuild subscription state (without it the
  /// broker black-holes until new churn happens to repopulate it).
  void restart();

  bool alive() const noexcept { return alive_; }

  // --- introspection --------------------------------------------------------
  /// Snapshot of the counters (reliable-channel counters merged in).
  Stats stats() const noexcept {
    Stats merged = stats_;
    merged.retransmits = channel_.stats().retransmits;
    merged.acks_sent = channel_.stats().acks_sent;
    return merged;
  }
  /// Total filters stored across all interfaces (routing-table size).
  std::size_t table_size() const noexcept { return table_.size(); }
  /// Filters currently forwarded to (i.e. requested from) a neighbor.
  std::size_t forwarded_size(sim::NodeId neighbor) const {
    return table_.forwarded_size(neighbor);
  }
  std::size_t neighbor_count() const noexcept { return neighbors_.size(); }
  const std::vector<sim::NodeId>& neighbors() const noexcept {
    return neighbors_;
  }
  const RoutingTable& routing_table() const noexcept { return table_; }
  const ReliableChannel& control_channel() const noexcept { return channel_; }
  bool neighbor_quarantined(sim::NodeId neighbor) const {
    return quarantined_.contains(neighbor);
  }
  std::size_t quarantined_count() const noexcept {
    return quarantined_.size();
  }

 private:
  void on_client_subscribe(sim::NodeId from, const ClientSubscribeMsg& msg);
  void on_client_unsubscribe(sim::NodeId from,
                             const ClientUnsubscribeMsg& msg);
  void on_broker_subscribe(sim::NodeId from, const SubscribeMsg& msg);
  void on_broker_unsubscribe(sim::NodeId from, const UnsubscribeMsg& msg);
  void on_publish(sim::NodeId from, const Event& event);
  void on_publish_batch(sim::NodeId from, const PublishBatchMsg& msg);

  // --- fault tolerance ---
  /// Dispatches one reliably-delivered control operation.
  void on_ctrl_op(sim::NodeId from, const CtrlOp& op);
  /// A peer came back with a higher epoch: drop its stale state and
  /// restart our stream toward it (the resync request follows on the
  /// fresh stream).
  void on_peer_restart(sim::NodeId peer);
  void on_resync_request(sim::NodeId from, std::uint64_t digest);
  void on_resync_state(sim::NodeId from, const std::vector<Filter>& want);
  void on_client_resync_state(sim::NodeId from,
                              const std::vector<ClientSubscription>& subs);
  void send_resync_request(sim::NodeId peer);
  void heartbeat_tick();

  /// Files one matched event into the per-interface output queues (or
  /// sends immediately when batching is disabled).
  void route_event(sim::NodeId from, const Event& event,
                   const std::vector<RoutingTable::Destination>& hits);

  // --- scored delivery (Config::scoring_enabled) ---
  /// An (event index, client iface, client sub) triple suppressed by a
  /// delivery policy within one publication batch.
  using SuppressedSet =
      std::set<std::tuple<std::uint32_t, sim::NodeId, SubscriptionId>>;

  /// The scored twin of the publish path: applies each non-neutral
  /// subscription's min_score filter and top-k cut over the *publication
  /// batch* (the events of this one wire message — the deterministic
  /// top-k window; see docs/ARCHITECTURE.md "Scored delivery"), then
  /// routes each event in batch order with the suppression set applied
  /// and scores attached. With no non-neutral subscription matched, the
  /// output is byte-identical to the boolean path.
  void route_scored(
      sim::NodeId from, std::span<const Event> events,
      const std::vector<std::vector<RoutingTable::ScoredDestination>>& hits);

  /// route_event with scoring decoration: suppressed client destinations
  /// are skipped, and the per-client matched-sub list carries parallel
  /// scores when any matched subscription is non-neutral. Grouping and
  /// ordering are identical to route_event — delivery order keys on
  /// canonical event order and sorted sub ids, never on score.
  void route_event_scored(
      sim::NodeId from, const Event& event, std::uint32_t event_index,
      const std::vector<RoutingTable::ScoredDestination>& hits,
      const SuppressedSet& suppressed);

  /// Sends the refresh diff for `neighbor` computed by the routing table.
  void refresh_neighbor(sim::NodeId neighbor);
  void refresh_all_neighbors_except(sim::NodeId except);

  // --- adaptive output coalescing ---
  /// Why a pending batch left the broker; each sent wire message is
  /// attributed to exactly one cause in Stats.
  enum class FlushCause { kEvents, kBytes, kDelay };

  /// Pending per-interface output plus the bookkeeping the flush budgets
  /// need: the running batch wire size (incrementally maintained with the
  /// shared per-entry accounting in messages.h) and the sum of enqueue
  /// times (residence of n units flushed at time t is n*t - enqueue_sum).
  struct PendingPubs {
    std::vector<Event> events;
    std::size_t bytes = kBatchHeaderBytes;
    sim::Time enqueue_time_sum = 0;
  };
  struct PendingDelivers {
    std::vector<DeliverMsg> items;
    std::size_t bytes = kBatchHeaderBytes;
    sim::Time enqueue_time_sum = 0;
  };

  void enqueue_publish(sim::NodeId neighbor, const Event& event);
  /// `scores` is parallel to `subs` on scored deliveries and empty
  /// otherwise (see DeliverMsg::scores).
  void enqueue_delivery(sim::NodeId client, const Event& event,
                        std::vector<SubscriptionId> subs,
                        std::vector<double> scores = {});
  /// The size budget an enqueue just tripped, if any (event budget wins
  /// when both trip).
  std::optional<FlushCause> tripped_budget(std::size_t events,
                                           std::size_t bytes) const;
  /// Accounts cause + residence for one outgoing batch of `units` logical
  /// units whose enqueue times sum to `enqueue_time_sum`.
  void note_flush(FlushCause cause, std::size_t units,
                  sim::Time enqueue_time_sum);
  void schedule_flush();
  void flush_pending();
  void send_publishes(sim::NodeId neighbor, std::vector<Event> events);
  void send_deliveries(sim::NodeId client, std::vector<DeliverMsg> items);

  sim::Simulator& sim_;
  sim::Network& net_;
  std::string name_;
  Config config_;
  sim::NodeId id_;

  std::vector<sim::NodeId> neighbors_;
  std::vector<sim::NodeId> clients_;
  RoutingTable table_;

  // --- fault tolerance ---
  bool alive_ = true;
  ReliableChannel channel_;
  /// Last time each neighbor was heard from (any message type).
  std::unordered_map<sim::NodeId, sim::Time> last_heard_;
  /// Suspected-dead neighbors: data-plane forwarding to them is paused
  /// (control traffic keeps retransmitting, so recovery is automatic).
  std::unordered_set<sim::NodeId> quarantined_;

  /// Events awaiting the timer-driven flush, per destination interface.
  /// Ordered maps so the flush emits wire messages in interface order —
  /// part of the engine- and scheduling-independent output contract (see
  /// route_event). A budget trip extracts and sends a single interface's
  /// entry mid-tick.
  std::map<sim::NodeId, PendingPubs> pending_pubs_;
  std::map<sim::NodeId, PendingDelivers> pending_delivers_;
  bool flush_scheduled_ = false;

  Stats stats_;
};

}  // namespace reef::pubsub
