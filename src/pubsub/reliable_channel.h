// Reliable per-peer control stream (go-back-N over the lossy simulated
// network), shared by Broker and Client for subscription-control traffic.
//
// Each (self, peer) direction is an independent stream: monotone sequence
// numbers starting at 1 within the sender's current epoch, cumulative acks
// on every receipt (duplicates included, so lost acks self-repair), and
// timeout/backoff retransmission driven by sim timers — fully
// deterministic. Receivers accept only the next expected sequence number;
// anything else is discarded and re-acked, and the sender's timeout
// retransmits the whole unacked window (go-back-N). Combined with FIFO
// links this yields exactly-once-effective delivery of control operations:
// partitions and lossy links can delay an operation but never lose or
// duplicate its effect.
//
// Epochs make restarts safe: reset_all() (called from Broker::restart)
// bumps the sender's epoch, and a receiver that observes a higher epoch
// resets its expected sequence to 1 and reports the restart via the
// on_peer_restart hook — the hook is where brokers quarantine-drop the
// restarted peer's stale routing state and arm the anti-entropy resync.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>

#include "pubsub/messages.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace reef::pubsub {

class ReliableChannel {
 public:
  struct Config {
    /// Off by default: control traffic goes out as the raw best-effort
    /// messages of the seed protocol and this class is never consulted.
    bool enabled = false;
    /// Initial retransmission timeout; doubles per retry (binary backoff).
    sim::Time retransmit_timeout = 50 * sim::kMillisecond;
    /// Backoff cap.
    sim::Time retransmit_timeout_max = sim::kSecond;
  };

  struct Stats {
    std::uint64_t ctrl_sent = 0;        ///< first transmissions
    std::uint64_t retransmits = 0;      ///< timeout-driven resends
    std::uint64_t acks_sent = 0;        ///< cumulative acks emitted
    std::uint64_t acks_received = 0;    ///< acks consumed
    std::uint64_t duplicates_dropped = 0;  ///< seq below expected
    std::uint64_t gaps_dropped = 0;        ///< seq above expected
  };

  /// Called once per control operation, in send order per peer.
  using DeliverFn = std::function<void(sim::NodeId from, const CtrlOp& op)>;
  /// Called when `peer` shows up with a higher epoch (it restarted),
  /// before the first op of the new epoch is delivered.
  using PeerRestartFn = std::function<void(sim::NodeId peer)>;

  ReliableChannel(sim::Simulator& sim, sim::Network& net, Config config)
      : sim_(sim), net_(net), config_(config) {}

  /// The channel sends from this node id; set once after Network::attach.
  void bind(sim::NodeId self) { self_ = self; }
  /// Swaps in a new config. Call before any traffic (Client constructs
  /// its channel disabled and enables it on demand).
  void configure(Config config) { config_ = config; }
  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }
  void set_on_peer_restart(PeerRestartFn fn) { on_restart_ = std::move(fn); }
  /// While false (crashed host) retransmit timers stand down.
  void set_alive(bool alive) { alive_ = alive; }

  bool enabled() const noexcept { return config_.enabled; }
  const Config& config() const noexcept { return config_; }
  const Stats& stats() const noexcept { return stats_; }
  std::uint64_t epoch() const noexcept { return epoch_; }
  /// Messages awaiting ack toward `peer` (introspection for tests).
  std::size_t unacked(sim::NodeId peer) const;

  /// Sends `op` on the reliable stream to `peer` (requires enabled()).
  void send(sim::NodeId peer, CtrlOp op);

  /// Consumes kTypeCtrl / kTypeCtrlAck messages; returns false for any
  /// other type so the caller can fall through to its own dispatch.
  bool on_message(const sim::Message& msg);

  /// Crash/restart lifecycle: forgets every per-peer stream and bumps the
  /// epoch, so post-restart sends open fresh streams. Stats survive.
  void reset_all();

  /// Restarts the outgoing stream to one peer (the responder side of a
  /// resync: the peer lost our stream state, so start over at seq 1; any
  /// unacked backlog is superseded by the full-state replay).
  void reset_peer_send(sim::NodeId peer);

 private:
  struct SendState {
    std::uint64_t next_seq = 1;
    std::deque<CtrlMsg> unacked;
    sim::Time timeout = 0;       ///< current (backed-off) timeout
    std::uint64_t timer_gen = 0; ///< nonzero while a timer is armed
  };
  struct RecvState {
    std::optional<std::uint64_t> peer_epoch;
    std::uint64_t expected_seq = 1;
  };

  void transmit(sim::NodeId peer, const CtrlMsg& msg);
  void arm_timer(sim::NodeId peer, SendState& state);
  void on_timeout(sim::NodeId peer, std::uint64_t gen);
  void send_ack(sim::NodeId peer, std::uint64_t peer_epoch,
                std::uint64_t cum_seq);

  sim::Simulator& sim_;
  sim::Network& net_;
  Config config_;
  sim::NodeId self_ = sim::kNoNode;
  bool alive_ = true;
  std::uint64_t epoch_ = 1;
  std::uint64_t next_timer_gen_ = 1;
  std::unordered_map<sim::NodeId, SendState> send_;
  std::unordered_map<sim::NodeId, RecvState> recv_;
  DeliverFn deliver_;
  PeerRestartFn on_restart_;
  Stats stats_;
};

}  // namespace reef::pubsub
