#include "pubsub/sharded_matcher.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/hash.h"

namespace reef::pubsub {

ShardedMatcher::ShardedMatcher(Config config) : config_(std::move(config)) {
  if (config_.shard_count == 0) {
    throw std::invalid_argument("ShardedMatcher: shard_count must be >= 1");
  }
  if (sharded_inner_engine(config_.inner_engine)) {
    throw std::invalid_argument(
        "ShardedMatcher: inner engine must not itself be sharded (\"" +
        config_.inner_engine + "\")");
  }
  shards_.reserve(config_.shard_count + 1);
  for (std::size_t i = 0; i < config_.shard_count + 1; ++i) {
    shards_.push_back(make_matcher(config_.inner_engine));
  }
  if (config_.worker_threads > 0) {
    pool_ = std::make_unique<util::ThreadPool>(config_.worker_threads);
  }
}

std::size_t ShardedMatcher::shard_of(const Filter& filter) const noexcept {
  if (filter.empty()) return config_.shard_count;  // spill
  // Hash the attribute *name*, not the AttrId: placement stays a pure
  // function of the filter's content, independent of interning order.
  const std::string& attr = filter.constraints().front().attribute();
  return util::fnv1a64(attr) % config_.shard_count;
}

void ShardedMatcher::add(SubscriptionId id, Filter filter) {
  remove(id);  // replace semantics may move shards / change the anchor
  Placement placement;
  placement.shard = shard_of(filter);
  if (!filter.empty()) {
    placement.anchor_attr = filter.constraints().front().attr_id();
    AnchorAttr& info = anchor_attrs_[placement.anchor_attr];
    info.shard = placement.shard;
    ++info.count;
  }
  shards_[placement.shard]->add(id, std::move(filter));
  placed_.emplace(id, placement);
}

void ShardedMatcher::remove(SubscriptionId id) {
  const auto it = placed_.find(id);
  if (it == placed_.end()) return;
  const Placement& placement = it->second;
  shards_[placement.shard]->remove(id);
  if (placement.shard != config_.shard_count) {  // not a spill filter
    const auto attr_it = anchor_attrs_.find(placement.anchor_attr);
    if (--attr_it->second.count == 0) anchor_attrs_.erase(attr_it);
  }
  placed_.erase(it);
}

std::size_t ShardedMatcher::maintain(std::size_t max_bucket) {
  std::size_t changed = 0;
  for (const auto& shard : shards_) changed += shard->maintain(max_bucket);
  return changed;
}

EqBucketStats ShardedMatcher::eq_bucket_stats() const noexcept {
  EqBucketStats stats;
  for (const auto& shard : shards_) {
    const EqBucketStats s = shard->eq_bucket_stats();
    if (s.largest > stats.largest) {
      stats.largest = s.largest;
      stats.largest_key = s.largest_key;
    }
    stats.buckets += s.buckets;
    stats.filters += s.filters;
  }
  return stats;
}

std::int32_t ShardedMatcher::anchor_shard_of(AttrId attr) const noexcept {
  const auto it = anchor_attrs_.find(attr);
  return it == anchor_attrs_.end()
             ? kNoAnchorShard
             : static_cast<std::int32_t>(it->second.shard);
}

void ShardedMatcher::candidate_shards(const Event& event,
                                      std::vector<std::size_t>& out) const {
  // A filter on shard s matches `event` only if the event carries the
  // filter's placement anchor, and that attribute is in anchor_attrs_ with
  // shard s — so the candidate set is exactly the shards the event's own
  // attributes hash to, plus the spill shard, whose anchorless filters
  // match anything. Events carry a handful of attributes, so a linear
  // dedup over the appended slice beats any mark table.
  const auto first = static_cast<std::ptrdiff_t>(out.size());
  for (const auto& [attr, value] : event.attrs()) {
    const std::int32_t shard = anchor_shard_of(attr);
    if (shard == kNoAnchorShard) continue;
    const auto s = static_cast<std::size_t>(shard);
    if (std::find(out.begin() + first, out.end(), s) == out.end()) {
      out.push_back(s);
    }
  }
  std::sort(out.begin() + first, out.end());
  out.push_back(config_.shard_count);  // spill always participates, last
}

void ShardedMatcher::match(const Event& event,
                           std::vector<SubscriptionId>& out) const {
  if (!config_.prefilter_enabled) {
    events_routed_ += shards_.size();
    for (const auto& shard : shards_) shard->match(event, out);
    return;
  }
  std::vector<std::size_t> candidates;
  candidate_shards(event, candidates);
  events_routed_ += candidates.size();
  events_skipped_ += shards_.size() - candidates.size();
  for (const std::size_t s : candidates) shards_[s]->match(event, out);
}

void ShardedMatcher::match_batch(
    const EventBatchView& events,
    std::vector<std::vector<SubscriptionId>>& out) const {
  const std::size_t shard_total = shards_.size();
  const std::size_t count = events.size();
  // Pre-filter routing: the view positions each shard must see, in view
  // order. Sub-batches are index spans over the original event storage —
  // zero event copies, however sparse the slice — so there is no gather
  // cost to amortize and no copy threshold: every shard simply gets
  // exactly the events that can match it. Each attribute's shard is
  // resolved once per batch through a dense AttrId-indexed memo (repeat
  // attributes — the common case — skip even the presence-map probe).
  // Everything here runs on the calling thread, so the fan-out below
  // stays free of shared mutable state.
  std::vector<std::vector<std::uint32_t>> routed(shard_total);
  if (config_.prefilter_enabled) {
    constexpr std::int32_t kUnresolved = -2;
    // Memo sized to the largest id in the batch (attrs are id-sorted),
    // never the whole interned universe — and skipped entirely when even
    // that span dwarfs the batch (a stray late-interned id would buy an
    // allocation larger than the work it saves; the identity-hash
    // presence-map probe is the fallback).
    AttrId max_attr = 0;
    for (std::size_t i = 0; i < count; ++i) {
      const auto& attrs = events[i].attrs();
      if (!attrs.empty()) max_attr = std::max(max_attr, attrs.back().first);
    }
    const std::size_t memo_span = static_cast<std::size_t>(max_attr) + 1;
    const bool use_memo = memo_span <= 8 * count + 256;
    std::vector<std::int32_t> shard_memo(use_memo ? memo_span : 0,
                                         kUnresolved);
    const auto shard_of_attr = [&](AttrId attr) -> std::int32_t {
      std::int32_t probed = kUnresolved;
      std::int32_t& memo = use_memo ? shard_memo[attr] : probed;
      if (memo == kUnresolved) memo = anchor_shard_of(attr);
      return memo;
    };
    std::vector<std::size_t> candidates;
    std::size_t routed_total = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
      candidates.clear();
      for (const auto& [attr, value] : events[i].attrs()) {
        const std::int32_t shard = shard_of_attr(attr);
        if (shard == kNoAnchorShard) continue;
        const auto s = static_cast<std::size_t>(shard);
        if (std::find(candidates.begin(), candidates.end(), s) ==
            candidates.end()) {
          candidates.push_back(s);
        }
      }
      for (const std::size_t s : candidates) routed[s].push_back(i);
      // The spill shard sees everything; it runs the full view below, so
      // no index list is materialized for it — only the accounting.
      routed_total += candidates.size() + 1;
    }
    events_routed_ += routed_total;
    events_skipped_ += shard_total * count - routed_total;
  } else {
    events_routed_ += shard_total * count;
  }
  // One result buffer per shard; each task writes only its own slot, so
  // the fan-out needs no locking and the merge below is scheduling-free.
  // Pre-filtered shards match their index-span sub-view and scatter the
  // hits back to the view positions.
  std::vector<std::vector<std::vector<SubscriptionId>>> per_shard(
      shard_total);
  const bool prefilter = config_.prefilter_enabled;
  const auto task = [&](std::size_t s) {
    if (!prefilter || s == config_.shard_count ||  // spill: full view
        routed[s].size() == count) {
      shards_[s]->match_batch(events, per_shard[s]);
      return;
    }
    auto& scattered = per_shard[s];
    scattered.assign(count, {});
    if (routed[s].empty() || shards_[s]->size() == 0) return;
    // Translate view positions to backing-span indices (identity when the
    // incoming view is the whole span — the broker path).
    std::span<const std::uint32_t> indices = routed[s];
    std::vector<std::uint32_t> translated;
    if (!events.spans_all()) {
      translated.reserve(routed[s].size());
      for (const std::uint32_t pos : routed[s]) {
        translated.push_back(events.backing_index(pos));
      }
      indices = translated;
    }
    std::vector<std::vector<SubscriptionId>> sub_hits;
    shards_[s]->match_batch(EventBatchView(events.backing(), indices),
                            sub_hits);
    for (std::size_t j = 0; j < routed[s].size(); ++j) {
      scattered[routed[s][j]] = std::move(sub_hits[j]);
    }
  };
  if (pool_) {
    pool_->parallel_for(shard_total, task);
  } else {
    for (std::size_t s = 0; s < shard_total; ++s) task(s);
  }
  out.assign(count, {});
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t hits = 0;
    for (std::size_t s = 0; s < shard_total; ++s) hits += per_shard[s][i].size();
    out[i].reserve(hits);
    for (std::size_t s = 0; s < shard_total; ++s) {
      out[i].insert(out[i].end(), per_shard[s][i].begin(),
                    per_shard[s][i].end());
    }
  }
}

}  // namespace reef::pubsub
