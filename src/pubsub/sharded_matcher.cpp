#include "pubsub/sharded_matcher.h"

#include <stdexcept>
#include <utility>

#include "util/hash.h"

namespace reef::pubsub {

ShardedMatcher::ShardedMatcher(Config config) : config_(std::move(config)) {
  if (config_.shard_count == 0) {
    throw std::invalid_argument("ShardedMatcher: shard_count must be >= 1");
  }
  if (sharded_inner_engine(config_.inner_engine)) {
    throw std::invalid_argument(
        "ShardedMatcher: inner engine must not itself be sharded (\"" +
        config_.inner_engine + "\")");
  }
  shards_.reserve(config_.shard_count + 1);
  for (std::size_t i = 0; i < config_.shard_count + 1; ++i) {
    shards_.push_back(make_matcher(config_.inner_engine));
  }
  if (config_.worker_threads > 0) {
    pool_ = std::make_unique<util::ThreadPool>(config_.worker_threads);
  }
}

std::size_t ShardedMatcher::shard_of(const Filter& filter) const noexcept {
  if (filter.empty()) return config_.shard_count;  // spill
  const std::string& attr = filter.constraints().front().attribute();
  return util::fnv1a64(attr) % config_.shard_count;
}

void ShardedMatcher::add(SubscriptionId id, Filter filter) {
  if (const auto it = placed_.find(id); it != placed_.end()) {
    shards_[it->second]->remove(id);  // replace semantics may move shards
  }
  const std::size_t shard = shard_of(filter);
  shards_[shard]->add(id, std::move(filter));
  placed_[id] = shard;
}

void ShardedMatcher::remove(SubscriptionId id) {
  const auto it = placed_.find(id);
  if (it == placed_.end()) return;
  shards_[it->second]->remove(id);
  placed_.erase(it);
}

void ShardedMatcher::match(const Event& event,
                           std::vector<SubscriptionId>& out) const {
  for (const auto& shard : shards_) shard->match(event, out);
}

void ShardedMatcher::match_batch(
    std::span<const Event> events,
    std::vector<std::vector<SubscriptionId>>& out) const {
  const std::size_t shard_total = shards_.size();
  // One result buffer per shard; each task writes only its own slot, so
  // the fan-out needs no locking and the merge below is scheduling-free.
  std::vector<std::vector<std::vector<SubscriptionId>>> per_shard(
      shard_total);
  const auto task = [&](std::size_t s) {
    shards_[s]->match_batch(events, per_shard[s]);
  };
  if (pool_) {
    pool_->parallel_for(shard_total, task);
  } else {
    for (std::size_t s = 0; s < shard_total; ++s) task(s);
  }
  out.assign(events.size(), {});
  for (std::size_t i = 0; i < events.size(); ++i) {
    std::size_t hits = 0;
    for (std::size_t s = 0; s < shard_total; ++s) hits += per_shard[s][i].size();
    out[i].reserve(hits);
    for (std::size_t s = 0; s < shard_total; ++s) {
      out[i].insert(out[i].end(), per_shard[s][i].begin(),
                    per_shard[s][i].end());
    }
  }
}

}  // namespace reef::pubsub
