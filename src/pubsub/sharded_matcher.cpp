#include "pubsub/sharded_matcher.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/hash.h"

namespace reef::pubsub {

ShardedMatcher::ShardedMatcher(Config config) : config_(std::move(config)) {
  if (config_.shard_count == 0) {
    throw std::invalid_argument("ShardedMatcher: shard_count must be >= 1");
  }
  if (sharded_inner_engine(config_.inner_engine)) {
    throw std::invalid_argument(
        "ShardedMatcher: inner engine must not itself be sharded (\"" +
        config_.inner_engine + "\")");
  }
  shards_.reserve(config_.shard_count + 1);
  for (std::size_t i = 0; i < config_.shard_count + 1; ++i) {
    shards_.push_back(make_matcher(config_.inner_engine));
  }
  if (config_.worker_threads > 0) {
    pool_ = std::make_unique<util::ThreadPool>(config_.worker_threads);
  }
}

std::size_t ShardedMatcher::shard_of(const Filter& filter) const noexcept {
  if (filter.empty()) return config_.shard_count;  // spill
  const std::string& attr = filter.constraints().front().attribute();
  return util::fnv1a64(attr) % config_.shard_count;
}

void ShardedMatcher::add(SubscriptionId id, Filter filter) {
  remove(id);  // replace semantics may move shards / change the anchor
  Placement placement;
  placement.shard = shard_of(filter);
  if (!filter.empty()) {
    placement.anchor_attr = filter.constraints().front().attribute();
    AnchorAttr& info = anchor_attrs_[placement.anchor_attr];
    info.shard = placement.shard;
    ++info.count;
  }
  shards_[placement.shard]->add(id, std::move(filter));
  placed_.emplace(id, std::move(placement));
}

void ShardedMatcher::remove(SubscriptionId id) {
  const auto it = placed_.find(id);
  if (it == placed_.end()) return;
  const Placement& placement = it->second;
  shards_[placement.shard]->remove(id);
  if (placement.shard != config_.shard_count) {  // not a spill filter
    const auto attr_it = anchor_attrs_.find(placement.anchor_attr);
    if (--attr_it->second.count == 0) anchor_attrs_.erase(attr_it);
  }
  placed_.erase(it);
}

std::size_t ShardedMatcher::maintain(std::size_t max_bucket) {
  std::size_t changed = 0;
  for (const auto& shard : shards_) changed += shard->maintain(max_bucket);
  return changed;
}

void ShardedMatcher::candidate_shards(const Event& event,
                                      std::vector<std::size_t>& out) const {
  // A filter on shard s matches `event` only if the event carries the
  // filter's placement anchor, and that attribute is in anchor_attrs_ with
  // shard s — so the candidate set is exactly the shards the event's own
  // attributes hash to, plus the spill shard, whose anchorless filters
  // match anything. Events carry a handful of attributes, so a linear
  // dedup over the appended slice beats any mark table.
  const auto first = static_cast<std::ptrdiff_t>(out.size());
  for (const auto& [attr, value] : event.attributes()) {
    const auto it = anchor_attrs_.find(attr);
    if (it == anchor_attrs_.end()) continue;
    const std::size_t s = it->second.shard;
    if (std::find(out.begin() + first, out.end(), s) == out.end()) {
      out.push_back(s);
    }
  }
  std::sort(out.begin() + first, out.end());
  out.push_back(config_.shard_count);  // spill always participates, last
}

void ShardedMatcher::match(const Event& event,
                           std::vector<SubscriptionId>& out) const {
  if (!config_.prefilter_enabled) {
    events_routed_ += shards_.size();
    for (const auto& shard : shards_) shard->match(event, out);
    return;
  }
  std::vector<std::size_t> candidates;
  candidate_shards(event, candidates);
  events_routed_ += candidates.size();
  events_skipped_ += shards_.size() - candidates.size();
  for (const std::size_t s : candidates) shards_[s]->match(event, out);
}

void ShardedMatcher::match_batch(
    std::span<const Event> events,
    std::vector<std::vector<SubscriptionId>>& out) const {
  const std::size_t shard_total = shards_.size();
  // Pre-filter routing: the event indices each shard must see, in event
  // order, and the per-shard execution strategy. Gathering a sub-batch
  // copies events, so it only pays when the pre-filter removed a
  // meaningful slice; a near-full shard runs the original span instead —
  // identical output either way, because a skipped (event, shard) pair is
  // provably matchless and would only contribute an empty hit list. The
  // counters follow the strategy, not the candidate sets: a full-span
  // shard really does process every event, so all of them count as
  // routed. Everything here runs on the calling thread, so the fan-out
  // below stays free of shared mutable state.
  std::vector<std::vector<std::size_t>> routed(shard_total);
  std::vector<char> full_span(shard_total, 1);
  if (config_.prefilter_enabled) {
    std::vector<std::size_t> candidates;
    for (std::size_t i = 0; i < events.size(); ++i) {
      candidates.clear();
      candidate_shards(events[i], candidates);
      for (const std::size_t s : candidates) routed[s].push_back(i);
    }
    const std::size_t gather_below = events.size() - events.size() / 8;
    std::size_t routed_total = 0;
    for (std::size_t s = 0; s < shard_total; ++s) {
      full_span[s] =
          !routed[s].empty() && routed[s].size() >= gather_below ? 1 : 0;
      routed_total += full_span[s] ? events.size() : routed[s].size();
    }
    events_routed_ += routed_total;
    events_skipped_ += shard_total * events.size() - routed_total;
  } else {
    events_routed_ += shard_total * events.size();
  }
  // One result buffer per shard; each task writes only its own slot, so
  // the fan-out needs no locking and the merge below is scheduling-free.
  // Pre-filtered shards match a gathered sub-batch and scatter the hits
  // back to the original event positions.
  std::vector<std::vector<std::vector<SubscriptionId>>> per_shard(
      shard_total);
  const auto task = [&](std::size_t s) {
    if (full_span[s]) {
      shards_[s]->match_batch(events, per_shard[s]);
      return;
    }
    auto& scattered = per_shard[s];
    scattered.assign(events.size(), {});
    if (routed[s].empty() || shards_[s]->size() == 0) return;
    std::vector<Event> sub_batch;
    sub_batch.reserve(routed[s].size());
    for (const std::size_t i : routed[s]) sub_batch.push_back(events[i]);
    std::vector<std::vector<SubscriptionId>> sub_hits;
    shards_[s]->match_batch(sub_batch, sub_hits);
    for (std::size_t j = 0; j < routed[s].size(); ++j) {
      scattered[routed[s][j]] = std::move(sub_hits[j]);
    }
  };
  if (pool_) {
    pool_->parallel_for(shard_total, task);
  } else {
    for (std::size_t s = 0; s < shard_total; ++s) task(s);
  }
  out.assign(events.size(), {});
  for (std::size_t i = 0; i < events.size(); ++i) {
    std::size_t hits = 0;
    for (std::size_t s = 0; s < shard_total; ++s) hits += per_shard[s][i].size();
    out[i].reserve(hits);
    for (std::size_t s = 0; s < shard_total; ++s) {
      out[i].insert(out[i].end(), per_shard[s][i].begin(),
                    per_shard[s][i].end());
    }
  }
}

}  // namespace reef::pubsub
