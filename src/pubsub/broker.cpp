#include "pubsub/broker.h"

#include <algorithm>
#include <any>
#include <cassert>
#include <set>
#include <utility>

#include "util/log.h"

namespace reef::pubsub {

Broker::Broker(sim::Simulator& sim, sim::Network& net, std::string name)
    : Broker(sim, net, std::move(name), Config{}) {}

Broker::Broker(sim::Simulator& sim, sim::Network& net, std::string name,
               Config config)
    : sim_(sim),
      net_(net),
      name_(std::move(name)),
      config_(config),
      table_(RoutingTable::Config{config.covering_enabled,
                                  config.matcher_engine,
                                  /*cover_index_enabled=*/true,
                                  config.shard_count,
                                  config.worker_threads,
                                  config.prefilter_enabled,
                                  config.maintain_churn_threshold,
                                  config.maintain_max_bucket,
                                  config.maintain_skew_ratio}) {
  id_ = net_.attach(*this, name_);
}

void Broker::add_neighbor(Broker& other) {
  assert(other.id() != id_);
  if (table_.has_broker_iface(other.id())) return;
  neighbors_.push_back(other.id());
  table_.add_broker_iface(other.id());
  // Bring the new neighbor up to date with everything reachable through us.
  refresh_neighbor(other.id());
}

void Broker::attach_client(sim::NodeId client) {
  table_.add_client_iface(client);
}

void Broker::handle_message(const sim::Message& msg) {
  if (msg.type == kTypeClientSubscribe) {
    on_client_subscribe(msg.from,
                        std::any_cast<const ClientSubscribeMsg&>(msg.payload));
  } else if (msg.type == kTypeClientUnsubscribe) {
    on_client_unsubscribe(
        msg.from, std::any_cast<const ClientUnsubscribeMsg&>(msg.payload));
  } else if (msg.type == kTypeSubscribe) {
    on_broker_subscribe(msg.from,
                        std::any_cast<const SubscribeMsg&>(msg.payload));
  } else if (msg.type == kTypeUnsubscribe) {
    on_broker_unsubscribe(msg.from,
                          std::any_cast<const UnsubscribeMsg&>(msg.payload));
  } else if (msg.type == kTypePublish) {
    on_publish(msg.from, std::any_cast<const PublishMsg&>(msg.payload).event);
  } else if (msg.type == kTypePublishBatch) {
    on_publish_batch(msg.from,
                     std::any_cast<const PublishBatchMsg&>(msg.payload));
  } else {
    util::log_warn("broker") << name_ << ": unknown message type " << msg.type;
  }
}

void Broker::on_client_subscribe(sim::NodeId from,
                                 const ClientSubscribeMsg& msg) {
  ++stats_.subs_received;
  table_.client_subscribe(from, msg.sub_id, msg.filter);
  refresh_all_neighbors_except(sim::kNoNode);
}

void Broker::on_client_unsubscribe(sim::NodeId from,
                                   const ClientUnsubscribeMsg& msg) {
  ++stats_.subs_received;
  if (!table_.client_unsubscribe(from, msg.sub_id)) return;
  refresh_all_neighbors_except(sim::kNoNode);
}

void Broker::on_broker_subscribe(sim::NodeId from, const SubscribeMsg& msg) {
  ++stats_.subs_received;
  if (!table_.broker_subscribe(from, msg.filter)) return;  // re-subscribe
  // Propagate onward, but never back where it came from.
  refresh_all_neighbors_except(from);
}

void Broker::on_broker_unsubscribe(sim::NodeId from,
                                   const UnsubscribeMsg& msg) {
  ++stats_.subs_received;
  if (!table_.broker_unsubscribe(from, msg.filter)) return;
  refresh_all_neighbors_except(from);
}

void Broker::on_publish(sim::NodeId from, const Event& event) {
  ++stats_.pubs_received;
  ++stats_.matches_run;
  std::vector<RoutingTable::Destination> hits;
  table_.match(event, hits);
  route_event(from, event, hits);
}

void Broker::on_publish_batch(sim::NodeId from, const PublishBatchMsg& msg) {
  stats_.pubs_received += msg.events.size();
  ++stats_.matches_run;
  std::vector<std::vector<RoutingTable::Destination>> hits;
  table_.match_batch(msg.events, hits);
  for (std::size_t i = 0; i < msg.events.size(); ++i) {
    route_event(from, msg.events[i], hits[i]);
  }
}

void Broker::route_event(sim::NodeId from, const Event& event,
                         const std::vector<RoutingTable::Destination>& hits) {
  // Group matches by interface; an event crosses each interface once.
  // Interfaces are visited in id order and each client's matched-sub list
  // is sorted, so the broker's output is a pure function of the match
  // *sets* — engines (sharded or not, any worker count) that agree on the
  // sets produce byte-identical wire traffic regardless of hit order.
  std::map<sim::NodeId, std::vector<SubscriptionId>> client_hits;
  std::set<sim::NodeId> broker_hits;
  for (const RoutingTable::Destination& dest : hits) {
    if (dest.iface == from) continue;  // never echo back
    if (dest.is_broker) {
      broker_hits.insert(dest.iface);
    } else {
      client_hits[dest.iface].push_back(dest.client_sub);
    }
  }
  for (const sim::NodeId neighbor : broker_hits) {
    enqueue_publish(neighbor, event);
  }
  for (auto& [client, subs] : client_hits) {
    std::sort(subs.begin(), subs.end());
    enqueue_delivery(client, event, std::move(subs));
  }
}

// --- per-tick output coalescing ----------------------------------------------

void Broker::enqueue_publish(sim::NodeId neighbor, const Event& event) {
  ++stats_.pubs_forwarded;
  if (!config_.batching_enabled) {
    send_publishes(neighbor, {event});
    return;
  }
  pending_pubs_[neighbor].push_back(event);
  schedule_flush();
}

void Broker::enqueue_delivery(sim::NodeId client, const Event& event,
                              std::vector<SubscriptionId> subs) {
  ++stats_.deliveries;
  if (!config_.batching_enabled) {
    std::vector<DeliverMsg> one;
    one.push_back(DeliverMsg{event, std::move(subs)});
    send_deliveries(client, std::move(one));
    return;
  }
  pending_delivers_[client].push_back(DeliverMsg{event, std::move(subs)});
  schedule_flush();
}

void Broker::schedule_flush() {
  if (flush_scheduled_) return;
  // Runs at the *current* instant, after every already-queued event for
  // this instant — i.e. after all publications arriving this tick have
  // been matched — so one wire message carries the whole tick's output.
  flush_scheduled_ = true;
  sim_.after(0, [this] { flush_pending(); });
}

void Broker::flush_pending() {
  flush_scheduled_ = false;
  // Drain by moving the maps out so the flush (and the maps' memory) stay
  // proportional to this tick's destinations, not every interface ever
  // sent to. Nothing re-enters the pending maps during the loop — sends
  // deliver asynchronously.
  auto pubs = std::exchange(pending_pubs_, {});
  for (auto& [neighbor, events] : pubs) {
    send_publishes(neighbor, std::move(events));
  }
  auto delivers = std::exchange(pending_delivers_, {});
  for (auto& [client, items] : delivers) {
    send_deliveries(client, std::move(items));
  }
}

void Broker::send_publishes(sim::NodeId neighbor, std::vector<Event> events) {
  ++stats_.pub_msgs_sent;
  if (events.size() == 1) {
    Event event = std::move(events.front());
    const std::size_t bytes = event.wire_size() + 8;
    net_.send(id_, neighbor, std::string(kTypePublish),
              PublishMsg{std::move(event)}, bytes);
    return;
  }
  const std::size_t bytes = publish_batch_wire_size(events);
  const std::size_t units = events.size();
  net_.send(id_, neighbor, std::string(kTypePublishBatch),
            PublishBatchMsg{std::move(events)}, bytes, units);
}

void Broker::send_deliveries(sim::NodeId client,
                             std::vector<DeliverMsg> items) {
  ++stats_.deliver_msgs_sent;
  if (items.size() == 1) {
    DeliverMsg item = std::move(items.front());
    const std::size_t bytes =
        item.event.wire_size() + 8 * item.matched.size() + 8;
    net_.send(id_, client, std::string(kTypeDeliver), std::move(item), bytes);
    return;
  }
  const std::size_t bytes = deliver_batch_wire_size(items);
  const std::size_t units = items.size();
  net_.send(id_, client, std::string(kTypeDeliverBatch),
            DeliverBatchMsg{std::move(items)}, bytes, units);
}

// --- subscription forwarding -------------------------------------------------

void Broker::refresh_neighbor(sim::NodeId neighbor) {
  RoutingTable::Diff diff = table_.refresh(neighbor);
  for (Filter& filter : diff.subscribe) {
    ++stats_.subs_forwarded;
    const std::size_t bytes = filter.wire_size() + 8;
    net_.send(id_, neighbor, std::string(kTypeSubscribe),
              SubscribeMsg{std::move(filter)}, bytes);
  }
  for (Filter& filter : diff.unsubscribe) {
    ++stats_.unsubs_forwarded;
    const std::size_t bytes = filter.wire_size() + 8;
    net_.send(id_, neighbor, std::string(kTypeUnsubscribe),
              UnsubscribeMsg{std::move(filter)}, bytes);
  }
}

void Broker::refresh_all_neighbors_except(sim::NodeId except) {
  for (const sim::NodeId neighbor : neighbors_) {
    if (neighbor != except) refresh_neighbor(neighbor);
  }
}

}  // namespace reef::pubsub
