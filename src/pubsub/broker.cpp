#include "pubsub/broker.h"

#include <algorithm>
#include <any>
#include <cassert>
#include <set>
#include <utility>

#include "util/log.h"

namespace reef::pubsub {

namespace {

/// Forwards the broker's routing/matching knobs into the routing core.
/// Field-by-field (not positional) so the two Config structs can evolve
/// independently; the flush budgets stay broker-local — the table never
/// touches the network.
RoutingTable::Config make_table_config(const Broker::Config& config) {
  RoutingTable::Config table;
  table.covering_enabled = config.covering_enabled;
  table.engine = config.matcher_engine;
  table.shard_count = config.shard_count;
  table.worker_threads = config.worker_threads;
  table.prefilter_enabled = config.prefilter_enabled;
  table.maintain_churn_threshold = config.maintain_churn_threshold;
  table.maintain_max_bucket = config.maintain_max_bucket;
  table.maintain_skew_ratio = config.maintain_skew_ratio;
  return table;
}

ReliableChannel::Config make_channel_config(const Broker::Config& config) {
  ReliableChannel::Config channel;
  channel.enabled = config.reliable_control;
  channel.retransmit_timeout = config.retransmit_timeout;
  channel.retransmit_timeout_max = config.retransmit_timeout_max;
  return channel;
}

}  // namespace

Broker::Broker(sim::Simulator& sim, sim::Network& net, std::string name)
    : Broker(sim, net, std::move(name), Config{}) {}

Broker::Broker(sim::Simulator& sim, sim::Network& net, std::string name,
               Config config)
    : sim_(sim),
      net_(net),
      name_(std::move(name)),
      config_(config),
      table_(make_table_config(config_)),
      channel_(sim, net, make_channel_config(config_)) {
  id_ = net_.attach(*this, name_);
  channel_.bind(id_);
  channel_.set_deliver(
      [this](sim::NodeId from, const CtrlOp& op) { on_ctrl_op(from, op); });
  channel_.set_on_peer_restart(
      [this](sim::NodeId peer) { on_peer_restart(peer); });
  if (config_.heartbeat_period > 0) {
    sim_.every(config_.heartbeat_period, config_.heartbeat_period,
               [this] { heartbeat_tick(); });
  }
}

void Broker::add_neighbor(Broker& other) {
  assert(other.id() != id_);
  if (table_.has_broker_iface(other.id())) return;
  neighbors_.push_back(other.id());
  table_.add_broker_iface(other.id());
  last_heard_[other.id()] = sim_.now();
  // Bring the new neighbor up to date with everything reachable through us.
  refresh_neighbor(other.id());
}

void Broker::attach_client(sim::NodeId client) {
  if (std::find(clients_.begin(), clients_.end(), client) == clients_.end()) {
    clients_.push_back(client);
  }
  table_.add_client_iface(client);
}

void Broker::handle_message(const sim::Message& msg) {
  if (!alive_) return;  // the network drops these anyway; belt and braces
  if (table_.has_broker_iface(msg.from)) {
    // Any traffic from a neighbor is a liveness signal.
    last_heard_[msg.from] = sim_.now();
    quarantined_.erase(msg.from);
  }
  if (channel_.on_message(msg)) return;
  if (msg.type == kTypeHeartbeat) return;  // liveness recorded above
  if (msg.type == kTypeClientSubscribe) {
    on_client_subscribe(msg.from,
                        std::any_cast<const ClientSubscribeMsg&>(msg.payload));
  } else if (msg.type == kTypeClientUnsubscribe) {
    on_client_unsubscribe(
        msg.from, std::any_cast<const ClientUnsubscribeMsg&>(msg.payload));
  } else if (msg.type == kTypeSubscribe) {
    on_broker_subscribe(msg.from,
                        std::any_cast<const SubscribeMsg&>(msg.payload));
  } else if (msg.type == kTypeUnsubscribe) {
    on_broker_unsubscribe(msg.from,
                          std::any_cast<const UnsubscribeMsg&>(msg.payload));
  } else if (msg.type == kTypePublish) {
    on_publish(msg.from, std::any_cast<const PublishMsg&>(msg.payload).event);
  } else if (msg.type == kTypePublishBatch) {
    on_publish_batch(msg.from,
                     std::any_cast<const PublishBatchMsg&>(msg.payload));
  } else {
    util::log_warn("broker") << name_ << ": unknown message type " << msg.type;
  }
}

void Broker::on_client_subscribe(sim::NodeId from,
                                 const ClientSubscribeMsg& msg) {
  ++stats_.subs_received;
  table_.client_subscribe(from, msg.sub_id, msg.filter, msg.scoring);
  refresh_all_neighbors_except(sim::kNoNode);
}

void Broker::on_client_unsubscribe(sim::NodeId from,
                                   const ClientUnsubscribeMsg& msg) {
  ++stats_.subs_received;
  if (!table_.client_unsubscribe(from, msg.sub_id)) return;
  refresh_all_neighbors_except(sim::kNoNode);
}

void Broker::on_broker_subscribe(sim::NodeId from, const SubscribeMsg& msg) {
  ++stats_.subs_received;
  if (!table_.broker_subscribe(from, msg.filter)) return;  // re-subscribe
  // Propagate onward, but never back where it came from.
  refresh_all_neighbors_except(from);
}

void Broker::on_broker_unsubscribe(sim::NodeId from,
                                   const UnsubscribeMsg& msg) {
  ++stats_.subs_received;
  if (!table_.broker_unsubscribe(from, msg.filter)) return;
  refresh_all_neighbors_except(from);
}

// --- fault tolerance ---------------------------------------------------------

void Broker::on_ctrl_op(sim::NodeId from, const CtrlOp& op) {
  switch (op.kind) {
    case CtrlOp::Kind::kSubscribe:
      on_broker_subscribe(from, SubscribeMsg{op.filter});
      break;
    case CtrlOp::Kind::kUnsubscribe:
      on_broker_unsubscribe(from, UnsubscribeMsg{op.filter});
      break;
    case CtrlOp::Kind::kClientSubscribe:
      on_client_subscribe(
          from, ClientSubscribeMsg{op.sub_id, op.filter, op.scoring});
      break;
    case CtrlOp::Kind::kClientUnsubscribe:
      on_client_unsubscribe(from, ClientUnsubscribeMsg{op.sub_id});
      break;
    case CtrlOp::Kind::kResyncRequest:
      on_resync_request(from, op.digest);
      break;
    case CtrlOp::Kind::kResyncState:
      on_resync_state(from, op.filters);
      break;
    case CtrlOp::Kind::kClientResyncState:
      on_client_resync_state(from, op.subs);
      break;
  }
}

void Broker::on_peer_restart(sim::NodeId peer) {
  // The peer's epoch bumped: it lost all state. Restart our stream toward
  // it (any unacked backlog is superseded by the resync that follows) and
  // void everything we had learned from it — its wants died with it; the
  // resync request it is about to deliver re-establishes what it needs.
  channel_.reset_peer_send(peer);
  if (!table_.has_broker_iface(peer)) return;
  if (table_.drop_broker_iface_state(peer)) {
    refresh_all_neighbors_except(peer);
  }
}

void Broker::send_resync_request(sim::NodeId peer) {
  CtrlOp op;
  op.kind = CtrlOp::Kind::kResyncRequest;
  op.digest = table_.has_broker_iface(peer) ? table_.broker_iface_digest(peer)
                                            : table_.client_iface_digest(peer);
  ++stats_.resync_msgs;
  stats_.resync_bytes += ctrl_op_wire_size(op);
  channel_.send(peer, std::move(op));
}

void Broker::on_resync_request(sim::NodeId from, std::uint64_t digest) {
  // Only a restarted neighbor broker sends these (clients answer them).
  if (!table_.has_broker_iface(from)) return;
  // Sync the forwarded bookkeeping to the desired set, discarding the
  // incremental diff — the full-state replay below supersedes it.
  (void)table_.refresh(from);
  if (table_.forwarded_digest(from) == digest) return;  // already in sync
  CtrlOp op;
  op.kind = CtrlOp::Kind::kResyncState;
  op.filters = table_.forwarded_filters(from);
  ++stats_.resync_msgs;
  stats_.resync_bytes += ctrl_op_wire_size(op);
  channel_.send(from, std::move(op));
}

void Broker::on_resync_state(sim::NodeId from, const std::vector<Filter>& want) {
  if (table_.broker_resync(from, want)) {
    refresh_all_neighbors_except(from);
  }
}

void Broker::on_client_resync_state(
    sim::NodeId from, const std::vector<ClientSubscription>& subs) {
  if (table_.client_resync(from, subs)) {
    refresh_all_neighbors_except(sim::kNoNode);
  }
}

void Broker::heartbeat_tick() {
  if (!alive_) return;
  for (const sim::NodeId neighbor : neighbors_) {
    ++stats_.heartbeats_sent;
    net_.send(id_, neighbor, std::string(kTypeHeartbeat), HeartbeatMsg{},
              kHeartbeatWireBytes);
  }
  const sim::Time timeout = config_.suspicion_timeout > 0
                                ? config_.suspicion_timeout
                                : 4 * config_.heartbeat_period;
  for (const sim::NodeId neighbor : neighbors_) {
    if (quarantined_.contains(neighbor)) continue;
    if (sim_.now() - last_heard_[neighbor] > timeout) {
      quarantined_.insert(neighbor);
      ++stats_.suspicions;
    }
  }
}

void Broker::crash() {
  alive_ = false;
  channel_.set_alive(false);
  // The incarnation's volatile state dies here: routing table, pending
  // output, channel streams. Neighbor/client lists survive — they are the
  // static configuration restart() re-declares.
  table_ = RoutingTable(make_table_config(config_));
  pending_pubs_.clear();
  pending_delivers_.clear();
  quarantined_.clear();
  channel_.reset_all();
}

void Broker::restart() {
  assert(!alive_ && "restart of a live broker");
  alive_ = true;
  channel_.set_alive(true);
  for (const sim::NodeId neighbor : neighbors_) {
    table_.add_broker_iface(neighbor);
    last_heard_[neighbor] = sim_.now();  // fresh suspicion clock
  }
  for (const sim::NodeId client : clients_) table_.add_client_iface(client);
  if (!config_.reliable_control) return;  // best-effort: empty until churn
  // Anti-entropy: ask every peer for the state this incarnation lost. The
  // requests ride the (fresh-epoch) reliable streams, so they survive any
  // fault that outlives the restart.
  for (const sim::NodeId neighbor : neighbors_) send_resync_request(neighbor);
  for (const sim::NodeId client : clients_) send_resync_request(client);
}

void Broker::on_publish(sim::NodeId from, const Event& event) {
  ++stats_.pubs_received;
  ++stats_.matches_run;
  if (config_.scoring_enabled) {
    const std::span<const Event> events{&event, 1};
    std::vector<std::vector<RoutingTable::ScoredDestination>> hits;
    table_.match_batch_scored(events, hits);
    route_scored(from, events, hits);
    return;
  }
  std::vector<RoutingTable::Destination> hits;
  table_.match(event, hits);
  route_event(from, event, hits);
}

void Broker::on_publish_batch(sim::NodeId from, const PublishBatchMsg& msg) {
  stats_.pubs_received += msg.events.size();
  ++stats_.matches_run;
  if (config_.scoring_enabled) {
    std::vector<std::vector<RoutingTable::ScoredDestination>> hits;
    table_.match_batch_scored(msg.events, hits);
    route_scored(from, msg.events, hits);
    return;
  }
  std::vector<std::vector<RoutingTable::Destination>> hits;
  table_.match_batch(msg.events, hits);
  for (std::size_t i = 0; i < msg.events.size(); ++i) {
    route_event(from, msg.events[i], hits[i]);
  }
}

void Broker::route_event(sim::NodeId from, const Event& event,
                         const std::vector<RoutingTable::Destination>& hits) {
  // Group matches by interface; an event crosses each interface once.
  // Interfaces are visited in id order and each client's matched-sub list
  // is sorted, so the broker's output is a pure function of the match
  // *sets* — engines (sharded or not, any worker count) that agree on the
  // sets produce byte-identical wire traffic regardless of hit order.
  std::map<sim::NodeId, std::vector<SubscriptionId>> client_hits;
  std::set<sim::NodeId> broker_hits;
  for (const RoutingTable::Destination& dest : hits) {
    if (dest.iface == from) continue;  // never echo back
    if (dest.is_broker) {
      // Graceful degradation: no data-plane traffic into a suspected-dead
      // neighbor's black hole. Its routes stay in the table and the
      // quarantine lifts on its first sign of life.
      if (quarantined_.contains(dest.iface)) continue;
      broker_hits.insert(dest.iface);
    } else {
      client_hits[dest.iface].push_back(dest.client_sub);
    }
  }
  for (const sim::NodeId neighbor : broker_hits) {
    enqueue_publish(neighbor, event);
  }
  for (auto& [client, subs] : client_hits) {
    std::sort(subs.begin(), subs.end());
    enqueue_delivery(client, event, std::move(subs));
  }
}

// --- scored delivery (Config::scoring_enabled) -------------------------------

void Broker::route_scored(
    sim::NodeId from, std::span<const Event> events,
    const std::vector<std::vector<RoutingTable::ScoredDestination>>& hits) {
  // Pass 1: collect, per (client, subscription) with a non-neutral policy,
  // the scored candidates of this publication batch — the top-k window.
  // The window is the wire-message batch, so its composition depends only
  // on what the publisher framed together, never on engine, shard, worker,
  // or flush-budget choices (see docs/ARCHITECTURE.md "Scored delivery").
  struct Window {
    const ScoringSpec* spec = nullptr;
    std::vector<std::pair<std::uint32_t, double>> cands;  // (event idx, score)
  };
  std::map<std::pair<sim::NodeId, SubscriptionId>, Window> windows;
  for (std::size_t i = 0; i < events.size(); ++i) {
    for (const RoutingTable::ScoredDestination& sd : hits[i]) {
      if (sd.dest.is_broker || sd.scoring == nullptr) continue;
      if (sd.dest.iface == from) continue;  // never echo back
      ++stats_.scored_matches;
      Window& window = windows[{sd.dest.iface, sd.dest.client_sub}];
      window.spec = sd.scoring;
      window.cands.emplace_back(static_cast<std::uint32_t>(i), sd.score);
    }
  }
  // Pass 2: per window, the min_score filter then the bounded top-k cut.
  // Ties at the cut break by ascending event order (TopKSelector), so the
  // surviving set is a pure function of the window's (event, score) pairs.
  SuppressedSet suppressed;
  for (auto& [key, window] : windows) {
    TopKSelector topk(window.spec->top_k);
    std::size_t eligible = 0;
    for (const auto& [index, score] : window.cands) {
      if (score < window.spec->min_score) {
        ++stats_.suppressed_by_threshold;
        suppressed.insert({index, key.first, key.second});
        continue;
      }
      ++eligible;
      topk.offer(score, index);
    }
    const std::vector<std::uint32_t> survivors = topk.take();
    if (survivors.size() == eligible) continue;
    stats_.suppressed_by_k += eligible - survivors.size();
    // cands is in ascending event order and survivors is sorted, so one
    // linear merge marks the evicted candidates.
    std::size_t next = 0;
    for (const auto& [index, score] : window.cands) {
      if (score < window.spec->min_score) continue;  // marked above
      if (next < survivors.size() && survivors[next] == index) {
        ++next;
        continue;
      }
      suppressed.insert({index, key.first, key.second});
    }
  }
  // Pass 3: the boolean routing pass, per event in batch order, skipping
  // suppressed deliveries and attaching scores.
  for (std::size_t i = 0; i < events.size(); ++i) {
    route_event_scored(from, events[i], static_cast<std::uint32_t>(i),
                       hits[i], suppressed);
  }
}

void Broker::route_event_scored(
    sim::NodeId from, const Event& event, std::uint32_t event_index,
    const std::vector<RoutingTable::ScoredDestination>& hits,
    const SuppressedSet& suppressed) {
  // Mirrors route_event: interfaces in id order, per-client sub lists
  // sorted by id. Scores never influence grouping or order — a scored
  // delivery leaves in exactly the position its boolean twin would have.
  struct ClientHit {
    SubscriptionId sub = 0;
    double score = kConstantScore;
    bool scored = false;  // carries a non-neutral spec
  };
  std::map<sim::NodeId, std::vector<ClientHit>> client_hits;
  std::set<sim::NodeId> broker_hits;
  for (const RoutingTable::ScoredDestination& sd : hits) {
    if (sd.dest.iface == from) continue;  // never echo back
    if (sd.dest.is_broker) {
      if (quarantined_.contains(sd.dest.iface)) continue;
      broker_hits.insert(sd.dest.iface);
      continue;
    }
    if (sd.scoring != nullptr &&
        suppressed.contains({event_index, sd.dest.iface,
                             sd.dest.client_sub})) {
      continue;
    }
    client_hits[sd.dest.iface].push_back(
        ClientHit{sd.dest.client_sub, sd.score, sd.scoring != nullptr});
  }
  for (const sim::NodeId neighbor : broker_hits) {
    enqueue_publish(neighbor, event);
  }
  for (auto& [client, entries] : client_hits) {
    std::sort(entries.begin(), entries.end(),
              [](const ClientHit& a, const ClientHit& b) {
                return a.sub < b.sub;
              });
    bool any_scored = false;
    for (const ClientHit& entry : entries) any_scored |= entry.scored;
    std::vector<SubscriptionId> subs;
    std::vector<double> scores;
    subs.reserve(entries.size());
    if (any_scored) scores.reserve(entries.size());
    for (const ClientHit& entry : entries) {
      subs.push_back(entry.sub);
      if (any_scored) scores.push_back(entry.score);
    }
    enqueue_delivery(client, event, std::move(subs), std::move(scores));
  }
}

// --- adaptive output coalescing ----------------------------------------------

std::optional<Broker::FlushCause> Broker::tripped_budget(
    std::size_t events, std::size_t bytes) const {
  if (config_.flush_max_events != 0 && events >= config_.flush_max_events) {
    return FlushCause::kEvents;
  }
  if (config_.flush_max_bytes != 0 && bytes >= config_.flush_max_bytes) {
    return FlushCause::kBytes;
  }
  return std::nullopt;
}

void Broker::note_flush(FlushCause cause, std::size_t units,
                        sim::Time enqueue_time_sum) {
  switch (cause) {
    case FlushCause::kEvents: ++stats_.flushes_by_events; break;
    case FlushCause::kBytes: ++stats_.flushes_by_bytes; break;
    case FlushCause::kDelay: ++stats_.flushes_by_delay; break;
  }
  stats_.flushed_units += units;
  stats_.residence_ticks_total +=
      static_cast<sim::Time>(units) * sim_.now() - enqueue_time_sum;
}

void Broker::enqueue_publish(sim::NodeId neighbor, const Event& event) {
  ++stats_.pubs_forwarded;
  if (!config_.batching_enabled) {
    send_publishes(neighbor, {event});
    return;
  }
  PendingPubs& pending = pending_pubs_[neighbor];
  // Metering an entry costs an O(#attributes) wire_size() scan, so the
  // running batch size is maintained only while the byte budget is armed
  // — with it off (the default) the hot path stays at PR 4 cost and
  // `bytes` holds just the header, which tripped_budget never reads.
  if (config_.flush_max_bytes != 0) {
    pending.bytes += publish_entry_wire_size(event);
  }
  pending.enqueue_time_sum += sim_.now();
  pending.events.push_back(event);
  if (const auto cause =
          tripped_budget(pending.events.size(), pending.bytes)) {
    // Budget trip: this interface's batch leaves mid-tick, synchronously.
    // Extract before sending so a re-entrant enqueue (there is none today —
    // sends deliver asynchronously — but the invariant is cheap) starts a
    // fresh batch.
    auto node = pending_pubs_.extract(neighbor);
    PendingPubs& full = node.mapped();
    note_flush(*cause, full.events.size(), full.enqueue_time_sum);
    send_publishes(neighbor, std::move(full.events));
    return;
  }
  schedule_flush();
}

void Broker::enqueue_delivery(sim::NodeId client, const Event& event,
                              std::vector<SubscriptionId> subs,
                              std::vector<double> scores) {
  ++stats_.deliveries;
  if (!config_.batching_enabled) {
    std::vector<DeliverMsg> one;
    one.push_back(DeliverMsg{event, std::move(subs), std::move(scores)});
    send_deliveries(client, std::move(one));
    return;
  }
  PendingDelivers& pending = pending_delivers_[client];
  DeliverMsg item{event, std::move(subs), std::move(scores)};
  if (config_.flush_max_bytes != 0) {
    pending.bytes += deliver_entry_wire_size(item);
  }
  pending.enqueue_time_sum += sim_.now();
  pending.items.push_back(std::move(item));
  if (const auto cause =
          tripped_budget(pending.items.size(), pending.bytes)) {
    auto node = pending_delivers_.extract(client);
    PendingDelivers& full = node.mapped();
    note_flush(*cause, full.items.size(), full.enqueue_time_sum);
    send_deliveries(client, std::move(full.items));
    return;
  }
  schedule_flush();
}

void Broker::schedule_flush() {
  if (flush_scheduled_) return;
  // With flush_max_delay_ticks = 0 this runs at the *current* instant,
  // after every already-queued event for this instant — i.e. after all
  // publications arriving this tick have been matched — so one wire
  // message carries the whole tick's output (the per-tick baseline). With
  // a delay budget the timer is armed by the oldest pending event and
  // later arrivals ride along, so no event waits longer than the budget.
  flush_scheduled_ = true;
  sim_.after(config_.flush_max_delay_ticks, [this] { flush_pending(); });
}

void Broker::flush_pending() {
  flush_scheduled_ = false;
  if (!alive_) return;  // crashed with a timer in flight: output is gone
  // Drain by moving the maps out so the flush (and the maps' memory) stay
  // proportional to this window's destinations, not every interface ever
  // sent to. Nothing re-enters the pending maps during the loop — sends
  // deliver asynchronously. The maps can be empty: a budget trip may have
  // drained everything since the timer was armed.
  auto pubs = std::exchange(pending_pubs_, {});
  for (auto& [neighbor, pending] : pubs) {
    note_flush(FlushCause::kDelay, pending.events.size(),
               pending.enqueue_time_sum);
    send_publishes(neighbor, std::move(pending.events));
  }
  auto delivers = std::exchange(pending_delivers_, {});
  for (auto& [client, pending] : delivers) {
    note_flush(FlushCause::kDelay, pending.items.size(),
               pending.enqueue_time_sum);
    send_deliveries(client, std::move(pending.items));
  }
}

void Broker::send_publishes(sim::NodeId neighbor, std::vector<Event> events) {
  ++stats_.pub_msgs_sent;
  if (events.size() == 1) {
    Event event = std::move(events.front());
    const std::size_t bytes = publish_msg_wire_size(event);
    net_.send(id_, neighbor, std::string(kTypePublish),
              PublishMsg{std::move(event)}, bytes);
    return;
  }
  const std::size_t bytes = publish_batch_wire_size(events);
  const std::size_t units = events.size();
  net_.send(id_, neighbor, std::string(kTypePublishBatch),
            PublishBatchMsg{std::move(events)}, bytes, units);
}

void Broker::send_deliveries(sim::NodeId client,
                             std::vector<DeliverMsg> items) {
  ++stats_.deliver_msgs_sent;
  if (items.size() == 1) {
    DeliverMsg item = std::move(items.front());
    const std::size_t bytes = deliver_msg_wire_size(item);
    net_.send(id_, client, std::string(kTypeDeliver), std::move(item), bytes);
    return;
  }
  const std::size_t bytes = deliver_batch_wire_size(items);
  const std::size_t units = items.size();
  net_.send(id_, client, std::string(kTypeDeliverBatch),
            DeliverBatchMsg{std::move(items)}, bytes, units);
}

// --- subscription forwarding -------------------------------------------------

void Broker::refresh_neighbor(sim::NodeId neighbor) {
  RoutingTable::Diff diff = table_.refresh(neighbor);
  for (Filter& filter : diff.subscribe) {
    ++stats_.subs_forwarded;
    if (config_.reliable_control) {
      CtrlOp op;
      op.kind = CtrlOp::Kind::kSubscribe;
      op.filter = std::move(filter);
      channel_.send(neighbor, std::move(op));
      continue;
    }
    const std::size_t bytes = filter.wire_size() + 8;
    net_.send(id_, neighbor, std::string(kTypeSubscribe),
              SubscribeMsg{std::move(filter)}, bytes);
  }
  for (Filter& filter : diff.unsubscribe) {
    ++stats_.unsubs_forwarded;
    if (config_.reliable_control) {
      CtrlOp op;
      op.kind = CtrlOp::Kind::kUnsubscribe;
      op.filter = std::move(filter);
      channel_.send(neighbor, std::move(op));
      continue;
    }
    const std::size_t bytes = filter.wire_size() + 8;
    net_.send(id_, neighbor, std::string(kTypeUnsubscribe),
              UnsubscribeMsg{std::move(filter)}, bytes);
  }
}

void Broker::refresh_all_neighbors_except(sim::NodeId except) {
  for (const sim::NodeId neighbor : neighbors_) {
    if (neighbor != except) refresh_neighbor(neighbor);
  }
}

}  // namespace reef::pubsub
