#include "pubsub/broker.h"

#include <any>
#include <cassert>

#include "util/log.h"

namespace reef::pubsub {

Broker::Broker(sim::Simulator& sim, sim::Network& net, std::string name)
    : Broker(sim, net, std::move(name), Config{}) {}

Broker::Broker(sim::Simulator& sim, sim::Network& net, std::string name,
               Config config)
    : sim_(sim),
      net_(net),
      name_(std::move(name)),
      config_(config),
      matcher_(make_matcher(config.use_counting_matcher)) {
  id_ = net_.attach(*this, name_);
}

void Broker::add_neighbor(Broker& other) {
  assert(other.id() != id_);
  if (broker_ifaces_.contains(other.id())) return;
  neighbors_.push_back(other.id());
  broker_ifaces_.emplace(other.id(), BrokerIface{});
  // Bring the new neighbor up to date with everything reachable through us.
  refresh_neighbor(other.id());
}

void Broker::attach_client(sim::NodeId client) {
  client_ifaces_.try_emplace(client);
}

void Broker::handle_message(const sim::Message& msg) {
  if (msg.type == kTypeClientSubscribe) {
    on_client_subscribe(msg.from,
                        std::any_cast<const ClientSubscribeMsg&>(msg.payload));
  } else if (msg.type == kTypeClientUnsubscribe) {
    on_client_unsubscribe(
        msg.from, std::any_cast<const ClientUnsubscribeMsg&>(msg.payload));
  } else if (msg.type == kTypeSubscribe) {
    on_broker_subscribe(msg.from,
                        std::any_cast<const SubscribeMsg&>(msg.payload));
  } else if (msg.type == kTypeUnsubscribe) {
    on_broker_unsubscribe(msg.from,
                          std::any_cast<const UnsubscribeMsg&>(msg.payload));
  } else if (msg.type == kTypePublish) {
    on_publish(msg.from, std::any_cast<const PublishMsg&>(msg.payload).event);
  } else {
    util::log_warn("broker") << name_ << ": unknown message type " << msg.type;
  }
}

std::uint64_t Broker::add_entry(Filter filter, sim::NodeId iface,
                                bool from_broker, SubscriptionId client_sub) {
  const std::uint64_t engine_id = next_engine_id_++;
  matcher_->add(engine_id, filter);
  entries_.emplace(engine_id,
                   EngineEntry{std::move(filter), iface, from_broker,
                               client_sub});
  return engine_id;
}

void Broker::remove_entry(std::uint64_t engine_id) {
  matcher_->remove(engine_id);
  entries_.erase(engine_id);
}

void Broker::on_client_subscribe(sim::NodeId from,
                                 const ClientSubscribeMsg& msg) {
  ++stats_.subs_received;
  attach_client(from);
  ClientIface& iface = client_ifaces_[from];
  if (const auto it = iface.engine_ids.find(msg.sub_id);
      it != iface.engine_ids.end()) {
    remove_entry(it->second);  // replace semantics on duplicate sub_id
  }
  iface.engine_ids[msg.sub_id] =
      add_entry(msg.filter, from, /*from_broker=*/false, msg.sub_id);
  refresh_all_neighbors_except(sim::kNoNode);
}

void Broker::on_client_unsubscribe(sim::NodeId from,
                                   const ClientUnsubscribeMsg& msg) {
  ++stats_.subs_received;
  const auto iface_it = client_ifaces_.find(from);
  if (iface_it == client_ifaces_.end()) return;
  const auto sub_it = iface_it->second.engine_ids.find(msg.sub_id);
  if (sub_it == iface_it->second.engine_ids.end()) return;
  remove_entry(sub_it->second);
  iface_it->second.engine_ids.erase(sub_it);
  refresh_all_neighbors_except(sim::kNoNode);
}

void Broker::on_broker_subscribe(sim::NodeId from, const SubscribeMsg& msg) {
  ++stats_.subs_received;
  auto& iface = broker_ifaces_[from];
  const std::string& key = msg.filter.key();
  if (const auto it = iface.engine_ids.find(key);
      it != iface.engine_ids.end()) {
    return;  // idempotent re-subscribe
  }
  iface.engine_ids[key] =
      add_entry(msg.filter, from, /*from_broker=*/true, 0);
  // Propagate onward, but never back where it came from.
  refresh_all_neighbors_except(from);
}

void Broker::on_broker_unsubscribe(sim::NodeId from,
                                   const UnsubscribeMsg& msg) {
  ++stats_.subs_received;
  const auto iface_it = broker_ifaces_.find(from);
  if (iface_it == broker_ifaces_.end()) return;
  const auto key_it = iface_it->second.engine_ids.find(msg.filter.key());
  if (key_it == iface_it->second.engine_ids.end()) return;
  remove_entry(key_it->second);
  iface_it->second.engine_ids.erase(key_it);
  refresh_all_neighbors_except(from);
}

void Broker::on_publish(sim::NodeId from, const Event& event) {
  ++stats_.pubs_received;
  ++stats_.matches_run;
  std::vector<SubscriptionId> engine_hits;
  matcher_->match(event, engine_hits);

  // Group matches by interface; an event crosses each interface once.
  std::unordered_map<sim::NodeId, std::vector<SubscriptionId>> client_hits;
  std::unordered_map<sim::NodeId, bool> broker_hits;
  for (const std::uint64_t engine_id : engine_hits) {
    const EngineEntry& entry = entries_.at(engine_id);
    if (entry.iface == from) continue;  // never echo back
    if (entry.from_broker) {
      broker_hits[entry.iface] = true;
    } else {
      client_hits[entry.iface].push_back(entry.client_sub);
    }
  }
  for (const auto& [neighbor, _] : broker_hits) {
    ++stats_.pubs_forwarded;
    net_.send(id_, neighbor, std::string(kTypePublish), PublishMsg{event},
              event.wire_size() + 8);
  }
  for (auto& [client, subs] : client_hits) {
    ++stats_.deliveries;
    const std::size_t bytes = event.wire_size() + 8 * subs.size() + 8;
    net_.send(id_, client, std::string(kTypeDeliver),
              DeliverMsg{event, std::move(subs)}, bytes);
  }
}

std::map<std::string, Filter> Broker::filters_not_from(
    sim::NodeId excluded) const {
  std::map<std::string, Filter> out;
  for (const auto& [engine_id, entry] : entries_) {
    if (entry.iface == excluded) continue;
    out.try_emplace(entry.filter.key(), entry.filter);
  }
  return out;
}

std::map<std::string, Filter> Broker::minimal_cover(
    std::map<std::string, Filter> filters) {
  std::map<std::string, Filter> out;
  for (const auto& [key, filter] : filters) {
    bool dominated = false;
    for (const auto& [other_key, other] : filters) {
      if (other_key == key) continue;
      if (!other.covers(filter)) continue;
      // `other` covers us. Drop `filter` unless the two are equivalent and
      // we are the canonical (lexicographically first) representative.
      if (!filter.covers(other) || other_key < key) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.emplace(key, filter);
  }
  return out;
}

void Broker::refresh_neighbor(sim::NodeId neighbor) {
  BrokerIface& iface = broker_ifaces_.at(neighbor);
  std::map<std::string, Filter> desired = filters_not_from(neighbor);
  if (config_.covering_enabled) desired = minimal_cover(std::move(desired));

  // Send subscriptions that became necessary.
  for (const auto& [key, filter] : desired) {
    if (iface.forwarded.contains(key)) continue;
    ++stats_.subs_forwarded;
    net_.send(id_, neighbor, std::string(kTypeSubscribe),
              SubscribeMsg{filter}, filter.wire_size() + 8);
    iface.forwarded.emplace(key, filter);
  }
  // Retract subscriptions that are no longer needed (or now covered).
  for (auto it = iface.forwarded.begin(); it != iface.forwarded.end();) {
    if (desired.contains(it->first)) {
      ++it;
      continue;
    }
    ++stats_.unsubs_forwarded;
    net_.send(id_, neighbor, std::string(kTypeUnsubscribe),
              UnsubscribeMsg{it->second}, it->second.wire_size() + 8);
    it = iface.forwarded.erase(it);
  }
}

void Broker::refresh_all_neighbors_except(sim::NodeId except) {
  for (const sim::NodeId neighbor : neighbors_) {
    if (neighbor != except) refresh_neighbor(neighbor);
  }
}

std::size_t Broker::table_size() const noexcept { return entries_.size(); }

std::size_t Broker::forwarded_size(sim::NodeId neighbor) const {
  const auto it = broker_ifaces_.find(neighbor);
  return it == broker_ifaces_.end() ? 0 : it->second.forwarded.size();
}

}  // namespace reef::pubsub
