#include "pubsub/attr_table.h"

#include <cassert>
#include <stdexcept>

#include "util/hash.h"

namespace reef::pubsub {

AttrTable::Index::Index(std::size_t capacity_pow2)
    : mask(capacity_pow2 - 1), slots(capacity_pow2) {
  for (auto& slot : slots) slot.store(0, std::memory_order_relaxed);
}

AttrTable::AttrTable() {
  auto first = std::make_unique<Index>(256);
  index_.store(first.get(), std::memory_order_release);
  retired_.push_back(std::move(first));
}

AttrTable& AttrTable::instance() {
  static AttrTable table;
  return table;
}

AttrId AttrTable::find_in(const Index& index, std::string_view attr_name,
                          std::uint64_t hash) const noexcept {
  for (std::size_t probe = hash & index.mask;;
       probe = (probe + 1) & index.mask) {
    const std::uint32_t slot =
        index.slots[probe].load(std::memory_order_acquire);
    if (slot == 0) return kNoAttrId;
    const AttrId id = slot - 1;
    if (name(id) == attr_name) return id;
  }
}

AttrId AttrTable::lookup(std::string_view attr_name) const noexcept {
  const Index* index = index_.load(std::memory_order_acquire);
  return find_in(*index, attr_name, util::fnv1a64(attr_name));
}

AttrId AttrTable::intern(std::string_view attr_name) {
  const std::uint64_t hash = util::fnv1a64(attr_name);
  // Fast path: already interned, no lock.
  if (const AttrId id =
          find_in(*index_.load(std::memory_order_acquire), attr_name, hash);
      id != kNoAttrId) {
    return id;
  }

  std::lock_guard<std::mutex> lock(insert_mutex_);
  Index* index = index_.load(std::memory_order_relaxed);
  // Re-check under the lock: another thread may have interned it since.
  if (const AttrId id = find_in(*index, attr_name, hash); id != kNoAttrId) {
    return id;
  }

  const std::uint32_t id = count_.load(std::memory_order_relaxed);
  if (id >= kMaxChunks * kChunkSize) {
    throw std::length_error(
        "AttrTable: attribute-name capacity exhausted (4M distinct names)");
  }
  // Store the name. Chunked storage: the string object never moves after
  // publication, so name() needs no lock.
  const std::size_t chunk = id >> kChunkShift;
  std::string* chunk_names = chunks_[chunk].load(std::memory_order_relaxed);
  if (chunk_names == nullptr) {
    auto storage = std::make_unique<std::string[]>(kChunkSize);
    chunk_names = storage.get();
    chunk_storage_.push_back(std::move(storage));
    chunks_[chunk].store(chunk_names, std::memory_order_release);
  }
  chunk_names[id & (kChunkSize - 1)] = std::string(attr_name);
  count_.store(id + 1, std::memory_order_release);

  // Grow the index first if this insert would cross 70% load: readers keep
  // using the old version (it stays retired, never freed) while new probes
  // see the published replacement.
  if ((id + 1) * 10 >= (index->mask + 1) * 7) {
    auto grown = std::make_unique<Index>((index->mask + 1) * 2);
    for (std::uint32_t existing = 0; existing < id; ++existing) {
      const std::uint64_t h = util::fnv1a64(name(existing));
      std::size_t probe = h & grown->mask;
      while (grown->slots[probe].load(std::memory_order_relaxed) != 0) {
        probe = (probe + 1) & grown->mask;
      }
      grown->slots[probe].store(existing + 1, std::memory_order_relaxed);
    }
    index = grown.get();
    index_.store(grown.get(), std::memory_order_release);
    retired_.push_back(std::move(grown));
  }

  // Publish the new id into (the possibly fresh) index.
  std::size_t probe = hash & index->mask;
  while (index->slots[probe].load(std::memory_order_relaxed) != 0) {
    probe = (probe + 1) & index->mask;
  }
  index->slots[probe].store(id + 1, std::memory_order_release);
  return id;
}

const std::string& AttrTable::name(AttrId id) const noexcept {
  // Tripwire for the classic misuse name(lookup(x)) on a lookup miss:
  // kNoAttrId indexes ~4M chunks past the array.
  assert(id < count_.load(std::memory_order_acquire));
  const std::string* chunk =
      chunks_[id >> kChunkShift].load(std::memory_order_acquire);
  return chunk[id & (kChunkSize - 1)];
}

}  // namespace reef::pubsub
