#include "pubsub/constraint.h"

#include <algorithm>

namespace reef::pubsub {

std::string_view op_name(Op op) noexcept {
  switch (op) {
    case Op::kEq:
      return "=";
    case Op::kNe:
      return "!=";
    case Op::kLt:
      return "<";
    case Op::kLe:
      return "<=";
    case Op::kGt:
      return ">";
    case Op::kGe:
      return ">=";
    case Op::kPrefix:
      return "=^";
    case Op::kSuffix:
      return "=$";
    case Op::kContains:
      return "=*";
    case Op::kExists:
      return "any";
    case Op::kIn:
      return "in";
  }
  return "?";
}

namespace {

bool string_pair(const Value& a, const Value& b) noexcept {
  return a.is_string() && b.is_string();
}

// Canonical member order for kIn sets. This must be a strict weak
// ordering even though Value::compare is partial: values order by type
// rank first (null < bool < numeric < string; int and double share the
// numeric rank so 3 and 3.0 land adjacent and dedupe), and within the
// numeric rank NaN — the one incomparable case — sorts after every
// comparable value, with any two NaNs equivalent.
int member_rank(const Value& v) noexcept {
  if (v.is_null()) return 0;
  if (v.is_bool()) return 1;
  if (v.is_numeric()) return 2;
  return 3;
}

bool member_unordered(const Value& v) noexcept {
  return v.is_numeric() && !Value::compare(v, v).has_value();
}

bool member_less(const Value& a, const Value& b) noexcept {
  const int ra = member_rank(a);
  const int rb = member_rank(b);
  if (ra != rb) return ra < rb;
  const bool an = member_unordered(a);
  const bool bn = member_unordered(b);
  if (an || bn) return !an && bn;
  const auto c = Value::compare(a, b);
  return c.has_value() && *c == std::strong_ordering::less;
}

bool member_equivalent(const Value& a, const Value& b) noexcept {
  return !member_less(a, b) && !member_less(b, a);
}

}  // namespace

Constraint::Constraint(std::string_view attribute, std::vector<Value> members)
    : set_(std::move(members)),
      attr_id_(AttrTable::instance().intern(attribute)),
      attr_len_(static_cast<std::uint32_t>(attribute.size())),
      op_(Op::kIn) {
  std::stable_sort(set_.begin(), set_.end(), member_less);
  set_.erase(std::unique(set_.begin(), set_.end(), member_equivalent),
             set_.end());
  if (set_.size() == 1) {
    // A singleton set is exactly equality; normalizing here keeps the
    // covering algebra and the engines' eq fast paths on one code path.
    op_ = Op::kEq;
    value_ = std::move(set_.front());
    set_.clear();
  }
}

bool Constraint::matches(const Value& v) const noexcept {
  using enum Op;
  switch (op_) {
    case kExists:
      return !v.is_null();
    case kEq:
      return v.equals(value_);
    case kNe: {
      const auto c = Value::compare(v, value_);
      return c.has_value() && *c != std::strong_ordering::equal;
    }
    case kLt: {
      const auto c = Value::compare(v, value_);
      return c.has_value() && *c == std::strong_ordering::less;
    }
    case kLe: {
      const auto c = Value::compare(v, value_);
      return c.has_value() && *c != std::strong_ordering::greater;
    }
    case kGt: {
      const auto c = Value::compare(v, value_);
      return c.has_value() && *c == std::strong_ordering::greater;
    }
    case kGe: {
      const auto c = Value::compare(v, value_);
      return c.has_value() && *c != std::strong_ordering::less;
    }
    case kPrefix:
      return string_pair(v, value_) &&
             v.as_string().starts_with(value_.as_string());
    case kSuffix:
      return string_pair(v, value_) &&
             v.as_string().ends_with(value_.as_string());
    case kContains:
      return string_pair(v, value_) &&
             v.as_string().find(value_.as_string()) != std::string::npos;
    case kIn:
      for (const Value& m : set_) {
        if (v.equals(m)) return true;
      }
      return false;
  }
  return false;
}

bool Constraint::covers(const Constraint& other) const noexcept {
  using enum Op;
  if (attr_id_ != other.attr_id_) return false;
  if (op_ == kExists) return true;  // every matching value is present
  if (*this == other) return true;

  if (other.op_ == kIn) {
    // A finite set is covered iff every member is matched — `matches` is
    // invariant within equals-classes, so testing the canonical members
    // is exact. This handles every coverer op uniformly, including our
    // own kIn (subset test). The empty set matches nothing, so the
    // vacuous pass below is sound: there is no value to escape.
    for (const Value& m : other.set_) {
      if (!matches(m)) return false;
    }
    return true;
  }

  const Value& a = value_;        // our bound
  const Value& b = other.value_;  // their bound
  const auto cmp = Value::compare(a, b);
  const bool comparable = cmp.has_value();
  const bool a_lt_b = comparable && *cmp == std::strong_ordering::less;
  const bool a_eq_b = comparable && *cmp == std::strong_ordering::equal;
  const bool a_gt_b = comparable && *cmp == std::strong_ordering::greater;

  switch (op_) {
    case kEq:
      // eq(a) covers eq(b) iff the bounds are equal (cross-type numeric ok).
      return other.op_ == kEq && a_eq_b;

    case kNe:
      switch (other.op_) {
        case kNe:
          return a_eq_b;
        case kEq:
          return comparable && !a_eq_b;
        case kLt:  // all v < b; none can equal a when a >= b
          return a_gt_b || a_eq_b;
        case kLe:
          return a_gt_b;
        case kGt:
          return a_lt_b || a_eq_b;
        case kGe:
          return a_lt_b;
        case kPrefix:  // strings with prefix b never equal a when a lacks it
          return string_pair(a, b) && !a.as_string().starts_with(b.as_string());
        case kSuffix:
          return string_pair(a, b) && !a.as_string().ends_with(b.as_string());
        case kContains:
          return string_pair(a, b) &&
                 a.as_string().find(b.as_string()) == std::string::npos;
        default:
          return false;
      }

    case kLt:
      switch (other.op_) {
        case kLt:
          return a_gt_b || a_eq_b;  // b <= a
        case kLe:
          return a_gt_b;  // b < a
        case kEq:
          return a_gt_b;  // b < a
        default:
          return false;
      }
    case kLe:
      switch (other.op_) {
        case kLt:  // v < b and b <= a  =>  v < a <= a
          return a_gt_b || a_eq_b;
        case kLe:
          return a_gt_b || a_eq_b;
        case kEq:
          return a_gt_b || a_eq_b;
        default:
          return false;
      }
    case kGt:
      switch (other.op_) {
        case kGt:
          return a_lt_b || a_eq_b;  // b >= a
        case kGe:
          return a_lt_b;  // b > a
        case kEq:
          return a_lt_b;  // b > a
        default:
          return false;
      }
    case kGe:
      switch (other.op_) {
        case kGt:
          return a_lt_b || a_eq_b;
        case kGe:
          return a_lt_b || a_eq_b;
        case kEq:
          return a_lt_b || a_eq_b;
        default:
          return false;
      }

    case kPrefix:
      if (!string_pair(a, b)) return false;
      switch (other.op_) {
        case kPrefix:
          return b.as_string().starts_with(a.as_string());
        case kEq:
          return b.as_string().starts_with(a.as_string());
        default:
          return false;
      }
    case kSuffix:
      if (!string_pair(a, b)) return false;
      switch (other.op_) {
        case kSuffix:
          return b.as_string().ends_with(a.as_string());
        case kEq:
          return b.as_string().ends_with(a.as_string());
        default:
          return false;
      }
    case kContains:
      if (!string_pair(a, b)) return false;
      switch (other.op_) {
        case kContains:
        case kPrefix:
        case kSuffix:
        case kEq:
          // Any string that contains / starts with / ends with / equals b
          // certainly contains b, hence contains a whenever a ⊆ b.
          return b.as_string().find(a.as_string()) != std::string::npos;
        default:
          return false;
      }
    case kIn:
      // Our finite set covers an equality pinned to one of its members.
      // Anything wider than a point (ranges, prefixes, a distinct
      // ≥2-member set — those were handled above) cannot be covered by a
      // finite member list, so everything else is false.
      return other.op_ == kEq && matches(other.value_);

    case kExists:
      return true;  // handled above; keep the compiler satisfied
  }
  return false;
}

std::string Constraint::to_string() const {
  std::string out = attribute();
  out += ' ';
  out += op_name(op_);
  if (op_ == Op::kIn) {
    out += " {";
    for (std::size_t i = 0; i < set_.size(); ++i) {
      if (i != 0) out += ", ";
      out += set_[i].to_string();
    }
    out += '}';
  } else if (op_ != Op::kExists) {
    out += ' ';
    out += value_.to_string();
  }
  return out;
}

}  // namespace reef::pubsub
