#include "pubsub/constraint.h"

namespace reef::pubsub {

std::string_view op_name(Op op) noexcept {
  switch (op) {
    case Op::kEq:
      return "=";
    case Op::kNe:
      return "!=";
    case Op::kLt:
      return "<";
    case Op::kLe:
      return "<=";
    case Op::kGt:
      return ">";
    case Op::kGe:
      return ">=";
    case Op::kPrefix:
      return "=^";
    case Op::kSuffix:
      return "=$";
    case Op::kContains:
      return "=*";
    case Op::kExists:
      return "any";
  }
  return "?";
}

namespace {

bool string_pair(const Value& a, const Value& b) noexcept {
  return a.is_string() && b.is_string();
}

}  // namespace

bool Constraint::matches(const Value& v) const noexcept {
  using enum Op;
  switch (op_) {
    case kExists:
      return !v.is_null();
    case kEq:
      return v.equals(value_);
    case kNe: {
      const auto c = Value::compare(v, value_);
      return c.has_value() && *c != std::strong_ordering::equal;
    }
    case kLt: {
      const auto c = Value::compare(v, value_);
      return c.has_value() && *c == std::strong_ordering::less;
    }
    case kLe: {
      const auto c = Value::compare(v, value_);
      return c.has_value() && *c != std::strong_ordering::greater;
    }
    case kGt: {
      const auto c = Value::compare(v, value_);
      return c.has_value() && *c == std::strong_ordering::greater;
    }
    case kGe: {
      const auto c = Value::compare(v, value_);
      return c.has_value() && *c != std::strong_ordering::less;
    }
    case kPrefix:
      return string_pair(v, value_) &&
             v.as_string().starts_with(value_.as_string());
    case kSuffix:
      return string_pair(v, value_) &&
             v.as_string().ends_with(value_.as_string());
    case kContains:
      return string_pair(v, value_) &&
             v.as_string().find(value_.as_string()) != std::string::npos;
  }
  return false;
}

bool Constraint::covers(const Constraint& other) const noexcept {
  using enum Op;
  if (attr_id_ != other.attr_id_) return false;
  if (op_ == kExists) return true;  // every matching value is present
  if (*this == other) return true;

  const Value& a = value_;        // our bound
  const Value& b = other.value_;  // their bound
  const auto cmp = Value::compare(a, b);
  const bool comparable = cmp.has_value();
  const bool a_lt_b = comparable && *cmp == std::strong_ordering::less;
  const bool a_eq_b = comparable && *cmp == std::strong_ordering::equal;
  const bool a_gt_b = comparable && *cmp == std::strong_ordering::greater;

  switch (op_) {
    case kEq:
      // eq(a) covers eq(b) iff the bounds are equal (cross-type numeric ok).
      return other.op_ == kEq && a_eq_b;

    case kNe:
      switch (other.op_) {
        case kNe:
          return a_eq_b;
        case kEq:
          return comparable && !a_eq_b;
        case kLt:  // all v < b; none can equal a when a >= b
          return a_gt_b || a_eq_b;
        case kLe:
          return a_gt_b;
        case kGt:
          return a_lt_b || a_eq_b;
        case kGe:
          return a_lt_b;
        case kPrefix:  // strings with prefix b never equal a when a lacks it
          return string_pair(a, b) && !a.as_string().starts_with(b.as_string());
        case kSuffix:
          return string_pair(a, b) && !a.as_string().ends_with(b.as_string());
        case kContains:
          return string_pair(a, b) &&
                 a.as_string().find(b.as_string()) == std::string::npos;
        default:
          return false;
      }

    case kLt:
      switch (other.op_) {
        case kLt:
          return a_gt_b || a_eq_b;  // b <= a
        case kLe:
          return a_gt_b;  // b < a
        case kEq:
          return a_gt_b;  // b < a
        default:
          return false;
      }
    case kLe:
      switch (other.op_) {
        case kLt:  // v < b and b <= a  =>  v < a <= a
          return a_gt_b || a_eq_b;
        case kLe:
          return a_gt_b || a_eq_b;
        case kEq:
          return a_gt_b || a_eq_b;
        default:
          return false;
      }
    case kGt:
      switch (other.op_) {
        case kGt:
          return a_lt_b || a_eq_b;  // b >= a
        case kGe:
          return a_lt_b;  // b > a
        case kEq:
          return a_lt_b;  // b > a
        default:
          return false;
      }
    case kGe:
      switch (other.op_) {
        case kGt:
          return a_lt_b || a_eq_b;
        case kGe:
          return a_lt_b || a_eq_b;
        case kEq:
          return a_lt_b || a_eq_b;
        default:
          return false;
      }

    case kPrefix:
      if (!string_pair(a, b)) return false;
      switch (other.op_) {
        case kPrefix:
          return b.as_string().starts_with(a.as_string());
        case kEq:
          return b.as_string().starts_with(a.as_string());
        default:
          return false;
      }
    case kSuffix:
      if (!string_pair(a, b)) return false;
      switch (other.op_) {
        case kSuffix:
          return b.as_string().ends_with(a.as_string());
        case kEq:
          return b.as_string().ends_with(a.as_string());
        default:
          return false;
      }
    case kContains:
      if (!string_pair(a, b)) return false;
      switch (other.op_) {
        case kContains:
        case kPrefix:
        case kSuffix:
        case kEq:
          // Any string that contains / starts with / ends with / equals b
          // certainly contains b, hence contains a whenever a ⊆ b.
          return b.as_string().find(a.as_string()) != std::string::npos;
        default:
          return false;
      }
    case kExists:
      return true;  // handled above; keep the compiler satisfied
  }
  return false;
}

std::string Constraint::to_string() const {
  std::string out = attribute();
  out += ' ';
  out += op_name(op_);
  if (op_ != Op::kExists) {
    out += ' ';
    out += value_.to_string();
  }
  return out;
}

}  // namespace reef::pubsub
