#include "pubsub/filter_parser.h"

#include <cctype>
#include <charconv>
#include <stdexcept>

namespace reef::pubsub {

namespace {

/// Hand-rolled recursive-descent scanner; inputs are short (subscription
/// strings), so clarity beats cleverness.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  ParseResult run() {
    skip_space();
    // "[*]" and "[ ... ]" forms round-trip Filter::to_string().
    bool bracketed = false;
    if (peek() == '[') {
      ++pos_;
      bracketed = true;
      skip_space();
      if (peek() == '*') {
        ++pos_;
        skip_space();
        if (!consume(']')) return error("expected ']' after '*'");
        skip_space();
        if (pos_ != text_.size()) return error("trailing input");
        return Filter{};
      }
    }
    std::vector<Constraint> constraints;
    while (true) {
      auto constraint = parse_constraint();
      if (auto* err = std::get_if<ParseError>(&constraint)) return *err;
      constraints.push_back(std::get<Constraint>(std::move(constraint)));
      skip_space();
      if (pos_ + 1 < text_.size() && text_[pos_] == '&' &&
          text_[pos_ + 1] == '&') {
        pos_ += 2;
        skip_space();
        continue;
      }
      break;
    }
    if (bracketed) {
      if (!consume(']')) return error("expected closing ']'");
      skip_space();
    }
    if (pos_ != text_.size()) return error("trailing input");
    return Filter(std::move(constraints));
  }

 private:
  using ConstraintResult = std::variant<Constraint, ParseError>;

  char peek() const noexcept {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  ParseError error(std::string message) const {
    return ParseError{std::move(message), pos_};
  }

  static bool is_attr_start(char c) noexcept {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  }
  static bool is_attr_char(char c) noexcept {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.';
  }

  std::string parse_identifier() {
    std::string out;
    if (!is_attr_start(peek())) return out;
    while (pos_ < text_.size() && is_attr_char(text_[pos_])) {
      out.push_back(text_[pos_++]);
    }
    return out;
  }

  ConstraintResult parse_constraint() {
    skip_space();
    const std::string first = parse_identifier();
    if (first.empty()) return error("expected attribute name");
    skip_space();

    // "has attr" form.
    if (first == "has") {
      const std::string attr = parse_identifier();
      if (attr.empty()) return error("expected attribute after 'has'");
      return exists(attr);
    }
    // "attr any" and "attr in {v1, v2}" forms (Filter::to_string round
    // trip). The lookahead is restored when the word is neither keyword —
    // it was the start of something else (or garbage the operator parse
    // reports).
    {
      const std::size_t mark = pos_;
      const std::string keyword = parse_identifier();
      if (keyword == "any") return exists(first);
      if (keyword == "in") return parse_in_set(first);
      pos_ = mark;
    }

    // Operator.
    Op op;
    if (consume('=')) {
      if (consume('^')) {
        op = Op::kPrefix;
      } else if (consume('$')) {
        op = Op::kSuffix;
      } else if (consume('*')) {
        op = Op::kContains;
      } else {
        op = Op::kEq;
      }
    } else if (consume('!')) {
      if (!consume('=')) return error("expected '=' after '!'");
      op = Op::kNe;
    } else if (consume('<')) {
      op = consume('=') ? Op::kLe : Op::kLt;
    } else if (consume('>')) {
      op = consume('=') ? Op::kGe : Op::kGt;
    } else {
      return error("expected operator");
    }
    skip_space();

    // Value.
    auto value = parse_value();
    if (auto* err = std::get_if<ParseError>(&value)) return *err;
    return Constraint(first, op, std::get<Value>(std::move(value)));
  }

  /// "attr in { v1, v2, ... }" — the attribute and the `in` keyword are
  /// already consumed; parses the brace-delimited member list (possibly
  /// empty) and hands it to the set-membership constructor, which
  /// canonicalizes (sort, dedupe, singleton -> eq).
  ConstraintResult parse_in_set(const std::string& attr) {
    skip_space();
    if (!consume('{')) return error("expected '{' after 'in'");
    std::vector<Value> members;
    skip_space();
    if (consume('}')) return Constraint(attr, std::move(members));
    while (true) {
      skip_space();
      auto member = parse_value();
      if (auto* err = std::get_if<ParseError>(&member)) return *err;
      members.push_back(std::get<Value>(std::move(member)));
      skip_space();
      if (consume(',')) continue;
      break;
    }
    if (!consume('}')) return error("expected '}' closing 'in' set");
    return Constraint(attr, std::move(members));
  }

  /// One literal: quoted string (with \" and \\ escapes), true/false/null
  /// word, or a number (int64 unless it carries '.', 'e', or 'E').
  std::variant<Value, ParseError> parse_value() {
    if (peek() == '"') {
      ++pos_;
      std::string value;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
        value.push_back(text_[pos_++]);
      }
      if (!consume('"')) return error("unterminated string");
      return Value(std::move(value));
    }
    // true/false/null
    if (is_attr_start(peek())) {
      const std::string word = parse_identifier();
      if (word == "true") return Value(true);
      if (word == "false") return Value(false);
      if (word == "null") return Value();
      return error("unquoted value (strings need quotes)");
    }
    // number
    const std::size_t start = pos_;
    if (peek() == '-' || peek() == '+') ++pos_;
    bool is_float = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '-' || text_[pos_] == '+') &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      if (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E') {
        is_float = true;
      }
      ++pos_;
    }
    if (pos_ == start) return error("expected value");
    const std::string_view number = text_.substr(start, pos_ - start);
    if (is_float) {
      double parsed = 0.0;
      const auto [ptr, ec] =
          std::from_chars(number.data(), number.data() + number.size(),
                          parsed);
      if (ec != std::errc{} || ptr != number.data() + number.size()) {
        return error("bad number");
      }
      return Value(parsed);
    }
    std::int64_t parsed = 0;
    const auto [ptr, ec] =
        std::from_chars(number.data(), number.data() + number.size(), parsed);
    if (ec != std::errc{} || ptr != number.data() + number.size()) {
      return error("bad number");
    }
    return Value(parsed);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

ParseResult parse_filter(std::string_view text) {
  return Parser(text).run();
}

Filter parse_filter_or_throw(std::string_view text) {
  ParseResult result = parse_filter(text);
  if (auto* err = std::get_if<ParseError>(&result)) {
    throw std::invalid_argument("parse_filter: " + err->message + " at " +
                                std::to_string(err->position) + " in '" +
                                std::string(text) + "'");
  }
  return std::get<Filter>(std::move(result));
}

}  // namespace reef::pubsub
