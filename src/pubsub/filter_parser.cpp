#include "pubsub/filter_parser.h"

#include <cctype>
#include <charconv>
#include <stdexcept>

namespace reef::pubsub {

namespace {

/// Hand-rolled recursive-descent scanner; inputs are short (subscription
/// strings), so clarity beats cleverness.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  ParseResult run() {
    skip_space();
    // "[*]" and "[ ... ]" forms round-trip Filter::to_string().
    bool bracketed = false;
    if (peek() == '[') {
      ++pos_;
      bracketed = true;
      skip_space();
      if (peek() == '*') {
        ++pos_;
        skip_space();
        if (!consume(']')) return error("expected ']' after '*'");
        skip_space();
        if (pos_ != text_.size()) return error("trailing input");
        return Filter{};
      }
    }
    std::vector<Constraint> constraints;
    while (true) {
      auto constraint = parse_constraint();
      if (auto* err = std::get_if<ParseError>(&constraint)) return *err;
      constraints.push_back(std::get<Constraint>(std::move(constraint)));
      skip_space();
      if (pos_ + 1 < text_.size() && text_[pos_] == '&' &&
          text_[pos_ + 1] == '&') {
        pos_ += 2;
        skip_space();
        continue;
      }
      break;
    }
    if (bracketed) {
      if (!consume(']')) return error("expected closing ']'");
      skip_space();
    }
    if (pos_ != text_.size()) return error("trailing input");
    return Filter(std::move(constraints));
  }

 private:
  using ConstraintResult = std::variant<Constraint, ParseError>;

  char peek() const noexcept {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  ParseError error(std::string message) const {
    return ParseError{std::move(message), pos_};
  }

  static bool is_attr_start(char c) noexcept {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  }
  static bool is_attr_char(char c) noexcept {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.';
  }

  std::string parse_identifier() {
    std::string out;
    if (!is_attr_start(peek())) return out;
    while (pos_ < text_.size() && is_attr_char(text_[pos_])) {
      out.push_back(text_[pos_++]);
    }
    return out;
  }

  ConstraintResult parse_constraint() {
    skip_space();
    const std::string first = parse_identifier();
    if (first.empty()) return error("expected attribute name");
    skip_space();

    // "has attr" form.
    if (first == "has") {
      const std::string attr = parse_identifier();
      if (attr.empty()) return error("expected attribute after 'has'");
      return exists(attr);
    }
    // "attr any" form (Filter::to_string round trip).
    {
      const std::size_t mark = pos_;
      const std::string maybe_any = parse_identifier();
      if (maybe_any == "any") return exists(first);
      pos_ = mark;
    }

    // Operator.
    Op op;
    if (consume('=')) {
      if (consume('^')) {
        op = Op::kPrefix;
      } else if (consume('$')) {
        op = Op::kSuffix;
      } else if (consume('*')) {
        op = Op::kContains;
      } else {
        op = Op::kEq;
      }
    } else if (consume('!')) {
      if (!consume('=')) return error("expected '=' after '!'");
      op = Op::kNe;
    } else if (consume('<')) {
      op = consume('=') ? Op::kLe : Op::kLt;
    } else if (consume('>')) {
      op = consume('=') ? Op::kGe : Op::kGt;
    } else {
      return error("expected operator");
    }
    skip_space();

    // Value.
    if (peek() == '"') {
      ++pos_;
      std::string value;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
        value.push_back(text_[pos_++]);
      }
      if (!consume('"')) return error("unterminated string");
      if (op == Op::kPrefix || op == Op::kSuffix || op == Op::kContains ||
          op == Op::kEq || op == Op::kNe || op == Op::kLt || op == Op::kLe ||
          op == Op::kGt || op == Op::kGe) {
        return Constraint(first, op, Value(std::move(value)));
      }
      return error("operator does not accept a string");
    }
    // true/false
    if (is_attr_start(peek())) {
      const std::string word = parse_identifier();
      if (word == "true") return Constraint(first, op, Value(true));
      if (word == "false") return Constraint(first, op, Value(false));
      return error("unquoted value (strings need quotes)");
    }
    // number
    const std::size_t start = pos_;
    if (peek() == '-' || peek() == '+') ++pos_;
    bool is_float = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '-' || text_[pos_] == '+') &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      if (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E') {
        is_float = true;
      }
      ++pos_;
    }
    if (pos_ == start) return error("expected value");
    const std::string_view number = text_.substr(start, pos_ - start);
    if (is_float) {
      double parsed = 0.0;
      const auto [ptr, ec] =
          std::from_chars(number.data(), number.data() + number.size(),
                          parsed);
      if (ec != std::errc{} || ptr != number.data() + number.size()) {
        return error("bad number");
      }
      return Constraint(first, op, Value(parsed));
    }
    std::int64_t parsed = 0;
    const auto [ptr, ec] =
        std::from_chars(number.data(), number.data() + number.size(), parsed);
    if (ec != std::errc{} || ptr != number.data() + number.size()) {
      return error("bad number");
    }
    return Constraint(first, op, Value(parsed));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

ParseResult parse_filter(std::string_view text) {
  return Parser(text).run();
}

Filter parse_filter_or_throw(std::string_view text) {
  ParseResult result = parse_filter(text);
  if (auto* err = std::get_if<ParseError>(&result)) {
    throw std::invalid_argument("parse_filter: " + err->message + " at " +
                                std::to_string(err->position) + " in '" +
                                std::string(text) + "'");
  }
  return std::get<Filter>(std::move(result));
}

}  // namespace reef::pubsub
