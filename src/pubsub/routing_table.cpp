#include "pubsub/routing_table.h"

#include <utility>

#include "pubsub/matcher_registry.h"

namespace reef::pubsub {

RoutingTable::RoutingTable() : RoutingTable(Config{}) {}

RoutingTable::RoutingTable(Config config)
    : config_(std::move(config)), matcher_(make_matcher(config_.engine)) {}

void RoutingTable::add_broker_iface(IfaceId iface) {
  broker_ifaces_.try_emplace(iface);
}

void RoutingTable::add_client_iface(IfaceId iface) {
  client_ifaces_.try_emplace(iface);
}

std::uint64_t RoutingTable::add_entry(Filter filter, IfaceId iface,
                                      bool from_broker,
                                      SubscriptionId client_sub) {
  const std::uint64_t engine_id = next_engine_id_++;
  matcher_->add(engine_id, filter);
  entries_.emplace(engine_id,
                   EngineEntry{std::move(filter), iface, from_broker,
                               client_sub});
  return engine_id;
}

void RoutingTable::remove_entry(std::uint64_t engine_id) {
  matcher_->remove(engine_id);
  entries_.erase(engine_id);
}

void RoutingTable::client_subscribe(IfaceId client, SubscriptionId sub_id,
                                    Filter filter) {
  add_client_iface(client);
  ClientIface& iface = client_ifaces_[client];
  if (const auto it = iface.engine_ids.find(sub_id);
      it != iface.engine_ids.end()) {
    remove_entry(it->second);  // replace semantics on duplicate sub_id
  }
  iface.engine_ids[sub_id] =
      add_entry(std::move(filter), client, /*from_broker=*/false, sub_id);
}

bool RoutingTable::client_unsubscribe(IfaceId client, SubscriptionId sub_id) {
  const auto iface_it = client_ifaces_.find(client);
  if (iface_it == client_ifaces_.end()) return false;
  const auto sub_it = iface_it->second.engine_ids.find(sub_id);
  if (sub_it == iface_it->second.engine_ids.end()) return false;
  remove_entry(sub_it->second);
  iface_it->second.engine_ids.erase(sub_it);
  return true;
}

bool RoutingTable::broker_subscribe(IfaceId broker, Filter filter) {
  auto& iface = broker_ifaces_[broker];
  // Copy the key before add_entry moves the filter out.
  std::string key = filter.key();
  if (iface.engine_ids.contains(key)) return false;  // idempotent
  const std::uint64_t engine_id =
      add_entry(std::move(filter), broker, /*from_broker=*/true, 0);
  iface.engine_ids.emplace(std::move(key), engine_id);
  return true;
}

bool RoutingTable::broker_unsubscribe(IfaceId broker, const Filter& filter) {
  const auto iface_it = broker_ifaces_.find(broker);
  if (iface_it == broker_ifaces_.end()) return false;
  const auto key_it = iface_it->second.engine_ids.find(filter.key());
  if (key_it == iface_it->second.engine_ids.end()) return false;
  remove_entry(key_it->second);
  iface_it->second.engine_ids.erase(key_it);
  return true;
}

std::map<std::string, Filter> RoutingTable::filters_not_from(
    IfaceId excluded) const {
  std::map<std::string, Filter> out;
  for (const auto& [engine_id, entry] : entries_) {
    if (entry.iface == excluded) continue;
    out.try_emplace(entry.filter.key(), entry.filter);
  }
  return out;
}

std::map<std::string, Filter> RoutingTable::minimal_cover(
    std::map<std::string, Filter> filters) {
  std::map<std::string, Filter> out;
  for (const auto& [key, filter] : filters) {
    bool dominated = false;
    for (const auto& [other_key, other] : filters) {
      if (other_key == key) continue;
      if (!other.covers(filter)) continue;
      // `other` covers us. Drop `filter` unless the two are equivalent and
      // we are the canonical (lexicographically first) representative.
      if (!filter.covers(other) || other_key < key) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.emplace(key, filter);
  }
  return out;
}

RoutingTable::Diff RoutingTable::refresh(IfaceId neighbor) {
  BrokerIface& iface = broker_ifaces_.at(neighbor);
  std::map<std::string, Filter> desired = filters_not_from(neighbor);
  if (config_.covering_enabled) desired = minimal_cover(std::move(desired));

  Diff diff;
  // Subscriptions that became necessary.
  for (const auto& [key, filter] : desired) {
    if (iface.forwarded.contains(key)) continue;
    diff.subscribe.push_back(filter);
    iface.forwarded.emplace(key, filter);
  }
  // Subscriptions no longer needed (or now covered). Collect keys in map
  // order for a deterministic diff.
  std::map<std::string, Filter> stale;
  for (const auto& [key, filter] : iface.forwarded) {
    if (!desired.contains(key)) stale.emplace(key, filter);
  }
  for (auto& [key, filter] : stale) {
    diff.unsubscribe.push_back(std::move(filter));
    iface.forwarded.erase(key);
  }
  return diff;
}

RoutingTable::Destination RoutingTable::destination_of(
    std::uint64_t engine_id) const {
  const EngineEntry& entry = entries_.at(engine_id);
  return Destination{entry.iface, entry.from_broker, entry.client_sub};
}

void RoutingTable::match(const Event& event,
                         std::vector<Destination>& out) const {
  std::vector<SubscriptionId> engine_hits;
  matcher_->match(event, engine_hits);
  out.reserve(out.size() + engine_hits.size());
  for (const std::uint64_t engine_id : engine_hits) {
    out.push_back(destination_of(engine_id));
  }
}

void RoutingTable::match_batch(
    std::span<const Event> events,
    std::vector<std::vector<Destination>>& out) const {
  std::vector<std::vector<SubscriptionId>> engine_hits;
  matcher_->match_batch(events, engine_hits);
  out.assign(events.size(), {});
  for (std::size_t i = 0; i < events.size(); ++i) {
    out[i].reserve(engine_hits[i].size());
    for (const std::uint64_t engine_id : engine_hits[i]) {
      out[i].push_back(destination_of(engine_id));
    }
  }
}

std::size_t RoutingTable::forwarded_size(IfaceId neighbor) const {
  const auto it = broker_ifaces_.find(neighbor);
  return it == broker_ifaces_.end() ? 0 : it->second.forwarded.size();
}

}  // namespace reef::pubsub
