#include "pubsub/routing_table.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "pubsub/matcher_registry.h"
#include "pubsub/range_index.h"
#include "pubsub/sharded_matcher.h"
#include "util/hash.h"

namespace reef::pubsub {

namespace {

/// Builds the configured engine: a plain registry engine for the unsharded
/// baseline, a ShardedMatcher honoring the config knobs whenever the
/// engine name carries the "sharded:" prefix or either knob is set. With
/// shard_count 0 (auto) a "sharded:" name gets kDefaultShardCount, so the
/// same engine string means the same thing here as in registry creation.
std::unique_ptr<Matcher> make_table_matcher(const RoutingTable::Config& cfg) {
  const auto inner = sharded_inner_engine(cfg.engine);
  if (!inner && cfg.shard_count <= 1 && cfg.worker_threads == 0) {
    return make_matcher(cfg.engine);
  }
  ShardedMatcher::Config sharded;
  sharded.shard_count = cfg.shard_count != 0 ? cfg.shard_count
                        : inner              ? kDefaultShardCount
                                             : 1;
  sharded.worker_threads = cfg.worker_threads;
  sharded.inner_engine = inner ? *inner : cfg.engine;
  sharded.prefilter_enabled = cfg.prefilter_enabled;
  if (!MatcherRegistry::instance().contains(sharded.inner_engine)) {
    // Not wrappable with the config knobs. Defer to the registry, which
    // either resolves the name its own way (a factory registered under a
    // literal "sharded:..." name) or throws the canonical unknown-engine
    // error listing the registered names.
    return make_matcher(cfg.engine);
  }
  return std::make_unique<ShardedMatcher>(std::move(sharded));
}

}  // namespace

RoutingTable::RoutingTable() : RoutingTable(Config{}) {}

RoutingTable::RoutingTable(Config config)
    : config_(std::move(config)), matcher_(make_table_matcher(config_)) {}

void RoutingTable::add_broker_iface(IfaceId iface) {
  broker_ifaces_.try_emplace(iface);
}

void RoutingTable::add_client_iface(IfaceId iface) {
  client_ifaces_.try_emplace(iface);
}

std::uint64_t RoutingTable::add_entry(Filter filter, IfaceId iface,
                                      bool from_broker,
                                      SubscriptionId client_sub,
                                      ScoringSpec scoring) {
  const std::uint64_t engine_id = next_engine_id_++;
  matcher_->add(engine_id, filter);
  entries_.emplace(engine_id,
                   EngineEntry{std::move(filter), iface, from_broker,
                               client_sub});
  scoring_index_.set(engine_id, std::move(scoring));  // no-op when neutral
  note_churn();
  return engine_id;
}

void RoutingTable::remove_entry(std::uint64_t engine_id) {
  matcher_->remove(engine_id);
  entries_.erase(engine_id);
  scoring_index_.erase(engine_id);
  note_churn();
}

void RoutingTable::run_maintain() {
  churn_since_maintain_ = 0;
  ++maintain_runs_;
  const std::size_t changes = matcher_->maintain(config_.maintain_max_bucket);
  maintain_changes_ += changes;
  if (config_.maintain_skew_ratio == 0) return;
  if (changes > 0) {
    // Something moved: the table's shape is fresh, any earlier stand-down
    // is stale.
    skew_backoff_largest_ = 0;
    skew_backoff_key_ = 0;
    skew_backoff_shrink_spent_ = false;
    return;
  }
  // Zero-change pass: whatever is in the largest bucket is pinned there
  // (rebalance had the chance and moved nothing). Remember its size and
  // identity so the skew trigger stands down until that bucket shrinks
  // or another bucket overtakes it — re-firing on the same pinned bucket
  // every check interval is pure scan churn (the ROADMAP backoff item).
  // Scheduled passes still run, so filters that join the bucket later
  // are repaired at the churn cadence.
  const EqBucketStats after = matcher_->eq_bucket_stats();
  if (after.largest_key != skew_backoff_key_) {
    // A different bucket is pinned now: new backoff episode, fresh
    // shrink-side re-arm.
    skew_backoff_shrink_spent_ = false;
  }
  skew_backoff_largest_ = after.largest;
  skew_backoff_key_ = after.largest_key;
}

void RoutingTable::note_churn() {
  if (config_.maintain_churn_threshold == 0) return;
  ++churn_since_maintain_;
  const bool at_threshold =
      churn_since_maintain_ >= config_.maintain_churn_threshold;
  // Anchors are chosen against bucket sizes at add time, so sustained
  // churn can strand long-lived filters in buckets that have since grown
  // (the Siena/REEF high-churn failure mode). With maintain_skew_ratio
  // off, repair is scheduled purely by churn volume (the PR 3 behavior).
  if (config_.maintain_skew_ratio == 0) {
    if (at_threshold) run_maintain();
    return;
  }
  // Skew-triggered scheduling: sample the equality-bucket shape on a
  // finer cadence than the full churn window, fire maintain early as soon
  // as one bucket dwarfs the mean, and skip the churn-scheduled pass
  // while the buckets stay balanced — a balanced table gives rebalance
  // nothing to move, so the pass would only burn a scan.
  const std::size_t check_every =
      std::max<std::size_t>(1, config_.maintain_churn_threshold / 8);
  if (!at_threshold && churn_since_maintain_ % check_every != 0) return;
  const EqBucketStats stats = matcher_->eq_bucket_stats();
  if (stats.buckets > 0) engine_reports_stats_ = true;
  if (!engine_reports_stats_) {
    // The engine has never exposed a bucket shape — either it has none
    // yet, or it doesn't implement eq_bucket_stats() at all. Its
    // maintain() may still do repair work we cannot see, so fall back to
    // the unconditional churn schedule rather than silently never
    // maintaining (gating is only sound for engines that report stats).
    if (at_threshold) run_maintain();
    return;
  }
  // Guarded: buckets can drop back to zero after the latch set (all eq
  // filters removed); largest is 0 then too, so nothing fires.
  const std::size_t mean =
      stats.buckets == 0 ? 0 : stats.filters / stats.buckets;
  const bool skewed =
      stats.largest > config_.maintain_skew_ratio * std::max<std::size_t>(1, mean);
  // Rebalance only ever moves filters out of buckets larger than
  // maintain_max_bucket, so a pass is provably a no-op unless some bucket
  // exceeds that bound — both the early fire and the scheduled pass are
  // gated on it (skew alone, e.g. one 10-filter bucket over a singleton
  // mean, must not burn a pass that cannot move anything).
  const bool actionable = stats.largest > config_.maintain_max_bucket;
  // Zero-change backoff: a hot bucket whose filters are pinned (their only
  // equality constraint is the hot attribute) defeats rebalance, so the
  // skew trigger would re-fire a futile pass every check interval forever.
  // Stand down while that *same* bucket has only grown since the
  // zero-change pass; a different bucket overtaking it (the newcomer may
  // be movable) re-arms the trigger unconditionally. A shrink of the same
  // bucket (removals may have unpinned it) re-arms exactly *once* per
  // episode: if the re-armed pass again moves nothing, the bucket is
  // still pinned at the smaller size, and a bucket draining one filter
  // per sample must not buy a futile pass per sample (the shrink-side
  // ROADMAP gap).
  if (skew_backoff_largest_ != 0) {
    if (stats.largest_key != skew_backoff_key_) {
      skew_backoff_largest_ = 0;
      skew_backoff_key_ = 0;
      skew_backoff_shrink_spent_ = false;
    } else if (stats.largest < skew_backoff_largest_ &&
               !skew_backoff_shrink_spent_) {
      // Keep the key: the episode identity survives the re-arm, so a
      // zero-change pass on the same bucket re-enters backoff with the
      // shrink re-arm already spent.
      skew_backoff_largest_ = 0;
      skew_backoff_shrink_spent_ = true;
    }
  }
  const bool backed_off = skew_backoff_largest_ != 0;
  if (skewed && actionable && !backed_off) {
    if (!at_threshold) ++maintain_skew_triggers_;
    run_maintain();
  } else if (skewed && actionable && !at_threshold) {
    ++maintain_backoff_skips_;
  } else if (at_threshold) {
    if (actionable) {
      // Balanced by ratio but over the rebalance bound: the scheduled
      // pass may have real work (uniformly oversized buckets never trip
      // the ratio), so run it — PR 3 parity.
      run_maintain();
    } else {
      // Exact skip, not a heuristic: nothing is over the bound.
      churn_since_maintain_ = 0;
    }
  }
}

void RoutingTable::client_subscribe(IfaceId client, SubscriptionId sub_id,
                                    Filter filter, ScoringSpec scoring) {
  add_client_iface(client);
  ClientIface& iface = client_ifaces_[client];
  if (const auto it = iface.engine_ids.find(sub_id);
      it != iface.engine_ids.end()) {
    remove_entry(it->second);  // replace semantics on duplicate sub_id
  }
  iface.engine_ids[sub_id] =
      add_entry(std::move(filter), client, /*from_broker=*/false, sub_id,
                std::move(scoring));
}

bool RoutingTable::client_unsubscribe(IfaceId client, SubscriptionId sub_id) {
  const auto iface_it = client_ifaces_.find(client);
  if (iface_it == client_ifaces_.end()) return false;
  const auto sub_it = iface_it->second.engine_ids.find(sub_id);
  if (sub_it == iface_it->second.engine_ids.end()) return false;
  remove_entry(sub_it->second);
  iface_it->second.engine_ids.erase(sub_it);
  return true;
}

bool RoutingTable::broker_subscribe(IfaceId broker, Filter filter) {
  auto& iface = broker_ifaces_[broker];
  // Copy the key before add_entry moves the filter out.
  std::string key = filter.key();
  if (iface.engine_ids.contains(key)) return false;  // idempotent
  const std::uint64_t engine_id =
      add_entry(std::move(filter), broker, /*from_broker=*/true, 0);
  iface.engine_ids.emplace(std::move(key), engine_id);
  return true;
}

bool RoutingTable::broker_unsubscribe(IfaceId broker, const Filter& filter) {
  const auto iface_it = broker_ifaces_.find(broker);
  if (iface_it == broker_ifaces_.end()) return false;
  const auto key_it = iface_it->second.engine_ids.find(filter.key());
  if (key_it == iface_it->second.engine_ids.end()) return false;
  remove_entry(key_it->second);
  iface_it->second.engine_ids.erase(key_it);
  return true;
}

// --- fault tolerance ---------------------------------------------------------

bool RoutingTable::drop_broker_iface_state(IfaceId iface) {
  const auto it = broker_ifaces_.find(iface);
  if (it == broker_ifaces_.end()) return false;
  BrokerIface& broker = it->second;
  const bool changed =
      !broker.engine_ids.empty() || !broker.forwarded.empty();
  for (const auto& [key, engine_id] : broker.engine_ids) {
    remove_entry(engine_id);
  }
  broker.engine_ids.clear();
  broker.forwarded.clear();
  return changed;
}

bool RoutingTable::broker_resync(IfaceId broker,
                                 const std::vector<Filter>& want) {
  add_broker_iface(broker);
  BrokerIface& iface = broker_ifaces_.at(broker);
  std::map<std::string, const Filter*> desired;
  for (const Filter& filter : want) desired.emplace(filter.key(), &filter);
  bool changed = false;
  // Remove what the neighbor no longer wants.
  for (auto it = iface.engine_ids.begin(); it != iface.engine_ids.end();) {
    if (desired.contains(it->first)) {
      ++it;
      continue;
    }
    remove_entry(it->second);
    it = iface.engine_ids.erase(it);
    changed = true;
  }
  // Add what it wants and we don't have (dedup: present keys are kept
  // as-is, so a replayed state is a no-op).
  for (const auto& [key, filter] : desired) {
    if (iface.engine_ids.contains(key)) continue;
    const std::uint64_t engine_id =
        add_entry(*filter, broker, /*from_broker=*/true, 0);
    iface.engine_ids.emplace(key, engine_id);
    changed = true;
  }
  return changed;
}

bool RoutingTable::client_resync(IfaceId client,
                                 const std::vector<ClientSubscription>& subs) {
  add_client_iface(client);
  ClientIface& iface = client_ifaces_.at(client);
  std::unordered_map<SubscriptionId, const ClientSubscription*> desired;
  for (const ClientSubscription& sub : subs) desired.emplace(sub.sub_id, &sub);
  bool changed = false;
  for (auto it = iface.engine_ids.begin(); it != iface.engine_ids.end();) {
    const auto want = desired.find(it->first);
    if (want != desired.end() &&
        entries_.at(it->second).filter.key() == want->second->filter.key() &&
        entry_scoring(it->second) == want->second->scoring) {
      ++it;  // identical (sub_id, filter, scoring): keep, idempotent
      continue;
    }
    remove_entry(it->second);
    it = iface.engine_ids.erase(it);
    changed = true;
  }
  for (const auto& [sub_id, sub] : desired) {
    if (iface.engine_ids.contains(sub_id)) continue;
    iface.engine_ids[sub_id] = add_entry(sub->filter, client,
                                         /*from_broker=*/false, sub_id,
                                         sub->scoring);
    changed = true;
  }
  return changed;
}

std::uint64_t RoutingTable::broker_iface_digest(IfaceId iface) const {
  const auto it = broker_ifaces_.find(iface);
  if (it == broker_ifaces_.end()) return 0;
  std::uint64_t digest = 0;
  for (const auto& [key, engine_id] : it->second.engine_ids) {
    digest ^= util::fnv1a64(key);
  }
  return digest;
}

std::uint64_t RoutingTable::client_iface_digest(IfaceId iface) const {
  const auto it = client_ifaces_.find(iface);
  if (it == client_ifaces_.end()) return 0;
  std::uint64_t digest = 0;
  for (const auto& [sub_id, engine_id] : it->second.engine_ids) {
    digest ^= util::hash_combine(util::fnv1a64(entries_.at(engine_id).filter.key()),
                                 sub_id);
    // Fold non-neutral scoring specs so a spec change (same filter) is
    // not mistaken for matching state; ScoringSpec::hash() is 0 for
    // neutral specs, and folding nothing then keeps the PR 9 digest.
    if (const ScoringSpec* spec = scoring_index_.find(engine_id)) {
      digest ^= util::hash_combine(spec->hash(), sub_id);
    }
  }
  return digest;
}

std::uint64_t RoutingTable::forwarded_digest(IfaceId iface) const {
  const auto it = broker_ifaces_.find(iface);
  if (it == broker_ifaces_.end()) return 0;
  std::uint64_t digest = 0;
  for (const auto& [key, filter] : it->second.forwarded) {
    digest ^= util::fnv1a64(key);
  }
  return digest;
}

std::vector<Filter> RoutingTable::forwarded_filters(IfaceId iface) const {
  std::vector<Filter> filters;
  const auto it = broker_ifaces_.find(iface);
  if (it == broker_ifaces_.end()) return filters;
  filters.reserve(it->second.forwarded.size());
  // `forwarded` is keyed by canonical key in an unordered map; emit in
  // key order for a deterministic replay.
  std::map<std::string, const Filter*> ordered;
  for (const auto& [key, filter] : it->second.forwarded) {
    ordered.emplace(key, &filter);
  }
  for (const auto& [key, filter] : ordered) filters.push_back(*filter);
  return filters;
}

std::vector<ClientSubscription> RoutingTable::client_subscriptions(
    IfaceId client) const {
  std::vector<ClientSubscription> subs;
  const auto it = client_ifaces_.find(client);
  if (it == client_ifaces_.end()) return subs;
  subs.reserve(it->second.engine_ids.size());
  for (const auto& [sub_id, engine_id] : it->second.engine_ids) {
    subs.push_back(ClientSubscription{sub_id, entries_.at(engine_id).filter,
                                      entry_scoring(engine_id)});
  }
  std::sort(subs.begin(), subs.end(),
            [](const ClientSubscription& a, const ClientSubscription& b) {
              return a.sub_id < b.sub_id;
            });
  return subs;
}

std::string RoutingTable::state_fingerprint() const {
  std::vector<std::string> lines;
  lines.reserve(entries_.size());
  for (const auto& [engine_id, entry] : entries_) {
    if (entry.from_broker) {
      lines.push_back("B " + std::to_string(entry.iface) + " " +
                      entry.filter.key());
    } else {
      std::string line = "C " + std::to_string(entry.iface) + " " +
                         std::to_string(entry.client_sub) + " " +
                         entry.filter.key();
      // Non-neutral scoring is routing state too (a healed broker that
      // lost a spec would over-deliver); neutral entries keep the PR 9
      // fingerprint lines.
      if (const ScoringSpec* spec = scoring_index_.find(engine_id)) {
        line += " " + spec->summary();
      }
      lines.push_back(std::move(line));
    }
  }
  for (const auto& [iface, broker] : broker_ifaces_) {
    for (const auto& [key, filter] : broker.forwarded) {
      lines.push_back("F " + std::to_string(iface) + " " + key);
    }
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

std::map<std::string, Filter> RoutingTable::filters_not_from(
    IfaceId excluded) const {
  std::map<std::string, Filter> out;
  for (const auto& [engine_id, entry] : entries_) {
    if (entry.iface == excluded) continue;
    out.try_emplace(entry.filter.key(), entry.filter);
  }
  return out;
}

namespace {

/// True when `filter` must be dropped from the minimal cover because
/// `other` covers it (and is not merely an equivalent filter for which
/// `filter` is the canonical, lexicographically-first representative).
bool dominates(const std::string& other_key, const Filter& other,
               const std::string& key, const Filter& filter) {
  if (other_key == key) return false;
  if (!other.covers(filter)) return false;
  return !filter.covers(other) || other_key < key;
}

}  // namespace

std::map<std::string, Filter> RoutingTable::minimal_cover_naive(
    std::map<std::string, Filter> filters) {
  std::map<std::string, Filter> out;
  for (const auto& [key, filter] : filters) {
    bool dominated = false;
    for (const auto& [other_key, other] : filters) {
      if (dominates(other_key, other, key, filter)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.emplace(key, filter);
  }
  return out;
}

std::map<std::string, Filter> RoutingTable::minimal_cover_indexed(
    std::map<std::string, Filter> filters) {
  // Signature index: every non-empty filter is bucketed under one of its
  // constraints. Soundness rests on Filter::covers semantics — if g covers
  // f, then *every* constraint of g (its signature included) covers some
  // constraint of f on the same attribute. Hence g is reachable from f's
  // own constraints: an equality signature eq(a, v) only ever covers
  // eq(a, v) (cross-type numerics compare equal via canonical_numeric) or
  // an *empty* in-set (which everything covers vacuously), so value
  // buckets plus the empty-set fallback below suffice. A set-membership
  // signature in(a, S) covers only eq(a, m) / in(a, T subset of S) with a
  // bucketable member in common, so bucketing g under every bucketable
  // member value is reachable from f's per-member probes (members that are
  // null/NaN are unsatisfiable and can never witness a cover, so skipping
  // them is sound). Any other signature op is reachable through the
  // attribute bucket alone. Empty filters cover everything and are always
  // candidates.
  using Item = const std::pair<const std::string, Filter>*;
  std::vector<Item> empties;
  std::unordered_map<AttrId, std::unordered_map<Value, std::vector<Item>>,
                     AttrIdHash>
      eq_sig;
  std::unordered_map<AttrId, std::vector<Item>, AttrIdHash> attr_sig;
  for (const auto& entry : filters) {
    const Filter& filter = entry.second;
    if (filter.empty()) {
      empties.push_back(&entry);
      continue;
    }
    // Prefer an equality constraint as the signature: its value bucket
    // prunes far harder than an attribute bucket (feed subscriptions all
    // share their attributes but rarely their feed URL). Failing that, a
    // set-membership constraint buckets under every bucketable member —
    // still value-level pruning, at the cost of |set| bucket entries.
    const Constraint* sig = nullptr;
    const Constraint* in_sig = nullptr;
    for (const Constraint& c : filter.constraints()) {
      if (c.op() == Op::kEq) {
        sig = &c;
        break;
      }
      if (in_sig == nullptr && c.op() == Op::kIn) {
        for (const Value& m : c.members()) {
          if (eq_bucketable(m)) {
            in_sig = &c;
            break;
          }
        }
      }
    }
    if (sig != nullptr) {
      eq_sig[sig->attr_id()][canonical_numeric(sig->value())].push_back(
          &entry);
    } else if (in_sig != nullptr) {
      auto& buckets = eq_sig[in_sig->attr_id()];
      for (const Value& m : in_sig->members()) {
        if (eq_bucketable(m)) buckets[canonical_numeric(m)].push_back(&entry);
      }
    } else {
      attr_sig[filter.constraints().front().attr_id()].push_back(&entry);
    }
  }

  std::map<std::string, Filter> out;
  std::vector<Item> candidates;
  for (const auto& entry : filters) {
    const auto& [key, filter] = entry;
    candidates.assign(empties.begin(), empties.end());
    AttrId prev_attr = kNoAttrId;
    for (const Constraint& c : filter.constraints()) {
      // Constraints are canonically sorted, so one attribute-bucket probe
      // per distinct attribute.
      if (prev_attr == kNoAttrId || prev_attr != c.attr_id()) {
        prev_attr = c.attr_id();
        if (const auto it = attr_sig.find(c.attr_id());
            it != attr_sig.end()) {
          candidates.insert(candidates.end(), it->second.begin(),
                            it->second.end());
        }
      }
      if (c.op() == Op::kIn) {
        if (const auto attr_it = eq_sig.find(c.attr_id());
            attr_it != eq_sig.end()) {
          if (c.members().empty()) {
            // in {} matches nothing, so every value-bucketed signature on
            // this attribute covers it vacuously — all buckets are
            // candidates.
            for (const auto& bucket : attr_it->second) {
              candidates.insert(candidates.end(), bucket.second.begin(),
                                bucket.second.end());
            }
          } else {
            for (const Value& m : c.members()) {
              if (!eq_bucketable(m)) continue;
              if (const auto value_it =
                      attr_it->second.find(canonical_numeric(m));
                  value_it != attr_it->second.end()) {
                candidates.insert(candidates.end(), value_it->second.begin(),
                                  value_it->second.end());
              }
            }
          }
        }
        continue;
      }
      if (c.op() != Op::kEq) continue;
      if (const auto attr_it = eq_sig.find(c.attr_id());
          attr_it != eq_sig.end()) {
        if (const auto value_it =
                attr_it->second.find(canonical_numeric(c.value()));
            value_it != attr_it->second.end()) {
          candidates.insert(candidates.end(), value_it->second.begin(),
                            value_it->second.end());
        }
      }
    }
    bool dominated = false;
    for (const Item other : candidates) {
      if (dominates(other->first, other->second, key, filter)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.emplace(key, filter);
  }
  return out;
}

RoutingTable::Diff RoutingTable::refresh(IfaceId neighbor) {
  BrokerIface& iface = broker_ifaces_.at(neighbor);
  std::map<std::string, Filter> desired = filters_not_from(neighbor);
  if (config_.covering_enabled) {
    desired = config_.cover_index_enabled
                  ? minimal_cover_indexed(std::move(desired))
                  : minimal_cover_naive(std::move(desired));
  }

  Diff diff;
  // Subscriptions that became necessary.
  for (const auto& [key, filter] : desired) {
    if (iface.forwarded.contains(key)) continue;
    diff.subscribe.push_back(filter);
    iface.forwarded.emplace(key, filter);
  }
  // Subscriptions no longer needed (or now covered). Collect keys in map
  // order for a deterministic diff.
  std::map<std::string, Filter> stale;
  for (const auto& [key, filter] : iface.forwarded) {
    if (!desired.contains(key)) stale.emplace(key, filter);
  }
  for (auto& [key, filter] : stale) {
    diff.unsubscribe.push_back(std::move(filter));
    iface.forwarded.erase(key);
  }
  return diff;
}

RoutingTable::Destination RoutingTable::destination_of(
    std::uint64_t engine_id) const {
  const EngineEntry& entry = entries_.at(engine_id);
  return Destination{entry.iface, entry.from_broker, entry.client_sub};
}

ScoringSpec RoutingTable::entry_scoring(std::uint64_t engine_id) const {
  const ScoringSpec* spec = scoring_index_.find(engine_id);
  return spec != nullptr ? *spec : ScoringSpec{};
}

void RoutingTable::match(const Event& event,
                         std::vector<Destination>& out) const {
  std::vector<SubscriptionId> engine_hits;
  matcher_->match(event, engine_hits);
  out.reserve(out.size() + engine_hits.size());
  for (const std::uint64_t engine_id : engine_hits) {
    out.push_back(destination_of(engine_id));
  }
}

void RoutingTable::match_batch(
    std::span<const Event> events,
    std::vector<std::vector<Destination>>& out) const {
  std::vector<std::vector<SubscriptionId>> engine_hits;
  matcher_->match_batch(events, engine_hits);
  out.assign(events.size(), {});
  for (std::size_t i = 0; i < events.size(); ++i) {
    out[i].reserve(engine_hits[i].size());
    for (const std::uint64_t engine_id : engine_hits[i]) {
      out[i].push_back(destination_of(engine_id));
    }
  }
}

void RoutingTable::match_batch_scored(
    std::span<const Event> events,
    std::vector<std::vector<ScoredDestination>>& out) const {
  std::vector<std::vector<ScoredHit>> engine_hits;
  matcher_->match_batch_scored(events, scoring_index_, engine_hits);
  out.assign(events.size(), {});
  for (std::size_t i = 0; i < events.size(); ++i) {
    out[i].reserve(engine_hits[i].size());
    for (const ScoredHit& hit : engine_hits[i]) {
      out[i].push_back(ScoredDestination{destination_of(hit.id), hit.score,
                                         scoring_index_.find(hit.id)});
    }
  }
}

std::size_t RoutingTable::forwarded_size(IfaceId neighbor) const {
  const auto it = broker_ifaces_.find(neighbor);
  return it == broker_ifaces_.end() ? 0 : it->second.forwarded.size();
}

}  // namespace reef::pubsub
