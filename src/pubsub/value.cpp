#include "pubsub/value.h"

#include <charconv>
#include <cmath>

namespace reef::pubsub {

namespace {

// 2^63 as a double (exactly representable; INT64_MAX is not, so the int64
// range is the half-open interval [-2^63, 2^63)).
constexpr double kTwoPow63 = 9223372036854775808.0;

// Compares an int64 against a non-NaN double without converting the int to
// a double (which silently rounds magnitudes beyond 2^53).
std::strong_ordering compare_int_double(std::int64_t i, double d) noexcept {
  if (d >= kTwoPow63) return std::strong_ordering::less;
  if (d < -kTwoPow63) return std::strong_ordering::greater;
  // d is now in [-2^63, 2^63): truncation toward zero lands on a valid
  // int64, so the cast is well-defined.
  const auto t = static_cast<std::int64_t>(d);
  if (i != t) {
    return i < t ? std::strong_ordering::less : std::strong_ordering::greater;
  }
  // Same integral part; the fractional remainder decides. `t` converts back
  // exactly (|t| < 2^53 implies exact; |d| >= 2^53 implies frac == 0), so
  // the subtraction is exact too.
  const double frac = d - static_cast<double>(t);
  if (frac > 0) return std::strong_ordering::less;
  if (frac < 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

}  // namespace

std::optional<double> Value::exact_double_of_int(std::int64_t v) noexcept {
  const double d = static_cast<double>(v);
  // Values near INT64_MAX round up to 2^63, which is outside int64 range —
  // casting that back would be UB, so reject before the round-trip check.
  if (d >= kTwoPow63) return std::nullopt;
  if (static_cast<std::int64_t>(d) != v) return std::nullopt;
  return d;
}

std::optional<std::strong_ordering> Value::compare(const Value& a,
                                                   const Value& b) noexcept {
  if (a.is_numeric() && b.is_numeric()) {
    if (a.type() == Type::kInt && b.type() == Type::kInt) {
      return a.as_int() <=> b.as_int();
    }
    if (a.type() == Type::kDouble && b.type() == Type::kDouble) {
      const double x = a.as_double();
      const double y = b.as_double();
      if (std::isnan(x) || std::isnan(y)) return std::nullopt;
      if (x < y) return std::strong_ordering::less;
      if (x > y) return std::strong_ordering::greater;
      return std::strong_ordering::equal;
    }
    if (a.type() == Type::kInt) {
      const double y = b.as_double();
      if (std::isnan(y)) return std::nullopt;
      return compare_int_double(a.as_int(), y);
    }
    const double x = a.as_double();
    if (std::isnan(x)) return std::nullopt;
    const auto c = compare_int_double(b.as_int(), x);
    if (c == std::strong_ordering::less) return std::strong_ordering::greater;
    if (c == std::strong_ordering::greater) return std::strong_ordering::less;
    return std::strong_ordering::equal;
  }
  if (a.is_string() && b.is_string()) {
    const int c = a.as_string().compare(b.as_string());
    if (c < 0) return std::strong_ordering::less;
    if (c > 0) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }
  if (a.is_bool() && b.is_bool()) {
    if (a.as_bool() == b.as_bool()) return std::strong_ordering::equal;
    return a.as_bool() ? std::strong_ordering::greater
                       : std::strong_ordering::less;
  }
  return std::nullopt;
}

std::size_t Value::wire_size() const noexcept {
  switch (type()) {
    case Type::kNull:
      return 1;
    case Type::kBool:
      return 1;
    case Type::kInt:
    case Type::kDouble:
      return 8;
    case Type::kString:
      return 4 + as_string().size();
  }
  return 1;
}

std::string Value::to_string() const {
  switch (type()) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return as_bool() ? "true" : "false";
    case Type::kInt:
      return std::to_string(as_int());
    case Type::kDouble: {
      // Shortest representation that round-trips exactly (the parser's
      // documented guarantee); %.*f truncates tiny/precise values.
      const double v = as_double();
      char buf[32];
      const auto res = std::to_chars(buf, buf + sizeof(buf), v);
      std::string s(buf, res.ptr);
      // Integral doubles print bare ("3"), which would re-parse as an int;
      // keep the type on the wire.
      if (std::isfinite(v) && s.find_first_of(".eE") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case Type::kString: {
      // Escape the two metacharacters of the filter language's string
      // lexer so parse_filter(to_string()) round-trips arbitrary content.
      const std::string& s = as_string();
      std::string out;
      out.reserve(s.size() + 2);
      out += '"';
      for (const char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
      }
      out += '"';
      return out;
    }
  }
  return "?";
}

std::uint64_t Value::hash() const noexcept {
  const auto tag = static_cast<std::uint64_t>(type());
  switch (type()) {
    case Type::kNull:
      return util::hash_combine(tag, 0);
    case Type::kBool:
      return util::hash_combine(tag, as_bool() ? 1 : 2);
    case Type::kInt:
      // Ints with an exact double image hash through it so 3 and 3.0
      // (which compare equal) hash equal too. Ints beyond 2^53 have no
      // double twin — no double compares equal to them — so they hash
      // their own bits and stay distinct from the rounded neighbor.
      if (const auto d = exact_double_of_int(as_int())) {
        return util::hash_combine(3, std::hash<double>{}(*d));
      }
      return util::hash_combine(
          3, std::hash<std::int64_t>{}(as_int()));
    case Type::kDouble:
      return util::hash_combine(3, std::hash<double>{}(as_double()));
    case Type::kString:
      return util::hash_combine(tag, util::fnv1a64(as_string()));
  }
  return tag;
}

}  // namespace reef::pubsub
