#include "pubsub/value.h"

#include <cmath>

#include "util/strings.h"

namespace reef::pubsub {

std::optional<std::strong_ordering> Value::compare(const Value& a,
                                                   const Value& b) noexcept {
  if (a.is_numeric() && b.is_numeric()) {
    const double x = *a.numeric();
    const double y = *b.numeric();
    if (std::isnan(x) || std::isnan(y)) return std::nullopt;
    if (x < y) return std::strong_ordering::less;
    if (x > y) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }
  if (a.is_string() && b.is_string()) {
    const int c = a.as_string().compare(b.as_string());
    if (c < 0) return std::strong_ordering::less;
    if (c > 0) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }
  if (a.is_bool() && b.is_bool()) {
    if (a.as_bool() == b.as_bool()) return std::strong_ordering::equal;
    return a.as_bool() ? std::strong_ordering::greater
                       : std::strong_ordering::less;
  }
  return std::nullopt;
}

std::size_t Value::wire_size() const noexcept {
  switch (type()) {
    case Type::kNull:
      return 1;
    case Type::kBool:
      return 1;
    case Type::kInt:
    case Type::kDouble:
      return 8;
    case Type::kString:
      return 4 + as_string().size();
  }
  return 1;
}

std::string Value::to_string() const {
  switch (type()) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return as_bool() ? "true" : "false";
    case Type::kInt:
      return std::to_string(as_int());
    case Type::kDouble:
      return util::format_double(as_double(), 6);
    case Type::kString:
      return "\"" + as_string() + "\"";
  }
  return "?";
}

std::uint64_t Value::hash() const noexcept {
  const auto tag = static_cast<std::uint64_t>(type());
  switch (type()) {
    case Type::kNull:
      return util::hash_combine(tag, 0);
    case Type::kBool:
      return util::hash_combine(tag, as_bool() ? 1 : 2);
    case Type::kInt:
      // Hash ints through their double value so 3 and 3.0 (which compare
      // equal) hash equal too.
      return util::hash_combine(
          3, std::hash<double>{}(static_cast<double>(as_int())));
    case Type::kDouble:
      return util::hash_combine(3, std::hash<double>{}(as_double()));
    case Type::kString:
      return util::hash_combine(tag, util::fnv1a64(as_string()));
  }
  return tag;
}

}  // namespace reef::pubsub
