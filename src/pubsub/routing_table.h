// Covering-based subscription routing table (the Siena-style routing core,
// extracted from the Broker so it can be unit-tested and reused without a
// simulated network).
//
// A RoutingTable tracks, per interface (neighbor broker or attached
// client), the filters reachable through that interface, answers "which
// interfaces does this event cross" via a pluggable matching engine, and
// computes the covering-pruned subscribe/unsubscribe delta that each
// neighbor should receive: a filter is not forwarded to a neighbor if a
// filter already forwarded there covers it. The table never touches the
// network — the Broker is a thin message adapter that feeds it protocol
// events and ships the diffs it returns.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "pubsub/filter.h"
#include "pubsub/matcher.h"
#include "pubsub/matcher_registry.h"

namespace reef::pubsub {

/// Default churn budget between structural-maintenance passes: after this
/// many filter add/removes the routing table invokes Matcher::maintain
/// (anchor rebalancing in the anchor index, fanned out per shard by the
/// sharded layer). Maintenance never changes match results, so it is on by
/// default; 0 disables it (the ablation baseline).
inline constexpr std::size_t kDefaultMaintainChurnThreshold = 1024;
/// Default equality-bucket bound handed to Matcher::maintain: filters in
/// buckets that grew past this are re-anchored.
inline constexpr std::size_t kDefaultMaintainMaxBucket = 64;
/// Default skew ratio arming skew-triggered maintenance: a maintain pass
/// fires early when largest_eq_bucket / max(1, mean_eq_bucket) exceeds
/// this, and the churn-scheduled pass is skipped while the buckets stay
/// balanced (a balanced table has nothing for rebalance to move, so the
/// pass would be a no-op scan). 0 = churn-count-only scheduling.
inline constexpr std::size_t kDefaultMaintainSkewRatio = 8;

class RoutingTable {
 public:
  /// Interface identifier. Deliberately a bare integer (not sim::NodeId)
  /// so the routing core stays independent of the simulation layer; the
  /// Broker passes its node ids through unchanged.
  using IfaceId = std::uint32_t;
  static constexpr IfaceId kNoIface = 0xffffffff;

  struct Config {
    /// Covering-based pruning of forwarded subscriptions (ablation knob).
    bool covering_enabled = true;
    /// Matching engine, by MatcherRegistry name. "sharded:<inner>" selects
    /// the sharded layer explicitly; see shard_count / worker_threads.
    std::string engine = std::string(kDefaultEngine);
    /// Signature-indexed candidate pruning in the covering check (ablation
    /// knob; off = the naive pairwise loop, for regression comparison).
    bool cover_index_enabled = true;
    /// Filter-state shards for the matching engine. 0 = auto: plain
    /// engine names stay unsharded (the ablation baseline) while a
    /// "sharded:" engine gets kDefaultShardCount, matching registry
    /// creation by name. An explicit value wraps `engine` in a
    /// ShardedMatcher with exactly that many shards (1 = the single-shard
    /// ablation of the sharded structure).
    std::size_t shard_count = 0;
    /// Worker threads fanning match_batch over the shards; 0 = inline.
    std::size_t worker_threads = 0;
    /// Shard-aware event pre-filtering inside a sharded engine (ablation
    /// knob; byte-identical output either way). Ignored when the engine
    /// ends up unsharded.
    bool prefilter_enabled = true;
    /// Filter add/removes between Matcher::maintain passes; 0 disables
    /// churn-driven maintenance.
    std::size_t maintain_churn_threshold = kDefaultMaintainChurnThreshold;
    /// Equality-bucket bound passed to Matcher::maintain.
    std::size_t maintain_max_bucket = kDefaultMaintainMaxBucket;
    /// Skew-triggered maintenance: when > 0, the engine's equality-bucket
    /// shape is sampled every maintain_churn_threshold/8 churn ops, a
    /// maintain pass fires *early* when largest / max(1, mean) bucket
    /// exceeds this ratio AND the largest bucket exceeds
    /// maintain_max_bucket (rebalance only acts above that bound, so
    /// every fire is actionable), and the regular churn-scheduled pass is
    /// skipped when no bucket exceeds maintain_max_bucket (provably a
    /// no-op then). 0 = churn-count-only scheduling (the PR 3 behavior).
    /// Maintenance never changes match results, only probe cost.
    std::size_t maintain_skew_ratio = kDefaultMaintainSkewRatio;
  };

  /// Where a matched event must go: an interface plus, for client
  /// interfaces, the client's own subscription id.
  struct Destination {
    IfaceId iface = kNoIface;
    bool is_broker = false;
    SubscriptionId client_sub = 0;  ///< valid when !is_broker
  };

  /// A destination decorated with its relevance score and, for client
  /// subscriptions with a non-neutral ScoringSpec, the delivery policy to
  /// apply (top_k / min_score). `scoring` is nullptr for neighbor-broker
  /// destinations and for unscored subscriptions — forwarding between
  /// brokers is boolean-only; suppression is an edge-delivery policy. The
  /// pointer is owned by the table and stable until that subscription is
  /// removed or replaced.
  struct ScoredDestination {
    Destination dest;
    double score = kConstantScore;
    const ScoringSpec* scoring = nullptr;
  };

  /// Subscribe/unsubscribe delta for one neighbor, produced by refresh().
  struct Diff {
    std::vector<Filter> subscribe;
    std::vector<Filter> unsubscribe;
    bool empty() const noexcept {
      return subscribe.empty() && unsubscribe.empty();
    }
  };

  RoutingTable();
  explicit RoutingTable(Config config);

  // --- interfaces -----------------------------------------------------------
  /// Declares a neighbor-broker interface (idempotent).
  void add_broker_iface(IfaceId iface);
  /// Declares an attached-client interface (idempotent).
  void add_client_iface(IfaceId iface);
  bool has_broker_iface(IfaceId iface) const {
    return broker_ifaces_.contains(iface);
  }

  // --- subscription state ---------------------------------------------------
  /// Registers a client subscription; a duplicate (client, sub_id) pair
  /// replaces the previous filter. Implicitly declares the client iface.
  /// `scoring` is the subscription's delivery policy; the default
  /// (neutral) spec is a plain unscored subscription.
  void client_subscribe(IfaceId client, SubscriptionId sub_id, Filter filter,
                        ScoringSpec scoring = {});

  /// Retracts a client subscription. Returns false (and changes nothing)
  /// when the (client, sub_id) pair is unknown.
  bool client_unsubscribe(IfaceId client, SubscriptionId sub_id);

  /// Registers a filter received from a neighbor broker, aggregated by
  /// canonical key. Returns false on an idempotent re-subscribe.
  bool broker_subscribe(IfaceId broker, Filter filter);

  /// Retracts a neighbor broker's filter. Returns false when that broker
  /// never registered it.
  bool broker_unsubscribe(IfaceId broker, const Filter& filter);

  // --- fault tolerance ------------------------------------------------------
  /// Drops everything tied to a restarted neighbor: every filter received
  /// *from* `iface` and the forwarded bookkeeping *toward* it (the
  /// neighbor lost its table, so what we handed out is void). The iface
  /// itself stays declared. Returns true if anything was removed.
  bool drop_broker_iface_state(IfaceId iface);

  /// Replace-all apply of a neighbor's full want-set (anti-entropy
  /// resync). Idempotent: filters already registered for `broker` are
  /// kept (dedup by canonical key), missing ones are added, and ones
  /// absent from `want` are removed. Returns true if anything changed.
  bool broker_resync(IfaceId broker, const std::vector<Filter>& want);

  /// Replace-all apply of a client's full subscription set. Idempotent on
  /// (sub_id, filter-key, scoring) triples. Returns true if anything
  /// changed.
  bool client_resync(IfaceId client,
                     const std::vector<ClientSubscription>& subs);

  /// Order-independent digest of the filters received from a neighbor
  /// broker (XOR of per-filter key hashes; 0 when empty). The restarted
  /// requester sends this in its ResyncRequest; a responder whose
  /// forwarded_digest matches can skip the replay.
  std::uint64_t broker_iface_digest(IfaceId iface) const;
  /// Digest of the (sub_id, filter) pairs received from a client.
  std::uint64_t client_iface_digest(IfaceId iface) const;
  /// Digest of the filters currently forwarded *to* a neighbor.
  std::uint64_t forwarded_digest(IfaceId iface) const;

  /// Filters currently forwarded to `iface`, sorted by canonical key —
  /// the responder side of a broker resync replay (refresh() first so
  /// forwarded equals desired, then replay this).
  std::vector<Filter> forwarded_filters(IfaceId iface) const;

  /// Live subscriptions registered by `client` (filter + scoring spec),
  /// sorted by id — the broker side of the client resync replay.
  std::vector<ClientSubscription> client_subscriptions(IfaceId client) const;

  /// Canonical, engine-independent dump of the whole table: one sorted
  /// line per stored entry and per forwarded filter. Two tables with the
  /// same fingerprint route identically; the fault fuzz harness compares
  /// healed runs against the never-faulted oracle with this.
  std::string state_fingerprint() const;

  // --- forwarding -----------------------------------------------------------
  /// Recomputes the set of filters `neighbor` should receive (everything
  /// visible on other interfaces, reduced to its covering-minimal form
  /// when covering is enabled), updates the forwarded bookkeeping, and
  /// returns the delta to ship. Deterministic: diff entries come out in
  /// canonical-key order.
  Diff refresh(IfaceId neighbor);

  // --- matching -------------------------------------------------------------
  /// Appends one Destination per matching registration. An interface can
  /// appear multiple times (once per matching client subscription /
  /// neighbor filter); the caller deduplicates broker interfaces.
  void match(const Event& event, std::vector<Destination>& out) const;

  /// Batch matching through Matcher::match_batch: `out` is replaced with
  /// one destination vector per event, parallel to `events`.
  void match_batch(std::span<const Event> events,
                   std::vector<std::vector<Destination>>& out) const;

  /// Scored batch matching through Matcher::match_batch_scored: same
  /// destinations as match_batch, each decorated with its relevance score
  /// and (for client subscriptions with a non-neutral spec) the delivery
  /// policy. Scores are computed after the boolean match on the calling
  /// thread, so they are identical for every engine/shard/worker config
  /// that agrees on the match sets — which the Matcher contract
  /// guarantees.
  void match_batch_scored(std::span<const Event> events,
                          std::vector<std::vector<ScoredDestination>>& out)
      const;

  // --- introspection --------------------------------------------------------
  /// Total filters stored across all interfaces.
  std::size_t size() const noexcept { return entries_.size(); }
  /// Filters currently forwarded to (i.e. requested from) `neighbor`.
  std::size_t forwarded_size(IfaceId neighbor) const;
  const Matcher& matcher() const noexcept { return *matcher_; }
  const Config& config() const noexcept { return config_; }
  /// Maintenance passes run so far (churn-scheduled + skew-triggered).
  std::uint64_t maintain_runs() const noexcept { return maintain_runs_; }
  /// Total structural changes (e.g. filters re-anchored) those passes made.
  std::uint64_t maintain_changes() const noexcept {
    return maintain_changes_;
  }
  /// Maintenance passes fired *early* by the skew trigger (before the
  /// churn threshold; see Config::maintain_skew_ratio).
  std::uint64_t maintain_skew_triggers() const noexcept {
    return maintain_skew_triggers_;
  }
  /// Skew-triggered fires suppressed by the zero-change backoff: after a
  /// maintain pass that moved nothing (a pinned hot bucket — filters whose
  /// only equality constraint is the hot one cannot be re-anchored), the
  /// early trigger stands down while the largest bucket has only grown
  /// since; it re-arms when the bucket shrinks (once per backoff episode —
  /// a draining bucket must not re-fire per removal), when a different
  /// bucket takes over as largest, or when any pass makes a change.
  /// Scheduled (churn-threshold) passes are never suppressed, so repair
  /// stays guaranteed at the PR 3 cadence.
  std::uint64_t maintain_backoff_skips() const noexcept {
    return maintain_backoff_skips_;
  }

  // --- covering reduction (public for tests and benches) --------------------
  /// Reduces a key->filter set to its maximal elements under covering,
  /// pruning candidate cover pairs through a per-call signature index
  /// (each filter is bucketed by one constraint; only filters whose
  /// bucket a candidate's own constraints can reach are checked).
  static std::map<std::string, Filter> minimal_cover_indexed(
      std::map<std::string, Filter> filters);
  /// The original O(n^2) pairwise reduction, kept as the oracle for the
  /// indexed path (cover_index_enabled = false routes refresh() here).
  static std::map<std::string, Filter> minimal_cover_naive(
      std::map<std::string, Filter> filters);

 private:
  struct ClientIface {
    std::unordered_map<SubscriptionId, std::uint64_t> engine_ids;
  };
  struct BrokerIface {
    /// Aggregated filters received from this neighbor, by canonical key.
    std::unordered_map<std::string, std::uint64_t> engine_ids;
    /// Filters we have handed out *to* this neighbor, by canonical key.
    std::unordered_map<std::string, Filter> forwarded;
  };
  struct EngineEntry {
    Filter filter;
    IfaceId iface = kNoIface;
    bool from_broker = false;
    SubscriptionId client_sub = 0;  // valid when !from_broker
  };

  std::uint64_t add_entry(Filter filter, IfaceId iface, bool from_broker,
                          SubscriptionId client_sub, ScoringSpec scoring = {});
  void remove_entry(std::uint64_t engine_id);
  /// Counts one add/remove toward the maintenance budget and runs
  /// Matcher::maintain when the churn threshold trips or the skew
  /// trigger fires (see Config::maintain_skew_ratio).
  void note_churn();
  /// Runs one maintenance pass and resets the churn budget.
  void run_maintain();
  Destination destination_of(std::uint64_t engine_id) const;
  /// The stored spec of an entry (neutral when it has none).
  ScoringSpec entry_scoring(std::uint64_t engine_id) const;

  /// Filters visible on interfaces other than `excluded` (deduplicated by
  /// canonical key).
  std::map<std::string, Filter> filters_not_from(IfaceId excluded) const;

  Config config_;
  std::unordered_map<IfaceId, BrokerIface> broker_ifaces_;
  std::unordered_map<IfaceId, ClientIface> client_ifaces_;

  std::unique_ptr<Matcher> matcher_;
  std::unordered_map<std::uint64_t, EngineEntry> entries_;
  /// Non-neutral specs by engine id, mirroring entries_ (the scored match
  /// path's lookup surface; see Matcher::match_batch_scored).
  ScoringIndex scoring_index_;
  std::uint64_t next_engine_id_ = 1;

  std::size_t churn_since_maintain_ = 0;
  std::uint64_t maintain_runs_ = 0;
  std::uint64_t maintain_changes_ = 0;
  std::uint64_t maintain_skew_triggers_ = 0;
  std::uint64_t maintain_backoff_skips_ = 0;
  /// Largest equality bucket observed at the most recent zero-change
  /// maintain pass, and its identity (EqBucketStats::largest_key); 0 =
  /// backoff inactive. While the *same* bucket is still the largest and
  /// is >= its zero-change size, the hot bucket that defeated the last
  /// pass has only grown, so skew-triggered fires are suppressed —
  /// movable late-joiners (if any) wait for the scheduled pass instead
  /// of burning a scan per check interval. A shrink below the snapshot
  /// or a *different* bucket taking over as largest re-arms the trigger
  /// (see maintain_backoff_skips()).
  std::size_t skew_backoff_largest_ = 0;
  std::size_t skew_backoff_key_ = 0;
  /// One-shot latch for the shrink-side re-arm: a *draining* pinned
  /// bucket (filters removed one by one, every sample strictly below the
  /// last) re-arms the trigger once per backoff episode, not once per
  /// shrink sample — the first re-armed pass already proved the bucket
  /// still pinned at the smaller size. Cleared when the largest-bucket
  /// identity changes or any pass makes a change (a new episode).
  bool skew_backoff_shrink_spent_ = false;
  /// Latches true once the engine reports a nonzero equality-bucket
  /// shape; until then skew gating falls back to the plain churn
  /// schedule (engines without eq_bucket_stats() must not lose their
  /// maintain() calls).
  bool engine_reports_stats_ = false;
};

}  // namespace reef::pubsub
