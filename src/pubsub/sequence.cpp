#include "pubsub/sequence.h"

namespace reef::pubsub {

SequenceDetector::SequenceDetector(sim::Simulator& sim, Filter first,
                                   Filter second, sim::Time window,
                                   std::string join_attribute,
                                   SequenceHandler handler)
    : sim_(sim),
      first_(std::move(first)),
      second_(std::move(second)),
      window_(window),
      join_attribute_(std::move(join_attribute)),
      handler_(std::move(handler)) {}

Client::Handler SequenceDetector::first_handler() {
  return [this](const Event& event, SubscriptionId) { on_first(event); };
}

Client::Handler SequenceDetector::second_handler() {
  return [this](const Event& event, SubscriptionId) { on_second(event); };
}

void SequenceDetector::expire_old() {
  const sim::Time cutoff = sim_.now() - window_;
  while (!pending_.empty() && pending_.front().at < cutoff) {
    pending_.pop_front();
    ++expired_;
  }
}

std::optional<Value> SequenceDetector::join_value(
    const Event& event, const std::string& attribute) {
  const Value* value = event.find(attribute);
  if (value == nullptr) return std::nullopt;
  return *value;
}

void SequenceDetector::on_first(const Event& event) {
  if (!first_.matches(event)) return;
  expire_old();
  pending_.push_back(Pending{event, sim_.now()});
}

void SequenceDetector::on_second(const Event& event) {
  if (!second_.matches(event)) return;
  expire_old();
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (!join_attribute_.empty()) {
      const auto a = join_value(it->event, join_attribute_);
      const auto b = join_value(event, join_attribute_);
      if (!a || !b || !a->equals(*b)) continue;
    }
    ++matches_;
    const Event head = std::move(it->event);
    pending_.erase(it);  // each pending first matches at most once
    if (handler_) handler_(head, event);
    return;
  }
}

}  // namespace reef::pubsub
