// Wire protocol payloads exchanged between pub/sub clients and brokers.
// Payloads travel inside sim::Message::payload (std::any); the `type`
// strings below tag them for traffic accounting.
#pragma once

#include <string_view>
#include <vector>

#include "pubsub/event.h"
#include "pubsub/filter.h"
#include "pubsub/matcher.h"

namespace reef::pubsub {

/// Broker-to-broker subscription propagation (aggregated per filter).
struct SubscribeMsg {
  Filter filter;
};

/// Broker-to-broker subscription retraction.
struct UnsubscribeMsg {
  Filter filter;
};

/// Client-to-broker subscription with the client's own id for the filter.
struct ClientSubscribeMsg {
  SubscriptionId sub_id = 0;
  Filter filter;
};

/// Client-to-broker retraction by id.
struct ClientUnsubscribeMsg {
  SubscriptionId sub_id = 0;
};

/// A publication travelling client->broker or broker->broker.
struct PublishMsg {
  Event event;
};

/// Several publications coalesced into one wire message. Brokers batch the
/// events bound for the same neighbor within a sim tick; publishers with
/// bursty output (the feed proxy) can batch at the source.
struct PublishBatchMsg {
  std::vector<Event> events;
};

/// Broker-to-client delivery; lists the client's subscription ids the event
/// matched (the frontend uses these for its closed-loop bookkeeping).
struct DeliverMsg {
  Event event;
  std::vector<SubscriptionId> matched;
};

/// Several deliveries to one client coalesced into one wire message.
struct DeliverBatchMsg {
  std::vector<DeliverMsg> items;
};

/// Wire-size accounting for batch messages: an 8-byte batch header plus
/// 2 bytes of per-entry framing. Shared by every sender of a batch so all
/// paths meter the same encoding.
inline std::size_t publish_batch_wire_size(const std::vector<Event>& events) {
  std::size_t bytes = 8;
  for (const Event& event : events) bytes += event.wire_size() + 2;
  return bytes;
}

inline std::size_t deliver_batch_wire_size(
    const std::vector<DeliverMsg>& items) {
  std::size_t bytes = 8;
  for (const DeliverMsg& item : items) {
    bytes += item.event.wire_size() + 8 * item.matched.size() + 2;
  }
  return bytes;
}

inline constexpr std::string_view kTypeSubscribe = "pubsub.sub";
inline constexpr std::string_view kTypeUnsubscribe = "pubsub.unsub";
inline constexpr std::string_view kTypeClientSubscribe = "pubsub.csub";
inline constexpr std::string_view kTypeClientUnsubscribe = "pubsub.cunsub";
inline constexpr std::string_view kTypePublish = "pubsub.pub";
inline constexpr std::string_view kTypePublishBatch = "pubsub.pubbatch";
inline constexpr std::string_view kTypeDeliver = "pubsub.deliver";
inline constexpr std::string_view kTypeDeliverBatch = "pubsub.deliverbatch";

}  // namespace reef::pubsub
