// Wire protocol payloads exchanged between pub/sub clients and brokers.
// Payloads travel inside sim::Message::payload (std::any); the `type`
// strings below tag them for traffic accounting.
#pragma once

#include <string_view>
#include <vector>

#include "pubsub/event.h"
#include "pubsub/filter.h"
#include "pubsub/matcher.h"

namespace reef::pubsub {

/// Broker-to-broker subscription propagation (aggregated per filter).
struct SubscribeMsg {
  Filter filter;
};

/// Broker-to-broker subscription retraction.
struct UnsubscribeMsg {
  Filter filter;
};

/// Client-to-broker subscription with the client's own id for the filter.
struct ClientSubscribeMsg {
  SubscriptionId sub_id = 0;
  Filter filter;
};

/// Client-to-broker retraction by id.
struct ClientUnsubscribeMsg {
  SubscriptionId sub_id = 0;
};

/// A publication travelling client->broker or broker->broker.
struct PublishMsg {
  Event event;
};

/// Several publications coalesced into one wire message. Brokers batch the
/// events bound for the same neighbor within a sim tick; publishers with
/// bursty output (the feed proxy) can batch at the source.
struct PublishBatchMsg {
  std::vector<Event> events;
};

/// Broker-to-client delivery; lists the client's subscription ids the event
/// matched (the frontend uses these for its closed-loop bookkeeping).
struct DeliverMsg {
  Event event;
  std::vector<SubscriptionId> matched;
};

/// Several deliveries to one client coalesced into one wire message.
struct DeliverBatchMsg {
  std::vector<DeliverMsg> items;
};

/// Wire-size accounting, shared by every sender so all paths meter the
/// same encoding. Batch messages carry an 8-byte batch header plus 2 bytes
/// of per-entry framing; single-event messages carry an 8-byte message
/// header instead. The broker's byte-budget flush policy
/// (Broker::Config::flush_max_bytes) meters pending output with the
/// per-entry sizes below, so a budget of B bytes bounds the batch wire
/// size at B plus one entry.
inline constexpr std::size_t kBatchHeaderBytes = 8;

/// Per-entry cost of one event inside a PublishBatchMsg.
inline std::size_t publish_entry_wire_size(const Event& event) {
  return event.wire_size() + 2;
}

/// Per-entry cost of one delivery inside a DeliverBatchMsg (the matched
/// subscription ids ride along at 8 bytes each).
inline std::size_t deliver_entry_wire_size(const DeliverMsg& item) {
  return item.event.wire_size() + 8 * item.matched.size() + 2;
}

/// Wire size of a standalone PublishMsg (8-byte message header).
inline std::size_t publish_msg_wire_size(const Event& event) {
  return event.wire_size() + 8;
}

/// Wire size of a standalone DeliverMsg.
inline std::size_t deliver_msg_wire_size(const DeliverMsg& item) {
  return item.event.wire_size() + 8 * item.matched.size() + 8;
}

inline std::size_t publish_batch_wire_size(const std::vector<Event>& events) {
  std::size_t bytes = kBatchHeaderBytes;
  for (const Event& event : events) bytes += publish_entry_wire_size(event);
  return bytes;
}

inline std::size_t deliver_batch_wire_size(
    const std::vector<DeliverMsg>& items) {
  std::size_t bytes = kBatchHeaderBytes;
  for (const DeliverMsg& item : items) bytes += deliver_entry_wire_size(item);
  return bytes;
}

inline constexpr std::string_view kTypeSubscribe = "pubsub.sub";
inline constexpr std::string_view kTypeUnsubscribe = "pubsub.unsub";
inline constexpr std::string_view kTypeClientSubscribe = "pubsub.csub";
inline constexpr std::string_view kTypeClientUnsubscribe = "pubsub.cunsub";
inline constexpr std::string_view kTypePublish = "pubsub.pub";
inline constexpr std::string_view kTypePublishBatch = "pubsub.pubbatch";
inline constexpr std::string_view kTypeDeliver = "pubsub.deliver";
inline constexpr std::string_view kTypeDeliverBatch = "pubsub.deliverbatch";

}  // namespace reef::pubsub
