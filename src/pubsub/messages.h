// Wire protocol payloads exchanged between pub/sub clients and brokers.
// Payloads travel inside sim::Message::payload (std::any); the `type`
// strings below tag them for traffic accounting.
#pragma once

#include <string_view>
#include <vector>

#include "pubsub/event.h"
#include "pubsub/filter.h"
#include "pubsub/matcher.h"

namespace reef::pubsub {

/// Broker-to-broker subscription propagation (aggregated per filter).
struct SubscribeMsg {
  Filter filter;
};

/// Broker-to-broker subscription retraction.
struct UnsubscribeMsg {
  Filter filter;
};

/// Client-to-broker subscription with the client's own id for the filter.
struct ClientSubscribeMsg {
  SubscriptionId sub_id = 0;
  Filter filter;
};

/// Client-to-broker retraction by id.
struct ClientUnsubscribeMsg {
  SubscriptionId sub_id = 0;
};

/// A publication travelling client->broker or broker->broker.
struct PublishMsg {
  Event event;
};

/// Broker-to-client delivery; lists the client's subscription ids the event
/// matched (the frontend uses these for its closed-loop bookkeeping).
struct DeliverMsg {
  Event event;
  std::vector<SubscriptionId> matched;
};

inline constexpr std::string_view kTypeSubscribe = "pubsub.sub";
inline constexpr std::string_view kTypeUnsubscribe = "pubsub.unsub";
inline constexpr std::string_view kTypeClientSubscribe = "pubsub.csub";
inline constexpr std::string_view kTypeClientUnsubscribe = "pubsub.cunsub";
inline constexpr std::string_view kTypePublish = "pubsub.pub";
inline constexpr std::string_view kTypeDeliver = "pubsub.deliver";

}  // namespace reef::pubsub
