// Wire protocol payloads exchanged between pub/sub clients and brokers.
// Payloads travel inside sim::Message::payload (std::any); the `type`
// strings below tag them for traffic accounting.
#pragma once

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "pubsub/event.h"
#include "pubsub/filter.h"
#include "pubsub/matcher.h"

namespace reef::pubsub {

/// Broker-to-broker subscription propagation (aggregated per filter).
struct SubscribeMsg {
  Filter filter;
};

/// Broker-to-broker subscription retraction.
struct UnsubscribeMsg {
  Filter filter;
};

/// Client-to-broker subscription with the client's own id for the filter.
/// `scoring` is the subscription's delivery policy; the default (neutral)
/// spec is the unscored subscription of PR 1-9, metered at zero extra
/// wire bytes.
struct ClientSubscribeMsg {
  SubscriptionId sub_id = 0;
  Filter filter;
  ScoringSpec scoring;
};

/// Client-to-broker retraction by id.
struct ClientUnsubscribeMsg {
  SubscriptionId sub_id = 0;
};

/// A publication travelling client->broker or broker->broker.
struct PublishMsg {
  Event event;
};

/// Several publications coalesced into one wire message. Brokers batch the
/// events bound for the same neighbor within a sim tick; publishers with
/// bursty output (the feed proxy) can batch at the source.
struct PublishBatchMsg {
  std::vector<Event> events;
};

/// Broker-to-client delivery; lists the client's subscription ids the event
/// matched (the frontend uses these for its closed-loop bookkeeping).
/// `scores` is parallel to `matched` when any matched subscription carries
/// a non-neutral ScoringSpec (a neutral subscription in a mixed list reads
/// kConstantScore), and empty otherwise — so unscored traffic is byte-
/// identical to the pre-scoring wire format.
struct DeliverMsg {
  Event event;
  std::vector<SubscriptionId> matched;
  std::vector<double> scores;
};

/// Several deliveries to one client coalesced into one wire message.
struct DeliverBatchMsg {
  std::vector<DeliverMsg> items;
};

// --- reliable control channel (fault tolerance) ------------------------------
//
// When reliability is enabled (Broker::Config::reliable_control), every
// subscription-control operation rides a CtrlMsg over a per-peer go-back-N
// stream: monotone sequence numbers starting at 1, cumulative acks, and
// timeout/backoff retransmission driven by sim timers. The epoch is bumped
// when the sender restarts, so a receiver can tell a fresh stream from a
// late duplicate of the old one (FIFO links guarantee the old stream's
// tail is delivered before the new stream's head).

/// One control-plane operation carried by a CtrlMsg.
struct CtrlOp {
  enum class Kind {
    kSubscribe,          ///< broker->broker filter propagation
    kUnsubscribe,        ///< broker->broker filter retraction
    kClientSubscribe,    ///< client->broker (sub_id, filter)
    kClientUnsubscribe,  ///< client->broker retraction by id
    kResyncRequest,      ///< anti-entropy: "here is my digest of your state"
    kResyncState,        ///< broker->broker full want-set replay
    kClientResyncState,  ///< client->broker full subscription replay
  };
  Kind kind = Kind::kSubscribe;
  SubscriptionId sub_id = 0;  ///< kClientSubscribe / kClientUnsubscribe
  Filter filter;              ///< kSubscribe / kUnsubscribe / kClientSubscribe
  ScoringSpec scoring;        ///< kClientSubscribe (neutral = unscored)
  std::uint64_t digest = 0;   ///< kResyncRequest
  std::vector<Filter> filters;  ///< kResyncState
  std::vector<ClientSubscription> subs;  ///< kClientResyncState
};

/// A reliably-sequenced control message. `epoch` identifies the sender's
/// incarnation (bumped on restart); `seq` is monotone per (sender, peer)
/// within an epoch.
struct CtrlMsg {
  std::uint64_t epoch = 1;
  std::uint64_t seq = 0;
  CtrlOp op;
};

/// Cumulative ack: "I have received every seq <= cum_seq of your stream in
/// epoch `epoch`". Sent on every CtrlMsg receipt, duplicates included, so
/// a lost ack is repaired by the next (re)transmission.
struct CtrlAckMsg {
  std::uint64_t epoch = 1;
  std::uint64_t cum_seq = 0;
};

/// Periodic liveness probe between neighbor brokers (heartbeat_period).
struct HeartbeatMsg {};

/// Wire-size accounting, shared by every sender so all paths meter the
/// same encoding. Batch messages carry an 8-byte batch header plus 2 bytes
/// of per-entry framing; single-event messages carry an 8-byte message
/// header instead. The broker's byte-budget flush policy
/// (Broker::Config::flush_max_bytes) meters pending output with the
/// per-entry sizes below, so a budget of B bytes bounds the batch wire
/// size at B plus one entry.
inline constexpr std::size_t kBatchHeaderBytes = 8;

/// Per-entry cost of one event inside a PublishBatchMsg.
inline std::size_t publish_entry_wire_size(const Event& event) {
  return event.wire_size() + 2;
}

/// Per-entry cost of one delivery inside a DeliverBatchMsg (the matched
/// subscription ids ride along at 8 bytes each, scores — present only on
/// scored deliveries — at 8 bytes each too).
inline std::size_t deliver_entry_wire_size(const DeliverMsg& item) {
  return item.event.wire_size() + 8 * item.matched.size() +
         8 * item.scores.size() + 2;
}

/// Wire size of a standalone PublishMsg (8-byte message header).
inline std::size_t publish_msg_wire_size(const Event& event) {
  return event.wire_size() + 8;
}

/// Wire size of a standalone DeliverMsg.
inline std::size_t deliver_msg_wire_size(const DeliverMsg& item) {
  return item.event.wire_size() + 8 * item.matched.size() +
         8 * item.scores.size() + 8;
}

inline std::size_t publish_batch_wire_size(const std::vector<Event>& events) {
  std::size_t bytes = kBatchHeaderBytes;
  for (const Event& event : events) bytes += publish_entry_wire_size(event);
  return bytes;
}

inline std::size_t deliver_batch_wire_size(
    const std::vector<DeliverMsg>& items) {
  std::size_t bytes = kBatchHeaderBytes;
  for (const DeliverMsg& item : items) bytes += deliver_entry_wire_size(item);
  return bytes;
}

/// Wire size of one CtrlOp (the payload inside a CtrlMsg). Mirrors the
/// raw-message sizes so the reliable and best-effort control planes meter
/// the same encoding per operation.
inline std::size_t ctrl_op_wire_size(const CtrlOp& op) {
  switch (op.kind) {
    case CtrlOp::Kind::kSubscribe:
    case CtrlOp::Kind::kUnsubscribe:
      return op.filter.wire_size() + 8;
    case CtrlOp::Kind::kClientSubscribe:
      return op.filter.wire_size() + 16 + op.scoring.wire_size();
    case CtrlOp::Kind::kClientUnsubscribe:
      return 16;
    case CtrlOp::Kind::kResyncRequest:
      return 16;  // digest + op tag
    case CtrlOp::Kind::kResyncState: {
      std::size_t bytes = kBatchHeaderBytes;
      for (const Filter& f : op.filters) bytes += f.wire_size() + 2;
      return bytes;
    }
    case CtrlOp::Kind::kClientResyncState: {
      std::size_t bytes = kBatchHeaderBytes;
      for (const ClientSubscription& sub : op.subs) {
        bytes += sub.filter.wire_size() + 10 + sub.scoring.wire_size();
      }
      return bytes;
    }
  }
  return 0;
}

/// Wire size of a CtrlMsg: 16 bytes of (epoch, seq) framing plus the op.
inline std::size_t ctrl_msg_wire_size(const CtrlMsg& msg) {
  return 16 + ctrl_op_wire_size(msg.op);
}

inline constexpr std::size_t kCtrlAckWireBytes = 24;
inline constexpr std::size_t kHeartbeatWireBytes = 8;

inline constexpr std::string_view kTypeSubscribe = "pubsub.sub";
inline constexpr std::string_view kTypeUnsubscribe = "pubsub.unsub";
inline constexpr std::string_view kTypeClientSubscribe = "pubsub.csub";
inline constexpr std::string_view kTypeClientUnsubscribe = "pubsub.cunsub";
inline constexpr std::string_view kTypePublish = "pubsub.pub";
inline constexpr std::string_view kTypePublishBatch = "pubsub.pubbatch";
inline constexpr std::string_view kTypeDeliver = "pubsub.deliver";
inline constexpr std::string_view kTypeDeliverBatch = "pubsub.deliverbatch";
inline constexpr std::string_view kTypeCtrl = "pubsub.ctrl";
inline constexpr std::string_view kTypeCtrlAck = "pubsub.ctrlack";
inline constexpr std::string_view kTypeHeartbeat = "pubsub.hb";

}  // namespace reef::pubsub
