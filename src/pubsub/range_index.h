// Shared sorted-bound / sorted-prefix probe arithmetic for the per-op
// predicate indexes: IndexMatcher's range/prefix anchor structures and
// BitsetMatcher's range/prefix entry tables both sort their postings with
// the comparators here and enumerate the satisfied postings with the same
// partition-point probes, so the two engines cannot drift on boundary
// semantics (strict vs inclusive at an exactly-equal bound is where the
// off-by-ones live).
//
// ## Range postings
//
// A numeric range constraint is either a *lower* bound (`> b`, `>= b`:
// satisfied values are bounded below) or an *upper* bound (`< b`, `<= b`).
// Per attribute each class lives in its own sorted array, ordered so the
// postings satisfied by an event value `v` form a contiguous run found by
// one binary search:
//
//   lower: bound ascending, inclusive (>=) before strict (>) at
//          compare-equal bounds  =>  satisfied set is a *prefix*
//   upper: bound ascending, strict (<) before inclusive (<=)
//          =>  satisfied set is a *suffix*
//
// Bounds compare with the exact Value::compare (int/double cross-type,
// no precision loss past 2^53), which is a total order over non-NaN
// numerics — NaN bounds are excluded up front by is_sortable_range.
//
// ## Prefix postings
//
// Prefix constraints per attribute live in one array sorted by pattern
// (distinct patterns), plus a sorted set of live pattern lengths. Probing
// an event string runs one lexicographic binary search per live length
// l <= |s| for s's own l-prefix — the [p, p+epsilon) interval membership
// test, inverted: instead of asking which strings fall in a pattern's
// interval, each l-prefix of the event names the one pattern interval it
// could fall in. The length-0 pattern (matches every string) is a live
// length like any other: its probe key is the empty view, which every
// event string, including "", has as its 0-prefix.
//
// ## Suffix postings
//
// Suffix is prefix read backwards: the table stores *reversed* patterns
// in the same sorted-pattern layout, and probing reverses the event
// string once, then reuses probe_prefixes verbatim. One reversal + one
// binary search per live length replaces a per-filter ends_with scan.
//
// ## Contains postings
//
// Contains has no single-probe order, but sorting postings by
// (pattern length, pattern) gives the next best thing: a probe walks the
// table in ascending pattern length, breaks at the first length > |s|,
// and runs one s.find(pattern) per surviving posting — one shared table
// scan bounded by the event string's length instead of a per-filter
// residual scan. Distinct patterns appear once no matter how many
// filters share them.
#pragma once

#include <algorithm>
#include <cmath>
#include <compare>
#include <cstddef>
#include <string_view>
#include <utility>
#include <vector>

#include "pubsub/constraint.h"
#include "pubsub/value.h"

namespace reef::pubsub {

/// True for the range ops whose satisfied values are bounded below.
inline bool is_lower_bound_op(Op op) noexcept {
  return op == Op::kGt || op == Op::kGe;
}

/// True for the strict comparisons (`<`, `>`).
inline bool is_strict_op(Op op) noexcept {
  return op == Op::kLt || op == Op::kGt;
}

/// True for values a sorted numeric bound array can hold or be probed
/// with: numeric and not NaN (NaN satisfies and is covered by nothing).
inline bool range_sortable(const Value& v) noexcept {
  if (!v.is_numeric()) return false;
  return v.type() != Value::Type::kDouble || !std::isnan(v.as_double());
}

/// Range constraint whose bound can live in a sorted numeric array.
/// String/bool range constraints are legal in the language but stay on
/// the residual scan path.
inline bool is_sortable_range(const Constraint& c) noexcept {
  switch (c.op()) {
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe:
      return range_sortable(c.value());
    default:
      return false;
  }
}

/// Prefix constraint indexable in the sorted-pattern table. A non-string
/// pattern never matches anything; it stays on the residual scan path.
inline bool is_sortable_prefix(const Constraint& c) noexcept {
  return c.op() == Op::kPrefix && c.value().is_string();
}

/// Suffix constraint indexable in the reversed-pattern table.
inline bool is_sortable_suffix(const Constraint& c) noexcept {
  return c.op() == Op::kSuffix && c.value().is_string();
}

/// Contains constraint indexable in the length-sorted substring table.
inline bool is_sortable_contains(const Constraint& c) noexcept {
  return c.op() == Op::kContains && c.value().is_string();
}

/// The reversed copy used by the suffix tables: suffix patterns and probe
/// strings are both stored/probed reversed, turning ends_with into
/// starts_with.
inline std::string reversed(std::string_view s) {
  return std::string(s.rbegin(), s.rend());
}

/// True for values that can key an equality hash bucket. Null never
/// equals anything; a NaN double neither equals anything (Value::compare
/// is partial there) nor behaves as a hash key (hash-equal,
/// operator==-unequal copies make unordered_map entries unreachable).
/// Skipping such kIn members is sound: they can never be satisfied.
inline bool eq_bucketable(const Value& v) noexcept {
  if (v.is_null()) return false;
  return v.type() != Value::Type::kDouble || !std::isnan(v.as_double());
}

namespace probe_detail {
inline bool value_less(const Value& a, const Value& b) noexcept {
  return Value::compare(a, b) == std::strong_ordering::less;
}
}  // namespace probe_detail

/// Sort order for lower-bound postings (`Posting` needs `.bound` and
/// `.strict`): bound ascending, inclusive before strict at compare-equal
/// bounds, so the satisfied postings for any probe value are a prefix.
template <typename Posting>
bool lower_bound_order(const Posting& a, const Posting& b) noexcept {
  if (probe_detail::value_less(a.bound, b.bound)) return true;
  if (probe_detail::value_less(b.bound, a.bound)) return false;
  return !a.strict && b.strict;
}

/// Sort order for upper-bound postings: bound ascending, strict before
/// inclusive, so the satisfied postings are a suffix.
template <typename Posting>
bool upper_bound_order(const Posting& a, const Posting& b) noexcept {
  if (probe_detail::value_less(a.bound, b.bound)) return true;
  if (probe_detail::value_less(b.bound, a.bound)) return false;
  return a.strict && !b.strict;
}

/// One past the last lower-bound posting satisfied by probe value `v`
/// (array sorted by lower_bound_order; `v` must pass range_sortable).
/// Satisfied means bound < v, or bound == v for an inclusive posting —
/// monotone along the sort order, so partition_point finds the edge.
template <typename Posting>
std::size_t lower_satisfied_end(const std::vector<Posting>& sorted,
                                const Value& v) noexcept {
  const auto it = std::partition_point(
      sorted.begin(), sorted.end(), [&](const Posting& p) {
        const auto c = Value::compare(p.bound, v);
        return c == std::strong_ordering::less ||
               (c == std::strong_ordering::equal && !p.strict);
      });
  return static_cast<std::size_t>(it - sorted.begin());
}

/// Index of the first upper-bound posting satisfied by `v` (array sorted
/// by upper_bound_order). Unsatisfied means bound < v, or bound == v for
/// a strict posting — monotone, so the satisfied suffix starts at the
/// partition point.
template <typename Posting>
std::size_t upper_satisfied_begin(const std::vector<Posting>& sorted,
                                  const Value& v) noexcept {
  const auto it = std::partition_point(
      sorted.begin(), sorted.end(), [&](const Posting& p) {
        const auto c = Value::compare(p.bound, v);
        return c == std::strong_ordering::less ||
               (c == std::strong_ordering::equal && p.strict);
      });
  return static_cast<std::size_t>(it - sorted.begin());
}

/// Live-prefix-length bookkeeping: lengths is kept sorted ascending with a
/// count of live distinct patterns per length.
inline void add_prefix_length(
    std::vector<std::pair<std::size_t, std::size_t>>& lengths,
    std::size_t len) {
  const auto it = std::lower_bound(
      lengths.begin(), lengths.end(), len,
      [](const auto& e, std::size_t l) { return e.first < l; });
  if (it != lengths.end() && it->first == len) {
    ++it->second;
  } else {
    lengths.insert(it, {len, 1});
  }
}

inline void remove_prefix_length(
    std::vector<std::pair<std::size_t, std::size_t>>& lengths,
    std::size_t len) {
  const auto it = std::lower_bound(
      lengths.begin(), lengths.end(), len,
      [](const auto& e, std::size_t l) { return e.first < l; });
  // A removal for a length that was never added (or was already drained)
  // must not decrement a neighboring entry — lower_bound lands on the
  // next length up (or end) when `len` is absent.
  if (it == lengths.end() || it->first != len) return;
  if (--it->second == 0) lengths.erase(it);
}

/// Lower-bound position of pattern `key` in a prefix-sorted posting array
/// (`Posting` needs `.prefix`); callers check for an exact hit.
template <typename Postings>
auto prefix_posting_pos(Postings& sorted, std::string_view key) noexcept {
  return std::lower_bound(
      sorted.begin(), sorted.end(), key,
      [](const auto& p, std::string_view k) {
        return std::string_view(p.prefix) < k;
      });
}

/// Invokes `fn(posting)` for every posting whose pattern is a prefix of
/// event string `s`: one binary search per live pattern length <= |s|.
template <typename Posting, typename Fn>
void probe_prefixes(
    const std::vector<Posting>& sorted,
    const std::vector<std::pair<std::size_t, std::size_t>>& lengths,
    const std::string& s, Fn&& fn) {
  for (const auto& [len, count] : lengths) {
    if (len > s.size()) break;
    const std::string_view key(s.data(), len);
    const auto it = prefix_posting_pos(sorted, key);
    if (it != sorted.end() && std::string_view(it->prefix) == key) fn(*it);
  }
}

/// Lower-bound position of `key` in a contains posting array sorted by
/// (pattern length, pattern) — `Posting` needs `.pattern`; callers check
/// for an exact hit.
template <typename Postings>
auto contains_posting_pos(Postings& sorted, std::string_view key) noexcept {
  return std::lower_bound(
      sorted.begin(), sorted.end(), key,
      [](const auto& p, std::string_view k) {
        const std::string_view pat(p.pattern);
        if (pat.size() != k.size()) return pat.size() < k.size();
        return pat < k;
      });
}

/// Invokes `fn(posting)` for every contains posting whose pattern is a
/// substring of event string `s`. The array is sorted by (length,
/// pattern), so the walk stops at the first pattern longer than `s`; the
/// length-0 pattern, a substring of everything, sorts first and always
/// fires.
template <typename Posting, typename Fn>
void probe_contains(const std::vector<Posting>& sorted, const std::string& s,
                    Fn&& fn) {
  for (const Posting& p : sorted) {
    const std::string_view pat(p.pattern);
    if (pat.size() > s.size()) break;
    if (s.find(pat) != std::string::npos) fn(p);
  }
}

}  // namespace reef::pubsub
