#include "pubsub/event.h"

namespace reef::pubsub {

const Value* Event::find(std::string_view name) const noexcept {
  const auto it = attrs_.find(name);
  return it == attrs_.end() ? nullptr : &it->second;
}

std::size_t Event::wire_size() const noexcept {
  std::size_t bytes = 16;  // envelope: id + count + framing
  for (const auto& [name, value] : attrs_) {
    bytes += 2 + name.size() + value.wire_size();
  }
  return bytes;
}

std::string Event::to_string() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : attrs_) {
    if (!first) out += ", ";
    first = false;
    out += name;
    out += '=';
    out += value.to_string();
  }
  out += '}';
  return out;
}

}  // namespace reef::pubsub
