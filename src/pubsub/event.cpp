#include "pubsub/event.h"

#include <algorithm>

namespace reef::pubsub {

std::atomic<std::uint64_t> Event::copy_count_{0};

void Event::set(AttrId id, Value value) {
  const auto it = std::lower_bound(
      attrs_.begin(), attrs_.end(), id,
      [](const auto& entry, AttrId key) { return entry.first < key; });
  if (it != attrs_.end() && it->first == id) {
    it->second = std::move(value);  // insert_or_assign semantics
  } else {
    attrs_.emplace(it, id, std::move(value));
  }
}

const Value* Event::find(AttrId id) const noexcept {
  // Events carry a handful of attributes; a linear scan with the sorted-id
  // early exit beats binary search at these sizes.
  for (const auto& [attr, value] : attrs_) {
    if (attr >= id) return attr == id ? &value : nullptr;
  }
  return nullptr;
}

std::size_t Event::wire_size() const noexcept {
  std::size_t bytes = 16;  // envelope: id + count + framing
  const AttrTable& table = AttrTable::instance();
  for (const auto& [id, value] : attrs_) {
    bytes += 2 + table.name(id).size() + value.wire_size();
  }
  return bytes;
}

std::string Event::to_string() const {
  // Canonical text is in attribute-*name* order (the original map-backed
  // representation); ids are assigned in interning order, so re-sort a
  // scratch view by name here, off the hot path.
  const AttrTable& table = AttrTable::instance();
  std::vector<const std::pair<AttrId, Value>*> by_name;
  by_name.reserve(attrs_.size());
  for (const auto& entry : attrs_) by_name.push_back(&entry);
  std::sort(by_name.begin(), by_name.end(),
            [&table](const auto* a, const auto* b) {
              return table.name(a->first) < table.name(b->first);
            });
  std::string out = "{";
  bool first = true;
  for (const auto* entry : by_name) {
    if (!first) out += ", ";
    first = false;
    out += table.name(entry->first);
    out += '=';
    out += entry->second.to_string();
  }
  out += '}';
  return out;
}

}  // namespace reef::pubsub
