// Client-side stateful subscription helper (§2.1 motivates automation by
// pointing at event algebras like Cayuga whose "stateful subscriptions ...
// span multiple events"). SequenceDetector implements the core binary
// operator of such algebras — "A followed by B within T", optionally
// joined on a shared attribute — on top of plain filter subscriptions, so
// Reef recommenders can emit composite triggers without broker support:
//
//   SequenceDetector seq(sim, f_quake, f_tsunami, 2h, "region",
//                        [](const Event& a, const Event& b) { ... });
//   client.subscribe(seq.first_filter(), seq.first_handler());
//   client.subscribe(seq.second_filter(), seq.second_handler());
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>

#include "pubsub/client.h"
#include "sim/simulator.h"

namespace reef::pubsub {

class SequenceDetector {
 public:
  /// Fires with the pair (first event, second event) that completed the
  /// sequence.
  using SequenceHandler = std::function<void(const Event&, const Event&)>;

  /// `join_attribute` (optional): the second event must carry the same
  /// value for this attribute as the pending first event (Cayuga-style
  /// parametrization). Empty string disables the join.
  SequenceDetector(sim::Simulator& sim, Filter first, Filter second,
                   sim::Time window, std::string join_attribute,
                   SequenceHandler handler);

  const Filter& first_filter() const noexcept { return first_; }
  const Filter& second_filter() const noexcept { return second_; }

  /// Handlers to register with a Client for the two legs. (The detector
  /// does not own a client so it composes with any subscription plumbing,
  /// including the Reef frontend.)
  Client::Handler first_handler();
  Client::Handler second_handler();

  /// Direct feeds for non-Client integrations and tests.
  void on_first(const Event& event);
  void on_second(const Event& event);

  std::size_t pending() const noexcept { return pending_.size(); }
  std::uint64_t matches() const noexcept { return matches_; }
  std::uint64_t expired() const noexcept { return expired_; }

 private:
  struct Pending {
    Event event;
    sim::Time at = 0;
  };

  void expire_old();
  static std::optional<Value> join_value(const Event& event,
                                         const std::string& attribute);

  sim::Simulator& sim_;
  Filter first_;
  Filter second_;
  sim::Time window_;
  std::string join_attribute_;
  SequenceHandler handler_;
  std::deque<Pending> pending_;
  std::uint64_t matches_ = 0;
  std::uint64_t expired_ = 0;
};

}  // namespace reef::pubsub
