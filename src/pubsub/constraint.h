// Attribute constraints: the atoms of the subscription language.
//
// A constraint names an attribute, an operator, and (except for `exists`) a
// comparison value. Besides evaluation against event values, constraints
// implement the *covering* relation used by the broker overlay to prune
// routing state: c1 covers c2 iff every value matching c2 also matches c1.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "pubsub/attr_table.h"
#include "pubsub/value.h"

namespace reef::pubsub {

/// Comparison operators supported by the subscription language.
enum class Op : std::uint8_t {
  kEq,        ///< equal (numeric cross-type, string, bool)
  kNe,        ///< not equal (compatible types only)
  kLt,        ///< less than
  kLe,        ///< less or equal
  kGt,        ///< greater than
  kGe,        ///< greater or equal
  kPrefix,    ///< string starts-with
  kSuffix,    ///< string ends-with
  kContains,  ///< string substring
  kExists,    ///< attribute is present (any value)
  kIn,        ///< set membership: value equals some member of the set
};

std::string_view op_name(Op op) noexcept;

/// A single predicate over one named attribute. Value-semantic. The
/// attribute name is interned at construction; the constraint itself
/// carries only the AttrId, which is what the matching engines key on.
class Constraint {
 public:
  Constraint(std::string_view attribute, Op op, Value value = Value())
      : value_(std::move(value)),
        attr_id_(AttrTable::instance().intern(attribute)),
        attr_len_(static_cast<std::uint32_t>(attribute.size())),
        op_(op) {}

  /// Set-membership constraint (`attr in {m1, m2, ...}`). Members are
  /// canonicalized at construction: sorted, deduplicated by equals() (so
  /// `in {3, 3.0}` keeps one member), a singleton collapses to kEq, and
  /// the empty set stays kIn and matches nothing.
  Constraint(std::string_view attribute, std::vector<Value> members);

  const std::string& attribute() const noexcept {
    return AttrTable::instance().name(attr_id_);
  }
  /// Interned attribute id — the engines' index key (hash = identity).
  AttrId attr_id() const noexcept { return attr_id_; }
  Op op() const noexcept { return op_; }
  const Value& value() const noexcept { return value_; }
  /// kIn member set (canonical order); empty for every other operator.
  const std::vector<Value>& members() const noexcept { return set_; }

  /// True iff an event value `v` satisfies this constraint. Incompatible
  /// types never match (e.g. `price < 5` against "abc" is false).
  bool matches(const Value& v) const noexcept;

  /// Sound covering test: returns true only if *every* value that matches
  /// `other` also matches `*this`. May return false for some true covering
  /// pairs (conservative), never the reverse. Constraints on different
  /// attributes never cover each other.
  bool covers(const Constraint& other) const noexcept;

  std::string to_string() const;

  /// Approximate wire size, used for routing-traffic accounting: the
  /// attribute name (length cached at construction — no AttrTable lookup
  /// on the accounting path), the actual operator token, and the payload
  /// the operator carries (nothing for `exists`, the brace-delimited
  /// member list for `in`, one value otherwise).
  std::size_t wire_size() const noexcept {
    std::size_t size = attr_len_ + op_name(op_).size();
    switch (op_) {
      case Op::kExists:
        break;
      case Op::kIn:
        size += 2;  // braces
        if (!set_.empty()) size += set_.size() - 1;  // separators
        for (const Value& m : set_) size += m.wire_size();
        break;
      default:
        size += value_.wire_size();
        break;
    }
    return size;
  }

  friend bool operator==(const Constraint& a, const Constraint& b) noexcept {
    return a.op_ == b.op_ && a.attr_id_ == b.attr_id_ &&
           a.value_ == b.value_ && a.set_ == b.set_;
  }

 private:
  Value value_;
  std::vector<Value> set_;  // kIn only; canonical (sorted, deduped)
  AttrId attr_id_ = kNoAttrId;
  std::uint32_t attr_len_ = 0;
  Op op_;
};

// Convenience factories matching the subscription-language surface.
inline Constraint eq(std::string_view attr, Value v) {
  return Constraint(attr, Op::kEq, std::move(v));
}
inline Constraint ne(std::string_view attr, Value v) {
  return Constraint(attr, Op::kNe, std::move(v));
}
inline Constraint lt(std::string_view attr, Value v) {
  return Constraint(attr, Op::kLt, std::move(v));
}
inline Constraint le(std::string_view attr, Value v) {
  return Constraint(attr, Op::kLe, std::move(v));
}
inline Constraint gt(std::string_view attr, Value v) {
  return Constraint(attr, Op::kGt, std::move(v));
}
inline Constraint ge(std::string_view attr, Value v) {
  return Constraint(attr, Op::kGe, std::move(v));
}
inline Constraint prefix(std::string_view attr, std::string p) {
  return Constraint(attr, Op::kPrefix, Value(std::move(p)));
}
inline Constraint suffix(std::string_view attr, std::string s) {
  return Constraint(attr, Op::kSuffix, Value(std::move(s)));
}
inline Constraint contains(std::string_view attr, std::string s) {
  return Constraint(attr, Op::kContains, Value(std::move(s)));
}
inline Constraint exists(std::string_view attr) {
  return Constraint(attr, Op::kExists);
}
inline Constraint in_(std::string_view attr, std::vector<Value> members) {
  return Constraint(attr, std::move(members));
}

}  // namespace reef::pubsub
