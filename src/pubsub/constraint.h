// Attribute constraints: the atoms of the subscription language.
//
// A constraint names an attribute, an operator, and (except for `exists`) a
// comparison value. Besides evaluation against event values, constraints
// implement the *covering* relation used by the broker overlay to prune
// routing state: c1 covers c2 iff every value matching c2 also matches c1.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "pubsub/attr_table.h"
#include "pubsub/value.h"

namespace reef::pubsub {

/// Comparison operators supported by the subscription language.
enum class Op : std::uint8_t {
  kEq,        ///< equal (numeric cross-type, string, bool)
  kNe,        ///< not equal (compatible types only)
  kLt,        ///< less than
  kLe,        ///< less or equal
  kGt,        ///< greater than
  kGe,        ///< greater or equal
  kPrefix,    ///< string starts-with
  kSuffix,    ///< string ends-with
  kContains,  ///< string substring
  kExists,    ///< attribute is present (any value)
};

std::string_view op_name(Op op) noexcept;

/// A single predicate over one named attribute. Value-semantic. The
/// attribute name is interned at construction; the constraint itself
/// carries only the AttrId, which is what the matching engines key on.
class Constraint {
 public:
  Constraint(std::string_view attribute, Op op, Value value = Value())
      : value_(std::move(value)),
        attr_id_(AttrTable::instance().intern(attribute)),
        op_(op) {}

  const std::string& attribute() const noexcept {
    return AttrTable::instance().name(attr_id_);
  }
  /// Interned attribute id — the engines' index key (hash = identity).
  AttrId attr_id() const noexcept { return attr_id_; }
  Op op() const noexcept { return op_; }
  const Value& value() const noexcept { return value_; }

  /// True iff an event value `v` satisfies this constraint. Incompatible
  /// types never match (e.g. `price < 5` against "abc" is false).
  bool matches(const Value& v) const noexcept;

  /// Sound covering test: returns true only if *every* value that matches
  /// `other` also matches `*this`. May return false for some true covering
  /// pairs (conservative), never the reverse. Constraints on different
  /// attributes never cover each other.
  bool covers(const Constraint& other) const noexcept;

  std::string to_string() const;

  /// Approximate wire size, used for routing-traffic accounting.
  std::size_t wire_size() const noexcept {
    return 3 + attribute().size() + value_.wire_size();
  }

  friend bool operator==(const Constraint& a, const Constraint& b) noexcept {
    return a.op_ == b.op_ && a.attr_id_ == b.attr_id_ && a.value_ == b.value_;
  }

 private:
  Value value_;
  AttrId attr_id_ = kNoAttrId;
  Op op_;
};

// Convenience factories matching the subscription-language surface.
inline Constraint eq(std::string_view attr, Value v) {
  return Constraint(attr, Op::kEq, std::move(v));
}
inline Constraint ne(std::string_view attr, Value v) {
  return Constraint(attr, Op::kNe, std::move(v));
}
inline Constraint lt(std::string_view attr, Value v) {
  return Constraint(attr, Op::kLt, std::move(v));
}
inline Constraint le(std::string_view attr, Value v) {
  return Constraint(attr, Op::kLe, std::move(v));
}
inline Constraint gt(std::string_view attr, Value v) {
  return Constraint(attr, Op::kGt, std::move(v));
}
inline Constraint ge(std::string_view attr, Value v) {
  return Constraint(attr, Op::kGe, std::move(v));
}
inline Constraint prefix(std::string_view attr, std::string p) {
  return Constraint(attr, Op::kPrefix, Value(std::move(p)));
}
inline Constraint suffix(std::string_view attr, std::string s) {
  return Constraint(attr, Op::kSuffix, Value(std::move(s)));
}
inline Constraint contains(std::string_view attr, std::string s) {
  return Constraint(attr, Op::kContains, Value(std::move(s)));
}
inline Constraint exists(std::string_view attr) {
  return Constraint(attr, Op::kExists);
}

}  // namespace reef::pubsub
