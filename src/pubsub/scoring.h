// Relevance scoring and bounded (top-k / min-score) delivery policies for
// the pub/sub substrate.
//
// Boolean matching decides *whether* a subscription matches an event;
// scoring decorates that decision with a per-(filter, event) relevance
// score so over-fanout from auto-generated subscriptions can be bounded at
// the delivery edge (paper §4 / ROADMAP open item 1: at millions of users
// every boolean match is a delivery, so a subscriber needs "the k most
// relevant of this batch", not "everything").
//
// Two policies:
//   * kConstant — every matching event scores kConstantScore (1.0). With
//     top_k = 0 and min_score <= 0 this is the *neutral* spec: provably
//     unable to suppress anything, byte-identical wire output to a run
//     with scoring disabled (the property the neutral fuzz tier pins).
//   * kBm25 — the event's designated text attributes are tokenized
//     (ir::tokenize) into one bag of words and scored against a weighted
//     term query with the BM25 term-frequency saturation formula
//     (ir::Bm25Params k1/b; see bm25.h). There is no corpus at a broker,
//     so document-frequency evidence rides in as the per-term query
//     weights (e.g. Offer Weight scores from ir::select_terms) and length
//     normalization uses the fixed kScoringAvgDocLen pivot — the score is
//     a pure function of (spec, event), which is what makes scored
//     delivery reproducible across engines, shards, and workers.
//
// Determinism rule (the contract the scored differential fuzz tier
// enforces): scores are computed *after* boolean matching, from (spec,
// event) alone, and the top-k cut breaks ties by ascending event order
// within the publication batch — never by hit order, shard order, or
// thread schedule. Identical match sets therefore imply identical scored
// delivery, byte for byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/term_weighting.h"
#include "pubsub/event.h"
#include "pubsub/filter.h"

namespace reef::pubsub {

/// Identifier a matcher client associates with a registered filter
/// (redeclared from matcher.h; both aliases name the same type).
using SubscriptionId = std::uint64_t;

/// Score every constant-policy (and spec-less) match reports.
inline constexpr double kConstantScore = 1.0;

/// Fixed length-normalization pivot for the corpus-free BM25 policy: the
/// designated text attributes are short (titles, snippets, file names), so
/// the pivot is a constant rather than a corpus average — any fixed value
/// keeps the score a pure function of (spec, event).
inline constexpr double kScoringAvgDocLen = 16.0;

enum class ScoringPolicy : std::uint8_t {
  kConstant,  ///< every match scores kConstantScore
  kBm25,      ///< BM25 TF saturation of a weighted term query
};

const char* scoring_policy_name(ScoringPolicy policy) noexcept;

/// Per-subscription scoring + delivery policy. Travels with the client's
/// subscription (ClientSubscribeMsg / CtrlOp), lives in the routing
/// table's entry for it, and is applied by the delivering broker; neighbor
/// brokers forward on boolean covering only — suppression is strictly an
/// edge-delivery policy, so the overlay's subscription forwarding is
/// untouched.
struct ScoringSpec {
  ScoringPolicy policy = ScoringPolicy::kConstant;
  /// Weighted query terms (kBm25); weights are clamped to >= 0 like
  /// ir::Bm25::score's weighted overload.
  std::vector<ir::ScoredTerm> query;
  /// Attribute names whose string values form the scored document, in
  /// spec order (kBm25). Non-string or absent attributes contribute
  /// nothing.
  std::vector<std::string> text_attrs;
  /// Deliver at most this many events per publication batch, keeping the
  /// highest-scoring (ties: earliest event order). 0 = unlimited.
  std::uint32_t top_k = 0;
  /// Deliver only events scoring >= this (applied before the top-k cut).
  double min_score = 0.0;

  /// True when the spec provably cannot suppress a delivery and carries
  /// no score information beyond the constant: the default-constructed
  /// spec every unscored subscriber has. Neutral specs are not stored,
  /// not metered on the wire, and not folded into resync digests — a
  /// scoring-enabled broker serving only neutral subscribers produces
  /// byte-identical wire traffic to a scoring-disabled one.
  bool neutral() const noexcept {
    return policy == ScoringPolicy::kConstant && top_k == 0 &&
           min_score <= 0.0;
  }

  /// Wire-size contribution when riding a subscribe/resync message.
  /// Exactly 0 for neutral specs so the disabled/neutral paths meter the
  /// bytes they always did.
  std::size_t wire_size() const noexcept;

  /// Order-independent content hash, folded into the client resync
  /// digests so a spec change (same filter) is not mistaken for matching
  /// state. 0 for neutral specs.
  std::uint64_t hash() const noexcept;

  /// Canonical one-line rendering for fingerprints and traces, e.g.
  /// score(bm25 k=2 min=0.5 q=[news:1.5,feed:1] attrs=[title,text]).
  std::string summary() const;

  friend bool operator==(const ScoringSpec&, const ScoringSpec&) = default;
};

/// One client subscription as carried by resync replays: the (sub_id,
/// filter) pair of PR 9 plus its scoring spec.
struct ClientSubscription {
  SubscriptionId sub_id = 0;
  Filter filter;
  ScoringSpec scoring;
};

/// Relevance of `event` under `spec`. Pure and deterministic: no corpus,
/// no clock, no randomness — equal (spec, event) pairs score equal on
/// every broker, shard, and worker. kConstant returns kConstantScore;
/// kBm25 tokenizes the designated text attributes into one bag of words
/// and sums, in query order,
///   max(weight, 0) * tf * (k1 + 1) / (tf + k1 * (1 - b + b * len / avg))
/// with the default ir::Bm25Params and the kScoringAvgDocLen pivot. An
/// event with no tokenizable text scores 0 under kBm25.
double score_event(const ScoringSpec& spec, const Event& event);

/// Bounded top-k selector over (score, event-order) candidates: keeps the
/// k best by descending score, ties broken by ascending order — the
/// deterministic tie rule the scored delivery contract requires. k = 0
/// means unlimited (every offered candidate survives). Standard bounded
/// priority queue: a k-sized heap with the *worst* kept candidate at the
/// root, so each offer is O(log k) and order-insensitive.
class TopKSelector {
 public:
  explicit TopKSelector(std::uint32_t k) : k_(k) {}

  void offer(double score, std::uint32_t order);

  /// Surviving candidates' orders, sorted ascending (canonical event
  /// order — survivors are *delivered* in event order, never score
  /// order). Resets the selector.
  std::vector<std::uint32_t> take();

  std::size_t size() const noexcept { return heap_.size(); }

 private:
  struct Entry {
    double score = 0.0;
    std::uint32_t order = 0;
  };
  /// True when `a` is a worse keep than `b` (lower score, or equal score
  /// and later order). The heap is ordered so the worst entry is at the
  /// root — the one an incoming better candidate evicts.
  static bool worse(const Entry& a, const Entry& b) noexcept {
    if (a.score != b.score) return a.score < b.score;
    return a.order > b.order;
  }

  std::vector<Entry> heap_;  // min-heap by keep-priority (root = worst)
  std::uint32_t k_ = 0;
};

}  // namespace reef::pubsub
