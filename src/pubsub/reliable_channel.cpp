#include "pubsub/reliable_channel.h"

#include <algorithm>
#include <any>
#include <cassert>
#include <string>
#include <utility>

namespace reef::pubsub {

std::size_t ReliableChannel::unacked(sim::NodeId peer) const {
  const auto it = send_.find(peer);
  return it == send_.end() ? 0 : it->second.unacked.size();
}

void ReliableChannel::transmit(sim::NodeId peer, const CtrlMsg& msg) {
  net_.send(self_, peer, std::string(kTypeCtrl), msg, ctrl_msg_wire_size(msg));
}

void ReliableChannel::send(sim::NodeId peer, CtrlOp op) {
  assert(config_.enabled && "ReliableChannel::send with reliability off");
  assert(self_ != sim::kNoNode && "ReliableChannel used before bind()");
  SendState& state = send_[peer];
  CtrlMsg msg{epoch_, state.next_seq++, std::move(op)};
  transmit(peer, msg);
  ++stats_.ctrl_sent;
  state.unacked.push_back(std::move(msg));
  if (state.timer_gen == 0) {
    state.timeout = config_.retransmit_timeout;
    arm_timer(peer, state);
  }
}

void ReliableChannel::arm_timer(sim::NodeId peer, SendState& state) {
  const std::uint64_t gen = next_timer_gen_++;
  state.timer_gen = gen;
  sim_.after(state.timeout, [this, peer, gen] { on_timeout(peer, gen); });
}

void ReliableChannel::on_timeout(sim::NodeId peer, std::uint64_t gen) {
  const auto it = send_.find(peer);
  // Stale generations cover every way the window closed since arming:
  // emptied by an ack, reset_all on crash, reset_peer_send on resync.
  if (it == send_.end() || it->second.timer_gen != gen) return;
  SendState& state = it->second;
  if (!alive_ || state.unacked.empty()) {
    state.timer_gen = 0;
    return;
  }
  // Go-back-N: resend the whole unacked window, then back off.
  for (const CtrlMsg& msg : state.unacked) {
    transmit(peer, msg);
    ++stats_.retransmits;
  }
  state.timeout = std::min(state.timeout * 2, config_.retransmit_timeout_max);
  arm_timer(peer, state);
}

void ReliableChannel::send_ack(sim::NodeId peer, std::uint64_t peer_epoch,
                               std::uint64_t cum_seq) {
  ++stats_.acks_sent;
  net_.send(self_, peer, std::string(kTypeCtrlAck),
            CtrlAckMsg{peer_epoch, cum_seq}, kCtrlAckWireBytes);
}

bool ReliableChannel::on_message(const sim::Message& msg) {
  if (msg.type == kTypeCtrlAck) {
    const auto& ack = std::any_cast<const CtrlAckMsg&>(msg.payload);
    ++stats_.acks_received;
    // Acks for a previous incarnation's stream are meaningless now.
    if (ack.epoch != epoch_) return true;
    const auto it = send_.find(msg.from);
    if (it == send_.end()) return true;
    SendState& state = it->second;
    while (!state.unacked.empty() && state.unacked.front().seq <= ack.cum_seq) {
      state.unacked.pop_front();
    }
    if (state.unacked.empty()) {
      // Window closed: disarm the timer and reset the backoff for the
      // next burst.
      state.timer_gen = 0;
      state.timeout = config_.retransmit_timeout;
    }
    return true;
  }
  if (msg.type != kTypeCtrl) return false;
  const auto& ctrl = std::any_cast<const CtrlMsg&>(msg.payload);
  RecvState& state = recv_[msg.from];
  if (state.peer_epoch.has_value() && ctrl.epoch < *state.peer_epoch) {
    // Late duplicate from before the peer's restart: drop without acking
    // (an ack tagged with the old epoch would be ignored anyway).
    return true;
  }
  if (!state.peer_epoch.has_value() || ctrl.epoch > *state.peer_epoch) {
    // A bump over a recorded epoch means the peer lost its state and is
    // starting over. First contact usually just records the epoch — but
    // first contact *above the initial epoch* is also proof of a restart
    // we never witnessed (e.g. the peer's first-ever ctrl message to us
    // is its post-restart resync request), and our outgoing stream state
    // predates its wiped receive state, so it must restart too or every
    // send would be gap-dropped forever.
    const bool restarted = state.peer_epoch.has_value() || ctrl.epoch > 1;
    state.peer_epoch = ctrl.epoch;
    state.expected_seq = 1;
    if (restarted && on_restart_) on_restart_(msg.from);
  }
  if (ctrl.seq < state.expected_seq) {
    ++stats_.duplicates_dropped;
    send_ack(msg.from, ctrl.epoch, state.expected_seq - 1);
    return true;
  }
  if (ctrl.seq > state.expected_seq) {
    // Go-back-N receiver: a gap means an earlier message is still in
    // flight or lost; re-ack what we have so the sender retransmits from
    // there.
    ++stats_.gaps_dropped;
    send_ack(msg.from, ctrl.epoch, state.expected_seq - 1);
    return true;
  }
  ++state.expected_seq;
  send_ack(msg.from, ctrl.epoch, state.expected_seq - 1);
  if (deliver_) deliver_(msg.from, ctrl.op);
  return true;
}

void ReliableChannel::reset_all() {
  ++epoch_;
  send_.clear();
  recv_.clear();
}

void ReliableChannel::reset_peer_send(sim::NodeId peer) {
  send_.erase(peer);
}

}  // namespace reef::pubsub
