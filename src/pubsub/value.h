// Typed attribute values for the content-based publish-subscribe substrate.
//
// Events are sets of name-value pairs (Siena-style); values are one of
// {bool, int, double, string}. Numeric values of different representations
// compare by value (int 3 == double 3.0), strings only compare to strings.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <variant>

#include "util/hash.h"

namespace reef::pubsub {

/// A single attribute value. Value-semantic, ordered, hashable.
class Value {
 public:
  enum class Type : std::uint8_t { kNull, kBool, kInt, kDouble, kString };

  Value() noexcept : data_(std::monostate{}) {}
  Value(bool v) noexcept : data_(v) {}                     // NOLINT(google-explicit-constructor)
  Value(std::int64_t v) noexcept : data_(v) {}             // NOLINT(google-explicit-constructor)
  Value(int v) noexcept : data_(std::int64_t{v}) {}        // NOLINT(google-explicit-constructor)
  Value(double v) noexcept : data_(v) {}                   // NOLINT(google-explicit-constructor)
  Value(std::string v) noexcept : data_(std::move(v)) {}   // NOLINT(google-explicit-constructor)
  Value(const char* v) : data_(std::string(v)) {}          // NOLINT(google-explicit-constructor)

  Type type() const noexcept {
    return static_cast<Type>(data_.index());
  }
  bool is_null() const noexcept { return type() == Type::kNull; }
  bool is_numeric() const noexcept {
    return type() == Type::kInt || type() == Type::kDouble;
  }
  bool is_string() const noexcept { return type() == Type::kString; }
  bool is_bool() const noexcept { return type() == Type::kBool; }

  /// Accessors; calling the wrong one is a programming error (asserts in
  /// debug, undefined in release — callers check type() first).
  bool as_bool() const { return std::get<bool>(data_); }
  std::int64_t as_int() const { return std::get<std::int64_t>(data_); }
  double as_double() const { return std::get<double>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }

  /// Numeric view: int or double widened to double; nullopt otherwise.
  std::optional<double> numeric() const noexcept {
    if (type() == Type::kInt) return static_cast<double>(as_int());
    if (type() == Type::kDouble) return as_double();
    return std::nullopt;
  }

  /// Three-way comparison for *compatible* values: numerics compare by
  /// value across int/double; strings with strings; bools with bools.
  /// Returns nullopt for incompatible or null operands. Int/int and
  /// int/double comparisons are exact — no operand is routed through a
  /// double, so magnitudes beyond 2^53 keep their low bits.
  static std::optional<std::strong_ordering> compare(const Value& a,
                                                     const Value& b) noexcept;

  /// The exact double image of an int64, or nullopt when the int is not
  /// exactly representable (|v| > 2^53 with lost low bits, or INT64_MAX).
  static std::optional<double> exact_double_of_int(std::int64_t v) noexcept;

  /// Equality in the pub/sub sense (uses `compare`; incompatible => false).
  bool equals(const Value& other) const noexcept {
    const auto c = compare(*this, other);
    return c.has_value() && *c == std::strong_ordering::equal;
  }

  /// Strict equality used for container semantics: type AND value equal.
  friend bool operator==(const Value& a, const Value& b) noexcept {
    return a.data_ == b.data_;
  }

  /// Approximate wire size in bytes, used for traffic accounting.
  std::size_t wire_size() const noexcept;

  std::string to_string() const;

  std::uint64_t hash() const noexcept;

 private:
  std::variant<std::monostate, bool, std::int64_t, double, std::string> data_;
};

}  // namespace reef::pubsub

template <>
struct std::hash<reef::pubsub::Value> {
  std::size_t operator()(const reef::pubsub::Value& v) const noexcept {
    return static_cast<std::size_t>(v.hash());
  }
};
