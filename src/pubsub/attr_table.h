// Process-wide attribute-name symbol table for the pub/sub hot path.
//
// Every attribute name that appears in an Event or a Constraint is
// interned exactly once and identified thereafter by a stable, dense
// AttrId (uint32_t). Matching engines key their indices by AttrId — hash
// is the identity — so the per-event inner loop does integer compares and
// array probes instead of string hashing and string compares; the strings
// themselves survive only at the edges (construction, to_string, wire
// accounting).
//
// Concurrency contract: intern() takes a mutex and is safe from any
// thread; lookup() and name() are lock-free and wait-free, safe to call
// concurrently with intern(). The table is append-only — ids are never
// reused or remapped, and an interned name's storage is never moved — so
// readers only need acquire loads on the published index and chunk
// pointers. The sharded matcher's worker pool matches concurrently with
// other threads subscribing; tests/pubsub_attr_table_test.cpp runs the
// intern/lookup race under TSan.
//
// Cardinality assumption: attribute *names* are schema-like — a bounded
// vocabulary (stream, feed, price, ...), per-entity variability belongs
// in attribute *values*. Interned names are never freed (append-only by
// design), so a workload synthesizing unbounded distinct names retains
// them for the process lifetime, and intern() throws std::length_error
// at the 4M-name capacity (surfacing through Event::with / Constraint
// construction). Keep dynamic data out of attribute names.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace reef::pubsub {

/// Stable identifier of an interned attribute name. Dense: ids count up
/// from 0 in interning order, so AttrId-indexed vectors work as maps.
using AttrId = std::uint32_t;

/// Sentinel returned by AttrTable::lookup for names never interned — and
/// therefore impossible to occur in any registered filter or stored event.
inline constexpr AttrId kNoAttrId = 0xffffffff;

/// Transparent identity hash for AttrId-keyed unordered_maps: the ids are
/// already dense and well-distributed, re-hashing them is pure waste.
struct AttrIdHash {
  std::size_t operator()(AttrId id) const noexcept { return id; }
};

class AttrTable {
 public:
  /// The process-wide table (events, filters, and engines must agree on
  /// ids, so there is exactly one).
  static AttrTable& instance();

  /// Returns the id for `attr_name`, interning it first if needed.
  /// Thread-safe (mutex on the insert path, lock-free when present).
  AttrId intern(std::string_view attr_name);

  /// Returns the id for `attr_name`, or kNoAttrId when it was never
  /// interned. Lock-free; safe concurrently with intern().
  AttrId lookup(std::string_view attr_name) const noexcept;

  /// The interned name for `id`. The reference is stable for the process
  /// lifetime. `id` must be a *valid* interned id (< size()); passing
  /// kNoAttrId — e.g. an unchecked lookup() miss — is a precondition
  /// violation (asserted in debug builds). Lock-free.
  const std::string& name(AttrId id) const noexcept;

  /// Number of interned names (== smallest id not yet assigned).
  std::size_t size() const noexcept {
    return count_.load(std::memory_order_acquire);
  }

  AttrTable(const AttrTable&) = delete;
  AttrTable& operator=(const AttrTable&) = delete;

 private:
  AttrTable();

  /// Open-addressing hash index over the interned names. Immutable once
  /// published except for slot fills (0 -> id+1, released by the writer
  /// under the mutex); readers re-probe through an acquire load per slot.
  /// Rehashing builds a fresh Index and publishes it; superseded indexes
  /// are retired (not freed) so racing readers never touch freed memory.
  struct Index {
    explicit Index(std::size_t capacity_pow2);
    std::size_t mask;  // capacity - 1
    std::vector<std::atomic<std::uint32_t>> slots;  // 0 = empty, else id+1
  };

  static constexpr std::size_t kChunkShift = 10;  // 1024 names per chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
  static constexpr std::size_t kMaxChunks = 1u << 12;  // 4M names

  /// Probes `index` for `attr_name`; fills `hash` out-param for reuse.
  AttrId find_in(const Index& index, std::string_view attr_name,
                 std::uint64_t hash) const noexcept;

  std::atomic<Index*> index_;
  std::array<std::atomic<std::string*>, kMaxChunks> chunks_{};
  std::atomic<std::uint32_t> count_{0};

  std::mutex insert_mutex_;
  std::vector<std::unique_ptr<Index>> retired_;  // superseded index versions
  std::vector<std::unique_ptr<std::string[]>> chunk_storage_;
};

}  // namespace reef::pubsub
