// Pub/sub client endpoint: the API surface application code uses to talk
// to a broker (subscribe / unsubscribe / publish) over the simulated
// network. The Reef subscription frontend and the feed proxy are built on
// this class.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "pubsub/broker.h"
#include "pubsub/messages.h"
#include "pubsub/reliable_channel.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace reef::pubsub {

class Client final : public sim::Node {
 public:
  /// Invoked once per delivered event per matching subscription.
  using Handler = std::function<void(const Event&, SubscriptionId)>;

  /// Scored twin of Handler: also receives the delivering broker's
  /// relevance score (kConstantScore on unscored deliveries).
  using ScoredHandler =
      std::function<void(const Event&, SubscriptionId, double)>;

  Client(sim::Simulator& sim, sim::Network& net, std::string name);

  sim::NodeId id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }

  /// Connects to a broker. A client talks to exactly one broker; calling
  /// again rebinds new operations to the new broker (existing
  /// subscriptions stay on the old one and should be unsubscribed first).
  void connect(Broker& broker);
  bool connected() const noexcept { return broker_ != sim::kNoNode; }

  /// Puts subscription control traffic on the reliable channel (pair this
  /// with Broker::Config::reliable_control on the broker side). Call
  /// before the first subscribe/unsubscribe. Also arms the client's side
  /// of broker-restart recovery: on a resync request from a restarted
  /// broker the client replays its full live subscription set.
  void enable_reliable_control(ReliableChannel::Config config);

  /// Registers `filter`; `handler` (optional) runs on each delivery.
  /// Returns the id used for unsubscribe. Requires connect() first.
  SubscriptionId subscribe(Filter filter, Handler handler = {});

  /// Scored subscribe: attaches a ScoringSpec evaluated at the delivering
  /// broker when its Config::scoring_enabled is set. The handler receives
  /// the broker-computed relevance score (kConstantScore when the broker
  /// delivers unscored). A neutral spec behaves exactly like subscribe().
  SubscriptionId subscribe_scored(Filter filter, ScoringSpec scoring,
                                  ScoredHandler handler = {});

  /// Disjunctive subscription sugar: places one subscription per filter
  /// sharing `handler`, deduplicating deliveries by event id so an event
  /// matching several branches fires the handler once. Returns the ids
  /// (retract each to fully unsubscribe).
  std::vector<SubscriptionId> subscribe_any(std::vector<Filter> filters,
                                            Handler handler);

  /// Retracts a subscription made by this client; unknown ids are ignored.
  void unsubscribe(SubscriptionId id);

  /// Publishes an event into the substrate via the connected broker.
  void publish(Event event);

  /// Publishes several events in one wire message (PublishBatchMsg); the
  /// broker matches them through the amortized batch path. Bursty
  /// publishers (the feed proxy flushing a poll cycle) use this to avoid
  /// one message per story.
  void publish_batch(std::vector<Event> events);

  void handle_message(const sim::Message& msg) override;

  // --- introspection --------------------------------------------------------
  std::uint64_t deliveries() const noexcept { return deliveries_; }
  /// DeliverBatchMsg wire messages received (their events are unpacked
  /// into the normal per-subscription handler/inbox path). How the broker
  /// cuts deliveries into wire messages is a function of its flush
  /// budgets (Broker::Config::flush_max_{events,bytes,delay_ticks}) —
  /// clients observe the same deliveries in the same per-interface order
  /// under every budget, only the framing and timing differ.
  std::uint64_t batches_received() const noexcept { return batches_received_; }
  std::uint64_t published() const noexcept { return published_; }
  std::size_t active_subscriptions() const noexcept {
    return handlers_.size();
  }
  /// Events delivered for subscriptions with no handler accumulate here.
  const std::vector<std::pair<Event, SubscriptionId>>& inbox() const noexcept {
    return inbox_;
  }
  void clear_inbox() { inbox_.clear(); }
  const ReliableChannel& control_channel() const noexcept { return channel_; }

 private:
  sim::Simulator& sim_;
  sim::Network& net_;
  std::string name_;
  sim::NodeId id_;
  sim::NodeId broker_ = sim::kNoNode;
  std::unordered_map<SubscriptionId, ScoredHandler> handlers_;
  /// Live subscriptions (filter + scoring spec) by id, kept for
  /// broker-restart resync replay (only populated while the reliable
  /// channel is enabled).
  std::unordered_map<SubscriptionId, ClientSubscription> subs_;
  ReliableChannel channel_;
  void on_deliver(const DeliverMsg& deliver);
  void on_ctrl_op(sim::NodeId from, const CtrlOp& op);

  std::uint32_t next_sub_ = 1;
  std::uint64_t deliveries_ = 0;
  std::uint64_t batches_received_ = 0;
  std::uint64_t published_ = 0;
  std::uint64_t next_event_id_ = 1;
  std::vector<std::pair<Event, SubscriptionId>> inbox_;
};

}  // namespace reef::pubsub
