// Textual subscription language (§2.1: a pub/sub system with "a
// well-defined event algebra syntax and a specification for valid
// name-value pairs").
//
// Grammar (whitespace-insensitive):
//
//   filter      := constraint ( "&&" constraint )*
//   constraint  := attr op value | "has" attr
//   op          := "=" | "!=" | "<" | "<=" | ">" | ">=" |
//                  "=^" (prefix) | "=$" (suffix) | "=*" (contains)
//   attr        := [A-Za-z_][A-Za-z0-9_.]*
//   value       := "quoted string" | number (int or float) | true | false
//
// Examples:
//   stream = "feed" && feed = "http://x/f.rss"
//   symbol = "ACME" && price >= 10.5
//   stream = "video" && text =* "storm" && has link
//
// parse_filter returns the canonicalized Filter or an error message with
// the offending position. Round-trip guarantee: parsing a filter's
// to_string() yields an equal filter.
#pragma once

#include <string>
#include <string_view>
#include <variant>

#include "pubsub/filter.h"

namespace reef::pubsub {

struct ParseError {
  std::string message;
  std::size_t position = 0;  ///< byte offset into the input
};

using ParseResult = std::variant<Filter, ParseError>;

/// Parses the subscription language above.
ParseResult parse_filter(std::string_view text);

/// Convenience wrapper that throws std::invalid_argument on errors;
/// for tests and examples where the input is a literal.
Filter parse_filter_or_throw(std::string_view text);

}  // namespace reef::pubsub
