// Sharded matching engine: partitions filter state across N inner matchers
// so one broker can fan a match_batch out over a worker pool.
//
// Placement is static and content-based: a filter lands on the shard given
// by the hash of its *anchor attribute name* — the attribute of its first
// constraint in canonical order (filters are conjunctions, so a matching
// event necessarily carries every constrained attribute; any deterministic
// choice is correct). Filters with no constraints have no anchor and go to
// a dedicated spill shard. Each shard is a full Matcher instance of the
// configured inner engine, so "sharded:anchor-index" shards the selective
// hash index and "sharded:counting" shards the counting tables.
//
// Shard-aware event pre-filtering (Config::prefilter_enabled, default on):
// a filter can only match an event that carries the filter's own anchor
// attribute, so the matcher keeps an attribute-presence map (anchor
// AttrId -> shard, with a live-filter refcount) and routes each event of a
// batch only to the shards one of its attributes hashes to — plus the
// spill shard, which holds anchorless (universal) filters and therefore
// always participates, even for events with zero attributes. Sub-batches
// are *zero-copy*: the per-shard routing pass builds index lists once per
// batch (memoizing each attribute's shard in a dense AttrId-indexed table,
// so repeated attributes across the batch resolve without a hash probe)
// and hands every shard an EventBatchView over the original event storage
// — no Event is ever copied, gathered, or moved, however sparse the
// sub-batch. Shards no event reaches do no work at all. The events_routed
// / events_skipped counters expose the saved (event, shard) pairs to
// benches, so the win is visible even on single-core hosts where
// wall-clock can't show it.
//
// match_batch fans one task per shard over the pool (plus the calling
// thread) into per-shard result buffers, then merges per event in
// ascending shard order (spill last). The merge order depends only on
// shard placement, never on thread scheduling — and a pre-filtered shard
// contributes exactly the hits it would have produced on the full batch
// (skipped (event, shard) pairs are provably matchless, and per-event
// engine output is independent of batch composition) — so output is
// identical for any worker_threads setting, including 0, and for the
// pre-filter on or off; tests/pubsub_sharding_test.cpp and the
// differential fuzz harness pin this down.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "pubsub/attr_table.h"
#include "pubsub/matcher.h"
#include "pubsub/matcher_registry.h"
#include "util/thread_pool.h"

namespace reef::pubsub {

/// Shard count used when a sharded engine is created by bare registry name
/// ("sharded:<inner>") with no explicit configuration.
inline constexpr std::size_t kDefaultShardCount = 4;

class ShardedMatcher final : public Matcher {
 public:
  struct Config {
    /// Anchor-hash shards (>= 1); the spill shard is always extra.
    std::size_t shard_count = kDefaultShardCount;
    /// Pool threads for match_batch; 0 = run shards inline on the caller.
    std::size_t worker_threads = 0;
    /// Inner engine, by MatcherRegistry name. Must not itself be sharded.
    std::string inner_engine = std::string(kDefaultEngine);
    /// Shard-aware event pre-filtering (see the file comment). Ablation
    /// knob: output is byte-identical on or off, only per-shard work and
    /// the events_routed/events_skipped counters differ.
    bool prefilter_enabled = true;
  };

  explicit ShardedMatcher(Config config);

  using Matcher::match;
  using Matcher::match_batch;
  void add(SubscriptionId id, Filter filter) override;
  void remove(SubscriptionId id) override;
  void match(const Event& event,
             std::vector<SubscriptionId>& out) const override;
  /// Fans the batch out over the shards (one task per shard, zero-copy
  /// index-span sub-batches when pre-filtering is on) and merges the
  /// per-shard hit lists in shard order; see the file comment.
  void match_batch(const EventBatchView& events,
                   std::vector<std::vector<SubscriptionId>>& out)
      const override;
  std::size_t size() const noexcept override { return placed_.size(); }
  std::string name() const override {
    return std::string(kShardedPrefix) + config_.inner_engine;
  }
  /// Structural maintenance fans out to every shard (each inner engine
  /// repairs its own amortized state; shard placement never changes — it
  /// is a pure function of the filter's first-constraint attribute).
  std::size_t maintain(std::size_t max_bucket) override;
  /// Aggregated over the shards: largest bucket anywhere, bucket and
  /// filter counts summed — feeds the routing table's skew trigger.
  EqBucketStats eq_bucket_stats() const noexcept override;

  // --- introspection (tests and benches) ------------------------------------
  std::size_t shard_count() const noexcept { return config_.shard_count; }
  std::size_t worker_threads() const noexcept {
    return config_.worker_threads;
  }
  bool prefilter_enabled() const noexcept {
    return config_.prefilter_enabled;
  }
  /// Filters on anchor shard `shard` (< shard_count()).
  std::size_t shard_size(std::size_t shard) const {
    return shards_.at(shard)->size();
  }
  /// Anchorless (universal) filters parked on the spill shard.
  std::size_t spill_size() const { return shards_.back()->size(); }
  /// Cumulative (event, shard) pairs actually processed by a shard since
  /// construction (or the last reset). With the pre-filter off every
  /// event reaches every shard, so routed == events * (shard_count + 1).
  std::uint64_t events_routed() const noexcept { return events_routed_; }
  /// Cumulative (event, shard) pairs the pre-filter actually avoided.
  /// routed + skipped == events * (shard_count + 1).
  std::uint64_t events_skipped() const noexcept { return events_skipped_; }
  void reset_event_counters() const noexcept {
    events_routed_ = 0;
    events_skipped_ = 0;
  }

 private:
  /// Bookkeeping for one live anchor attribute: which shard it hashes to
  /// and how many registered filters are placed by it.
  struct AnchorAttr {
    std::size_t shard = 0;
    std::size_t count = 0;
  };
  /// Where a registered filter lives. `anchor_attr` is the placement
  /// attribute (kNoAttrId for spill-shard filters).
  struct Placement {
    std::size_t shard = 0;
    AttrId anchor_attr = kNoAttrId;
  };

  std::size_t shard_of(const Filter& filter) const noexcept;
  /// The one implementation of the pre-filter rule: the anchor shard the
  /// presence map routes `attr` to, or kNoAnchorShard when no live filter
  /// is placed by it. Both the single-event path (candidate_shards) and
  /// the batch memo resolve through this.
  static constexpr std::int32_t kNoAnchorShard = -1;
  std::int32_t anchor_shard_of(AttrId attr) const noexcept;
  /// Appends the shards `event` can possibly match on (ascending, spill
  /// last — the merge order).
  void candidate_shards(const Event& event,
                        std::vector<std::size_t>& out) const;

  Config config_;
  /// shard_count anchor shards followed by the spill shard.
  std::vector<std::unique_ptr<Matcher>> shards_;
  std::unordered_map<SubscriptionId, Placement> placed_;
  /// Attribute-presence map for the pre-filter: anchor attribute id ->
  /// {shard, live-filter count}. Maintained on add/remove regardless of
  /// the knob so toggling it is purely a routing decision.
  std::unordered_map<AttrId, AnchorAttr, AttrIdHash> anchor_attrs_;
  std::unique_ptr<util::ThreadPool> pool_;  // null when worker_threads == 0
  /// Pre-filter accounting; mutated only on the thread calling match /
  /// match_batch (before the fan-out), so no synchronization is needed.
  mutable std::uint64_t events_routed_ = 0;
  mutable std::uint64_t events_skipped_ = 0;
};

}  // namespace reef::pubsub
