// Sharded matching engine: partitions filter state across N inner matchers
// so one broker can fan a match_batch out over a worker pool.
//
// Placement is static and content-based: a filter lands on the shard given
// by the hash of its *anchor attribute* — the attribute of its first
// constraint in canonical order (filters are conjunctions, so a matching
// event necessarily carries every constrained attribute; any deterministic
// choice is correct). Filters with no constraints have no anchor and go to
// a dedicated spill shard. Each shard is a full Matcher instance of the
// configured inner engine, so "sharded:anchor-index" shards the selective
// hash index and "sharded:counting" shards the counting tables.
//
// match_batch runs every shard over the whole batch — one task per shard
// on the pool (plus the calling thread) — into per-shard result buffers,
// then merges per event in ascending shard order (spill last). The merge
// order depends only on shard placement, never on thread scheduling, so
// output is identical for any worker_threads setting, including 0; the
// determinism test in tests/pubsub_sharding_test.cpp pins this down.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "pubsub/matcher.h"
#include "pubsub/matcher_registry.h"
#include "util/thread_pool.h"

namespace reef::pubsub {

/// Shard count used when a sharded engine is created by bare registry name
/// ("sharded:<inner>") with no explicit configuration.
inline constexpr std::size_t kDefaultShardCount = 4;

class ShardedMatcher final : public Matcher {
 public:
  struct Config {
    /// Anchor-hash shards (>= 1); the spill shard is always extra.
    std::size_t shard_count = kDefaultShardCount;
    /// Pool threads for match_batch; 0 = run shards inline on the caller.
    std::size_t worker_threads = 0;
    /// Inner engine, by MatcherRegistry name. Must not itself be sharded.
    std::string inner_engine = std::string(kDefaultEngine);
  };

  explicit ShardedMatcher(Config config);

  using Matcher::match;
  void add(SubscriptionId id, Filter filter) override;
  void remove(SubscriptionId id) override;
  void match(const Event& event,
             std::vector<SubscriptionId>& out) const override;
  /// Fans the batch out over the shards (one task per shard) and merges
  /// the per-shard hit lists in shard order; see the file comment.
  void match_batch(std::span<const Event> events,
                   std::vector<std::vector<SubscriptionId>>& out)
      const override;
  std::size_t size() const noexcept override { return placed_.size(); }
  std::string name() const override {
    return std::string(kShardedPrefix) + config_.inner_engine;
  }

  // --- introspection (tests and benches) ------------------------------------
  std::size_t shard_count() const noexcept { return config_.shard_count; }
  std::size_t worker_threads() const noexcept {
    return config_.worker_threads;
  }
  /// Filters on anchor shard `shard` (< shard_count()).
  std::size_t shard_size(std::size_t shard) const {
    return shards_.at(shard)->size();
  }
  /// Anchorless (universal) filters parked on the spill shard.
  std::size_t spill_size() const { return shards_.back()->size(); }

 private:
  std::size_t shard_of(const Filter& filter) const noexcept;

  Config config_;
  /// shard_count anchor shards followed by the spill shard.
  std::vector<std::unique_ptr<Matcher>> shards_;
  std::unordered_map<SubscriptionId, std::size_t> placed_;
  std::unique_ptr<util::ThreadPool> pool_;  // null when worker_threads == 0
};

}  // namespace reef::pubsub
