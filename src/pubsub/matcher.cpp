#include "pubsub/matcher.h"

#include <algorithm>

namespace reef::pubsub {

// --- BruteForceMatcher ------------------------------------------------------

void BruteForceMatcher::add(SubscriptionId id, Filter filter) {
  filters_.insert_or_assign(id, std::move(filter));
}

void BruteForceMatcher::remove(SubscriptionId id) { filters_.erase(id); }

void BruteForceMatcher::match(const Event& event,
                              std::vector<SubscriptionId>& out) const {
  for (const auto& [id, filter] : filters_) {
    if (filter.matches(event)) out.push_back(id);
  }
}

// --- IndexMatcher -----------------------------------------------------------

Value IndexMatcher::canonical(const Value& v) {
  if (const auto n = v.numeric()) return Value(*n);
  return v;
}

void IndexMatcher::add(SubscriptionId id, Filter filter) {
  remove(id);  // replace semantics
  Entry entry;
  entry.filter = std::move(filter);
  if (entry.filter.empty()) {
    universal_.push_back(id);
    filters_.emplace(id, std::move(entry));
    return;
  }
  // Anchor on the equality constraint whose bucket is currently smallest;
  // absent any equality constraint, fall back to a scan list keyed by the
  // first constraint's attribute.
  const Constraint* best = nullptr;
  std::size_t best_size = ~std::size_t{0};
  for (const auto& c : entry.filter.constraints()) {
    if (c.op() != Op::kEq) continue;
    std::size_t bucket = 0;
    if (const auto attr_it = eq_.find(c.attribute()); attr_it != eq_.end()) {
      if (const auto value_it = attr_it->second.find(canonical(c.value()));
          value_it != attr_it->second.end()) {
        bucket = value_it->second.size();
      }
    }
    if (bucket < best_size) {
      best_size = bucket;
      best = &c;
    }
  }
  if (best != nullptr) {
    entry.eq_anchor = true;
    entry.anchor_attr = best->attribute();
    entry.anchor_value = canonical(best->value());
    eq_[entry.anchor_attr][entry.anchor_value].push_back(id);
    ++eq_count_;
  } else {
    entry.anchor_attr = entry.filter.constraints().front().attribute();
    scan_[entry.anchor_attr].push_back(id);
    ++scan_count_;
  }
  filters_.emplace(id, std::move(entry));
}

void IndexMatcher::remove(SubscriptionId id) {
  const auto it = filters_.find(id);
  if (it == filters_.end()) return;
  const Entry& entry = it->second;
  if (entry.filter.empty()) {
    std::erase(universal_, id);
  } else if (entry.eq_anchor) {
    auto& by_value = eq_.at(entry.anchor_attr);
    auto& bucket = by_value.at(entry.anchor_value);
    std::erase(bucket, id);
    if (bucket.empty()) by_value.erase(entry.anchor_value);
    if (by_value.empty()) eq_.erase(entry.anchor_attr);
    --eq_count_;
  } else {
    auto& list = scan_.at(entry.anchor_attr);
    std::erase(list, id);
    if (list.empty()) scan_.erase(entry.anchor_attr);
    --scan_count_;
  }
  filters_.erase(it);
}

void IndexMatcher::match(const Event& event,
                         std::vector<SubscriptionId>& out) const {
  out.insert(out.end(), universal_.begin(), universal_.end());
  // Probe the anchors reachable from the event's own attributes; each
  // candidate is evaluated fully. Every filter lives under exactly one
  // anchor, so no deduplication is needed, and a matching filter's anchor
  // constraint is by definition satisfied by the event — the probe always
  // finds it.
  for (const auto& [attr, value] : event.attributes()) {
    if (const auto attr_it = eq_.find(attr); attr_it != eq_.end()) {
      if (const auto value_it = attr_it->second.find(canonical(value));
          value_it != attr_it->second.end()) {
        for (const SubscriptionId id : value_it->second) {
          if (filters_.at(id).filter.matches(event)) out.push_back(id);
        }
      }
    }
    if (const auto scan_it = scan_.find(attr); scan_it != scan_.end()) {
      for (const SubscriptionId id : scan_it->second) {
        if (filters_.at(id).filter.matches(event)) out.push_back(id);
      }
    }
  }
}

std::unique_ptr<Matcher> make_matcher(bool use_index) {
  if (use_index) return std::make_unique<IndexMatcher>();
  return std::make_unique<BruteForceMatcher>();
}

}  // namespace reef::pubsub
