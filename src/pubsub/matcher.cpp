#include "pubsub/matcher.h"

#include <algorithm>
#include <map>
#include <string_view>
#include <utility>

namespace reef::pubsub {

Value canonical_numeric(const Value& v) {
  if (const auto n = v.numeric()) return Value(*n);
  return v;
}

void Matcher::match_batch(std::span<const Event> events,
                          std::vector<std::vector<SubscriptionId>>& out) const {
  out.assign(events.size(), {});
  for (std::size_t i = 0; i < events.size(); ++i) match(events[i], out[i]);
}

// --- BruteForceMatcher ------------------------------------------------------

void BruteForceMatcher::add(SubscriptionId id, Filter filter) {
  filters_.insert_or_assign(id, std::move(filter));
}

void BruteForceMatcher::remove(SubscriptionId id) { filters_.erase(id); }

void BruteForceMatcher::match(const Event& event,
                              std::vector<SubscriptionId>& out) const {
  for (const auto& [id, filter] : filters_) {
    if (filter.matches(event)) out.push_back(id);
  }
}

void BruteForceMatcher::match_batch(
    std::span<const Event> events,
    std::vector<std::vector<SubscriptionId>>& out) const {
  out.assign(events.size(), {});
  for (const auto& [id, filter] : filters_) {
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (filter.matches(events[i])) out[i].push_back(id);
    }
  }
}

// --- IndexMatcher -----------------------------------------------------------

void IndexMatcher::add(SubscriptionId id, Filter filter) {
  remove(id);  // replace semantics
  Entry entry;
  entry.filter = std::move(filter);
  if (entry.filter.empty()) {
    universal_.push_back(id);
    filters_.emplace(id, std::move(entry));
    return;
  }
  // Anchor on the equality constraint whose bucket is currently smallest;
  // absent any equality constraint, fall back to a scan list keyed by the
  // first constraint's attribute.
  const Constraint* best = nullptr;
  std::size_t best_size = ~std::size_t{0};
  for (const auto& c : entry.filter.constraints()) {
    if (c.op() != Op::kEq) continue;
    std::size_t bucket = 0;
    if (const auto attr_it = eq_.find(c.attribute()); attr_it != eq_.end()) {
      if (const auto value_it =
              attr_it->second.find(canonical_numeric(c.value()));
          value_it != attr_it->second.end()) {
        bucket = value_it->second.size();
      }
    }
    if (bucket < best_size) {
      best_size = bucket;
      best = &c;
    }
  }
  if (best != nullptr) {
    entry.eq_anchor = true;
    entry.anchor_attr = best->attribute();
    entry.anchor_value = canonical_numeric(best->value());
    eq_[entry.anchor_attr][entry.anchor_value].push_back(id);
    ++eq_count_;
  } else {
    entry.anchor_attr = entry.filter.constraints().front().attribute();
    scan_[entry.anchor_attr].push_back(id);
    ++scan_count_;
  }
  filters_.emplace(id, std::move(entry));
}

void IndexMatcher::remove(SubscriptionId id) {
  const auto it = filters_.find(id);
  if (it == filters_.end()) return;
  const Entry& entry = it->second;
  if (entry.filter.empty()) {
    std::erase(universal_, id);
  } else if (entry.eq_anchor) {
    auto& by_value = eq_.at(entry.anchor_attr);
    auto& bucket = by_value.at(entry.anchor_value);
    std::erase(bucket, id);
    if (bucket.empty()) by_value.erase(entry.anchor_value);
    if (by_value.empty()) eq_.erase(entry.anchor_attr);
    --eq_count_;
  } else {
    auto& list = scan_.at(entry.anchor_attr);
    std::erase(list, id);
    if (list.empty()) scan_.erase(entry.anchor_attr);
    --scan_count_;
  }
  filters_.erase(it);
}

std::optional<std::string> IndexMatcher::anchor_attribute(
    SubscriptionId id) const {
  const auto it = filters_.find(id);
  if (it == filters_.end()) return std::nullopt;
  return it->second.anchor_attr;
}

std::size_t IndexMatcher::largest_eq_bucket() const noexcept {
  std::size_t largest = 0;
  for (const auto& [attr, by_value] : eq_) {
    for (const auto& [value, bucket] : by_value) {
      largest = std::max(largest, bucket.size());
    }
  }
  return largest;
}

std::size_t IndexMatcher::rebalance(std::size_t max_bucket) {
  // Collect victims first: re-adding mutates the buckets being iterated.
  // Sorted ids make the pass order (and therefore the resulting anchor
  // assignment) independent of hash-map iteration order. Filters with a
  // single equality constraint are pinned to their bucket — skip them
  // rather than churn them through a pointless remove/re-add cycle.
  std::vector<SubscriptionId> victims;
  for (const auto& [attr, by_value] : eq_) {
    for (const auto& [value, bucket] : by_value) {
      if (bucket.size() <= max_bucket) continue;
      for (const SubscriptionId id : bucket) {
        const Filter& filter = filters_.at(id).filter;
        std::size_t eq_constraints = 0;
        for (const auto& c : filter.constraints()) {
          if (c.op() == Op::kEq && ++eq_constraints > 1) break;
        }
        if (eq_constraints > 1) victims.push_back(id);
      }
    }
  }
  std::sort(victims.begin(), victims.end());
  std::size_t moved = 0;
  for (const SubscriptionId id : victims) {
    const Entry& entry = filters_.at(id);
    const std::string old_attr = entry.anchor_attr;
    const Value old_value = entry.anchor_value;
    Filter filter = entry.filter;
    add(id, std::move(filter));  // re-runs anchor selection
    const Entry& after = filters_.at(id);
    if (after.anchor_attr != old_attr ||
        !(after.anchor_value == old_value)) {
      ++moved;
    }
  }
  return moved;
}

void IndexMatcher::match(const Event& event,
                         std::vector<SubscriptionId>& out) const {
  out.insert(out.end(), universal_.begin(), universal_.end());
  // Probe the anchors reachable from the event's own attributes; each
  // candidate is evaluated fully. Every filter lives under exactly one
  // anchor, so no deduplication is needed, and a matching filter's anchor
  // constraint is by definition satisfied by the event — the probe always
  // finds it.
  for (const auto& [attr, value] : event.attributes()) {
    if (const auto attr_it = eq_.find(attr); attr_it != eq_.end()) {
      if (const auto value_it = attr_it->second.find(canonical_numeric(value));
          value_it != attr_it->second.end()) {
        for (const SubscriptionId id : value_it->second) {
          if (filters_.at(id).filter.matches(event)) out.push_back(id);
        }
      }
    }
    if (const auto scan_it = scan_.find(attr); scan_it != scan_.end()) {
      for (const SubscriptionId id : scan_it->second) {
        if (filters_.at(id).filter.matches(event)) out.push_back(id);
      }
    }
  }
}

void IndexMatcher::match_batch(
    std::span<const Event> events,
    std::vector<std::vector<SubscriptionId>>& out) const {
  out.assign(events.size(), {});
  for (auto& hits : out) {
    hits.insert(hits.end(), universal_.begin(), universal_.end());
  }
  // Group the batch by attribute: one eq_/scan_ probe per distinct
  // attribute across the whole batch. The string_views alias the events'
  // own attribute keys, which outlive this call.
  std::map<std::string_view, std::vector<std::pair<std::size_t, const Value*>>>
      by_attr;
  for (std::size_t i = 0; i < events.size(); ++i) {
    for (const auto& [attr, value] : events[i].attributes()) {
      by_attr[attr].emplace_back(i, &value);
    }
  }
  for (const auto& [attr_view, occurrences] : by_attr) {
    const std::string attr(attr_view);
    if (const auto attr_it = eq_.find(attr); attr_it != eq_.end()) {
      // Sub-group by canonical value so each bucket is probed once and
      // each candidate filter is fetched once, however many events of the
      // batch share the value.
      std::unordered_map<Value, std::vector<std::size_t>> by_value;
      for (const auto& [i, value] : occurrences) {
        by_value[canonical_numeric(*value)].push_back(i);
      }
      for (const auto& [value, event_indices] : by_value) {
        const auto value_it = attr_it->second.find(value);
        if (value_it == attr_it->second.end()) continue;
        for (const SubscriptionId id : value_it->second) {
          const Filter& filter = filters_.at(id).filter;
          for (const std::size_t i : event_indices) {
            if (filter.matches(events[i])) out[i].push_back(id);
          }
        }
      }
    }
    if (const auto scan_it = scan_.find(attr); scan_it != scan_.end()) {
      for (const SubscriptionId id : scan_it->second) {
        const Filter& filter = filters_.at(id).filter;
        for (const auto& [i, value] : occurrences) {
          if (filter.matches(events[i])) out[i].push_back(id);
        }
      }
    }
  }
}

// --- CountingMatcher --------------------------------------------------------

void CountingMatcher::add(SubscriptionId id, Filter filter) {
  remove(id);  // replace semantics
  if (filter.empty()) {
    universal_.push_back(id);
    filters_.emplace(id, std::move(filter));
    return;
  }
  for (const auto& c : filter.constraints()) {
    if (c.op() == Op::kEq) {
      eq_[c.attribute()][canonical_numeric(c.value())].push_back(id);
    } else {
      noneq_[c.attribute()].push_back(NonEqPosting{c, id});
    }
    ++postings_;
  }
  filters_.emplace(id, std::move(filter));
}

void CountingMatcher::remove(SubscriptionId id) {
  const auto it = filters_.find(id);
  if (it == filters_.end()) return;
  const Filter& filter = it->second;
  if (filter.empty()) {
    std::erase(universal_, id);
  } else {
    for (const auto& c : filter.constraints()) {
      if (c.op() == Op::kEq) {
        const auto attr_it = eq_.find(c.attribute());
        auto& bucket = attr_it->second.at(canonical_numeric(c.value()));
        // erase one posting (duplicate constraints each hold their own)
        bucket.erase(std::find(bucket.begin(), bucket.end(), id));
        if (bucket.empty()) {
          attr_it->second.erase(canonical_numeric(c.value()));
        }
        if (attr_it->second.empty()) eq_.erase(attr_it);
      } else {
        auto& postings = noneq_.at(c.attribute());
        const auto posting_it =
            std::find_if(postings.begin(), postings.end(),
                         [&](const NonEqPosting& p) {
                           return p.id == id && p.constraint == c;
                         });
        postings.erase(posting_it);
        if (postings.empty()) noneq_.erase(c.attribute());
      }
      --postings_;
    }
  }
  filters_.erase(it);
}

void CountingMatcher::match(const Event& event,
                            std::vector<SubscriptionId>& out) const {
  out.insert(out.end(), universal_.begin(), universal_.end());
  // One counter per filter touched by a satisfied constraint; a filter
  // fires when its count reaches its constraint total. Event attributes
  // are unique per name, so each posting is tallied at most once.
  std::unordered_map<SubscriptionId, std::size_t> counts;
  for (const auto& [attr, value] : event.attributes()) {
    if (const auto attr_it = eq_.find(attr); attr_it != eq_.end()) {
      if (const auto value_it = attr_it->second.find(canonical_numeric(value));
          value_it != attr_it->second.end()) {
        for (const SubscriptionId id : value_it->second) ++counts[id];
      }
    }
    if (const auto noneq_it = noneq_.find(attr); noneq_it != noneq_.end()) {
      for (const auto& posting : noneq_it->second) {
        if (posting.constraint.matches(value)) ++counts[posting.id];
      }
    }
  }
  for (const auto& [id, satisfied] : counts) {
    if (satisfied == filters_.at(id).size()) out.push_back(id);
  }
}

}  // namespace reef::pubsub
