#include "pubsub/matcher.h"

#include <algorithm>
#include <utility>

#include "pubsub/range_index.h"
#include "util/hash.h"

namespace reef::pubsub {

Value canonical_numeric(const Value& v) {
  // Fold ints onto their double image only when the image is exact: the
  // engines that trust bucket identity without re-evaluating (counting,
  // bitset) would otherwise merge 2^53 with 2^53+1 — values the exact
  // Value::compare keeps distinct — and report false matches.
  if (v.type() == Value::Type::kInt) {
    if (const auto d = Value::exact_double_of_int(v.as_int())) {
      return Value(*d);
    }
  }
  return v;
}

void Matcher::match_batch(const EventBatchView& events,
                          std::vector<std::vector<SubscriptionId>>& out) const {
  out.assign(events.size(), {});
  for (std::size_t i = 0; i < events.size(); ++i) match(events[i], out[i]);
}

void Matcher::match_batch_scored(
    const EventBatchView& events, const ScoringIndex& scoring,
    std::vector<std::vector<ScoredHit>>& out) const {
  std::vector<std::vector<SubscriptionId>> hits;
  match_batch(events, hits);
  out.assign(events.size(), {});
  for (std::size_t i = 0; i < events.size(); ++i) {
    out[i].reserve(hits[i].size());
    for (const SubscriptionId id : hits[i]) {
      const ScoringSpec* spec = scoring.find(id);
      out[i].push_back(
          {id, spec != nullptr ? score_event(*spec, events[i])
                               : kConstantScore});
    }
  }
}

// --- BruteForceMatcher ------------------------------------------------------

void BruteForceMatcher::add(SubscriptionId id, Filter filter) {
  filters_.insert_or_assign(id, std::move(filter));
}

void BruteForceMatcher::remove(SubscriptionId id) { filters_.erase(id); }

void BruteForceMatcher::match(const Event& event,
                              std::vector<SubscriptionId>& out) const {
  for (const auto& [id, filter] : filters_) {
    if (filter.matches(event)) out.push_back(id);
  }
}

void BruteForceMatcher::match_batch(
    const EventBatchView& events,
    std::vector<std::vector<SubscriptionId>>& out) const {
  out.assign(events.size(), {});
  for (const auto& [id, filter] : filters_) {
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (filter.matches(events[i])) out[i].push_back(id);
    }
  }
}

// --- IndexMatcher -----------------------------------------------------------

void IndexMatcher::add(SubscriptionId id, Filter filter) {
  remove(id);  // replace semantics
  Entry entry;
  entry.filter = std::move(filter);
  if (entry.filter.empty()) {
    universal_.push_back(id);
    filters_.emplace(id, std::move(entry));
    return;
  }
  // Anchor priority (see the class comment): the equality constraint whose
  // bucket is currently smallest, else the first in constraint with a
  // bucketable member, else the first sorted-indexable range constraint,
  // else the first indexable prefix / suffix / contains constraint, else
  // the residual scan list keyed by the first constraint's attribute. Each
  // anchor constraint is a necessary condition of its filter, so matching
  // stays correct for any choice — priority only steers probe cost.
  const Constraint* best = nullptr;
  std::size_t best_size = ~std::size_t{0};
  const Constraint* in_anchor = nullptr;
  const Constraint* range_anchor = nullptr;
  const Constraint* prefix_anchor = nullptr;
  const Constraint* suffix_anchor = nullptr;
  const Constraint* contains_anchor = nullptr;
  for (const auto& c : entry.filter.constraints()) {
    if (c.op() != Op::kEq) {
      if (in_anchor == nullptr && c.op() == Op::kIn) {
        for (const Value& m : c.members()) {
          if (eq_bucketable(m)) {
            in_anchor = &c;
            break;
          }
        }
      }
      if (range_anchor == nullptr && is_sortable_range(c)) range_anchor = &c;
      if (prefix_anchor == nullptr && is_sortable_prefix(c)) {
        prefix_anchor = &c;
      }
      if (suffix_anchor == nullptr && is_sortable_suffix(c)) {
        suffix_anchor = &c;
      }
      if (contains_anchor == nullptr && is_sortable_contains(c)) {
        contains_anchor = &c;
      }
      continue;
    }
    std::size_t bucket = 0;
    if (const auto attr_it = eq_.find(c.attr_id()); attr_it != eq_.end()) {
      if (const auto value_it =
              attr_it->second.find(canonical_numeric(c.value()));
          value_it != attr_it->second.end()) {
        bucket = value_it->second.size();
      }
    }
    if (bucket < best_size) {
      best_size = bucket;
      best = &c;
    }
  }
  if (best != nullptr) {
    entry.kind = AnchorKind::kEqBucket;
    entry.anchor_attr = best->attr_id();
    entry.anchor_value = canonical_numeric(best->value());
    auto& bucket = eq_[entry.anchor_attr][entry.anchor_value];
    bucket.push_back(id);
    note_bucket_grew(entry.anchor_attr, entry.anchor_value, bucket.size());
    ++eq_count_;
  } else if (in_anchor != nullptr) {
    // Post the filter under every bucketable member of the set. An event
    // value equals at most one canonical member, so a probe finds the
    // filter at most once — and a matching event satisfies the in
    // constraint, so its member bucket is always probed (necessary
    // condition, like any other anchor). Unbucketable members (null, NaN)
    // can never be satisfied and are skipped symmetrically in remove().
    entry.kind = AnchorKind::kIn;
    entry.anchor_attr = in_anchor->attr_id();
    auto& by_value = eq_[entry.anchor_attr];
    for (const Value& m : in_anchor->members()) {
      if (!eq_bucketable(m)) continue;
      const Value key = canonical_numeric(m);
      auto& bucket = by_value[key];
      bucket.push_back(id);
      note_bucket_grew(entry.anchor_attr, key, bucket.size());
    }
    ++in_count_;
  } else if (range_anchor != nullptr) {
    entry.kind = AnchorKind::kRange;
    entry.anchor_attr = range_anchor->attr_id();
    entry.anchor_value = range_anchor->value();
    entry.anchor_strict = is_strict_op(range_anchor->op());
    entry.anchor_lower = is_lower_bound_op(range_anchor->op());
    RangeIndex& index = range_[entry.anchor_attr];
    RangePosting posting{entry.anchor_value, entry.anchor_strict, id};
    if (entry.anchor_lower) {
      index.lower.insert(
          std::upper_bound(index.lower.begin(), index.lower.end(), posting,
                           lower_bound_order<RangePosting>),
          std::move(posting));
    } else {
      index.upper.insert(
          std::upper_bound(index.upper.begin(), index.upper.end(), posting,
                           upper_bound_order<RangePosting>),
          std::move(posting));
    }
    ++range_count_;
  } else if (prefix_anchor != nullptr) {
    entry.kind = AnchorKind::kPrefix;
    entry.anchor_attr = prefix_anchor->attr_id();
    entry.anchor_value = prefix_anchor->value();
    PrefixIndex& index = prefix_[entry.anchor_attr];
    const std::string& pattern = entry.anchor_value.as_string();
    auto it = prefix_posting_pos(index.postings, pattern);
    if (it == index.postings.end() || it->prefix != pattern) {
      it = index.postings.insert(it, PrefixPosting{pattern, {}});
      add_prefix_length(index.lengths, pattern.size());
    }
    it->ids.push_back(id);
    ++prefix_count_;
  } else if (suffix_anchor != nullptr) {
    entry.kind = AnchorKind::kSuffix;
    entry.anchor_attr = suffix_anchor->attr_id();
    entry.anchor_value = suffix_anchor->value();  // original pattern
    PrefixIndex& index = suffix_[entry.anchor_attr];
    const std::string pattern = reversed(entry.anchor_value.as_string());
    auto it = prefix_posting_pos(index.postings, pattern);
    if (it == index.postings.end() || it->prefix != pattern) {
      it = index.postings.insert(it, PrefixPosting{pattern, {}});
      add_prefix_length(index.lengths, pattern.size());
    }
    it->ids.push_back(id);
    ++suffix_count_;
  } else if (contains_anchor != nullptr) {
    entry.kind = AnchorKind::kContains;
    entry.anchor_attr = contains_anchor->attr_id();
    entry.anchor_value = contains_anchor->value();
    ContainsIndex& index = contains_[entry.anchor_attr];
    const std::string& pattern = entry.anchor_value.as_string();
    auto it = contains_posting_pos(index.postings, pattern);
    if (it == index.postings.end() || it->pattern != pattern) {
      it = index.postings.insert(it, ContainsPosting{pattern, {}});
    }
    it->ids.push_back(id);
    ++contains_count_;
  } else {
    entry.kind = AnchorKind::kScan;
    entry.anchor_attr = entry.filter.constraints().front().attr_id();
    scan_[entry.anchor_attr].push_back(id);
    ++scan_count_;
  }
  filters_.emplace(id, std::move(entry));
}

void IndexMatcher::remove(SubscriptionId id) {
  const auto it = filters_.find(id);
  if (it == filters_.end()) return;
  const Entry& entry = it->second;
  switch (entry.kind) {
    case AnchorKind::kUniversal:
      std::erase(universal_, id);
      break;
    case AnchorKind::kEqBucket: {
      auto& by_value = eq_.at(entry.anchor_attr);
      auto& bucket = by_value.at(entry.anchor_value);
      std::erase(bucket, id);
      note_bucket_shrank(entry.anchor_attr, entry.anchor_value,
                         bucket.size());
      if (bucket.empty()) by_value.erase(entry.anchor_value);
      if (by_value.empty()) eq_.erase(entry.anchor_attr);
      --eq_count_;
      break;
    }
    case AnchorKind::kIn: {
      // Re-find the anchor constraint the same way add() chose it: the
      // first in constraint with a bucketable member.
      const Constraint* anchor = nullptr;
      for (const auto& c : entry.filter.constraints()) {
        if (c.op() != Op::kIn) continue;
        for (const Value& m : c.members()) {
          if (eq_bucketable(m)) {
            anchor = &c;
            break;
          }
        }
        if (anchor != nullptr) break;
      }
      auto& by_value = eq_.at(entry.anchor_attr);
      for (const Value& m : anchor->members()) {
        if (!eq_bucketable(m)) continue;
        const Value key = canonical_numeric(m);
        auto& bucket = by_value.at(key);
        std::erase(bucket, id);
        note_bucket_shrank(entry.anchor_attr, key, bucket.size());
        if (bucket.empty()) by_value.erase(key);
      }
      if (by_value.empty()) eq_.erase(entry.anchor_attr);
      --in_count_;
      break;
    }
    case AnchorKind::kRange: {
      const auto range_it = range_.find(entry.anchor_attr);
      RangeIndex& index = range_it->second;
      auto& postings = entry.anchor_lower ? index.lower : index.upper;
      postings.erase(std::find_if(
          postings.begin(), postings.end(),
          [&](const RangePosting& p) { return p.id == id; }));
      if (index.lower.empty() && index.upper.empty()) range_.erase(range_it);
      --range_count_;
      break;
    }
    case AnchorKind::kPrefix: {
      const auto prefix_it = prefix_.find(entry.anchor_attr);
      PrefixIndex& index = prefix_it->second;
      const std::string& pattern = entry.anchor_value.as_string();
      const auto pos = prefix_posting_pos(index.postings, pattern);
      std::erase(pos->ids, id);
      if (pos->ids.empty()) {
        remove_prefix_length(index.lengths, pattern.size());
        index.postings.erase(pos);
      }
      if (index.postings.empty()) prefix_.erase(prefix_it);
      --prefix_count_;
      break;
    }
    case AnchorKind::kSuffix: {
      const auto suffix_it = suffix_.find(entry.anchor_attr);
      PrefixIndex& index = suffix_it->second;
      const std::string pattern = reversed(entry.anchor_value.as_string());
      const auto pos = prefix_posting_pos(index.postings, pattern);
      std::erase(pos->ids, id);
      if (pos->ids.empty()) {
        remove_prefix_length(index.lengths, pattern.size());
        index.postings.erase(pos);
      }
      if (index.postings.empty()) suffix_.erase(suffix_it);
      --suffix_count_;
      break;
    }
    case AnchorKind::kContains: {
      const auto contains_it = contains_.find(entry.anchor_attr);
      ContainsIndex& index = contains_it->second;
      const std::string& pattern = entry.anchor_value.as_string();
      const auto pos = contains_posting_pos(index.postings, pattern);
      std::erase(pos->ids, id);
      if (pos->ids.empty()) index.postings.erase(pos);
      if (index.postings.empty()) contains_.erase(contains_it);
      --contains_count_;
      break;
    }
    case AnchorKind::kScan: {
      auto& list = scan_.at(entry.anchor_attr);
      std::erase(list, id);
      if (list.empty()) scan_.erase(entry.anchor_attr);
      --scan_count_;
      break;
    }
  }
  filters_.erase(it);
}

std::optional<std::string> IndexMatcher::anchor_attribute(
    SubscriptionId id) const {
  const auto it = filters_.find(id);
  if (it == filters_.end()) return std::nullopt;
  if (it->second.anchor_attr == kNoAttrId) return std::string();
  return AttrTable::instance().name(it->second.anchor_attr);
}

std::size_t IndexMatcher::largest_eq_bucket() const noexcept {
  return eq_bucket_stats().largest;
}

EqBucketStats IndexMatcher::eq_bucket_stats() const noexcept {
  // O(1): the shape is maintained at every bucket push/erase by
  // note_bucket_grew/shrank — the routing table samples this on a churn
  // cadence, and the old full-bucket scan made every sample O(buckets).
  EqBucketStats stats;
  // Total bucket postings, not eq-anchored filters: an in-anchored filter
  // occupies one posting per bucketable member, and the skew ratio
  // (filters/buckets vs largest) is about bucket population.
  stats.filters = eq_postings_;
  stats.buckets = eq_buckets_;
  stats.largest = eq_largest_;
  stats.largest_key = eq_largest_ == 0 ? 0 : eq_largest_key_;
  return stats;
}

void IndexMatcher::note_bucket_grew(AttrId attr, const Value& value,
                                    std::size_t new_size) {
  ++eq_postings_;
  const std::size_t key =
      util::hash_combine(attr, std::hash<Value>{}(value));
  if (new_size == 1) {
    ++eq_buckets_;
  } else {
    auto& old_bin = eq_size_hist_[new_size - 1];
    if (const auto it = old_bin.find(key);
        it != old_bin.end() && --it->second == 0) {
      old_bin.erase(it);
    }
    if (old_bin.empty()) eq_size_hist_.erase(new_size - 1);
  }
  ++eq_size_hist_[new_size][key];
  if (new_size > eq_largest_) {
    eq_largest_ = new_size;
    eq_largest_key_ = key;
    // A tie at the old largest keeps the incumbent key: "first seen,
    // stable between unmodified samples", as the stats contract says.
  }
}

void IndexMatcher::note_bucket_shrank(AttrId attr, const Value& value,
                                      std::size_t new_size) {
  --eq_postings_;
  const std::size_t key =
      util::hash_combine(attr, std::hash<Value>{}(value));
  auto& old_bin = eq_size_hist_[new_size + 1];
  if (const auto it = old_bin.find(key);
      it != old_bin.end() && --it->second == 0) {
    old_bin.erase(it);
  }
  if (old_bin.empty()) eq_size_hist_.erase(new_size + 1);
  if (new_size == 0) {
    --eq_buckets_;
  } else {
    ++eq_size_hist_[new_size][key];
  }
  if (new_size + 1 == eq_largest_) {
    // The shrunk bucket itself sits at new_size, so the new largest is at
    // most one step down — the search is amortized O(1).
    while (eq_largest_ > 0 && !eq_size_hist_.contains(eq_largest_)) {
      --eq_largest_;
    }
    if (eq_largest_ == 0) {
      eq_largest_key_ = 0;
    } else if (!eq_size_hist_.at(eq_largest_).contains(eq_largest_key_)) {
      eq_largest_key_ = eq_size_hist_.at(eq_largest_).begin()->first;
    }
  }
}

std::size_t IndexMatcher::rebalance(std::size_t max_bucket) {
  // Collect victims first: re-adding mutates the buckets being iterated.
  // Sorted ids make the pass order (and therefore the resulting anchor
  // assignment) independent of hash-map iteration order. Filters with a
  // single equality constraint are pinned to their bucket — skip them
  // rather than churn them through a pointless remove/re-add cycle.
  std::vector<SubscriptionId> victims;
  for (const auto& [attr, by_value] : eq_) {
    for (const auto& [value, bucket] : by_value) {
      if (bucket.size() <= max_bucket) continue;
      for (const SubscriptionId id : bucket) {
        const Filter& filter = filters_.at(id).filter;
        std::size_t eq_constraints = 0;
        for (const auto& c : filter.constraints()) {
          if (c.op() == Op::kEq && ++eq_constraints > 1) break;
        }
        if (eq_constraints > 1) victims.push_back(id);
      }
    }
  }
  std::sort(victims.begin(), victims.end());
  std::size_t moved = 0;
  for (const SubscriptionId id : victims) {
    const Entry& entry = filters_.at(id);
    const AttrId old_attr = entry.anchor_attr;
    const Value old_value = entry.anchor_value;
    Filter filter = entry.filter;
    add(id, std::move(filter));  // re-runs anchor selection
    const Entry& after = filters_.at(id);
    if (after.anchor_attr != old_attr ||
        !(after.anchor_value == old_value)) {
      ++moved;
    }
  }
  return moved;
}

void IndexMatcher::match(const Event& event,
                         std::vector<SubscriptionId>& out) const {
  out.insert(out.end(), universal_.begin(), universal_.end());
  // Probe the anchors reachable from the event's own attributes; each
  // candidate is evaluated fully. Every filter lives under exactly one
  // anchor, so no deduplication is needed, and a matching filter's anchor
  // constraint is by definition satisfied by the event — the probe always
  // finds it. Attributes come out of the event in ascending AttrId order —
  // the same order the batch path uses, so per-event output is identical.
  for (const auto& [attr, value] : event.attrs()) {
    if (const auto attr_it = eq_.find(attr); attr_it != eq_.end()) {
      if (const auto value_it = attr_it->second.find(canonical_numeric(value));
          value_it != attr_it->second.end()) {
        for (const SubscriptionId id : value_it->second) {
          if (filters_.at(id).filter.matches(event)) out.push_back(id);
        }
      }
    }
    if (const auto range_it = range_.find(attr);
        range_it != range_.end() && range_sortable(value)) {
      // Binary-search the sorted bound arrays: the satisfied lower-bound
      // postings are a prefix, the satisfied upper-bound postings a
      // suffix; only those candidates are fetched and evaluated.
      const RangeIndex& index = range_it->second;
      const std::size_t lower_end = lower_satisfied_end(index.lower, value);
      for (std::size_t k = 0; k < lower_end; ++k) {
        const SubscriptionId id = index.lower[k].id;
        if (filters_.at(id).filter.matches(event)) out.push_back(id);
      }
      for (std::size_t k = upper_satisfied_begin(index.upper, value);
           k < index.upper.size(); ++k) {
        const SubscriptionId id = index.upper[k].id;
        if (filters_.at(id).filter.matches(event)) out.push_back(id);
      }
    }
    if (const auto prefix_it = prefix_.find(attr);
        prefix_it != prefix_.end() && value.is_string()) {
      probe_prefixes(prefix_it->second.postings, prefix_it->second.lengths,
                     value.as_string(), [&](const PrefixPosting& posting) {
                       for (const SubscriptionId id : posting.ids) {
                         if (filters_.at(id).filter.matches(event)) {
                           out.push_back(id);
                         }
                       }
                     });
    }
    if (const auto suffix_it = suffix_.find(attr);
        suffix_it != suffix_.end() && value.is_string()) {
      // Suffix tables hold reversed patterns; reverse the event string
      // once and the prefix probes do the rest.
      const std::string rev = reversed(value.as_string());
      probe_prefixes(suffix_it->second.postings, suffix_it->second.lengths,
                     rev, [&](const PrefixPosting& posting) {
                       for (const SubscriptionId id : posting.ids) {
                         if (filters_.at(id).filter.matches(event)) {
                           out.push_back(id);
                         }
                       }
                     });
    }
    if (const auto contains_it = contains_.find(attr);
        contains_it != contains_.end() && value.is_string()) {
      probe_contains(contains_it->second.postings, value.as_string(),
                     [&](const ContainsPosting& posting) {
                       for (const SubscriptionId id : posting.ids) {
                         if (filters_.at(id).filter.matches(event)) {
                           out.push_back(id);
                         }
                       }
                     });
    }
    if (const auto scan_it = scan_.find(attr); scan_it != scan_.end()) {
      for (const SubscriptionId id : scan_it->second) {
        if (filters_.at(id).filter.matches(event)) out.push_back(id);
      }
    }
  }
}

void IndexMatcher::match_batch(
    const EventBatchView& events,
    std::vector<std::vector<SubscriptionId>>& out) const {
  out.assign(events.size(), {});
  for (auto& hits : out) {
    hits.insert(hits.end(), universal_.begin(), universal_.end());
  }
  if (eq_.empty() && range_.empty() && prefix_.empty() && suffix_.empty() &&
      contains_.empty() && scan_.empty()) {
    return;
  }
  // Group the batch by attribute id into (position, value) occurrence
  // lists — one eq_/scan_ probe per distinct attribute across the whole
  // batch, no string hashing anywhere. Two grouping strategies, same
  // output: a dense AttrId-indexed table when the ids present span a
  // range comparable to the batch (the schema-bounded norm — attribute
  // names are a small vocabulary, see the AttrTable cardinality note),
  // and an O(A log A) sort of flattened occurrences when a stray
  // late-interned id would make the dense table bigger than the work it
  // saves. Either way groups are consumed in ascending AttrId with
  // events in view order inside each, so per-event output order is
  // independent of which other events share the batch (event.attrs()
  // iterates ascending too).
  std::size_t occurrence_count = 0;
  AttrId max_attr = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& attrs = events[i].attrs();
    occurrence_count += attrs.size();
    if (!attrs.empty()) max_attr = std::max(max_attr, attrs.back().first);
  }
  using Occurrences = std::vector<std::pair<std::uint32_t, const Value*>>;
  const auto match_group = [&](AttrId attr, const Occurrences& occurrences) {
    const auto eq_it = eq_.find(attr);
    const auto range_it = range_.find(attr);
    const auto prefix_it = prefix_.find(attr);
    const auto suffix_it = suffix_.find(attr);
    const auto contains_it = contains_.find(attr);
    if (eq_it != eq_.end() || range_it != range_.end() ||
        prefix_it != prefix_.end() || suffix_it != suffix_.end() ||
        contains_it != contains_.end()) {
      // Sub-group by canonical value so each probe — eq bucket lookup,
      // range binary search, prefix/suffix/contains table probe — runs
      // once and each candidate filter is fetched once, however many
      // events of the batch share the value. Probe order per value
      // mirrors the single-event path (eq, range lower, range upper,
      // prefix, suffix, contains, scan), and each event carries one value
      // per attribute, so per-event output order is batch-composition
      // independent.
      std::unordered_map<Value, std::vector<std::uint32_t>> by_value;
      for (const auto& [i, value] : occurrences) {
        by_value[canonical_numeric(*value)].push_back(i);
      }
      for (const auto& [value, event_positions] : by_value) {
        const auto evaluate = [&](SubscriptionId id) {
          const Filter& filter = filters_.at(id).filter;
          for (const std::uint32_t i : event_positions) {
            if (filter.matches(events[i])) out[i].push_back(id);
          }
        };
        if (eq_it != eq_.end()) {
          if (const auto value_it = eq_it->second.find(value);
              value_it != eq_it->second.end()) {
            for (const SubscriptionId id : value_it->second) evaluate(id);
          }
        }
        if (range_it != range_.end() && range_sortable(value)) {
          const RangeIndex& index = range_it->second;
          const std::size_t lower_end =
              lower_satisfied_end(index.lower, value);
          for (std::size_t k = 0; k < lower_end; ++k) {
            evaluate(index.lower[k].id);
          }
          for (std::size_t k = upper_satisfied_begin(index.upper, value);
               k < index.upper.size(); ++k) {
            evaluate(index.upper[k].id);
          }
        }
        if (prefix_it != prefix_.end() && value.is_string()) {
          probe_prefixes(prefix_it->second.postings,
                         prefix_it->second.lengths, value.as_string(),
                         [&](const PrefixPosting& posting) {
                           for (const SubscriptionId id : posting.ids) {
                             evaluate(id);
                           }
                         });
        }
        if (suffix_it != suffix_.end() && value.is_string()) {
          const std::string rev = reversed(value.as_string());
          probe_prefixes(suffix_it->second.postings,
                         suffix_it->second.lengths, rev,
                         [&](const PrefixPosting& posting) {
                           for (const SubscriptionId id : posting.ids) {
                             evaluate(id);
                           }
                         });
        }
        if (contains_it != contains_.end() && value.is_string()) {
          probe_contains(contains_it->second.postings, value.as_string(),
                         [&](const ContainsPosting& posting) {
                           for (const SubscriptionId id : posting.ids) {
                             evaluate(id);
                           }
                         });
        }
      }
    }
    if (const auto scan_it = scan_.find(attr); scan_it != scan_.end()) {
      for (const SubscriptionId id : scan_it->second) {
        const Filter& filter = filters_.at(id).filter;
        for (const auto& [i, value] : occurrences) {
          if (filter.matches(events[i])) out[i].push_back(id);
        }
      }
    }
  };
  const std::size_t id_span = static_cast<std::size_t>(max_attr) + 1;
  if (id_span <= 4 * occurrence_count + 64) {
    std::vector<Occurrences> by_attr(id_span);
    std::vector<AttrId> touched;
    for (std::uint32_t i = 0; i < events.size(); ++i) {
      for (const auto& [attr, value] : events[i].attrs()) {
        auto& occurrences = by_attr[attr];
        if (occurrences.empty()) touched.push_back(attr);
        occurrences.emplace_back(i, &value);
      }
    }
    std::sort(touched.begin(), touched.end());
    for (const AttrId attr : touched) match_group(attr, by_attr[attr]);
  } else {
    std::vector<std::pair<AttrId, std::pair<std::uint32_t, const Value*>>>
        flat;
    flat.reserve(occurrence_count);
    for (std::uint32_t i = 0; i < events.size(); ++i) {
      for (const auto& [attr, value] : events[i].attrs()) {
        flat.emplace_back(attr, std::make_pair(i, &value));
      }
    }
    std::sort(flat.begin(), flat.end(),
              [](const auto& a, const auto& b) {
                return a.first != b.first ? a.first < b.first
                                          : a.second.first < b.second.first;
              });
    Occurrences occurrences;
    for (std::size_t o = 0; o < flat.size();) {
      const AttrId attr = flat[o].first;
      occurrences.clear();
      for (; o < flat.size() && flat[o].first == attr; ++o) {
        occurrences.push_back(flat[o].second);
      }
      match_group(attr, occurrences);
    }
  }
}

// --- CountingMatcher --------------------------------------------------------

void CountingMatcher::add(SubscriptionId id, Filter filter) {
  remove(id);  // replace semantics
  if (filter.empty()) {
    universal_.push_back(id);
    filters_.emplace(id, std::move(filter));
    return;
  }
  for (const auto& c : filter.constraints()) {
    if (c.op() == Op::kEq) {
      eq_[c.attr_id()][canonical_numeric(c.value())].push_back(id);
      ++postings_;
    } else if (c.op() == Op::kIn) {
      // One eq posting per bucketable member. The event carries one value
      // per attribute and canonical members are pairwise distinct, so at
      // most one member bucket tallies — the constraint still counts at
      // most once. Unbucketable members (null, NaN) can never be
      // satisfied; with no bucketable member at all the constraint gets
      // no posting and the filter correctly never fires.
      for (const Value& m : c.members()) {
        if (!eq_bucketable(m)) continue;
        eq_[c.attr_id()][canonical_numeric(m)].push_back(id);
        ++postings_;
      }
    } else {
      noneq_[c.attr_id()].push_back(NonEqPosting{c, id});
      ++postings_;
    }
  }
  filters_.emplace(id, std::move(filter));
}

void CountingMatcher::remove(SubscriptionId id) {
  const auto it = filters_.find(id);
  if (it == filters_.end()) return;
  const Filter& filter = it->second;
  if (filter.empty()) {
    std::erase(universal_, id);
  } else {
    const auto erase_eq_posting = [this](AttrId attr, const Value& key,
                                         SubscriptionId sub) {
      const auto attr_it = eq_.find(attr);
      auto& bucket = attr_it->second.at(key);
      // erase one posting (duplicate constraints each hold their own)
      bucket.erase(std::find(bucket.begin(), bucket.end(), sub));
      if (bucket.empty()) attr_it->second.erase(key);
      if (attr_it->second.empty()) eq_.erase(attr_it);
      --postings_;
    };
    for (const auto& c : filter.constraints()) {
      if (c.op() == Op::kEq) {
        erase_eq_posting(c.attr_id(), canonical_numeric(c.value()), id);
      } else if (c.op() == Op::kIn) {
        for (const Value& m : c.members()) {
          if (!eq_bucketable(m)) continue;
          erase_eq_posting(c.attr_id(), canonical_numeric(m), id);
        }
      } else {
        auto& postings = noneq_.at(c.attr_id());
        const auto posting_it =
            std::find_if(postings.begin(), postings.end(),
                         [&](const NonEqPosting& p) {
                           return p.id == id && p.constraint == c;
                         });
        postings.erase(posting_it);
        if (postings.empty()) noneq_.erase(c.attr_id());
        --postings_;
      }
    }
  }
  filters_.erase(it);
}

void CountingMatcher::match(const Event& event,
                            std::vector<SubscriptionId>& out) const {
  out.insert(out.end(), universal_.begin(), universal_.end());
  // One counter per filter touched by a satisfied constraint; a filter
  // fires when its count reaches its constraint total. Event attributes
  // are unique per name, so each posting is tallied at most once.
  std::unordered_map<SubscriptionId, std::size_t> counts;
  for (const auto& [attr, value] : event.attrs()) {
    if (const auto attr_it = eq_.find(attr); attr_it != eq_.end()) {
      if (const auto value_it = attr_it->second.find(canonical_numeric(value));
          value_it != attr_it->second.end()) {
        for (const SubscriptionId id : value_it->second) ++counts[id];
      }
    }
    if (const auto noneq_it = noneq_.find(attr); noneq_it != noneq_.end()) {
      for (const auto& posting : noneq_it->second) {
        if (posting.constraint.matches(value)) ++counts[posting.id];
      }
    }
  }
  for (const auto& [id, satisfied] : counts) {
    if (satisfied == filters_.at(id).size()) out.push_back(id);
  }
}

}  // namespace reef::pubsub
