#include "pubsub/matcher_registry.h"

#include <stdexcept>
#include <utility>

#include "pubsub/bitset_matcher.h"
#include "pubsub/sharded_matcher.h"

namespace reef::pubsub {

std::optional<std::string> sharded_inner_engine(std::string_view engine) {
  if (!engine.starts_with(kShardedPrefix)) return std::nullopt;
  return std::string(engine.substr(kShardedPrefix.size()));
}

MatcherRegistry::MatcherRegistry() {
  add(std::string(kBruteForceEngine),
      [] { return std::make_unique<BruteForceMatcher>(); });
  add(std::string(kAnchorIndexEngine),
      [] { return std::make_unique<IndexMatcher>(); });
  add(std::string(kCountingEngine),
      [] { return std::make_unique<CountingMatcher>(); });
  add(std::string(kBitsetEngine),
      [] { return std::make_unique<BitsetMatcher>(); });
  // Sharded variants of the built-ins, so names() exposes them and every
  // registry-driven equivalence test / bench covers the sharded layer.
  for (const std::string_view inner :
       {kBruteForceEngine, kAnchorIndexEngine, kCountingEngine,
        kBitsetEngine}) {
    add(std::string(kShardedPrefix) + std::string(inner),
        [name = std::string(inner)] {
          return std::make_unique<ShardedMatcher>(
              ShardedMatcher::Config{kDefaultShardCount, 0, name});
        });
  }
}

MatcherRegistry& MatcherRegistry::instance() {
  static MatcherRegistry registry;
  return registry;
}

void MatcherRegistry::add(std::string name, Factory factory) {
  factories_.insert_or_assign(std::move(name), std::move(factory));
}

std::unique_ptr<Matcher> MatcherRegistry::create(
    const std::string& name) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    // "sharded:<inner>" wraps any registered (unsharded) engine on demand,
    // so runtime-registered engines get a sharded variant for free.
    if (const auto inner = sharded_inner_engine(name);
        inner && !sharded_inner_engine(*inner) && factories_.contains(*inner)) {
      return std::make_unique<ShardedMatcher>(
          ShardedMatcher::Config{kDefaultShardCount, 0, *inner});
    }
    std::string known;
    for (const auto& [known_name, factory] : factories_) {
      if (!known.empty()) known += ", ";
      known += known_name;
    }
    throw std::invalid_argument("unknown matcher engine \"" + name +
                                "\" (registered: " + known + ")");
  }
  return it->second();
}

std::vector<std::string> MatcherRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;  // std::map iterates sorted
}

std::unique_ptr<Matcher> make_matcher(const std::string& engine) {
  return MatcherRegistry::instance().create(engine);
}

}  // namespace reef::pubsub
