#include "pubsub/matcher_registry.h"

#include <stdexcept>
#include <utility>

namespace reef::pubsub {

MatcherRegistry::MatcherRegistry() {
  add(std::string(kBruteForceEngine),
      [] { return std::make_unique<BruteForceMatcher>(); });
  add(std::string(kAnchorIndexEngine),
      [] { return std::make_unique<IndexMatcher>(); });
  add(std::string(kCountingEngine),
      [] { return std::make_unique<CountingMatcher>(); });
}

MatcherRegistry& MatcherRegistry::instance() {
  static MatcherRegistry registry;
  return registry;
}

void MatcherRegistry::add(std::string name, Factory factory) {
  factories_.insert_or_assign(std::move(name), std::move(factory));
}

std::unique_ptr<Matcher> MatcherRegistry::create(
    const std::string& name) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    std::string known;
    for (const auto& [known_name, factory] : factories_) {
      if (!known.empty()) known += ", ";
      known += known_name;
    }
    throw std::invalid_argument("unknown matcher engine \"" + name +
                                "\" (registered: " + known + ")");
  }
  return it->second();
}

std::vector<std::string> MatcherRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;  // std::map iterates sorted
}

std::unique_ptr<Matcher> make_matcher(const std::string& engine) {
  return MatcherRegistry::instance().create(engine);
}

}  // namespace reef::pubsub
