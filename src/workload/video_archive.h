// The video-news archive for the §3.3 experiment.
//
// The paper used 500 stories from the TRECVid 2004 ABC/CNN dataset plus a
// human interest ranking from the test user. We substitute: 500 synthetic
// stories drawn from the same topic model as the Web (so browsing topics
// and story topics live in one space), and ground-truth interest computed
// as the similarity between the user's interest mixture and the story's
// topic mixture, perturbed by rater noise. "Airing order" is the story
// index order, which is independent of any particular user's interests —
// the same property the broadcast order had.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/corpus.h"
#include "util/rng.h"
#include "web/topic_model.h"

namespace reef::workload {

class VideoArchive {
 public:
  struct Config {
    std::size_t stories = 500;
    std::size_t terms_min = 80;
    std::size_t terms_max = 240;
    /// Fraction of a story transcript that is background language.
    double background_fraction = 0.35;
    std::size_t max_topics_per_story = 2;
    std::uint64_t seed = 0x51de0;
  };

  VideoArchive(const web::TopicModel& topics, Config config);

  std::size_t size() const noexcept { return corpus_.size(); }
  /// Story transcripts as an IR corpus (story i = corpus doc i).
  const ir::Corpus& corpus() const noexcept { return corpus_; }
  const web::TopicMixture& story_topics(std::size_t i) const {
    return story_topics_.at(i);
  }

  /// The order the stories aired (the §3.3 baseline ranking).
  std::vector<std::size_t> airing_order() const;

  /// Ground-truth interest score per story for a user: topic similarity
  /// plus N(0, rater_noise). Deterministic for a given seed.
  std::vector<double> interest_scores(const web::TopicMixture& interests,
                                      double rater_noise,
                                      std::uint64_t seed) const;

  /// Binary relevance: the top `fraction` of stories by score.
  static std::vector<bool> relevant_set(const std::vector<double>& scores,
                                        double fraction);

  /// Stories sorted by descending score (the user's ideal ranking).
  static std::vector<std::size_t> ideal_ranking(
      const std::vector<double>& scores);

 private:
  ir::Corpus corpus_;
  std::vector<web::TopicMixture> story_topics_;
};

}  // namespace reef::workload
