// Calibration targets for the §3.2 experiment (E1/E3).
//
// The paper reports, for 5 users over 10 weeks:
//   * >77,000 requests
//   * 2,528 distinct Web servers          (stated total)
//   * 70% of requests to 1,713 ad servers
//   * 807 servers visited only once
//   * 906 "remaining" servers, carrying 424 distinct RSS feeds
//   * ~1 new feed recommendation per user per day (§6)
//
// NOTE ON CONSISTENCY: the paper's own server counts do not add up —
// 1,713 (ads) + 807 (once) + 906 (remaining) = 3,426 ≠ 2,528. No disjoint
// or overlapping reading reconciles them (ads alone exceed total minus
// remaining). We therefore calibrate the generator to the *breakdown*
// (the numbers the discovery pipeline actually consumes: ad share, ad
// server count, once-visited count, remaining count, feed count) and
// report the derived total alongside the paper's stated 2,528. See
// EXPERIMENTS.md for the discussion.
#pragma once

#include <cstddef>
#include <cstdint>

namespace reef::workload {

struct PaperTargets {
  std::uint64_t total_requests = 77'000;  // ">77000": lower bound
  std::size_t stated_distinct_servers = 2'528;
  double ad_request_fraction = 0.70;
  std::size_t ad_servers = 1'713;
  std::size_t visited_once = 807;
  std::size_t remaining_servers = 906;
  std::size_t feeds_found = 424;
  double recommendations_per_user_day = 1.0;
  std::size_t users = 5;
  double days = 70.0;
};

/// §3.3 targets: one user, six weeks, >10,000 pages; 500 video stories;
/// precision improvement +12% at N=5 terms, peaking at +34% at N=30, and
/// positive for every N in [5, 500].
struct ContentTargets {
  std::size_t pages = 10'000;
  double days = 42.0;
  std::size_t stories = 500;
  double improvement_at_5 = 0.12;
  double improvement_at_30 = 0.34;
  std::size_t optimal_terms = 30;
};

}  // namespace reef::workload
