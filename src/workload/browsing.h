// Browsing-trace generation, calibrated to the §3.2 statistics.
//
// The model: each user runs several sessions per day; a session is a burst
// of content-page visits with site locality (most clicks stay on the
// current site). A visit goes to a favorite site (Zipf over the user's
// affinity-ranked favorites) or, with a small probability, explores a
// uniformly random long-tail site (these produce the once-visited server
// population). Rendering a content page triggers a Poisson number of ad
// requests against a Zipf-popular ad-server universe — that is where the
// paper's "70% of requests were to advertisement servers" comes from.
#pragma once

#include <cstdint>
#include <vector>

#include "attention/click.h"
#include "util/rng.h"
#include "web/web.h"
#include "workload/user_profile.h"

namespace reef::workload {

/// One generated browser request.
struct Visit {
  attention::UserId user = 0;
  util::Uri uri;
  sim::Time at = 0;
  bool is_ad = false;
};

class BrowsingGenerator {
 public:
  struct Config {
    std::size_t users = 5;
    double days = 70.0;
    /// Sessions per user-day (Poisson).
    double sessions_per_day = 6.3;
    /// Content clicks per session: 1 + geometric(mean-1).
    double clicks_per_session_mean = 11.0;
    /// Ad requests triggered per content page (Poisson).
    double ads_per_content_click = 2.33;
    /// Probability a click leaves the favorites for a random tail site.
    double explore_probability = 0.11;
    /// Probability the next click stays on the current site.
    double site_locality = 0.60;
    std::size_t favorites_per_user = 170;
    /// Zipf exponent over the favorite ranking.
    double favorite_zipf = 0.95;
    /// Zipf exponent over ad-server popularity.
    double ad_zipf = 1.32;
    /// Pages a user rotates through on one site.
    std::size_t pages_per_site = 30;
    std::uint64_t seed = 0xb20053;
  };

  BrowsingGenerator(const web::SyntheticWeb& web, Config config);

  const std::vector<UserProfile>& users() const noexcept { return users_; }
  const Config& config() const noexcept { return config_; }

  /// Generates the full multi-user trace, sorted by timestamp.
  std::vector<Visit> generate_trace();

  /// Generates a single-user trace with an exact number of content pages
  /// (the §3.3 workload: one user, >10,000 pages, six weeks). Ad requests
  /// are omitted (the content pipeline ignores them anyway) unless
  /// `with_ads` is set.
  std::vector<Visit> generate_single_user_trace(std::size_t content_pages,
                                                double days, bool with_ads);

 private:
  util::Uri content_visit_uri(const web::Site& site, util::Rng& rng) const;
  void append_session(const UserProfile& user, sim::Time start,
                      util::Rng& rng, bool with_ads,
                      std::vector<Visit>& out);

  const web::SyntheticWeb& web_;
  Config config_;
  std::vector<UserProfile> users_;
  util::ZipfSampler favorite_sampler_;
  util::ZipfSampler ad_sampler_;
  util::Rng rng_;
};

}  // namespace reef::workload
