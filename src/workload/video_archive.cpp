#include "workload/video_archive.h"

#include <algorithm>
#include <numeric>

namespace reef::workload {

VideoArchive::VideoArchive(const web::TopicModel& topics, Config config) {
  util::Rng rng(config.seed);
  story_topics_.reserve(config.stories);
  for (std::size_t i = 0; i < config.stories; ++i) {
    const std::size_t k = 1 + rng.index(config.max_topics_per_story);
    web::TopicMixture mixture = topics.random_mixture(k, rng);
    const std::size_t length =
        config.terms_min +
        rng.index(config.terms_max - config.terms_min + 1);
    const std::vector<std::string> terms = topics.generate_terms(
        mixture, length, config.background_fraction, rng);
    corpus_.add(ir::Document::from_terms(i, terms));
    story_topics_.push_back(std::move(mixture));
  }
}

std::vector<std::size_t> VideoArchive::airing_order() const {
  std::vector<std::size_t> order(corpus_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  return order;
}

std::vector<double> VideoArchive::interest_scores(
    const web::TopicMixture& interests, double rater_noise,
    std::uint64_t seed) const {
  util::Rng rng(seed);
  std::vector<double> scores;
  scores.reserve(story_topics_.size());
  for (const auto& story : story_topics_) {
    const double affinity = web::TopicMixture::similarity(interests, story);
    scores.push_back(affinity + rng.normal(0.0, rater_noise));
  }
  return scores;
}

std::vector<bool> VideoArchive::relevant_set(
    const std::vector<double>& scores, double fraction) {
  std::vector<std::size_t> order = ideal_ranking(scores);
  const auto cutoff = static_cast<std::size_t>(
      fraction * static_cast<double>(scores.size()));
  std::vector<bool> relevant(scores.size(), false);
  for (std::size_t i = 0; i < cutoff && i < order.size(); ++i) {
    relevant[order[i]] = true;
  }
  return relevant;
}

std::vector<std::size_t> VideoArchive::ideal_ranking(
    const std::vector<double>& scores) {
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return scores[a] > scores[b];
                   });
  return order;
}

}  // namespace reef::workload
