#include "workload/user_profile.h"

#include <algorithm>

namespace reef::workload {

UserProfile make_user_profile(attention::UserId id,
                              const web::SyntheticWeb& web,
                              std::size_t favorites, util::Rng& rng) {
  UserProfile profile;
  profile.id = id;
  const std::size_t interest_topics = 3 + rng.index(3);  // 3-5 topics
  // Users' interests are deliberately flatter than site mixtures: the
  // paper notes users "have many diverse interests" (§3.3), which is what
  // makes small term budgets insufficient.
  profile.interests =
      web.topic_model().random_mixture(interest_topics, rng, 0.8);

  // Score every content site: topic affinity dominates, with enough noise
  // that two similar users get overlapping-but-distinct favorite lists.
  struct Scored {
    std::uint32_t site = 0;
    double score = 0.0;
  };
  std::vector<Scored> scored;
  scored.reserve(web.content_sites().size());
  for (const std::uint32_t index : web.content_sites()) {
    const web::Site& site = web.site(index);
    const double affinity =
        web::TopicMixture::similarity(profile.interests, site.topics);
    const double noise = rng.uniform01();
    scored.push_back(Scored{index, affinity * 2.0 + noise * 0.6});
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.site < b.site;
  });

  const std::size_t count = std::min(favorites, scored.size());
  profile.favorite_sites.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    profile.favorite_sites.push_back(scored[i].site);
  }
  return profile;
}

}  // namespace reef::workload
