#include "workload/browsing.h"

#include <algorithm>

namespace reef::workload {

BrowsingGenerator::BrowsingGenerator(const web::SyntheticWeb& web,
                                     Config config)
    : web_(web),
      config_(config),
      favorite_sampler_(std::max<std::size_t>(config.favorites_per_user, 1),
                        config.favorite_zipf),
      ad_sampler_(std::max<std::size_t>(web.ad_sites().size(), 1),
                  config.ad_zipf),
      rng_(config.seed) {
  users_.reserve(config.users);
  for (std::size_t u = 0; u < config.users; ++u) {
    util::Rng user_rng = rng_.fork(0x1000 + u);
    users_.push_back(make_user_profile(static_cast<attention::UserId>(u),
                                       web_, config.favorites_per_user,
                                       user_rng));
  }
}

util::Uri BrowsingGenerator::content_visit_uri(const web::Site& site,
                                               util::Rng& rng) const {
  // Users revisit a small rotating pool of pages per site, weighted toward
  // the front page (geometric), so URI-level revisits occur (cache hits,
  // crawler dedup).
  const std::uint64_t page =
      std::min<std::uint64_t>(rng.geometric(0.25), config_.pages_per_site - 1);
  return web_.page_uri(site, page);
}

void BrowsingGenerator::append_session(const UserProfile& user,
                                       sim::Time start, util::Rng& rng,
                                       bool with_ads,
                                       std::vector<Visit>& out) {
  const std::size_t clicks =
      1 + rng.geometric(1.0 / std::max(config_.clicks_per_session_mean, 1.0));
  sim::Time at = start;
  const auto emit_content_click = [&](const web::Site& site) {
    out.push_back(Visit{user.id, content_visit_uri(site, rng), at, false});
    if (with_ads) {
      // Rendering the page triggers ad requests against Zipf-popular ad
      // networks; each impression URI is unique (never deduped).
      const std::uint64_t ads = rng.poisson(config_.ads_per_content_click);
      for (std::uint64_t a = 0; a < ads; ++a) {
        const auto& ad_sites = web_.ad_sites();
        const web::Site& ad_site =
            web_.site(ad_sites[ad_sampler_.sample(rng)]);
        util::Uri ad_uri = util::Uri::from_parts(
            "http", ad_site.host, 0,
            "/imp/" + std::to_string(rng.uniform_u64(0, 1'000'000'000)), "");
        out.push_back(Visit{user.id, std::move(ad_uri),
                            at + static_cast<sim::Time>(a + 1) * 50 *
                                     sim::kMillisecond,
                            true});
      }
    }
    // Dwell time between content clicks: 10-120 s.
    at += 10 * sim::kSecond +
          static_cast<sim::Time>(rng.uniform01() * 110.0 *
                                 static_cast<double>(sim::kSecond));
  };

  const web::Site* current = nullptr;
  for (std::size_t c = 0; c < clicks; ++c) {
    // Choose the site: stay, explore, or pick a favorite. Exploration is a
    // one-page bounce: random long-tail sites do not get session locality
    // (this is what produces the paper's large visited-once population).
    if (current == nullptr || !rng.chance(config_.site_locality)) {
      if (rng.chance(config_.explore_probability)) {
        const auto& all = web_.content_sites();
        emit_content_click(web_.site(all[rng.index(all.size())]));
        current = nullptr;
        continue;
      }
      const std::size_t rank = favorite_sampler_.sample(rng);
      current = &web_.site(
          user.favorite_sites[std::min(rank,
                                       user.favorite_sites.size() - 1)]);
    }
    emit_content_click(*current);
  }
}

std::vector<Visit> BrowsingGenerator::generate_trace() {
  std::vector<Visit> trace;
  const auto total_days = static_cast<std::size_t>(config_.days);
  for (const UserProfile& user : users_) {
    util::Rng rng = rng_.fork(0x2000 + user.id);
    for (std::size_t day = 0; day < total_days; ++day) {
      const std::uint64_t sessions = rng.poisson(config_.sessions_per_day);
      for (std::uint64_t s = 0; s < sessions; ++s) {
        // Sessions land in a 16-hour waking window.
        const sim::Time start =
            static_cast<sim::Time>(day) * sim::kDay + 6 * sim::kHour +
            static_cast<sim::Time>(rng.uniform01() * 16.0 *
                                   static_cast<double>(sim::kHour));
        append_session(user, start, rng, /*with_ads=*/true, trace);
      }
    }
  }
  std::sort(trace.begin(), trace.end(),
            [](const Visit& a, const Visit& b) { return a.at < b.at; });
  return trace;
}

std::vector<Visit> BrowsingGenerator::generate_single_user_trace(
    std::size_t content_pages, double days, bool with_ads) {
  std::vector<Visit> trace;
  const UserProfile& user = users_.front();
  util::Rng rng = rng_.fork(0x3000);
  std::size_t content_emitted = 0;
  std::size_t day = 0;
  const auto total_days = static_cast<std::size_t>(days);
  while (content_emitted < content_pages) {
    const sim::Time start =
        static_cast<sim::Time>(day % std::max<std::size_t>(total_days, 1)) *
            sim::kDay +
        6 * sim::kHour +
        static_cast<sim::Time>(rng.uniform01() * 16.0 *
                               static_cast<double>(sim::kHour));
    std::vector<Visit> session;
    append_session(user, start, rng, with_ads, session);
    for (auto& visit : session) {
      if (!visit.is_ad) {
        if (content_emitted >= content_pages) break;
        ++content_emitted;
      }
      trace.push_back(std::move(visit));
    }
    ++day;
  }
  std::sort(trace.begin(), trace.end(),
            [](const Visit& a, const Visit& b) { return a.at < b.at; });
  return trace;
}

}  // namespace reef::workload
