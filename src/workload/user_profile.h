// Synthetic users: a sparse topic-interest mixture plus an ordered list of
// favorite sites biased toward those interests. The browsing generator
// samples revisits from the favorites (Zipf over affinity rank) and
// explorations from the long tail.
#pragma once

#include <cstdint>
#include <vector>

#include "attention/click.h"
#include "util/rng.h"
#include "web/topic_model.h"
#include "web/web.h"

namespace reef::workload {

struct UserProfile {
  attention::UserId id = 0;
  web::TopicMixture interests;
  /// Content-site indices ordered by affinity (favorites[0] = most liked).
  std::vector<std::uint32_t> favorite_sites;
};

/// Builds a user: 3-5 interest topics; favorites chosen by site-interest
/// similarity with popularity noise so users with shared interests share
/// favorites (enabling collaborative effects) without being identical.
UserProfile make_user_profile(attention::UserId id,
                              const web::SyntheticWeb& web,
                              std::size_t favorites, util::Rng& rng);

}  // namespace reef::workload
