// End-to-end experiment harness.
//
// Builds the whole stack — topic model, synthetic Web, feed population,
// broker overlay, FeedEvents proxy, and either the centralized server with
// thin user hosts (Fig. 1) or autonomous distributed peers (Fig. 2) —
// replays a generated browsing trace through it on simulated time, and
// models sidebar behaviour (users periodically open interesting delivered
// events, which feeds the closed loop, and ignore the rest until expiry).
// Benches and examples configure one of these and read the counters.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "attention/log_stats.h"
#include "feeds/feed_events_proxy.h"
#include "feeds/feed_service.h"
#include "pubsub/overlay.h"
#include "reef/centralized.h"
#include "reef/distributed.h"
#include "reef/user_host.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "workload/browsing.h"
#include "workload/video_archive.h"

namespace reef::workload {

class ReefExperiment {
 public:
  enum class Mode { kCentralized, kDistributed };

  struct Config {
    Mode mode = Mode::kCentralized;
    std::uint64_t seed = 42;

    web::TopicModel::Config topics;
    web::SyntheticWeb::Config web;
    feeds::FeedService::Config feeds;
    feeds::FeedEventsProxy::Config proxy;
    BrowsingGenerator::Config browsing;
    core::CentralizedServer::Config server;
    core::UserHost::Config host;
    core::DistributedPeer::Config peer;
    sim::Network::Config net;

    /// Brokers in the pub/sub overlay (chain topology; users round-robin).
    std::size_t brokers = 1;

    /// Sidebar behaviour: how often users look at the sidebar...
    sim::Time sidebar_check_interval = 4 * sim::kHour;
    /// ...the interest level (user-topics x event-site-topics similarity)
    /// above which they may click an entry...
    double click_threshold = 0.25;
    /// ...and the chance an uninteresting entry is dismissed per check.
    double dismiss_probability = 0.2;
    /// Peers whose interest similarity passes this form a gossip group.
    double peer_group_threshold = 0.25;

    /// Extra simulated time after the last click (lets feeds deliver).
    sim::Time drain = 2 * sim::kDay;
  };

  explicit ReefExperiment(Config config);
  ~ReefExperiment();
  ReefExperiment(const ReefExperiment&) = delete;
  ReefExperiment& operator=(const ReefExperiment&) = delete;

  /// Replays the whole trace and drains. Idempotent: second call no-ops.
  void run();

  // --- component access (valid after construction) -------------------------
  sim::Simulator& simulator() noexcept { return sim_; }
  sim::Network& network() noexcept { return *net_; }
  const web::SyntheticWeb& web() const noexcept { return *web_; }
  const web::TopicModel& topic_model() const noexcept { return *topics_; }
  feeds::FeedService& feed_service() noexcept { return *feeds_; }
  feeds::FeedEventsProxy& proxy() noexcept { return *proxy_; }
  pubsub::Broker& broker(std::size_t i = 0) { return overlay_->broker(i); }
  pubsub::Overlay& overlay() noexcept { return *overlay_; }
  BrowsingGenerator& browsing() noexcept { return *browsing_; }
  const std::vector<Visit>& trace() const noexcept { return trace_; }

  /// Centralized server (null in distributed mode).
  core::CentralizedServer* server() noexcept { return server_.get(); }
  /// User hosts (centralized mode; empty otherwise).
  core::UserHost& host(std::size_t i) { return *hosts_.at(i); }
  std::size_t host_count() const noexcept { return hosts_.size(); }
  /// Peers (distributed mode; empty otherwise).
  core::DistributedPeer& peer(std::size_t i) { return *peers_.at(i); }
  std::size_t peer_count() const noexcept { return peers_.size(); }

  const std::vector<UserProfile>& users() const {
    return browsing_->users();
  }

  /// Frontend of user `i`, regardless of mode.
  core::SubscriptionFrontend& frontend(std::size_t i);

  /// §3.2-style aggregate statistics over the generated trace.
  attention::LogStats trace_stats() const;

  /// Distinct feeds on the "remaining" (non-ad, visited >= min_visits)
  /// servers of the trace — the paper's "424 distinct RSS feeds".
  std::size_t feeds_on_remaining_servers(std::uint64_t min_visits = 2) const;

  const Config& config() const noexcept { return config_; }

 private:
  void build();
  void schedule_trace();
  void schedule_sidebar_behavior();
  void browse(std::size_t user_index, const util::Uri& uri);

  Config config_;
  sim::Simulator sim_;
  std::unique_ptr<web::TopicModel> topics_;
  std::unique_ptr<web::SyntheticWeb> web_;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<feeds::FeedService> feeds_;
  std::unique_ptr<pubsub::Overlay> overlay_;
  std::unique_ptr<feeds::FeedEventsProxy> proxy_;
  std::unique_ptr<BrowsingGenerator> browsing_;
  std::unique_ptr<core::CentralizedServer> server_;
  std::vector<std::unique_ptr<core::UserHost>> hosts_;
  std::vector<std::unique_ptr<core::DistributedPeer>> peers_;
  std::vector<Visit> trace_;
  util::Rng behavior_rng_;
  bool ran_ = false;
};

}  // namespace reef::workload
