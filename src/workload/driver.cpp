#include "workload/driver.h"

#include <algorithm>

namespace reef::workload {

ReefExperiment::ReefExperiment(Config config)
    : config_(config), behavior_rng_(config.seed ^ 0xbe4a) {
  build();
}

ReefExperiment::~ReefExperiment() = default;

void ReefExperiment::build() {
  // Derive component seeds from the master seed so one knob reseeds all.
  config_.topics.seed = config_.seed ^ 0x7091c;
  config_.web.seed = config_.seed ^ 0x3eb;
  config_.feeds.seed = config_.seed ^ 0xfeed;
  config_.browsing.seed = config_.seed ^ 0xb205;
  config_.net.seed = config_.seed ^ 0x4e7;

  topics_ = std::make_unique<web::TopicModel>(config_.topics);
  web_ = std::make_unique<web::SyntheticWeb>(*topics_, config_.web);
  net_ = std::make_unique<sim::Network>(sim_, config_.net);
  feeds_ = std::make_unique<feeds::FeedService>(*web_, config_.feeds);
  overlay_ = std::make_unique<pubsub::Overlay>(
      pubsub::Overlay::chain(sim_, *net_, std::max<std::size_t>(
                                               config_.brokers, 1)));
  proxy_ = std::make_unique<feeds::FeedEventsProxy>(
      sim_, *net_, *feeds_, overlay_->broker(0), config_.proxy);
  browsing_ = std::make_unique<BrowsingGenerator>(*web_, config_.browsing);

  const std::size_t user_count = browsing_->users().size();
  if (config_.mode == Mode::kCentralized) {
    server_ = std::make_unique<core::CentralizedServer>(sim_, *net_, *web_,
                                                        config_.server);
    hosts_.reserve(user_count);
    for (std::size_t u = 0; u < user_count; ++u) {
      auto& broker =
          overlay_->broker(u % overlay_->size());
      auto host = std::make_unique<core::UserHost>(
          sim_, *net_, *web_, broker, static_cast<attention::UserId>(u),
          config_.host);
      host->connect(server_->id(), proxy_->id());
      server_->register_user(static_cast<attention::UserId>(u), host->id());
      hosts_.push_back(std::move(host));
    }
  } else {
    peers_.reserve(user_count);
    for (std::size_t u = 0; u < user_count; ++u) {
      auto& broker = overlay_->broker(u % overlay_->size());
      auto peer = std::make_unique<core::DistributedPeer>(
          sim_, *net_, *web_, broker, static_cast<attention::UserId>(u),
          config_.peer);
      peer->set_proxy(proxy_->id());
      peers_.push_back(std::move(peer));
    }
    // Interest groups: peers with similar topic mixtures gossip.
    for (std::size_t a = 0; a < user_count; ++a) {
      for (std::size_t b = a + 1; b < user_count; ++b) {
        const double sim_ab = web::TopicMixture::similarity(
            browsing_->users()[a].interests, browsing_->users()[b].interests);
        if (sim_ab >= config_.peer_group_threshold) {
          peers_[a]->add_group_peer(peers_[b]->id());
          peers_[b]->add_group_peer(peers_[a]->id());
        }
      }
    }
  }
  trace_ = browsing_->generate_trace();
}

core::SubscriptionFrontend& ReefExperiment::frontend(std::size_t i) {
  if (config_.mode == Mode::kCentralized) return hosts_.at(i)->frontend();
  return peers_.at(i)->frontend();
}

void ReefExperiment::browse(std::size_t user_index, const util::Uri& uri) {
  if (config_.mode == Mode::kCentralized) {
    hosts_[user_index]->browse(uri);
  } else {
    peers_[user_index]->browse(uri);
  }
}

void ReefExperiment::schedule_trace() {
  for (const Visit& visit : trace_) {
    sim_.at(visit.at, [this, user = static_cast<std::size_t>(visit.user),
                       uri = visit.uri] { browse(user, uri); });
  }
}

void ReefExperiment::schedule_sidebar_behavior() {
  const std::size_t user_count = browsing_->users().size();
  for (std::size_t u = 0; u < user_count; ++u) {
    sim_.every(
        config_.sidebar_check_interval + static_cast<sim::Time>(u) *
                                             sim::kMinute,
        config_.sidebar_check_interval, [this, u] {
          core::SubscriptionFrontend& fe = frontend(u);
          const UserProfile& user = browsing_->users()[u];
          // Snapshot ids first: clicking mutates the sidebar.
          struct Pending {
            std::uint64_t id;
            double interest;
          };
          std::vector<Pending> entries;
          for (const auto& entry : fe.sidebar()) {
            double interest = 0.0;
            if (const pubsub::Value* site = entry.event.find("site");
                site != nullptr && site->is_string()) {
              if (const web::Site* s = web_->find_site(site->as_string())) {
                interest = web::TopicMixture::similarity(user.interests,
                                                         s->topics);
              }
            }
            entries.push_back(Pending{entry.entry_id, interest});
          }
          for (const auto& [id, interest] : entries) {
            // Users open a minority of notifications, preferring the ones
            // whose source site matches their interests.
            if (interest >= config_.click_threshold &&
                behavior_rng_.chance(std::min(0.55, interest * 0.9))) {
              fe.click_entry(id);
            } else if (behavior_rng_.chance(config_.dismiss_probability)) {
              fe.dismiss_entry(id);
            }
          }
        });
  }
}

void ReefExperiment::run() {
  if (ran_) return;
  ran_ = true;
  schedule_trace();
  schedule_sidebar_behavior();
  const sim::Time end = trace_.empty() ? 0 : trace_.back().at;
  sim_.run_until(end + config_.drain);
}

attention::LogStats ReefExperiment::trace_stats() const {
  attention::LogStats stats(*web_);
  for (const Visit& visit : trace_) {
    stats.add(attention::Click{visit.user, visit.uri, visit.at, false});
  }
  return stats;
}

std::size_t ReefExperiment::feeds_on_remaining_servers(
    std::uint64_t min_visits) const {
  const attention::LogStats stats = trace_stats();
  std::size_t feeds = 0;
  for (const auto& host : stats.remaining_hosts(min_visits)) {
    if (const web::Site* site = web_->find_site(host)) {
      feeds += site->feed_urls.size();
    }
  }
  return feeds;
}

}  // namespace reef::workload
