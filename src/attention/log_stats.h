// Aggregate statistics over click logs — the quantities §3.2 reports:
// total requests, distinct servers, per-class request shares, servers
// visited exactly once, and the "remaining" servers eligible for feed
// discovery.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "attention/click.h"
#include "util/stats.h"
#include "web/web.h"

namespace reef::attention {

class LogStats {
 public:
  explicit LogStats(const web::SyntheticWeb& web) : web_(&web) {}

  void add(const Click& click);
  void add_all(const std::vector<Click>& clicks);

  std::uint64_t total_requests() const noexcept { return total_; }
  std::size_t distinct_servers() const noexcept {
    return per_server_.distinct();
  }

  /// Requests that went to ad servers (spam counted separately).
  std::uint64_t ad_requests() const noexcept { return ad_requests_; }
  double ad_request_fraction() const noexcept {
    return total_ == 0 ? 0.0
                       : static_cast<double>(ad_requests_) /
                             static_cast<double>(total_);
  }

  /// Distinct ad servers seen.
  std::size_t ad_servers() const noexcept;
  /// Servers (any kind) visited exactly once.
  std::size_t visited_once() const noexcept;
  /// Distinct non-ad servers seen.
  std::size_t non_ad_servers() const noexcept;
  /// Non-ad servers visited exactly once. (In the paper's §3.2 breakdown,
  /// 807 once + 906 remaining = 1713 = the ad-server count, which reads as
  /// a partition of the non-ad population.)
  std::size_t non_ad_visited_once() const noexcept;
  /// Non-ad, non-spam servers visited at least `min_visits` times — the
  /// paper's "remaining Web servers" on which feeds are sought.
  std::size_t remaining_servers(std::uint64_t min_visits = 2) const;
  /// Hosts of those remaining servers.
  std::vector<std::string> remaining_hosts(std::uint64_t min_visits = 2) const;

  const util::Counter& per_server() const noexcept { return per_server_; }

 private:
  const web::SyntheticWeb* web_;
  util::Counter per_server_;
  std::uint64_t total_ = 0;
  std::uint64_t ad_requests_ = 0;
};

}  // namespace reef::attention
