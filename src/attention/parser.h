// Attention parsers (§2.2): components that scan raw attention data for
// "tokens that match the specification of name-value pairs of the
// publish-subscribe system we are given". Each parser targets one
// pub/sub vocabulary: feed URLs for topic subscriptions, page keywords
// for content subscriptions, stock symbols for a quote feed, etc.
#pragma once

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "attention/click.h"
#include "pubsub/value.h"
#include "web/web.h"

namespace reef::attention {

/// A candidate name-value pair for the target pub/sub system.
struct Token {
  std::string name;
  pubsub::Value value;

  friend bool operator==(const Token&, const Token&) = default;
};

/// Parser interface. Parsers see each click together with the page content
/// behind it (fetched by the crawler centrally, or served from the browser
/// cache on the user's host).
class AttentionParser {
 public:
  virtual ~AttentionParser() = default;
  virtual std::string name() const = 0;
  /// `page` may be null when content was unavailable (flagged host, cache
  /// miss); parsers that only need the URI still run.
  virtual std::vector<Token> parse(const Click& click,
                                   const web::WebPage* page) = 0;
};

/// Extracts feed autodiscovery links: tokens ("feed", <url>).
class FeedUrlParser final : public AttentionParser {
 public:
  std::string name() const override { return "feed-url"; }
  std::vector<Token> parse(const Click& click,
                           const web::WebPage* page) override;
};

/// Extracts page keywords (analyzed, non-stopword): tokens ("term", <t>).
/// The content recommender aggregates these into per-user term statistics.
class KeywordParser final : public AttentionParser {
 public:
  std::string name() const override { return "keyword"; }
  std::vector<Token> parse(const Click& click,
                           const web::WebPage* page) override;
};

/// Extracts search terms from query strings (?q=..., ?query=..., ?s=...):
/// tokens ("term", <t>), analyzed like page text. Search queries are the
/// most explicit interest signal an attention recorder sees — the user
/// literally typed what they want — so the content recommender weighs
/// them like attended pages.
class QueryStringParser final : public AttentionParser {
 public:
  std::string name() const override { return "query-string"; }
  std::vector<Token> parse(const Click& click,
                           const web::WebPage* page) override;
};

/// Matches a known symbol universe against page terms and URI path
/// segments: tokens ("symbol", <SYM>). Demonstrates the "specification of
/// valid name-value pairs" idea for a quote-stream pub/sub system.
class StockSymbolParser final : public AttentionParser {
 public:
  explicit StockSymbolParser(std::vector<std::string> symbols);
  std::string name() const override { return "stock-symbol"; }
  std::vector<Token> parse(const Click& click,
                           const web::WebPage* page) override;

 private:
  std::unordered_set<std::string> symbols_;  // stored lower-case
};

}  // namespace reef::attention
