#include "attention/log_stats.h"

namespace reef::attention {

void LogStats::add(const Click& click) {
  ++total_;
  const std::string& host = click.uri.host();
  per_server_.add(host);
  const web::Site* site = web_->find_site(host);
  if (site != nullptr && site->kind == web::SiteKind::kAd) ++ad_requests_;
}

void LogStats::add_all(const std::vector<Click>& clicks) {
  for (const auto& click : clicks) add(click);
}

std::size_t LogStats::ad_servers() const noexcept {
  std::size_t n = 0;
  for (const auto& [host, count] : per_server_.items()) {
    const web::Site* site = web_->find_site(host);
    if (site != nullptr && site->kind == web::SiteKind::kAd) ++n;
  }
  return n;
}

std::size_t LogStats::visited_once() const noexcept {
  std::size_t n = 0;
  for (const auto& [host, count] : per_server_.items()) {
    if (count == 1) ++n;
  }
  return n;
}

std::size_t LogStats::non_ad_servers() const noexcept {
  std::size_t n = 0;
  for (const auto& [host, count] : per_server_.items()) {
    const web::Site* site = web_->find_site(host);
    if (site == nullptr || site->kind != web::SiteKind::kAd) ++n;
  }
  return n;
}

std::size_t LogStats::non_ad_visited_once() const noexcept {
  std::size_t n = 0;
  for (const auto& [host, count] : per_server_.items()) {
    if (count != 1) continue;
    const web::Site* site = web_->find_site(host);
    if (site == nullptr || site->kind != web::SiteKind::kAd) ++n;
  }
  return n;
}

std::size_t LogStats::remaining_servers(std::uint64_t min_visits) const {
  std::size_t n = 0;
  for (const auto& [host, count] : per_server_.items()) {
    if (count < min_visits) continue;
    const web::Site* site = web_->find_site(host);
    if (site == nullptr || site->kind != web::SiteKind::kContent) continue;
    ++n;
  }
  return n;
}

std::vector<std::string> LogStats::remaining_hosts(
    std::uint64_t min_visits) const {
  std::vector<std::string> hosts;
  for (const auto& [host, count] : per_server_.items()) {
    if (count < min_visits) continue;
    const web::Site* site = web_->find_site(host);
    if (site == nullptr || site->kind != web::SiteKind::kContent) continue;
    hosts.push_back(host);
  }
  return hosts;
}

}  // namespace reef::attention
