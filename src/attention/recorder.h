// Attention recorder: the browser-extension component that "logs every
// outgoing HTTP request and periodically forwards batches of requests" to
// an analysis tier (§3.1). In the distributed design the same recorder
// feeds a local analyzer instead; the sink abstraction covers both.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "attention/click.h"
#include "sim/simulator.h"

namespace reef::attention {

class AttentionRecorder {
 public:
  /// Receives each flushed batch (move-friendly).
  using BatchSink = std::function<void(ClickBatch&&)>;

  struct Config {
    /// Flush when this many clicks are pending...
    std::size_t batch_max = 50;
    /// ...or when this much time passed since the previous flush.
    sim::Time flush_interval = 5 * sim::kMinute;
    /// Keep the full click history in memory (distributed Reef analyzes
    /// it locally; disable to model a thin centralized-only extension).
    bool keep_history = true;
  };

  AttentionRecorder(sim::Simulator& sim, UserId user, Config config,
                    BatchSink sink);
  ~AttentionRecorder();
  AttentionRecorder(const AttentionRecorder&) = delete;
  AttentionRecorder& operator=(const AttentionRecorder&) = delete;

  /// Logs one outgoing request.
  void record(util::Uri uri, bool from_notification = false);

  /// Forces pending clicks out to the sink.
  void flush();

  UserId user() const noexcept { return user_; }
  std::uint64_t clicks_recorded() const noexcept { return clicks_recorded_; }
  std::uint64_t batches_flushed() const noexcept { return batches_flushed_; }

  /// Full local history (empty when keep_history is false).
  const std::vector<Click>& history() const noexcept { return history_; }

 private:
  sim::Simulator& sim_;
  UserId user_;
  Config config_;
  BatchSink sink_;
  std::vector<Click> pending_;
  std::vector<Click> history_;
  sim::TimerId timer_ = 0;
  std::uint64_t clicks_recorded_ = 0;
  std::uint64_t batches_flushed_ = 0;
};

}  // namespace reef::attention
