// The unit of attention data (§3.1): "Several attributes, such as a
// timestamp and a user cookie, are logged along with the URI of the
// request. This unit of attention data is called a click."
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/time.h"
#include "util/uri.h"

namespace reef::attention {

/// Stable per-user identifier (the "cookie").
using UserId = std::uint32_t;

struct Click {
  UserId user = 0;
  util::Uri uri;
  sim::Time at = 0;
  /// Closed-loop marker: true when this click opened a delivered
  /// notification (positive feedback to the recommender).
  bool from_notification = false;

  std::size_t wire_size() const noexcept {
    return 24 + uri.to_string().size();
  }
};

/// A batch of clicks as shipped to the centralized server.
struct ClickBatch {
  UserId user = 0;
  std::vector<Click> clicks;

  std::size_t wire_size() const noexcept {
    std::size_t bytes = 16;
    for (const auto& c : clicks) bytes += c.wire_size();
    return bytes;
  }
};

inline constexpr std::string_view kTypeAttentionBatch = "attention.batch";

}  // namespace reef::attention
