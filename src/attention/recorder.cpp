#include "attention/recorder.h"

#include <utility>

namespace reef::attention {

AttentionRecorder::AttentionRecorder(sim::Simulator& sim, UserId user,
                                     Config config, BatchSink sink)
    : sim_(sim), user_(user), config_(config), sink_(std::move(sink)) {
  timer_ = sim_.every(config_.flush_interval, config_.flush_interval,
                      [this] { flush(); });
}

AttentionRecorder::~AttentionRecorder() { sim_.cancel(timer_); }

void AttentionRecorder::record(util::Uri uri, bool from_notification) {
  Click click{user_, std::move(uri), sim_.now(), from_notification};
  if (config_.keep_history) history_.push_back(click);
  pending_.push_back(std::move(click));
  ++clicks_recorded_;
  if (pending_.size() >= config_.batch_max) flush();
}

void AttentionRecorder::flush() {
  if (pending_.empty() || !sink_) return;
  ClickBatch batch{user_, std::move(pending_)};
  pending_ = {};
  ++batches_flushed_;
  sink_(std::move(batch));
}

}  // namespace reef::attention
