#include "attention/parser.h"

#include "ir/tokenizer.h"
#include "util/strings.h"

namespace reef::attention {

std::vector<Token> FeedUrlParser::parse(const Click& click,
                                        const web::WebPage* page) {
  (void)click;
  std::vector<Token> tokens;
  if (page == nullptr) return tokens;
  tokens.reserve(page->feed_links.size());
  for (const auto& url : page->feed_links) {
    tokens.push_back(Token{"feed", pubsub::Value(url)});
  }
  return tokens;
}

std::vector<Token> KeywordParser::parse(const Click& click,
                                        const web::WebPage* page) {
  (void)click;
  std::vector<Token> tokens;
  if (page == nullptr) return tokens;
  tokens.reserve(page->terms.size());
  for (const auto& term : page->terms) {
    if (ir::is_stopword(term)) continue;
    tokens.push_back(Token{"term", pubsub::Value(term)});
  }
  return tokens;
}

std::vector<Token> QueryStringParser::parse(const Click& click,
                                            const web::WebPage* page) {
  (void)page;
  std::vector<Token> tokens;
  const std::string& query = click.uri.query();
  if (query.empty()) return tokens;
  for (const auto pair : util::split(query, '&')) {
    const std::size_t equals = pair.find('=');
    if (equals == std::string_view::npos) continue;
    const std::string_view key = pair.substr(0, equals);
    if (key != "q" && key != "query" && key != "s" && key != "search") {
      continue;
    }
    // '+' encodes spaces in query strings; percent-decoding is out of
    // scope for the simulation (the generator never emits it).
    std::string text(pair.substr(equals + 1));
    for (char& c : text) {
      if (c == '+') c = ' ';
    }
    for (auto& term : ir::analyze(text)) {
      tokens.push_back(Token{"term", pubsub::Value(std::move(term))});
    }
  }
  return tokens;
}

StockSymbolParser::StockSymbolParser(std::vector<std::string> symbols) {
  for (auto& s : symbols) symbols_.insert(util::to_lower(s));
}

std::vector<Token> StockSymbolParser::parse(const Click& click,
                                            const web::WebPage* page) {
  std::vector<Token> tokens;
  const auto emit = [&](const std::string& lower_symbol) {
    // Report symbols upper-case, the convention of quote streams.
    std::string symbol;
    symbol.reserve(lower_symbol.size());
    for (const char c : lower_symbol) {
      symbol.push_back(static_cast<char>(std::toupper(
          static_cast<unsigned char>(c))));
    }
    tokens.push_back(Token{"symbol", pubsub::Value(symbol)});
  };
  // URI path segments often carry the symbol (e.g. /quote/acme).
  for (const auto segment : util::split(click.uri.path(), '/')) {
    const std::string lower = util::to_lower(segment);
    if (symbols_.contains(lower)) emit(lower);
  }
  if (page != nullptr) {
    for (const auto& term : page->terms) {
      if (symbols_.contains(term)) emit(term);
    }
  }
  return tokens;
}

}  // namespace reef::attention
