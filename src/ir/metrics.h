// Ranking-quality metrics for the §3.3 experiment.
//
// The paper measures "how effective the query was at placing the most
// interesting stories first as compared to the order in which the stories
// originally aired"; the headline number is the relative improvement in
// precision ("a third more interesting stories appeared in the front").
// We therefore provide precision-at-k, average precision, the front-
// improvement ratio, and Kendall's tau for rank-correlation checks.
#pragma once

#include <cstddef>
#include <vector>

namespace reef::ir {

/// Precision@k: fraction of the first k items that are relevant.
/// `ranking` lists document indices best-first; `relevant[i]` says whether
/// document i is relevant. k is clamped to the ranking length.
double precision_at_k(const std::vector<std::size_t>& ranking,
                      const std::vector<bool>& relevant, std::size_t k);

/// Average precision over all relevant documents (0 when none).
double average_precision(const std::vector<std::size_t>& ranking,
                         const std::vector<bool>& relevant);

/// Relative improvement of `ranking` over `baseline` in precision@k:
///   (P@k(ranking) - P@k(baseline)) / P@k(baseline).
/// Returns 0 when the baseline precision is 0.
double front_improvement(const std::vector<std::size_t>& ranking,
                         const std::vector<std::size_t>& baseline,
                         const std::vector<bool>& relevant, std::size_t k);

/// Kendall rank-correlation coefficient between two orderings of the same
/// n items (each vector is a permutation of 0..n-1, best first).
/// 1 = identical order, -1 = exactly reversed.
double kendall_tau(const std::vector<std::size_t>& a,
                   const std::vector<std::size_t>& b);

/// Mean reciprocal rank of the first relevant item (0 when none).
double mrr(const std::vector<std::size_t>& ranking,
           const std::vector<bool>& relevant);

}  // namespace reef::ir
