#include "ir/bm25.h"

#include <algorithm>

namespace reef::ir {

Bm25::Bm25(const Corpus& corpus, Bm25Params params)
    : corpus_(corpus), params_(params) {}

double Bm25::term_score(const std::string& term, const Document& doc) const {
  const double tf = doc.tf(term);
  if (tf == 0.0) return 0.0;
  const double avgdl = corpus_.avg_doc_length();
  const double dl = doc.length();
  const double norm =
      params_.k1 * (1.0 - params_.b + params_.b * (avgdl > 0 ? dl / avgdl : 1.0));
  return corpus_.idf(term) * (tf * (params_.k1 + 1.0)) / (tf + norm);
}

double Bm25::score(const std::vector<std::string>& query_terms,
                   std::size_t doc_index) const {
  const Document& doc = corpus_.doc(doc_index);
  double total = 0.0;
  for (const auto& term : query_terms) total += term_score(term, doc);
  return total;
}

double Bm25::score(const std::vector<ScoredTerm>& weighted_query,
                   std::size_t doc_index) const {
  const Document& doc = corpus_.doc(doc_index);
  double total = 0.0;
  for (const auto& [term, weight] : weighted_query) {
    if (weight <= 0.0) continue;
    total += weight * term_score(term, doc);
  }
  return total;
}

template <typename Query>
std::vector<RankedDoc> Bm25::rank_impl(const Query& query) const {
  std::vector<RankedDoc> ranked;
  ranked.reserve(corpus_.size());
  for (std::size_t i = 0; i < corpus_.size(); ++i) {
    ranked.push_back(RankedDoc{i, score(query, i)});
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const RankedDoc& a, const RankedDoc& b) {
                     return a.score > b.score;
                   });
  return ranked;
}

std::vector<RankedDoc> Bm25::rank(
    const std::vector<std::string>& query) const {
  return rank_impl(query);
}

std::vector<RankedDoc> Bm25::rank(const std::vector<ScoredTerm>& query) const {
  return rank_impl(query);
}

}  // namespace reef::ir
