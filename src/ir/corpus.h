// Documents and corpora: the term-statistics substrate for Offer Weight
// term selection and BM25 ranking.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace reef::ir {

using DocId = std::uint64_t;
using TermFreqs = std::unordered_map<std::string, std::uint32_t>;

/// A bag-of-words document (terms are expected pre-analyzed: lower-case,
/// stopped, stemmed).
class Document {
 public:
  Document() = default;
  Document(DocId id, TermFreqs term_freqs);

  /// Builds a document by running the full analyzer over raw text.
  static Document from_text(DocId id, std::string_view text);
  /// Builds a document from an already-analyzed term sequence.
  static Document from_terms(DocId id, const std::vector<std::string>& terms);

  DocId id() const noexcept { return id_; }
  const TermFreqs& terms() const noexcept { return tf_; }
  std::uint32_t tf(std::string_view term) const noexcept;
  bool contains(std::string_view term) const noexcept { return tf(term) > 0; }
  /// Total token count (sum of term frequencies).
  std::uint32_t length() const noexcept { return length_; }
  std::size_t distinct_terms() const noexcept { return tf_.size(); }

 private:
  DocId id_ = 0;
  TermFreqs tf_;
  std::uint32_t length_ = 0;
};

/// A collection of documents with the aggregate statistics IR formulas
/// need: document frequency per term, collection size, average length.
class Corpus {
 public:
  /// Adds a document; ids should be unique (not enforced, stats are by
  /// position). Returns the document's index within the corpus.
  std::size_t add(Document doc);

  std::size_t size() const noexcept { return docs_.size(); }
  bool empty() const noexcept { return docs_.empty(); }
  const Document& doc(std::size_t index) const { return docs_.at(index); }
  const std::vector<Document>& docs() const noexcept { return docs_; }

  /// Document frequency: number of documents containing `term`.
  std::uint32_t df(std::string_view term) const noexcept;
  /// Average document length (0 for the empty corpus).
  double avg_doc_length() const noexcept;
  /// Total number of distinct terms across the collection.
  std::size_t vocabulary_size() const noexcept { return df_.size(); }

  /// Smoothed inverse document frequency: ln(1 + (N - df + 0.5)/(df + 0.5)).
  double idf(std::string_view term) const noexcept;

 private:
  std::vector<Document> docs_;
  std::unordered_map<std::string, std::uint32_t> df_;
  std::uint64_t total_length_ = 0;
};

}  // namespace reef::ir
