#include "ir/metrics.h"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

namespace reef::ir {

namespace {
bool is_relevant(const std::vector<bool>& relevant, std::size_t doc) {
  return doc < relevant.size() && relevant[doc];
}
}  // namespace

double precision_at_k(const std::vector<std::size_t>& ranking,
                      const std::vector<bool>& relevant, std::size_t k) {
  k = std::min(k, ranking.size());
  if (k == 0) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < k; ++i) {
    if (is_relevant(relevant, ranking[i])) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double average_precision(const std::vector<std::size_t>& ranking,
                         const std::vector<bool>& relevant) {
  std::size_t hits = 0;
  double sum = 0.0;
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    if (is_relevant(relevant, ranking[i])) {
      ++hits;
      sum += static_cast<double>(hits) / static_cast<double>(i + 1);
    }
  }
  return hits == 0 ? 0.0 : sum / static_cast<double>(hits);
}

double front_improvement(const std::vector<std::size_t>& ranking,
                         const std::vector<std::size_t>& baseline,
                         const std::vector<bool>& relevant, std::size_t k) {
  const double ours = precision_at_k(ranking, relevant, k);
  const double base = precision_at_k(baseline, relevant, k);
  if (base == 0.0) return 0.0;
  return (ours - base) / base;
}

double kendall_tau(const std::vector<std::size_t>& a,
                   const std::vector<std::size_t>& b) {
  const std::size_t n = a.size();
  if (b.size() != n) {
    throw std::invalid_argument("kendall_tau: size mismatch");
  }
  if (n < 2) return 1.0;
  // position of each item in b
  std::vector<std::size_t> pos_b(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (b[i] >= n) throw std::invalid_argument("kendall_tau: not a permutation");
    pos_b[b[i]] = i;
  }
  // Map a into b-positions, count inversions (O(n^2) is fine at n=500).
  std::int64_t discordant = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (pos_b[a[i]] > pos_b[a[j]]) ++discordant;
    }
  }
  const auto pairs = static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  return 1.0 - 2.0 * static_cast<double>(discordant) / pairs;
}

double mrr(const std::vector<std::size_t>& ranking,
           const std::vector<bool>& relevant) {
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    if (is_relevant(relevant, ranking[i])) {
      return 1.0 / static_cast<double>(i + 1);
    }
  }
  return 0.0;
}

}  // namespace reef::ir
