#include "ir/corpus.h"

#include <cmath>

#include "ir/tokenizer.h"

namespace reef::ir {

Document::Document(DocId id, TermFreqs term_freqs)
    : id_(id), tf_(std::move(term_freqs)) {
  for (const auto& [term, count] : tf_) length_ += count;
}

Document Document::from_text(DocId id, std::string_view text) {
  return from_terms(id, analyze(text));
}

Document Document::from_terms(DocId id,
                              const std::vector<std::string>& terms) {
  TermFreqs tf;
  for (const auto& term : terms) ++tf[term];
  return Document(id, std::move(tf));
}

std::uint32_t Document::tf(std::string_view term) const noexcept {
  const auto it = tf_.find(std::string(term));
  return it == tf_.end() ? 0 : it->second;
}

std::size_t Corpus::add(Document doc) {
  for (const auto& [term, count] : doc.terms()) ++df_[term];
  total_length_ += doc.length();
  docs_.push_back(std::move(doc));
  return docs_.size() - 1;
}

std::uint32_t Corpus::df(std::string_view term) const noexcept {
  const auto it = df_.find(std::string(term));
  return it == df_.end() ? 0 : it->second;
}

double Corpus::avg_doc_length() const noexcept {
  if (docs_.empty()) return 0.0;
  return static_cast<double>(total_length_) /
         static_cast<double>(docs_.size());
}

double Corpus::idf(std::string_view term) const noexcept {
  const double n = df(term);
  const double big_n = static_cast<double>(size());
  return std::log(1.0 + (big_n - n + 0.5) / (n + 0.5));
}

}  // namespace reef::ir
