#include "ir/term_weighting.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace reef::ir {

const char* term_selector_name(TermSelector selector) noexcept {
  switch (selector) {
    case TermSelector::kRawTf:
      return "raw-tf";
    case TermSelector::kOfferWeight:
      return "offer-weight";
    case TermSelector::kTfOfferWeight:
      return "tf-offer-weight";
  }
  return "?";
}

double rsj_weight(double n, double big_n, double r, double big_r) noexcept {
  const double numerator = (r + 0.5) * (big_n - n - big_r + r + 0.5);
  const double denominator = (n - r + 0.5) * (big_r - r + 0.5);
  return std::log(numerator / denominator);
}

std::vector<ScoredTerm> select_terms(
    const Corpus& background,
    const std::vector<const Document*>& relevant, TermSelector selector,
    std::size_t top_n) {
  struct Evidence {
    std::uint32_t doc_count = 0;  // r: relevant docs containing the term
    double tf_mass = 0.0;         // sum of log(1 + tf) over relevant docs
    std::uint64_t raw_tf = 0;     // plain frequency total
  };
  std::unordered_map<std::string, Evidence> evidence;
  for (const Document* doc : relevant) {
    for (const auto& [term, tf] : doc->terms()) {
      Evidence& e = evidence[term];
      ++e.doc_count;
      e.tf_mass += std::log(1.0 + static_cast<double>(tf));
      e.raw_tf += tf;
    }
  }

  const double big_n = static_cast<double>(background.size());
  const double big_r = static_cast<double>(relevant.size());

  std::vector<ScoredTerm> scored;
  scored.reserve(evidence.size());
  for (const auto& [term, e] : evidence) {
    double score = 0.0;
    switch (selector) {
      case TermSelector::kRawTf:
        score = static_cast<double>(e.raw_tf);
        break;
      case TermSelector::kOfferWeight: {
        const double w1 = rsj_weight(background.df(term), big_n,
                                     e.doc_count, big_r);
        score = static_cast<double>(e.doc_count) * w1;
        break;
      }
      case TermSelector::kTfOfferWeight: {
        const double w1 = rsj_weight(background.df(term), big_n,
                                     e.doc_count, big_r);
        score = e.tf_mass * w1;
        break;
      }
    }
    scored.push_back(ScoredTerm{term, score});
  }

  std::sort(scored.begin(), scored.end(),
            [](const ScoredTerm& a, const ScoredTerm& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.term < b.term;
            });
  if (scored.size() > top_n) scored.resize(top_n);
  return scored;
}

std::vector<ScoredTerm> select_terms(const Corpus& background,
                                     const Corpus& relevant,
                                     TermSelector selector,
                                     std::size_t top_n) {
  std::vector<const Document*> docs;
  docs.reserve(relevant.size());
  for (const auto& doc : relevant.docs()) docs.push_back(&doc);
  return select_terms(background, docs, selector, top_n);
}

void TermStatsAccumulator::add_document(
    const std::vector<std::string>& terms) {
  TermFreqs freqs;
  for (const auto& term : terms) ++freqs[term];
  add_document(freqs);
}

void TermStatsAccumulator::add_document(const TermFreqs& term_freqs) {
  ++docs_;
  for (const auto& [term, tf] : term_freqs) {
    Evidence& e = evidence_[term];
    ++e.doc_count;
    e.tf_mass += std::log(1.0 + static_cast<double>(tf));
    e.raw_tf += tf;
  }
}

std::uint32_t TermStatsAccumulator::df(const std::string& term) const {
  const auto it = evidence_.find(term);
  return it == evidence_.end() ? 0 : it->second.doc_count;
}

std::vector<ScoredTerm> select_terms(const TermStatsAccumulator& background,
                                     const TermStatsAccumulator& relevant,
                                     TermSelector selector,
                                     std::size_t top_n) {
  const double big_n = static_cast<double>(background.documents());
  const double big_r = static_cast<double>(relevant.documents());

  std::vector<ScoredTerm> scored;
  scored.reserve(relevant.evidence().size());
  for (const auto& [term, e] : relevant.evidence()) {
    double score = 0.0;
    switch (selector) {
      case TermSelector::kRawTf:
        score = static_cast<double>(e.raw_tf);
        break;
      case TermSelector::kOfferWeight: {
        const double w1 =
            rsj_weight(background.df(term), big_n, e.doc_count, big_r);
        score = static_cast<double>(e.doc_count) * w1;
        break;
      }
      case TermSelector::kTfOfferWeight: {
        const double w1 =
            rsj_weight(background.df(term), big_n, e.doc_count, big_r);
        score = e.tf_mass * w1;
        break;
      }
    }
    scored.push_back(ScoredTerm{term, score});
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredTerm& a, const ScoredTerm& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.term < b.term;
            });
  if (scored.size() > top_n) scored.resize(top_n);
  return scored;
}

std::vector<ScoredTerm> diversify_terms(
    const std::vector<ScoredTerm>& candidates,
    const std::vector<TermFreqs>& doc_sample, double lambda,
    std::size_t top_n) {
  if (candidates.empty() || top_n == 0) return {};

  // Document-incidence sets for each candidate term (over the sample).
  std::unordered_map<std::string, std::vector<std::uint32_t>> incidence;
  for (const auto& candidate : candidates) incidence[candidate.term];
  for (std::uint32_t doc = 0; doc < doc_sample.size(); ++doc) {
    for (auto& [term, docs] : incidence) {
      if (doc_sample[doc].contains(term)) docs.push_back(doc);
    }
  }
  const auto similarity = [&](const std::string& a, const std::string& b) {
    const auto& da = incidence.at(a);
    const auto& db = incidence.at(b);
    if (da.empty() || db.empty()) return 0.0;
    std::size_t common = 0;
    // Incidence lists are sorted by construction.
    for (std::size_t i = 0, j = 0; i < da.size() && j < db.size();) {
      if (da[i] == db[j]) {
        ++common;
        ++i;
        ++j;
      } else if (da[i] < db[j]) {
        ++i;
      } else {
        ++j;
      }
    }
    return static_cast<double>(common) /
           std::sqrt(static_cast<double>(da.size()) *
                     static_cast<double>(db.size()));
  };

  // Min-max normalize scores so lambda trades off on a known scale.
  double lo = candidates.front().score;
  double hi = candidates.front().score;
  for (const auto& c : candidates) {
    lo = std::min(lo, c.score);
    hi = std::max(hi, c.score);
  }
  const double span = hi > lo ? hi - lo : 1.0;

  std::vector<ScoredTerm> picked;
  std::vector<bool> used(candidates.size(), false);
  while (picked.size() < top_n && picked.size() < candidates.size()) {
    double best_value = -1e300;
    std::size_t best_index = candidates.size();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (used[i]) continue;
      const double relevance = (candidates[i].score - lo) / span;
      double redundancy = 0.0;
      for (const auto& already : picked) {
        redundancy =
            std::max(redundancy, similarity(candidates[i].term, already.term));
      }
      const double value = lambda * relevance - (1.0 - lambda) * redundancy;
      if (value > best_value) {
        best_value = value;
        best_index = i;
      }
    }
    if (best_index == candidates.size()) break;
    used[best_index] = true;
    picked.push_back(candidates[best_index]);
  }
  return picked;
}

}  // namespace reef::ir
