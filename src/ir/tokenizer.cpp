#include "ir/tokenizer.h"

#include <algorithm>
#include <cctype>
#include <unordered_set>

namespace reef::ir {

std::vector<std::string> tokenize(std::string_view text,
                                  const TokenizerOptions& options) {
  std::vector<std::string> tokens;
  std::string current;
  bool all_digits = true;
  const auto flush = [&] {
    if (current.size() >= options.min_length &&
        current.size() <= options.max_length &&
        !(options.drop_numeric && all_digits)) {
      tokens.push_back(current);
    }
    current.clear();
    all_digits = true;
  };
  for (const char raw : text) {
    const auto c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
      if (!std::isdigit(c)) all_digits = false;
    } else {
      flush();
    }
  }
  flush();
  return tokens;
}

std::vector<std::string> tokenize(std::string_view text) {
  return tokenize(text, TokenizerOptions{});
}

namespace {

const std::unordered_set<std::string_view>& stopword_set() {
  static const std::unordered_set<std::string_view> kStopwords = {
      "a",       "about",   "above",  "after",   "again",   "against",
      "all",     "am",      "an",     "and",     "any",     "are",
      "as",      "at",      "be",     "because", "been",    "before",
      "being",   "below",   "between","both",    "but",     "by",
      "can",     "cannot",  "could",  "did",     "do",      "does",
      "doing",   "down",    "during", "each",    "few",     "for",
      "from",    "further", "had",    "has",     "have",    "having",
      "he",      "her",     "here",   "hers",    "herself", "him",
      "himself", "his",     "how",    "i",       "if",      "in",
      "into",    "is",      "it",     "its",     "itself",  "just",
      "me",      "more",    "most",   "my",      "myself",  "no",
      "nor",     "not",     "now",    "of",      "off",     "on",
      "once",    "only",    "or",     "other",   "our",     "ours",
      "ourselves","out",    "over",   "own",     "said",    "same",
      "she",     "should",  "so",     "some",    "such",    "than",
      "that",    "the",     "their",  "theirs",  "them",    "themselves",
      "then",    "there",   "these",  "they",    "this",    "those",
      "through", "to",      "too",    "under",   "until",   "up",
      "very",    "was",     "we",     "were",    "what",    "when",
      "where",   "which",   "while",  "who",     "whom",    "why",
      "will",    "with",    "would",  "you",     "your",    "yours",
      "yourself","yourselves", "www", "http",    "https",   "com",
      "org",     "net",     "html",   "htm",     "php",     "index",
  };
  return kStopwords;
}

/// Martin Porter's 1980 stemming algorithm, transcribed from the reference
/// implementation. Operates on a lower-case buffer in place.
class PorterStemmer {
 public:
  std::string stem(std::string_view word) {
    if (word.size() < 3) return std::string(word);
    b_.assign(word);
    k_ = static_cast<int>(b_.size()) - 1;
    j_ = 0;
    step1ab();
    step1c();
    step2();
    step3();
    step4();
    step5();
    return b_.substr(0, static_cast<std::size_t>(k_) + 1);
  }

 private:
  std::string b_;
  int k_ = 0;  // offset of last character of the current word
  int j_ = 0;  // offset of last character of the candidate stem

  bool cons(int i) const {
    switch (b_[static_cast<std::size_t>(i)]) {
      case 'a':
      case 'e':
      case 'i':
      case 'o':
      case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !cons(i - 1);
      default:
        return true;
    }
  }

  /// Measures the number of consonant-vowel sequences in [0, j_].
  int m() const {
    int n = 0;
    int i = 0;
    while (true) {
      if (i > j_) return n;
      if (!cons(i)) break;
      ++i;
    }
    ++i;
    while (true) {
      while (true) {
        if (i > j_) return n;
        if (cons(i)) break;
        ++i;
      }
      ++i;
      ++n;
      while (true) {
        if (i > j_) return n;
        if (!cons(i)) break;
        ++i;
      }
      ++i;
    }
  }

  bool vowel_in_stem() const {
    for (int i = 0; i <= j_; ++i) {
      if (!cons(i)) return true;
    }
    return false;
  }

  bool double_cons(int j) const {
    if (j < 1) return false;
    if (b_[static_cast<std::size_t>(j)] != b_[static_cast<std::size_t>(j - 1)])
      return false;
    return cons(j);
  }

  /// cvc(i) is true when i-2..i is consonant-vowel-consonant and the final
  /// consonant is not w, x or y; restores an 'e' heuristically (cav(e),
  /// lov(e), hop(e)).
  bool cvc(int i) const {
    if (i < 2 || !cons(i) || cons(i - 1) || !cons(i - 2)) return false;
    const char ch = b_[static_cast<std::size_t>(i)];
    return ch != 'w' && ch != 'x' && ch != 'y';
  }

  bool ends(std::string_view s) {
    const int length = static_cast<int>(s.size());
    if (length > k_ + 1) return false;
    if (b_.compare(static_cast<std::size_t>(k_ - length + 1),
                   static_cast<std::size_t>(length), s) != 0) {
      return false;
    }
    j_ = k_ - length;
    return true;
  }

  void set_to(std::string_view s) {
    b_.replace(static_cast<std::size_t>(j_) + 1, std::string::npos, s);
    k_ = j_ + static_cast<int>(s.size());
  }

  void replace_if_m_positive(std::string_view s) {
    if (m() > 0) set_to(s);
  }

  // step1ab removes plurals and -ed / -ing.
  void step1ab() {
    if (b_[static_cast<std::size_t>(k_)] == 's') {
      if (ends("sses")) {
        k_ -= 2;
      } else if (ends("ies")) {
        set_to("i");
      } else if (b_[static_cast<std::size_t>(k_) - 1] != 's') {
        --k_;
      }
    }
    if (ends("eed")) {
      if (m() > 0) --k_;
    } else if ((ends("ed") || ends("ing")) && vowel_in_stem()) {
      k_ = j_;
      if (ends("at")) {
        set_to("ate");
      } else if (ends("bl")) {
        set_to("ble");
      } else if (ends("iz")) {
        set_to("ize");
      } else if (double_cons(k_)) {
        --k_;
        const char ch = b_[static_cast<std::size_t>(k_)];
        if (ch == 'l' || ch == 's' || ch == 'z') ++k_;
      } else if (m() == 1 && cvc(k_)) {
        set_to("e");
      }
    }
  }

  // step1c turns terminal y to i when there is another vowel in the stem.
  void step1c() {
    if (ends("y") && vowel_in_stem()) {
      b_[static_cast<std::size_t>(k_)] = 'i';
    }
  }

  // step2 maps double suffixes to single ones when m() > 0.
  void step2() {
    if (k_ < 1) return;
    switch (b_[static_cast<std::size_t>(k_) - 1]) {
      case 'a':
        if (ends("ational")) { replace_if_m_positive("ate"); break; }
        if (ends("tional")) { replace_if_m_positive("tion"); break; }
        break;
      case 'c':
        if (ends("enci")) { replace_if_m_positive("ence"); break; }
        if (ends("anci")) { replace_if_m_positive("ance"); break; }
        break;
      case 'e':
        if (ends("izer")) { replace_if_m_positive("ize"); break; }
        break;
      case 'l':
        if (ends("bli")) { replace_if_m_positive("ble"); break; }
        if (ends("alli")) { replace_if_m_positive("al"); break; }
        if (ends("entli")) { replace_if_m_positive("ent"); break; }
        if (ends("eli")) { replace_if_m_positive("e"); break; }
        if (ends("ousli")) { replace_if_m_positive("ous"); break; }
        break;
      case 'o':
        if (ends("ization")) { replace_if_m_positive("ize"); break; }
        if (ends("ation")) { replace_if_m_positive("ate"); break; }
        if (ends("ator")) { replace_if_m_positive("ate"); break; }
        break;
      case 's':
        if (ends("alism")) { replace_if_m_positive("al"); break; }
        if (ends("iveness")) { replace_if_m_positive("ive"); break; }
        if (ends("fulness")) { replace_if_m_positive("ful"); break; }
        if (ends("ousness")) { replace_if_m_positive("ous"); break; }
        break;
      case 't':
        if (ends("aliti")) { replace_if_m_positive("al"); break; }
        if (ends("iviti")) { replace_if_m_positive("ive"); break; }
        if (ends("biliti")) { replace_if_m_positive("ble"); break; }
        break;
      default:
        break;
    }
  }

  // step3 handles -ic-, -full, -ness etc.
  void step3() {
    switch (b_[static_cast<std::size_t>(k_)]) {
      case 'e':
        if (ends("icate")) { replace_if_m_positive("ic"); break; }
        if (ends("ative")) { replace_if_m_positive(""); break; }
        if (ends("alize")) { replace_if_m_positive("al"); break; }
        break;
      case 'i':
        if (ends("iciti")) { replace_if_m_positive("ic"); break; }
        break;
      case 'l':
        if (ends("ical")) { replace_if_m_positive("ic"); break; }
        if (ends("ful")) { replace_if_m_positive(""); break; }
        break;
      case 's':
        if (ends("ness")) { replace_if_m_positive(""); break; }
        break;
      default:
        break;
    }
  }

  // step4 removes -ant, -ence etc. in context <c>vcvc<v>.
  void step4() {
    if (k_ < 1) return;
    switch (b_[static_cast<std::size_t>(k_) - 1]) {
      case 'a':
        if (ends("al")) break;
        return;
      case 'c':
        if (ends("ance")) break;
        if (ends("ence")) break;
        return;
      case 'e':
        if (ends("er")) break;
        return;
      case 'i':
        if (ends("ic")) break;
        return;
      case 'l':
        if (ends("able")) break;
        if (ends("ible")) break;
        return;
      case 'n':
        if (ends("ant")) break;
        if (ends("ement")) break;
        if (ends("ment")) break;
        if (ends("ent")) break;
        return;
      case 'o':
        if (ends("ion") && j_ >= 0 &&
            (b_[static_cast<std::size_t>(j_)] == 's' ||
             b_[static_cast<std::size_t>(j_)] == 't')) {
          break;
        }
        if (ends("ou")) break;
        return;
      case 's':
        if (ends("ism")) break;
        return;
      case 't':
        if (ends("ate")) break;
        if (ends("iti")) break;
        return;
      case 'u':
        if (ends("ous")) break;
        return;
      case 'v':
        if (ends("ive")) break;
        return;
      case 'z':
        if (ends("ize")) break;
        return;
      default:
        return;
    }
    if (m() > 1) k_ = j_;
  }

  // step5 removes a final -e and reduces -ll to -l in long words.
  void step5() {
    j_ = k_;
    if (b_[static_cast<std::size_t>(k_)] == 'e') {
      const int a = m();
      if (a > 1 || (a == 1 && !cvc(k_ - 1))) --k_;
    }
    if (b_[static_cast<std::size_t>(k_)] == 'l' && double_cons(k_) &&
        m() > 1) {
      --k_;
    }
  }
};

}  // namespace

bool is_stopword(std::string_view term) noexcept {
  return stopword_set().contains(term);
}

std::size_t stopword_count() noexcept { return stopword_set().size(); }

std::string porter_stem(std::string_view word) {
  thread_local PorterStemmer stemmer;
  return stemmer.stem(word);
}

std::vector<std::string> analyze(std::string_view text) {
  std::vector<std::string> terms = tokenize(text);
  std::vector<std::string> out;
  out.reserve(terms.size());
  for (auto& term : terms) {
    if (is_stopword(term)) continue;
    out.push_back(porter_stem(term));
  }
  return out;
}

}  // namespace reef::ir
