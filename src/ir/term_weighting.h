// Query-term selection from a user's attention documents.
//
// The paper (§3.3, footnote 1) selects the top-N terms from the pages a
// user visited with "a modified version of Robertson's Offer Weight
// formula which integrates the term frequency measure". We implement:
//
//   * kRawTf          — baseline: rank terms by total frequency in the
//                       relevance set (what naive keyword extraction does);
//   * kOfferWeight    — classic Robertson/Spärck-Jones OW = r * w(1), where
//                       r is the number of relevant documents containing
//                       the term and w(1) the RSJ relevance weight;
//   * kTfOfferWeight  — the paper's modification: the document-count
//                       evidence r is replaced by log-scaled within-
//                       document frequency mass, so terms a user dwells on
//                       repeatedly outrank incidental ones.
//
// The "relevant" set is the set of documents the user attended to (visited
// pages); the background corpus supplies collection statistics.
#pragma once

#include <string>
#include <vector>

#include "ir/corpus.h"

namespace reef::ir {

struct ScoredTerm {
  std::string term;
  double score = 0.0;

  friend bool operator==(const ScoredTerm&, const ScoredTerm&) = default;
};

enum class TermSelector {
  kRawTf,
  kOfferWeight,
  kTfOfferWeight,
};

const char* term_selector_name(TermSelector selector) noexcept;

/// Robertson/Spärck-Jones relevance weight with the standard 0.5 smoothing:
///   w1 = log( ((r+0.5)(N-n-R+r+0.5)) / ((n-r+0.5)(R-r+0.5)) )
/// where N = collection size, n = document frequency, R = |relevant|,
/// r = relevant documents containing the term.
double rsj_weight(double n, double big_n, double r, double big_r) noexcept;

/// Ranks all terms occurring in `relevant` and returns the top `top_n`
/// (fewer if the vocabulary is smaller), sorted by descending score with
/// ties broken alphabetically for determinism.
///
/// `background` provides N and n; it may be the same corpus that contains
/// the relevant documents or a larger reference collection.
std::vector<ScoredTerm> select_terms(
    const Corpus& background,
    const std::vector<const Document*>& relevant, TermSelector selector,
    std::size_t top_n);

/// Convenience overload selecting from every document of a corpus.
std::vector<ScoredTerm> select_terms(const Corpus& background,
                                     const Corpus& relevant,
                                     TermSelector selector,
                                     std::size_t top_n);

/// Incremental term statistics: everything the selectors need (document
/// frequency, log-TF mass, raw frequency) without retaining documents.
/// Memory is O(vocabulary), so it scales to arbitrarily long attention
/// streams — this is what the recommenders aggregate into.
class TermStatsAccumulator {
 public:
  struct Evidence {
    std::uint32_t doc_count = 0;  ///< documents containing the term
    double tf_mass = 0.0;         ///< sum of log(1 + tf) per document
    std::uint64_t raw_tf = 0;     ///< total occurrences
  };

  /// Folds one document (a term sequence; duplicates = term frequency).
  void add_document(const std::vector<std::string>& terms);
  /// Folds one pre-counted document.
  void add_document(const TermFreqs& term_freqs);

  std::size_t documents() const noexcept { return docs_; }
  std::size_t vocabulary_size() const noexcept { return evidence_.size(); }
  /// Document frequency of `term` (0 when unseen).
  std::uint32_t df(const std::string& term) const;
  const std::unordered_map<std::string, Evidence>& evidence() const noexcept {
    return evidence_;
  }

 private:
  std::unordered_map<std::string, Evidence> evidence_;
  std::size_t docs_ = 0;
};

/// Term selection over accumulated statistics: `relevant` is the user's
/// attention stream, `background` the reference collection (often the
/// union of all users' streams). Same scoring rules as the corpus-based
/// overloads.
std::vector<ScoredTerm> select_terms(const TermStatsAccumulator& background,
                                     const TermStatsAccumulator& relevant,
                                     TermSelector selector,
                                     std::size_t top_n);

/// Diversity-aware re-selection (the paper's §3.3 open problem: "forming
/// queries for users that have many diverse interests").
///
/// Maximal-marginal-relevance over term co-occurrence: terms are picked
/// greedily by `lambda * score - (1 - lambda) * max-similarity-to-picked`,
/// where two terms are similar when they co-occur in the same documents of
/// `doc_sample` (cosine over document incidence). With lambda = 1 this
/// degenerates to plain top-n by score; smaller lambda spreads the query
/// across the user's distinct interest clusters.
///
/// `candidates` should be over-provisioned (e.g. the top 3n by Offer
/// Weight); scores are min-max normalized internally.
std::vector<ScoredTerm> diversify_terms(
    const std::vector<ScoredTerm>& candidates,
    const std::vector<TermFreqs>& doc_sample, double lambda,
    std::size_t top_n);

}  // namespace reef::ir
