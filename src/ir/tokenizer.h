// Text tokenization for the IR pipeline.
//
// The attention parser and the content recommender both reduce text (page
// bodies, URLs, story transcripts) to lower-case terms. The tokenizer
// splits on non-alphanumeric characters, lower-cases, and drops tokens
// that are too short/long or purely numeric — the standard preprocessing
// for the BM25 / Offer Weight computations in this module.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace reef::ir {

struct TokenizerOptions {
  std::size_t min_length = 2;
  std::size_t max_length = 40;
  bool drop_numeric = true;
};

/// Splits `text` into normalized tokens.
std::vector<std::string> tokenize(std::string_view text,
                                  const TokenizerOptions& options);
std::vector<std::string> tokenize(std::string_view text);

/// True for terms in the built-in English stopword list (already
/// lower-case input expected).
bool is_stopword(std::string_view term) noexcept;

/// Number of entries in the stopword list (for tests).
std::size_t stopword_count() noexcept;

/// Porter's stemming algorithm (the 1980 original). Input must be
/// lower-case ASCII; returns the stem. Strings shorter than 3 characters
/// are returned unchanged (per the algorithm).
std::string porter_stem(std::string_view word);

/// Full preprocessing: tokenize, drop stopwords, stem.
std::vector<std::string> analyze(std::string_view text);

}  // namespace reef::ir
