// Okapi BM25 ranking, used by the content-based recommender to order video
// news stories against the query built from a user's browsing terms
// (paper §3.3, footnote 2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/corpus.h"
#include "ir/term_weighting.h"

namespace reef::ir {

struct Bm25Params {
  double k1 = 1.2;  ///< term-frequency saturation
  double b = 0.75;  ///< length normalization
};

/// One ranked search result: corpus index plus score.
struct RankedDoc {
  std::size_t index = 0;
  double score = 0.0;

  friend bool operator==(const RankedDoc&, const RankedDoc&) = default;
};

/// BM25 scorer bound to a corpus. The corpus must outlive the scorer.
class Bm25 {
 public:
  explicit Bm25(const Corpus& corpus, Bm25Params params = {});

  /// Score of one document for an unweighted term query.
  double score(const std::vector<std::string>& query_terms,
               std::size_t doc_index) const;

  /// Score with per-term query weights (e.g. Offer Weight scores); each
  /// term's BM25 contribution is multiplied by max(weight, 0).
  double score(const std::vector<ScoredTerm>& weighted_query,
               std::size_t doc_index) const;

  /// Ranks the entire corpus by descending score; ties break by ascending
  /// index so rankings are deterministic. Zero-score documents keep their
  /// corpus order at the tail.
  std::vector<RankedDoc> rank(const std::vector<std::string>& query) const;
  std::vector<RankedDoc> rank(const std::vector<ScoredTerm>& query) const;

  const Bm25Params& params() const noexcept { return params_; }

 private:
  double term_score(const std::string& term, const Document& doc) const;
  template <typename Query>
  std::vector<RankedDoc> rank_impl(const Query& query) const;

  const Corpus& corpus_;
  Bm25Params params_;
};

}  // namespace reef::ir
