// The §3.3 case study as an application: build a content profile from a
// user's browsing, form a top-30-term query with the TF-integrated Offer
// Weight, rank a 500-story video-news archive with BM25, and compare the
// front of the ranking against the airing order.
//
//   build/examples/video_news
#include <cstdio>

#include "ir/metrics.h"
#include "reef/content_recommender.h"
#include "workload/browsing.h"
#include "workload/video_archive.h"

using namespace reef;

int main() {
  std::printf("Video-news recommendation (paper §3.3 case study)\n\n");

  // Seeds follow the E2 bench's derivation (master seed 1) so the example
  // reproduces a representative run of bench_content_precision.
  web::TopicModel::Config topics_config;
  topics_config.seed = 1 ^ 0x7091c;
  web::TopicModel topics(topics_config);
  web::SyntheticWeb::Config web_config;
  web_config.seed = 1 ^ 0x3eb;
  web::SyntheticWeb web(topics, web_config);
  workload::BrowsingGenerator::Config browsing_config;
  browsing_config.users = 1;
  browsing_config.seed = 1 ^ 0xb205;
  workload::BrowsingGenerator browsing(web, browsing_config);
  workload::VideoArchive::Config archive_config;
  archive_config.stories = 500;
  archive_config.seed = 1 ^ 0x51de0;
  workload::VideoArchive archive(topics, archive_config);

  // Six weeks of browsing -> content profile.
  core::ContentRecommender recommender;
  const auto trace = browsing.generate_single_user_trace(10000, 42.0, false);
  for (const auto& visit : trace) {
    if (const auto page = web.fetch(visit.uri); page && !page->terms.empty()) {
      recommender.add_page(0, page->terms);
    }
  }
  // Reference collection for term statistics.
  util::Rng rng(1 ^ 0x4ef0);
  for (int i = 0; i < 3000; ++i) {
    const web::Site& site =
        web.site(web.content_sites()[rng.index(web.content_sites().size())]);
    if (const auto page = web.fetch(web.page_uri(site, rng.index(30)));
        page && !page->terms.empty()) {
      recommender.add_page(1, page->terms);
    }
  }
  std::printf("profile built from %zu pages\n", recommender.pages_seen(0));

  // The top-30 query (paper's optimum).
  const auto query = recommender.build_query(0, 30);
  std::printf("\ntop query terms (tf-offer-weight):\n  ");
  for (std::size_t i = 0; i < 10 && i < query.size(); ++i) {
    std::printf("%s%s", i ? ", " : "", query[i].term.c_str());
  }
  std::printf(", ...\n");

  // Rank the archive and evaluate against the user's interest ranking.
  const auto ranked = recommender.rank_archive(0, archive.corpus(), 30);
  const auto scores = archive.interest_scores(
      browsing.users()[0].interests, 1.2, 1 ^ 0x6e0d);
  const auto relevant = workload::VideoArchive::relevant_set(scores, 0.25);
  std::vector<std::size_t> order;
  for (const auto& r : ranked) order.push_back(r.index);
  const auto airing = archive.airing_order();

  std::printf("\ntop 5 recommended stories:\n");
  for (std::size_t i = 0; i < 5; ++i) {
    std::printf("  #%zu story-%03zu  bm25=%.2f  %s\n", i + 1,
                ranked[i].index, ranked[i].score,
                relevant[ranked[i].index] ? "(interesting)" : "");
  }

  const double p_query = ir::precision_at_k(order, relevant, 100);
  const double p_airing = ir::precision_at_k(airing, relevant, 100);
  std::printf("\nP@100: query order %.3f vs airing order %.3f -> %+.1f%% "
              "improvement (paper: +34%% at N=30)\n",
              p_query, p_airing, (p_query - p_airing) / p_airing * 100.0);
  std::printf("mean average precision of query order: %.3f\n",
              ir::average_precision(order, relevant));
  return 0;
}
