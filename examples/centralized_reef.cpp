// The full centralized Reef loop (paper Fig. 1) on a small simulated
// world, narrated step by step: browse -> attention batch -> crawl ->
// recommend -> auto-subscribe -> feed events in the sidebar -> click ->
// closed-loop feedback.
//
//   build/examples/centralized_reef
#include <cstdio>

#include "feeds/feed_events_proxy.h"
#include "reef/centralized.h"
#include "reef/user_host.h"
#include "workload/driver.h"

using namespace reef;

int main() {
  std::printf("Centralized Reef walkthrough (Fig. 1)\n\n");

  // A small world: topic model, synthetic Web, feed population.
  web::TopicModel::Config topics_config;
  topics_config.vocabulary_size = 1000;
  topics_config.topic_count = 12;
  topics_config.words_per_topic = 80;
  web::TopicModel topics(topics_config);

  web::SyntheticWeb::Config web_config;
  web_config.content_sites = 50;
  web_config.ad_sites = 10;
  web_config.spam_sites = 2;
  web_config.feed_site_fraction = 1.0;
  web::SyntheticWeb web(topics, web_config);

  sim::Simulator sim;
  sim::Network::Config net_config;
  net_config.default_latency = 10 * sim::kMillisecond;
  sim::Network net(sim, net_config);

  feeds::FeedService::Config feeds_config;
  feeds_config.log_rate_mu = 1.8;  // lively feeds for a short demo
  feeds_config.log_rate_sigma = 0.4;
  feeds::FeedService feed_service(web, feeds_config);

  pubsub::Broker broker(sim, net, "broker");
  feeds::FeedEventsProxy::Config proxy_config;
  proxy_config.poll_interval = 15 * sim::kMinute;
  feeds::FeedEventsProxy proxy(sim, net, feed_service, broker, proxy_config);

  core::CentralizedServer::Config server_config;
  server_config.analysis_interval = 10 * sim::kMinute;
  server_config.collaborative_interval = 0;
  core::CentralizedServer server(sim, net, web, server_config);

  core::UserHost::Config host_config;
  host_config.frontend.event_ttl = 3 * sim::kDay;  // keep the demo sidebar full
  core::UserHost host(sim, net, web, broker, /*user=*/0, host_config);
  host.connect(server.id(), proxy.id());
  server.register_user(0, host.id());

  // Step 1 (attention): the user repeatedly reads one favourite site.
  const web::Site* favourite = nullptr;
  for (const auto index : web.content_sites()) {
    if (!web.site(index).feed_urls.empty() && !web.site(index).multimedia) {
      favourite = &web.site(index);
      break;
    }
  }
  std::printf("step 1  user browses %s (3 pages) + one ad request\n",
              favourite->host.c_str());
  host.browse(web.page_uri(*favourite, 0));
  host.browse(web.page_uri(*favourite, 1));
  host.browse(web.page_uri(*favourite, 2));
  host.browse(web.page_uri(web.site(web.ad_sites()[0]), 0));
  host.recorder().flush();

  sim.run_until(sim.now() + sim::kHour);
  std::printf("step 2  server crawled %llu page(s), skipped %llu flagged, "
              "sent %llu recommendation(s)\n",
              static_cast<unsigned long long>(server.crawler().stats().fetched),
              static_cast<unsigned long long>(
                  server.crawler().stats().skipped_flagged),
              static_cast<unsigned long long>(
                  server.stats().recommendations_sent));

  std::printf("step 3  frontend executed them: %zu active feed "
              "subscription(s):\n",
              host.frontend().active_feed_subscriptions());
  for (const auto& url : host.frontend().subscribed_feeds()) {
    std::printf("          %s (expected %.2f items/day)\n", url.c_str(),
                feed_service.rate_per_day(url));
  }

  // Step 4 (events): after one day the sidebar has fresh items.
  sim.run_until(sim.now() + sim::kDay);
  auto& sidebar = host.frontend().sidebar();
  std::printf("\nstep 4  after one day the sidebar holds %zu event(s):\n",
              sidebar.size());
  std::size_t shown = 0;
  for (const auto& entry : sidebar) {
    if (++shown > 3) break;
    const auto* guid = entry.event.find("guid");
    std::printf("          [%s] %s\n",
                sim::format_time(entry.arrived).c_str(),
                guid ? guid->as_string().c_str() : "?");
  }

  // Closed loop, positive side: open the newest entry; the click lands in
  // the attention recorder flagged as notification-driven.
  if (!sidebar.empty()) {
    const auto before = host.recorder().clicks_recorded();
    host.frontend().click_entry(sidebar.back().entry_id);
    std::printf("\nclosed loop (+): clicking a sidebar event recorded %llu "
                "new attention click (from_notification=%s)\n",
                static_cast<unsigned long long>(
                    host.recorder().clicks_recorded() - before),
                host.recorder().history().back().from_notification ? "true"
                                                                   : "false");
  }

  // Closed loop, negative side: the user then ignores every event for a
  // week. The periodic feedback reports a collapsing click-through rate
  // and the recommender retracts the subscription — no explicit
  // unsubscribe ever issued by the user.
  sim.run_until(sim.now() + 7 * sim::kDay);
  std::printf("\nclosed loop (-): after a week of ignored events the "
              "recommender unsubscribed automatically:\n");
  std::printf("          delivered %llu, clicked %llu, auto-unsubscribes "
              "%llu, active subscriptions now %zu\n",
              static_cast<unsigned long long>(
                  host.frontend().stats().events_received),
              static_cast<unsigned long long>(host.frontend().stats().clicked),
              static_cast<unsigned long long>(
                  host.frontend().stats().unsubscribes_applied),
              host.frontend().active_feed_subscriptions());

  std::printf("\nnetwork totals: %llu messages, %llu bytes "
              "(attention %llu B, recommendations %llu B)\n",
              static_cast<unsigned long long>(net.total_messages()),
              static_cast<unsigned long long>(net.total_bytes()),
              static_cast<unsigned long long>(net.bytes_by_type().get(
                  std::string(attention::kTypeAttentionBatch))),
              static_cast<unsigned long long>(net.bytes_by_type().get(
                  std::string(core::kTypeRecommendation))));
  return 0;
}
