// Quickstart: the core Reef idea in one file.
//
// A user "browses" a stock-quote site; the attention parser recognizes
// ticker symbols in the clicked URIs; the recommendation turns into a
// pub/sub subscription placed on a broker — zero clicks on a subscribe
// button — and quote events start arriving.
//
//   build/examples/quickstart
#include <cstdio>

#include "attention/parser.h"
#include "pubsub/client.h"
#include "pubsub/filter_parser.h"
#include "pubsub/overlay.h"
#include "sim/network.h"
#include "sim/simulator.h"

using namespace reef;

int main() {
  std::printf("Reef quickstart: from attention to subscriptions\n\n");

  // 1. A simulated deployment: one broker, a publisher (the quote feed),
  //    and the user's client.
  sim::Simulator sim;
  sim::Network::Config net_config;
  net_config.default_latency = 5 * sim::kMillisecond;
  net_config.jitter_fraction = 0.0;
  sim::Network net(sim, net_config);
  pubsub::Broker broker(sim, net, "broker");
  pubsub::Client quotes(sim, net, "quote-feed");
  pubsub::Client user(sim, net, "user");
  quotes.connect(broker);
  user.connect(broker);

  // 2. The attention recorder captured three clicks; the parser scans them
  //    for tokens valid in the quote stream's name-value vocabulary.
  attention::StockSymbolParser parser({"ACME", "GLOBEX", "INITECH"});
  const char* history[] = {
      "http://finance.example/quote/acme",
      "http://finance.example/news/markets",
      "http://finance.example/quote/globex",
  };
  std::printf("browsing history:\n");
  for (const char* url : history) {
    std::printf("  %s\n", url);
  }

  std::printf("\nparsed subscription tokens -> placed subscriptions:\n");
  for (const char* url : history) {
    const attention::Click click{0, *util::Uri::parse(url), sim.now(), false};
    for (const auto& token : parser.parse(click, nullptr)) {
      // 3. Each token becomes a content-based subscription: symbol
      //    equality plus a price band the user cares about. The textual
      //    subscription language and the fluent builder are equivalent:
      //        parse_filter_or_throw("symbol = \"ACME\" && price > 10")
      const pubsub::Filter filter = pubsub::parse_filter_or_throw(
          token.name + " = \"" + token.value.as_string() +
          "\" && price > 10.0");
      std::printf("  %s\n", filter.to_string().c_str());
      user.subscribe(filter,
                     [](const pubsub::Event& event, pubsub::SubscriptionId) {
                       std::printf("  -> delivered: %s\n",
                                   event.to_string().c_str());
                     });
    }
  }
  sim.run_until(sim.now() + sim::kSecond);

  // 4. The market moves; only events matching the auto-placed
  //    subscriptions reach the user.
  std::printf("\npublishing quotes:\n");
  struct {
    const char* symbol;
    double price;
  } ticks[] = {{"ACME", 12.5},    // delivered (subscribed, price > 10)
               {"ACME", 9.25},    // filtered: price too low
               {"GLOBEX", 42.0},  // delivered
               {"INITECH", 99.0}};  // filtered: never browsed
  for (const auto& tick : ticks) {
    std::printf("  publish {symbol=%s, price=%.2f}\n", tick.symbol,
                tick.price);
    quotes.publish(pubsub::Event()
                       .with("symbol", tick.symbol)
                       .with("price", tick.price));
  }
  sim.run_until(sim.now() + sim::kSecond);

  std::printf("\ndeliveries: %llu (expected 2)\n",
              static_cast<unsigned long long>(user.deliveries()));
  return 0;
}
