// The distributed Reef design (paper Fig. 2): recorder, parser and
// recommender all run on the user's host; attention never crosses the
// network; peers exchange recommendations by gossip inside an interest
// group.
//
//   build/examples/distributed_reef
#include <cstdio>

#include "feeds/feed_events_proxy.h"
#include "reef/distributed.h"

using namespace reef;

int main() {
  std::printf("Distributed Reef walkthrough (Fig. 2)\n\n");

  web::TopicModel::Config topics_config;
  topics_config.vocabulary_size = 1000;
  topics_config.topic_count = 12;
  topics_config.words_per_topic = 80;
  web::TopicModel topics(topics_config);

  web::SyntheticWeb::Config web_config;
  web_config.content_sites = 50;
  web_config.ad_sites = 10;
  web_config.feed_site_fraction = 1.0;
  web::SyntheticWeb web(topics, web_config);

  sim::Simulator sim;
  sim::Network net(sim, {});
  feeds::FeedService feed_service(web, {});
  pubsub::Broker broker(sim, net, "broker");
  feeds::FeedEventsProxy proxy(sim, net, feed_service, broker, {});

  core::DistributedPeer::Config peer_config;
  peer_config.gossip_interval = 2 * sim::kHour;
  core::DistributedPeer alice(sim, net, web, broker, 0, peer_config);
  core::DistributedPeer bob(sim, net, web, broker, 1, peer_config);
  alice.set_proxy(proxy.id());
  bob.set_proxy(proxy.id());
  // Alice and Bob share interests -> same gossip group.
  alice.add_group_peer(bob.id());
  bob.add_group_peer(alice.id());

  const web::Site* site = nullptr;
  for (const auto index : web.content_sites()) {
    if (!web.site(index).feed_urls.empty() && !web.site(index).multimedia) {
      site = &web.site(index);
      break;
    }
  }

  // Alice is a regular; Bob passed by once.
  std::printf("alice browses %s three times; bob once\n", site->host.c_str());
  alice.browse(web.page_uri(*site, 0));
  alice.browse(web.page_uri(*site, 1));
  alice.browse(web.page_uri(*site, 2));
  bob.browse(web.page_uri(*site, 0));
  alice.recorder().flush();
  bob.recorder().flush();
  sim.run_until(sim.now() + sim::kMinute);

  std::printf("\nafter local analysis (everything stayed on-host):\n");
  std::printf("  alice subscriptions: %zu (parsed %llu pages from her "
              "browser cache)\n",
              alice.frontend().active_feed_subscriptions(),
              static_cast<unsigned long long>(
                  alice.stats().pages_parsed_from_cache));
  std::printf("  bob subscriptions:   %zu (below his own visit threshold)\n",
              bob.frontend().active_feed_subscriptions());

  sim.run_until(sim.now() + 5 * sim::kHour);
  std::printf("\nafter a gossip round:\n");
  std::printf("  bob subscriptions:   %zu (adopted %llu feed(s) gossiped by "
              "alice — he had visited the site)\n",
              bob.frontend().active_feed_subscriptions(),
              static_cast<unsigned long long>(bob.stats().gossip_adopted));

  std::printf("\nprivacy check — bytes by message type:\n");
  for (const auto& [type, bytes] : net.bytes_by_type().items()) {
    std::printf("  %-18s %8llu B\n", type.c_str(),
                static_cast<unsigned long long>(bytes));
  }
  std::printf("  (no '%s' traffic: attention data never left the hosts)\n",
              std::string(attention::kTypeAttentionBatch).c_str());
  return 0;
}
