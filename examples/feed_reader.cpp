// A push-based feed reader built on the WAIF-style FeedEvents proxy: the
// user subscribes to three feeds; the proxy polls them once per interval
// on everyone's behalf and pushes new items through the pub/sub substrate
// into the reader's timeline. Demonstrates deliverable-grade use of the
// feeds/ + pubsub/ public APIs without the Reef recommendation layer.
//
//   build/examples/feed_reader
#include <cstdio>
#include <vector>

#include "feeds/feed_events_proxy.h"
#include "pubsub/client.h"

using namespace reef;

int main() {
  std::printf("Push-based feed reader (WAIF FeedEvents proxy)\n\n");

  web::TopicModel topics;
  web::SyntheticWeb::Config web_config;
  web_config.content_sites = 100;
  web_config.ad_sites = 0;
  web_config.spam_sites = 0;
  web_config.feed_site_fraction = 1.0;
  web::SyntheticWeb web(topics, web_config);

  sim::Simulator sim;
  sim::Network net(sim, {});
  feeds::FeedService::Config feeds_config;
  feeds_config.log_rate_mu = 1.2;  // ~3 items/day median for a lively demo
  feeds_config.log_rate_sigma = 0.8;
  feeds::FeedService service(web, feeds_config);

  pubsub::Broker broker(sim, net, "broker");
  feeds::FeedEventsProxy::Config proxy_config;
  proxy_config.poll_interval = 30 * sim::kMinute;
  feeds::FeedEventsProxy proxy(sim, net, service, broker, proxy_config);

  pubsub::Client reader(sim, net, "reader");
  reader.connect(broker);

  // Subscribe to the first three feeds: one pub/sub filter per feed plus a
  // watch registration at the proxy.
  struct TimelineEntry {
    sim::Time at;
    std::string guid;
  };
  std::vector<TimelineEntry> timeline;
  std::printf("subscribing to:\n");
  for (std::size_t i = 0; i < 3; ++i) {
    const std::string& url = service.feed_urls()[i];
    std::printf("  %-55s (%.2f items/day)\n", url.c_str(),
                service.rate_per_day(url));
    reader.subscribe(feeds::feed_filter(url),
                     [&](const pubsub::Event& event, pubsub::SubscriptionId) {
                       timeline.push_back(TimelineEntry{
                           sim.now(), event.find("guid")->as_string()});
                     });
    proxy.watch(url);
  }

  // Read for a simulated week.
  sim.run_until(7 * sim::kDay);

  std::printf("\ntimeline after one week (%zu items):\n", timeline.size());
  std::size_t shown = 0;
  for (const auto& entry : timeline) {
    if (++shown > 12) {
      std::printf("  ... %zu more\n", timeline.size() - 12);
      break;
    }
    std::printf("  [%s] %s\n", sim::format_time(entry.at).c_str(),
                entry.guid.c_str());
  }

  std::printf("\nproxy polled %llu times, transferring %.1f MB; the reader "
              "itself issued zero polls.\n",
              static_cast<unsigned long long>(proxy.stats().polls),
              static_cast<double>(proxy.stats().poll_bytes) / 1e6);
  return 0;
}
