#!/usr/bin/env python3
"""Fails when a relative markdown link in the docs tier points nowhere.

Scans the given markdown files (default: README.md, ROADMAP.md, docs/*.md)
for inline links/images `[text](target)` and verifies that every relative
target exists on disk, resolved against the file containing the link.
External links (scheme://, mailto:) and pure in-page anchors (#...) are
skipped; a `path#anchor` target is checked for the path only. Exit code 1
lists every broken link. Stdlib only, so it runs anywhere CI can run
python3.
"""

import re
import sys
from pathlib import Path

# Inline links and images; [text](target "title") titles are stripped.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_RE = re.compile(r"^([a-zA-Z][a-zA-Z0-9+.-]*:|#)")


def check_file(md: Path, repo_root: Path) -> list[str]:
    errors = []
    in_fence = False
    for lineno, line in enumerate(md.read_text().splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1).split("#", 1)[0]
            if not target or SKIP_RE.match(match.group(1)):
                continue
            base = repo_root if target.startswith("/") else md.parent
            resolved = (base / target.lstrip("/")).resolve()
            if not resolved.exists():
                errors.append(f"{md}:{lineno}: broken link -> {target}")
    return errors


def main(argv: list[str]) -> int:
    repo_root = Path(__file__).resolve().parent.parent
    if len(argv) > 1:
        files = [Path(arg) for arg in argv[1:]]
    else:
        files = [repo_root / "README.md", repo_root / "ROADMAP.md"]
        files += sorted((repo_root / "docs").glob("*.md"))
    missing = [f for f in files if not f.exists()]
    if missing:
        for f in missing:
            print(f"no such file: {f}", file=sys.stderr)
        return 1
    errors = []
    for md in files:
        errors.extend(check_file(md, repo_root))
    for error in errors:
        print(error, file=sys.stderr)
    if not errors:
        print(f"checked {len(files)} files, all relative links resolve")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
