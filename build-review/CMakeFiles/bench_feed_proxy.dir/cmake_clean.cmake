file(REMOVE_RECURSE
  "CMakeFiles/bench_feed_proxy.dir/bench/bench_feed_proxy.cpp.o"
  "CMakeFiles/bench_feed_proxy.dir/bench/bench_feed_proxy.cpp.o.d"
  "bench_feed_proxy"
  "bench_feed_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_feed_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
