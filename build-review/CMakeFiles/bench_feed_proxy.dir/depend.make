# Empty dependencies file for bench_feed_proxy.
# This may be replaced when dependencies are built.
