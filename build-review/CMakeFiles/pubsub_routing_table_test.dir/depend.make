# Empty dependencies file for pubsub_routing_table_test.
# This may be replaced when dependencies are built.
