file(REMOVE_RECURSE
  "CMakeFiles/bench_pubsub_matching.dir/bench/bench_pubsub_matching.cpp.o"
  "CMakeFiles/bench_pubsub_matching.dir/bench/bench_pubsub_matching.cpp.o.d"
  "bench_pubsub_matching"
  "bench_pubsub_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pubsub_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
