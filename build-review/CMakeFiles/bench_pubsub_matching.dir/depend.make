# Empty dependencies file for bench_pubsub_matching.
# This may be replaced when dependencies are built.
