file(REMOVE_RECURSE
  "CMakeFiles/pubsub_differential_fuzz_test.dir/tests/pubsub_differential_fuzz_test.cpp.o"
  "CMakeFiles/pubsub_differential_fuzz_test.dir/tests/pubsub_differential_fuzz_test.cpp.o.d"
  "pubsub_differential_fuzz_test"
  "pubsub_differential_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pubsub_differential_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
