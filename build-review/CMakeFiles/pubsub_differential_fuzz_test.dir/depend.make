# Empty dependencies file for pubsub_differential_fuzz_test.
# This may be replaced when dependencies are built.
