# Empty dependencies file for feeds_test.
# This may be replaced when dependencies are built.
