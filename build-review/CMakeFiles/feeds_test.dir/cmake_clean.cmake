file(REMOVE_RECURSE
  "CMakeFiles/feeds_test.dir/tests/feeds_test.cpp.o"
  "CMakeFiles/feeds_test.dir/tests/feeds_test.cpp.o.d"
  "feeds_test"
  "feeds_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feeds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
