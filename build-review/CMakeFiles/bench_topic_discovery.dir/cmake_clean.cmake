file(REMOVE_RECURSE
  "CMakeFiles/bench_topic_discovery.dir/bench/bench_topic_discovery.cpp.o"
  "CMakeFiles/bench_topic_discovery.dir/bench/bench_topic_discovery.cpp.o.d"
  "bench_topic_discovery"
  "bench_topic_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_topic_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
