# Empty dependencies file for bench_topic_discovery.
# This may be replaced when dependencies are built.
