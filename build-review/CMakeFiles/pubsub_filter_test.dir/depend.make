# Empty dependencies file for pubsub_filter_test.
# This may be replaced when dependencies are built.
