file(REMOVE_RECURSE
  "CMakeFiles/pubsub_filter_test.dir/tests/pubsub_filter_test.cpp.o"
  "CMakeFiles/pubsub_filter_test.dir/tests/pubsub_filter_test.cpp.o.d"
  "pubsub_filter_test"
  "pubsub_filter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pubsub_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
