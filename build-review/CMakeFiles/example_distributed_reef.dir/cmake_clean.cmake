file(REMOVE_RECURSE
  "CMakeFiles/example_distributed_reef.dir/examples/distributed_reef.cpp.o"
  "CMakeFiles/example_distributed_reef.dir/examples/distributed_reef.cpp.o.d"
  "example_distributed_reef"
  "example_distributed_reef.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_distributed_reef.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
