# Empty dependencies file for example_distributed_reef.
# This may be replaced when dependencies are built.
