file(REMOVE_RECURSE
  "CMakeFiles/experiment_smoke_test.dir/tests/experiment_smoke_test.cpp.o"
  "CMakeFiles/experiment_smoke_test.dir/tests/experiment_smoke_test.cpp.o.d"
  "experiment_smoke_test"
  "experiment_smoke_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiment_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
