file(REMOVE_RECURSE
  "CMakeFiles/pubsub_overlay_property_test.dir/tests/pubsub_overlay_property_test.cpp.o"
  "CMakeFiles/pubsub_overlay_property_test.dir/tests/pubsub_overlay_property_test.cpp.o.d"
  "pubsub_overlay_property_test"
  "pubsub_overlay_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pubsub_overlay_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
