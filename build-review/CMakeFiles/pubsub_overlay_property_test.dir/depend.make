# Empty dependencies file for pubsub_overlay_property_test.
# This may be replaced when dependencies are built.
