file(REMOVE_RECURSE
  "CMakeFiles/pubsub_sharding_test.dir/tests/pubsub_sharding_test.cpp.o"
  "CMakeFiles/pubsub_sharding_test.dir/tests/pubsub_sharding_test.cpp.o.d"
  "pubsub_sharding_test"
  "pubsub_sharding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pubsub_sharding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
