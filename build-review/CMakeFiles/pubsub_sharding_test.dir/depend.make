# Empty dependencies file for pubsub_sharding_test.
# This may be replaced when dependencies are built.
