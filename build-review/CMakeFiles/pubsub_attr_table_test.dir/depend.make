# Empty dependencies file for pubsub_attr_table_test.
# This may be replaced when dependencies are built.
