file(REMOVE_RECURSE
  "CMakeFiles/pubsub_attr_table_test.dir/tests/pubsub_attr_table_test.cpp.o"
  "CMakeFiles/pubsub_attr_table_test.dir/tests/pubsub_attr_table_test.cpp.o.d"
  "pubsub_attr_table_test"
  "pubsub_attr_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pubsub_attr_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
