# Empty dependencies file for example_centralized_reef.
# This may be replaced when dependencies are built.
