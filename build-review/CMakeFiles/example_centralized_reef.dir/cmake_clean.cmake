file(REMOVE_RECURSE
  "CMakeFiles/example_centralized_reef.dir/examples/centralized_reef.cpp.o"
  "CMakeFiles/example_centralized_reef.dir/examples/centralized_reef.cpp.o.d"
  "example_centralized_reef"
  "example_centralized_reef.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_centralized_reef.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
