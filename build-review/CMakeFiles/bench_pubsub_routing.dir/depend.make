# Empty dependencies file for bench_pubsub_routing.
# This may be replaced when dependencies are built.
