file(REMOVE_RECURSE
  "CMakeFiles/bench_pubsub_routing.dir/bench/bench_pubsub_routing.cpp.o"
  "CMakeFiles/bench_pubsub_routing.dir/bench/bench_pubsub_routing.cpp.o.d"
  "bench_pubsub_routing"
  "bench_pubsub_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pubsub_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
