# Empty dependencies file for reef_system_test.
# This may be replaced when dependencies are built.
