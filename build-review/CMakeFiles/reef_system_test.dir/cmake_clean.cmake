file(REMOVE_RECURSE
  "CMakeFiles/reef_system_test.dir/tests/reef_system_test.cpp.o"
  "CMakeFiles/reef_system_test.dir/tests/reef_system_test.cpp.o.d"
  "reef_system_test"
  "reef_system_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reef_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
