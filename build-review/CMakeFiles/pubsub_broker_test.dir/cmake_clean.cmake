file(REMOVE_RECURSE
  "CMakeFiles/pubsub_broker_test.dir/tests/pubsub_broker_test.cpp.o"
  "CMakeFiles/pubsub_broker_test.dir/tests/pubsub_broker_test.cpp.o.d"
  "pubsub_broker_test"
  "pubsub_broker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pubsub_broker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
