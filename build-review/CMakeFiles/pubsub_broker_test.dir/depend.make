# Empty dependencies file for pubsub_broker_test.
# This may be replaced when dependencies are built.
