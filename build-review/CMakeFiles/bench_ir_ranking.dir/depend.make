# Empty dependencies file for bench_ir_ranking.
# This may be replaced when dependencies are built.
