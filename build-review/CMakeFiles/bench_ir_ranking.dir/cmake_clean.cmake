file(REMOVE_RECURSE
  "CMakeFiles/bench_ir_ranking.dir/bench/bench_ir_ranking.cpp.o"
  "CMakeFiles/bench_ir_ranking.dir/bench/bench_ir_ranking.cpp.o.d"
  "bench_ir_ranking"
  "bench_ir_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ir_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
