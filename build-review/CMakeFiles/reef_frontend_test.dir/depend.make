# Empty dependencies file for reef_frontend_test.
# This may be replaced when dependencies are built.
