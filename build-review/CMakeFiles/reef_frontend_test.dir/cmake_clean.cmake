file(REMOVE_RECURSE
  "CMakeFiles/reef_frontend_test.dir/tests/reef_frontend_test.cpp.o"
  "CMakeFiles/reef_frontend_test.dir/tests/reef_frontend_test.cpp.o.d"
  "reef_frontend_test"
  "reef_frontend_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reef_frontend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
