file(REMOVE_RECURSE
  "CMakeFiles/web_test.dir/tests/web_test.cpp.o"
  "CMakeFiles/web_test.dir/tests/web_test.cpp.o.d"
  "web_test"
  "web_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
