file(REMOVE_RECURSE
  "CMakeFiles/example_feed_reader.dir/examples/feed_reader.cpp.o"
  "CMakeFiles/example_feed_reader.dir/examples/feed_reader.cpp.o.d"
  "example_feed_reader"
  "example_feed_reader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_feed_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
