# Empty dependencies file for example_feed_reader.
# This may be replaced when dependencies are built.
