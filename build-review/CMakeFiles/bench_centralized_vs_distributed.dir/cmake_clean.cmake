file(REMOVE_RECURSE
  "CMakeFiles/bench_centralized_vs_distributed.dir/bench/bench_centralized_vs_distributed.cpp.o"
  "CMakeFiles/bench_centralized_vs_distributed.dir/bench/bench_centralized_vs_distributed.cpp.o.d"
  "bench_centralized_vs_distributed"
  "bench_centralized_vs_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_centralized_vs_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
