# Empty dependencies file for bench_centralized_vs_distributed.
# This may be replaced when dependencies are built.
