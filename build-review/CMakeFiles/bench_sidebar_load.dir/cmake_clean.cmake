file(REMOVE_RECURSE
  "CMakeFiles/bench_sidebar_load.dir/bench/bench_sidebar_load.cpp.o"
  "CMakeFiles/bench_sidebar_load.dir/bench/bench_sidebar_load.cpp.o.d"
  "bench_sidebar_load"
  "bench_sidebar_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sidebar_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
