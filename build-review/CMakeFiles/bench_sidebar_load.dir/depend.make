# Empty dependencies file for bench_sidebar_load.
# This may be replaced when dependencies are built.
