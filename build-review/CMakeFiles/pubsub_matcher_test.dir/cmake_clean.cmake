file(REMOVE_RECURSE
  "CMakeFiles/pubsub_matcher_test.dir/tests/pubsub_matcher_test.cpp.o"
  "CMakeFiles/pubsub_matcher_test.dir/tests/pubsub_matcher_test.cpp.o.d"
  "pubsub_matcher_test"
  "pubsub_matcher_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pubsub_matcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
