# Empty dependencies file for pubsub_matcher_test.
# This may be replaced when dependencies are built.
