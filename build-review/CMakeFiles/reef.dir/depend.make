# Empty dependencies file for reef.
# This may be replaced when dependencies are built.
