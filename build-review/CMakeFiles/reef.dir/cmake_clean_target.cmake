file(REMOVE_RECURSE
  "libreef.a"
)
