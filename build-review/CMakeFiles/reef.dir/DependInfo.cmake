
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attention/log_stats.cpp" "CMakeFiles/reef.dir/src/attention/log_stats.cpp.o" "gcc" "CMakeFiles/reef.dir/src/attention/log_stats.cpp.o.d"
  "/root/repo/src/attention/parser.cpp" "CMakeFiles/reef.dir/src/attention/parser.cpp.o" "gcc" "CMakeFiles/reef.dir/src/attention/parser.cpp.o.d"
  "/root/repo/src/attention/recorder.cpp" "CMakeFiles/reef.dir/src/attention/recorder.cpp.o" "gcc" "CMakeFiles/reef.dir/src/attention/recorder.cpp.o.d"
  "/root/repo/src/feeds/direct_poller.cpp" "CMakeFiles/reef.dir/src/feeds/direct_poller.cpp.o" "gcc" "CMakeFiles/reef.dir/src/feeds/direct_poller.cpp.o.d"
  "/root/repo/src/feeds/feed_events_proxy.cpp" "CMakeFiles/reef.dir/src/feeds/feed_events_proxy.cpp.o" "gcc" "CMakeFiles/reef.dir/src/feeds/feed_events_proxy.cpp.o.d"
  "/root/repo/src/feeds/feed_service.cpp" "CMakeFiles/reef.dir/src/feeds/feed_service.cpp.o" "gcc" "CMakeFiles/reef.dir/src/feeds/feed_service.cpp.o.d"
  "/root/repo/src/ir/bm25.cpp" "CMakeFiles/reef.dir/src/ir/bm25.cpp.o" "gcc" "CMakeFiles/reef.dir/src/ir/bm25.cpp.o.d"
  "/root/repo/src/ir/corpus.cpp" "CMakeFiles/reef.dir/src/ir/corpus.cpp.o" "gcc" "CMakeFiles/reef.dir/src/ir/corpus.cpp.o.d"
  "/root/repo/src/ir/metrics.cpp" "CMakeFiles/reef.dir/src/ir/metrics.cpp.o" "gcc" "CMakeFiles/reef.dir/src/ir/metrics.cpp.o.d"
  "/root/repo/src/ir/term_weighting.cpp" "CMakeFiles/reef.dir/src/ir/term_weighting.cpp.o" "gcc" "CMakeFiles/reef.dir/src/ir/term_weighting.cpp.o.d"
  "/root/repo/src/ir/tokenizer.cpp" "CMakeFiles/reef.dir/src/ir/tokenizer.cpp.o" "gcc" "CMakeFiles/reef.dir/src/ir/tokenizer.cpp.o.d"
  "/root/repo/src/pubsub/attr_table.cpp" "CMakeFiles/reef.dir/src/pubsub/attr_table.cpp.o" "gcc" "CMakeFiles/reef.dir/src/pubsub/attr_table.cpp.o.d"
  "/root/repo/src/pubsub/broker.cpp" "CMakeFiles/reef.dir/src/pubsub/broker.cpp.o" "gcc" "CMakeFiles/reef.dir/src/pubsub/broker.cpp.o.d"
  "/root/repo/src/pubsub/client.cpp" "CMakeFiles/reef.dir/src/pubsub/client.cpp.o" "gcc" "CMakeFiles/reef.dir/src/pubsub/client.cpp.o.d"
  "/root/repo/src/pubsub/constraint.cpp" "CMakeFiles/reef.dir/src/pubsub/constraint.cpp.o" "gcc" "CMakeFiles/reef.dir/src/pubsub/constraint.cpp.o.d"
  "/root/repo/src/pubsub/event.cpp" "CMakeFiles/reef.dir/src/pubsub/event.cpp.o" "gcc" "CMakeFiles/reef.dir/src/pubsub/event.cpp.o.d"
  "/root/repo/src/pubsub/filter.cpp" "CMakeFiles/reef.dir/src/pubsub/filter.cpp.o" "gcc" "CMakeFiles/reef.dir/src/pubsub/filter.cpp.o.d"
  "/root/repo/src/pubsub/filter_parser.cpp" "CMakeFiles/reef.dir/src/pubsub/filter_parser.cpp.o" "gcc" "CMakeFiles/reef.dir/src/pubsub/filter_parser.cpp.o.d"
  "/root/repo/src/pubsub/matcher.cpp" "CMakeFiles/reef.dir/src/pubsub/matcher.cpp.o" "gcc" "CMakeFiles/reef.dir/src/pubsub/matcher.cpp.o.d"
  "/root/repo/src/pubsub/matcher_registry.cpp" "CMakeFiles/reef.dir/src/pubsub/matcher_registry.cpp.o" "gcc" "CMakeFiles/reef.dir/src/pubsub/matcher_registry.cpp.o.d"
  "/root/repo/src/pubsub/overlay.cpp" "CMakeFiles/reef.dir/src/pubsub/overlay.cpp.o" "gcc" "CMakeFiles/reef.dir/src/pubsub/overlay.cpp.o.d"
  "/root/repo/src/pubsub/routing_table.cpp" "CMakeFiles/reef.dir/src/pubsub/routing_table.cpp.o" "gcc" "CMakeFiles/reef.dir/src/pubsub/routing_table.cpp.o.d"
  "/root/repo/src/pubsub/sequence.cpp" "CMakeFiles/reef.dir/src/pubsub/sequence.cpp.o" "gcc" "CMakeFiles/reef.dir/src/pubsub/sequence.cpp.o.d"
  "/root/repo/src/pubsub/sharded_matcher.cpp" "CMakeFiles/reef.dir/src/pubsub/sharded_matcher.cpp.o" "gcc" "CMakeFiles/reef.dir/src/pubsub/sharded_matcher.cpp.o.d"
  "/root/repo/src/pubsub/value.cpp" "CMakeFiles/reef.dir/src/pubsub/value.cpp.o" "gcc" "CMakeFiles/reef.dir/src/pubsub/value.cpp.o.d"
  "/root/repo/src/reef/centralized.cpp" "CMakeFiles/reef.dir/src/reef/centralized.cpp.o" "gcc" "CMakeFiles/reef.dir/src/reef/centralized.cpp.o.d"
  "/root/repo/src/reef/collaborative.cpp" "CMakeFiles/reef.dir/src/reef/collaborative.cpp.o" "gcc" "CMakeFiles/reef.dir/src/reef/collaborative.cpp.o.d"
  "/root/repo/src/reef/content_recommender.cpp" "CMakeFiles/reef.dir/src/reef/content_recommender.cpp.o" "gcc" "CMakeFiles/reef.dir/src/reef/content_recommender.cpp.o.d"
  "/root/repo/src/reef/distributed.cpp" "CMakeFiles/reef.dir/src/reef/distributed.cpp.o" "gcc" "CMakeFiles/reef.dir/src/reef/distributed.cpp.o.d"
  "/root/repo/src/reef/frontend.cpp" "CMakeFiles/reef.dir/src/reef/frontend.cpp.o" "gcc" "CMakeFiles/reef.dir/src/reef/frontend.cpp.o.d"
  "/root/repo/src/reef/manual_baseline.cpp" "CMakeFiles/reef.dir/src/reef/manual_baseline.cpp.o" "gcc" "CMakeFiles/reef.dir/src/reef/manual_baseline.cpp.o.d"
  "/root/repo/src/reef/topic_recommender.cpp" "CMakeFiles/reef.dir/src/reef/topic_recommender.cpp.o" "gcc" "CMakeFiles/reef.dir/src/reef/topic_recommender.cpp.o.d"
  "/root/repo/src/reef/update_filter.cpp" "CMakeFiles/reef.dir/src/reef/update_filter.cpp.o" "gcc" "CMakeFiles/reef.dir/src/reef/update_filter.cpp.o.d"
  "/root/repo/src/reef/user_host.cpp" "CMakeFiles/reef.dir/src/reef/user_host.cpp.o" "gcc" "CMakeFiles/reef.dir/src/reef/user_host.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "CMakeFiles/reef.dir/src/sim/network.cpp.o" "gcc" "CMakeFiles/reef.dir/src/sim/network.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "CMakeFiles/reef.dir/src/sim/simulator.cpp.o" "gcc" "CMakeFiles/reef.dir/src/sim/simulator.cpp.o.d"
  "/root/repo/src/util/log.cpp" "CMakeFiles/reef.dir/src/util/log.cpp.o" "gcc" "CMakeFiles/reef.dir/src/util/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "CMakeFiles/reef.dir/src/util/rng.cpp.o" "gcc" "CMakeFiles/reef.dir/src/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "CMakeFiles/reef.dir/src/util/stats.cpp.o" "gcc" "CMakeFiles/reef.dir/src/util/stats.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "CMakeFiles/reef.dir/src/util/strings.cpp.o" "gcc" "CMakeFiles/reef.dir/src/util/strings.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "CMakeFiles/reef.dir/src/util/thread_pool.cpp.o" "gcc" "CMakeFiles/reef.dir/src/util/thread_pool.cpp.o.d"
  "/root/repo/src/util/uri.cpp" "CMakeFiles/reef.dir/src/util/uri.cpp.o" "gcc" "CMakeFiles/reef.dir/src/util/uri.cpp.o.d"
  "/root/repo/src/web/ad_classifier.cpp" "CMakeFiles/reef.dir/src/web/ad_classifier.cpp.o" "gcc" "CMakeFiles/reef.dir/src/web/ad_classifier.cpp.o.d"
  "/root/repo/src/web/browser_cache.cpp" "CMakeFiles/reef.dir/src/web/browser_cache.cpp.o" "gcc" "CMakeFiles/reef.dir/src/web/browser_cache.cpp.o.d"
  "/root/repo/src/web/crawler.cpp" "CMakeFiles/reef.dir/src/web/crawler.cpp.o" "gcc" "CMakeFiles/reef.dir/src/web/crawler.cpp.o.d"
  "/root/repo/src/web/topic_model.cpp" "CMakeFiles/reef.dir/src/web/topic_model.cpp.o" "gcc" "CMakeFiles/reef.dir/src/web/topic_model.cpp.o.d"
  "/root/repo/src/web/web.cpp" "CMakeFiles/reef.dir/src/web/web.cpp.o" "gcc" "CMakeFiles/reef.dir/src/web/web.cpp.o.d"
  "/root/repo/src/workload/browsing.cpp" "CMakeFiles/reef.dir/src/workload/browsing.cpp.o" "gcc" "CMakeFiles/reef.dir/src/workload/browsing.cpp.o.d"
  "/root/repo/src/workload/driver.cpp" "CMakeFiles/reef.dir/src/workload/driver.cpp.o" "gcc" "CMakeFiles/reef.dir/src/workload/driver.cpp.o.d"
  "/root/repo/src/workload/user_profile.cpp" "CMakeFiles/reef.dir/src/workload/user_profile.cpp.o" "gcc" "CMakeFiles/reef.dir/src/workload/user_profile.cpp.o.d"
  "/root/repo/src/workload/video_archive.cpp" "CMakeFiles/reef.dir/src/workload/video_archive.cpp.o" "gcc" "CMakeFiles/reef.dir/src/workload/video_archive.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
