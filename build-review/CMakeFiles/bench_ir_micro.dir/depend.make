# Empty dependencies file for bench_ir_micro.
# This may be replaced when dependencies are built.
