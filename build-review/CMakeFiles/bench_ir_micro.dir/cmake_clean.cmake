file(REMOVE_RECURSE
  "CMakeFiles/bench_ir_micro.dir/bench/bench_ir_micro.cpp.o"
  "CMakeFiles/bench_ir_micro.dir/bench/bench_ir_micro.cpp.o.d"
  "bench_ir_micro"
  "bench_ir_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ir_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
