# Empty dependencies file for bench_architecture_flow.
# This may be replaced when dependencies are built.
