file(REMOVE_RECURSE
  "CMakeFiles/bench_architecture_flow.dir/bench/bench_architecture_flow.cpp.o"
  "CMakeFiles/bench_architecture_flow.dir/bench/bench_architecture_flow.cpp.o.d"
  "bench_architecture_flow"
  "bench_architecture_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_architecture_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
