file(REMOVE_RECURSE
  "CMakeFiles/bench_content_precision.dir/bench/bench_content_precision.cpp.o"
  "CMakeFiles/bench_content_precision.dir/bench/bench_content_precision.cpp.o.d"
  "bench_content_precision"
  "bench_content_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_content_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
