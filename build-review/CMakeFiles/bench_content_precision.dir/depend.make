# Empty dependencies file for bench_content_precision.
# This may be replaced when dependencies are built.
