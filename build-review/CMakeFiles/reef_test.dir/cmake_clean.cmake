file(REMOVE_RECURSE
  "CMakeFiles/reef_test.dir/tests/reef_test.cpp.o"
  "CMakeFiles/reef_test.dir/tests/reef_test.cpp.o.d"
  "reef_test"
  "reef_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reef_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
