# Empty dependencies file for reef_test.
# This may be replaced when dependencies are built.
