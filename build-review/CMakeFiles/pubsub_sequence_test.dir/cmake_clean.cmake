file(REMOVE_RECURSE
  "CMakeFiles/pubsub_sequence_test.dir/tests/pubsub_sequence_test.cpp.o"
  "CMakeFiles/pubsub_sequence_test.dir/tests/pubsub_sequence_test.cpp.o.d"
  "pubsub_sequence_test"
  "pubsub_sequence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pubsub_sequence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
