# Empty dependencies file for pubsub_sequence_test.
# This may be replaced when dependencies are built.
