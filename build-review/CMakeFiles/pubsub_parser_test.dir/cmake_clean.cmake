file(REMOVE_RECURSE
  "CMakeFiles/pubsub_parser_test.dir/tests/pubsub_parser_test.cpp.o"
  "CMakeFiles/pubsub_parser_test.dir/tests/pubsub_parser_test.cpp.o.d"
  "pubsub_parser_test"
  "pubsub_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pubsub_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
