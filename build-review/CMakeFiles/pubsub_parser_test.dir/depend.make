# Empty dependencies file for pubsub_parser_test.
# This may be replaced when dependencies are built.
