# Empty dependencies file for example_video_news.
# This may be replaced when dependencies are built.
