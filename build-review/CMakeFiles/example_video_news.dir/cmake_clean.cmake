file(REMOVE_RECURSE
  "CMakeFiles/example_video_news.dir/examples/video_news.cpp.o"
  "CMakeFiles/example_video_news.dir/examples/video_news.cpp.o.d"
  "example_video_news"
  "example_video_news.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_video_news.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
