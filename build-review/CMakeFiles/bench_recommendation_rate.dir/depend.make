# Empty dependencies file for bench_recommendation_rate.
# This may be replaced when dependencies are built.
