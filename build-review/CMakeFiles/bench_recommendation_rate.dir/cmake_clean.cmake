file(REMOVE_RECURSE
  "CMakeFiles/bench_recommendation_rate.dir/bench/bench_recommendation_rate.cpp.o"
  "CMakeFiles/bench_recommendation_rate.dir/bench/bench_recommendation_rate.cpp.o.d"
  "bench_recommendation_rate"
  "bench_recommendation_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recommendation_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
