#include <gtest/gtest.h>

#include <any>
#include <string>
#include <vector>

#include "sim/network.h"
#include "sim/simulator.h"

namespace reef::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(30, [&] { order.push_back(3); });
  sim.at(10, [&] { order.push_back(1); });
  sim.at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, FifoWithinSameInstant) {
  Simulator sim;
  std::vector<int> order;
  sim.at(10, [&] { order.push_back(1); });
  sim.at(10, [&] { order.push_back(2); });
  sim.at(10, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, PastSchedulingClampsToNow) {
  Simulator sim;
  sim.at(100, [] {});
  sim.run();
  bool ran = false;
  sim.at(50, [&] { ran = true; });  // in the past
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, AfterIsRelative) {
  Simulator sim;
  Time fired_at = -1;
  sim.at(100, [&] {
    sim.after(50, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(Simulator, NestedSchedulingDuringExecution) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.after(10, recurse);
  };
  sim.after(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 40);
}

TEST(Simulator, PeriodicTimerFiresAndCancels) {
  Simulator sim;
  int fires = 0;
  const TimerId id = sim.every(10, 10, [&] { ++fires; });
  sim.run_until(35);
  EXPECT_EQ(fires, 3);  // t=10,20,30
  sim.cancel(id);
  sim.run_until(100);
  EXPECT_EQ(fires, 3);
}

TEST(Simulator, TimerCanCancelItself) {
  Simulator sim;
  int fires = 0;
  TimerId id = 0;
  id = sim.every(10, 10, [&] {
    if (++fires == 2) sim.cancel(id);
  });
  sim.run_until(1000);
  EXPECT_EQ(fires, 2);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  sim.run_until(500);
  EXPECT_EQ(sim.now(), 500);
}

TEST(Simulator, RunUntilExecutesBoundaryEvents) {
  Simulator sim;
  bool ran = false;
  sim.at(100, [&] { ran = true; });
  sim.run_until(100);
  EXPECT_TRUE(ran);
}

TEST(Simulator, EveryRejectsNonPositivePeriod) {
  Simulator sim;
  EXPECT_THROW(sim.every(0, 0, [] {}), std::invalid_argument);
}

TEST(Simulator, RunGuardsAgainstRunaway) {
  Simulator sim;
  sim.every(1, 1, [] {});
  EXPECT_THROW(sim.run(1000), std::runtime_error);
}

TEST(TimeFormat, RendersComponents) {
  EXPECT_EQ(format_time(0), "0d 00:00:00.000");
  EXPECT_EQ(format_time(kDay + 2 * kHour + 3 * kMinute + 4 * kSecond +
                        5 * kMillisecond),
            "1d 02:03:04.005");
}

// --- Network -------------------------------------------------------------------

class Recorder : public Node {
 public:
  void handle_message(const Message& msg) override {
    received.push_back(msg);
  }
  std::vector<Message> received;
};

Network::Config quiet_config() {
  Network::Config config;
  config.default_latency = 10 * kMillisecond;
  config.jitter_fraction = 0.0;
  return config;
}

TEST(Network, DeliversWithLatency) {
  Simulator sim;
  Network net(sim, quiet_config());
  Recorder a;
  Recorder b;
  const NodeId ida = net.attach(a, "a");
  const NodeId idb = net.attach(b, "b");
  const auto at = net.send(ida, idb, "test", std::string("hello"), 5);
  ASSERT_TRUE(at.has_value());
  EXPECT_EQ(*at, 10 * kMillisecond);
  sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].type, "test");
  EXPECT_EQ(std::any_cast<std::string>(b.received[0].payload), "hello");
  EXPECT_EQ(b.received[0].from, ida);
  EXPECT_TRUE(a.received.empty());
}

TEST(Network, SelfSendIsAsynchronousZeroLatency) {
  Simulator sim;
  Network net(sim, quiet_config());
  Recorder a;
  const NodeId ida = net.attach(a, "a");
  net.send(ida, ida, "self", 0, 1);
  EXPECT_TRUE(a.received.empty());  // not synchronous
  sim.run();
  EXPECT_EQ(a.received.size(), 1u);
}

TEST(Network, PerLinkLatencyOverride) {
  Simulator sim;
  Network net(sim, quiet_config());
  Recorder a, b;
  const NodeId ida = net.attach(a, "a");
  const NodeId idb = net.attach(b, "b");
  net.set_latency(ida, idb, 500 * kMillisecond);
  const auto at = net.send(ida, idb, "t", 0, 1);
  EXPECT_EQ(*at, 500 * kMillisecond);
}

TEST(Network, FifoLinksNeverReorder) {
  Simulator sim;
  Network::Config config;
  config.default_latency = 10 * kMillisecond;
  config.jitter_fraction = 2.0;  // aggressive jitter
  config.fifo_links = true;
  config.seed = 7;
  Network net(sim, config);
  Recorder a, b;
  const NodeId ida = net.attach(a, "a");
  const NodeId idb = net.attach(b, "b");
  for (int i = 0; i < 50; ++i) net.send(ida, idb, "seq", i, 1);
  sim.run();
  ASSERT_EQ(b.received.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(std::any_cast<int>(b.received[i].payload), i);
  }
}

TEST(Network, PartitionDropsInFlight) {
  Simulator sim;
  Network net(sim, quiet_config());
  Recorder a, b;
  const NodeId ida = net.attach(a, "a");
  const NodeId idb = net.attach(b, "b");
  net.send(ida, idb, "t", 0, 1);
  net.set_partitioned(ida, idb, true);  // partition before delivery
  sim.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.dropped_messages(), 1u);

  net.set_partitioned(ida, idb, false);
  net.send(ida, idb, "t", 0, 1);
  sim.run();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(Network, DownNodeDropsDelivery) {
  Simulator sim;
  Network net(sim, quiet_config());
  Recorder a, b;
  const NodeId ida = net.attach(a, "a");
  const NodeId idb = net.attach(b, "b");
  net.set_node_up(idb, false);
  net.send(ida, idb, "t", 0, 1);
  sim.run();
  EXPECT_TRUE(b.received.empty());
  net.set_node_up(idb, true);
  net.send(ida, idb, "t", 0, 1);
  sim.run();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(Network, UnknownDestinationCountsDropped) {
  Simulator sim;
  Network net(sim, quiet_config());
  Recorder a;
  const NodeId ida = net.attach(a, "a");
  EXPECT_FALSE(net.send(ida, 999, "t", 0, 1).has_value());
  EXPECT_EQ(net.dropped_messages(), 1u);
}

TEST(Network, LossyLinkDropsAndAttributes) {
  Simulator sim;
  Network net(sim, quiet_config());
  Recorder a, b;
  const NodeId ida = net.attach(a, "a");
  const NodeId idb = net.attach(b, "b");
  net.set_loss_probability(ida, idb, 1.0);
  net.send(ida, idb, "t", 0, 1);
  sim.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.dropped_by_loss(), 1u);
  EXPECT_EQ(net.dropped_messages(), 1u);

  net.set_loss_probability(ida, idb, 0.0);
  net.send(ida, idb, "t", 0, 1);
  // Loss is per-link and per-direction-unordered-pair: other links are
  // untouched.
  net.send(idb, ida, "t", 0, 1);
  sim.run();
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_EQ(a.received.size(), 1u);
  EXPECT_EQ(net.dropped_by_loss(), 1u);
}

TEST(Network, DropCountersAttributeCause) {
  Simulator sim;
  Network net(sim, quiet_config());
  Recorder a, b;
  const NodeId ida = net.attach(a, "a");
  const NodeId idb = net.attach(b, "b");

  net.send(ida, 999, "t", 0, 1);  // unknown destination
  net.set_partitioned(ida, idb, true);
  net.send(ida, idb, "t", 0, 1);
  sim.run();  // partition/down are evaluated at delivery time
  net.set_partitioned(ida, idb, false);
  net.set_node_up(idb, false);
  net.send(ida, idb, "t", 0, 1);
  sim.run();
  EXPECT_EQ(net.dropped_unknown_dest(), 1u);
  EXPECT_EQ(net.dropped_by_partition(), 1u);
  EXPECT_EQ(net.dropped_by_down(), 1u);
  EXPECT_EQ(net.dropped_by_loss(), 0u);
  EXPECT_EQ(net.dropped_messages(), 3u);

  net.reset_stats();
  EXPECT_EQ(net.dropped_messages(), 0u);
}

TEST(Network, TrafficAccounting) {
  Simulator sim;
  Network net(sim, quiet_config());
  Recorder a, b;
  const NodeId ida = net.attach(a, "a");
  const NodeId idb = net.attach(b, "b");
  net.send(ida, idb, "x", 0, 100);
  net.send(ida, idb, "x", 0, 50);
  net.send(idb, ida, "y", 0, 25);
  sim.run();
  EXPECT_EQ(net.total_messages(), 3u);
  EXPECT_EQ(net.total_bytes(), 175u);
  EXPECT_EQ(net.messages_by_type().get("x"), 2u);
  EXPECT_EQ(net.bytes_by_type().get("x"), 150u);
  EXPECT_EQ(net.bytes_received(idb), 150u);
  EXPECT_EQ(net.messages_received(ida), 1u);
  net.reset_stats();
  EXPECT_EQ(net.total_messages(), 0u);
  EXPECT_EQ(net.bytes_received(idb), 0u);
}

}  // namespace
}  // namespace reef::sim
