// Deterministic-concurrency harness for the sharded routing core.
//
// The contract under test: for a fixed shard count, a broker's observable
// behavior — every client's delivery log, byte for byte, and every
// sim::Network traffic counter — is identical for worker_threads 0 (no
// pool), 1, and 4, AND for shard-aware event pre-filtering on or off.
// Thread scheduling may vary freely between runs; the sharded matcher's
// merge-by-shard-order and the broker's interface-ordered output make the
// nondeterminism unobservable, and a pre-filtered shard contributes
// exactly the hits it would have produced on the full batch.
//
// The shard count itself comes from REEF_TEST_SHARD_COUNT (default 4);
// CMake registers this binary twice so ctest exercises both the multi-
// shard and the single-shard (spill-heavy) layout.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "pubsub/client.h"
#include "pubsub/overlay.h"
#include "pubsub/sharded_matcher.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace reef::pubsub {
namespace {

std::size_t test_shard_count() {
  const char* env = std::getenv("REEF_TEST_SHARD_COUNT");
  return env != nullptr ? std::strtoul(env, nullptr, 10) : 4;
}

Filter scenario_filter(util::Rng& rng) {
  switch (rng.index(4)) {
    case 0:
      return Filter()
          .and_(eq("stream", "feed"))
          .and_(eq("feed", static_cast<std::int64_t>(rng.index(8))));
    case 1:
      return Filter()
          .and_(eq("stream", "quotes"))
          .and_(ge("price", static_cast<double>(rng.index(40))));
    case 2:
      return Filter().and_(prefix("text", rng.chance(0.5) ? "a" : "ab"));
    default:
      return Filter().and_(exists("price"));
  }
}

Event scenario_event(util::Rng& rng, int seq) {
  Event e;
  switch (rng.index(3)) {
    case 0:
      e = Event()
              .with("stream", "feed")
              .with("feed", static_cast<std::int64_t>(rng.index(8)))
              .with("text", rng.chance(0.5) ? "abc" : "xyz");
      break;
    case 1:
      e = Event()
              .with("stream", "quotes")
              .with("price", static_cast<double>(rng.index(60)));
      break;
    default:
      e = Event().with("text", "ab").with("price", 7);
      break;
  }
  e.with("seq", static_cast<std::int64_t>(seq));
  return e;
}

/// Everything observable about one scenario run, rendered comparable.
struct RunTrace {
  std::vector<std::string> delivery_log;  // chronological, all clients
  std::uint64_t total_messages = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t total_units = 0;
  std::map<std::string, std::uint64_t> messages_by_type;
  std::map<std::string, std::uint64_t> bytes_by_type;
  std::map<std::string, std::uint64_t> units_by_type;

  bool operator==(const RunTrace&) const = default;
};

/// Runs the seeded broker scenario: a 4-broker star, 6 clients with a mix
/// of equality / range / prefix / exists subscriptions, plus one client
/// that churns (subscribes, receives, unsubscribes), and 12 publication
/// bursts entering at rotating brokers.
RunTrace run_scenario(std::uint64_t seed, std::size_t shard_count,
                      std::size_t worker_threads, bool prefilter = true) {
  sim::Simulator sim;
  sim::Network::Config net_config;
  net_config.default_latency = sim::kMillisecond;
  net_config.jitter_fraction = 0.25;
  net_config.seed = seed;
  sim::Network net(sim, net_config);

  Broker::Config config;
  config.matcher_engine = std::string(kShardedPrefix) + "anchor-index";
  config.shard_count = shard_count;
  config.worker_threads = worker_threads;
  config.prefilter_enabled = prefilter;
  Overlay overlay = Overlay::star(sim, net, 4, config);

  RunTrace trace;
  util::Rng rng(seed);
  std::vector<std::unique_ptr<Client>> clients;
  for (std::size_t c = 0; c < 6; ++c) {
    auto client = std::make_unique<Client>(sim, net, "c" + std::to_string(c));
    client->connect(overlay.broker(c % 4));
    const std::size_t subs = 2 + rng.index(3);
    for (std::size_t s = 0; s < subs; ++s) {
      client->subscribe(scenario_filter(rng),
                        [&trace, c](const Event& e, SubscriptionId sub) {
                          trace.delivery_log.push_back(
                              "c" + std::to_string(c) + "/s" +
                              std::to_string(sub) + " " + e.to_string());
                        });
    }
    clients.push_back(std::move(client));
  }
  Client churner(sim, net, "churner");
  churner.connect(overlay.broker(3));
  sim.run_until(sim.now() + sim::kMinute);

  std::vector<SubscriptionId> churn_ids;
  int seq = 0;
  for (int burst = 0; burst < 12; ++burst) {
    if (burst % 3 == 0) {
      churn_ids.push_back(churner.subscribe(
          scenario_filter(rng),
          [&trace](const Event& e, SubscriptionId sub) {
            trace.delivery_log.push_back("churner/s" + std::to_string(sub) +
                                         " " + e.to_string());
          }));
    } else if (burst % 3 == 2 && !churn_ids.empty()) {
      churner.unsubscribe(churn_ids.back());
      churn_ids.pop_back();
    }
    std::vector<Event> bundle;
    for (int i = 0; i < 6; ++i) bundle.push_back(scenario_event(rng, seq++));
    Client& publisher = *clients[burst % clients.size()];
    publisher.publish_batch(std::move(bundle));
    sim.run_until(sim.now() + sim::kSecond);
  }
  sim.run_until(sim.now() + sim::kMinute);

  trace.total_messages = net.total_messages();
  trace.total_bytes = net.total_bytes();
  trace.total_units = net.total_units();
  trace.messages_by_type = net.messages_by_type().items();
  trace.bytes_by_type = net.bytes_by_type().items();
  trace.units_by_type = net.units_by_type().items();
  return trace;
}

class ShardingDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardingDeterminism, WorkerThreadsNeverChangeObservableBehavior) {
  const std::size_t shards = test_shard_count();
  ASSERT_GE(shards, 1u);
  const RunTrace baseline = run_scenario(GetParam(), shards, 0);
  ASSERT_FALSE(baseline.delivery_log.empty());
  // The golden-trace matrix: workers x pre-filter, every cell byte-equal
  // to the 0-worker pre-filtered baseline.
  struct Cell {
    std::size_t workers;
    bool prefilter;
  };
  for (const Cell cell : {Cell{0, false}, Cell{1, true}, Cell{1, false},
                          Cell{4, true}, Cell{4, false}}) {
    const RunTrace trace =
        run_scenario(GetParam(), shards, cell.workers, cell.prefilter);
    const std::string where =
        "worker_threads=" + std::to_string(cell.workers) +
        " prefilter=" + (cell.prefilter ? "on" : "off") +
        " shard_count=" + std::to_string(shards);
    EXPECT_EQ(trace.delivery_log, baseline.delivery_log)
        << "delivery log diverged at " << where;
    EXPECT_EQ(trace.total_messages, baseline.total_messages) << where;
    EXPECT_EQ(trace.total_bytes, baseline.total_bytes) << where;
    EXPECT_EQ(trace.total_units, baseline.total_units) << where;
    EXPECT_EQ(trace.messages_by_type, baseline.messages_by_type) << where;
    EXPECT_EQ(trace.bytes_by_type, baseline.bytes_by_type) << where;
    EXPECT_EQ(trace.units_by_type, baseline.units_by_type) << where;
  }
}

/// Repeated runs of the *same* configuration are reproducible even with a
/// worker pool — the baseline determinism the cross-worker check builds on.
TEST_P(ShardingDeterminism, RepeatRunsAreByteIdentical) {
  const std::size_t shards = test_shard_count();
  const RunTrace a = run_scenario(GetParam(), shards, 4);
  const RunTrace b = run_scenario(GetParam(), shards, 4);
  EXPECT_EQ(a, b);
}

// --- shard-aware event pre-filtering ----------------------------------------

/// Regression pin for the pre-filter's one semantic hazard: an event with
/// zero attributes reaches no anchor shard at all, and an anchorless
/// (universal) filter lives only on the spill shard — they must still meet
/// there with pre-filtering enabled, on both the single-event and the
/// batch path.
TEST(ShardedPrefilter, AttributeFreeEventsMeetUniversalFiltersInSpill) {
  for (const bool prefilter : {true, false}) {
    ShardedMatcher m(
        ShardedMatcher::Config{4, 0, "anchor-index", prefilter});
    m.add(1, Filter());  // universal: anchorless, spill-shard placement
    m.add(2, Filter().and_(eq("stream", "feed")));
    ASSERT_EQ(m.spill_size(), 1u);

    const Event bare;  // zero attributes
    ASSERT_TRUE(bare.empty());
    EXPECT_EQ(m.match(bare), (std::vector<SubscriptionId>{1}))
        << "prefilter=" << prefilter;

    std::vector<Event> events;
    events.push_back(bare);
    events.push_back(Event().with("stream", "feed"));
    events.push_back(Event().with("unrelated", 7));
    std::vector<std::vector<SubscriptionId>> hits;
    m.match_batch(events, hits);
    ASSERT_EQ(hits.size(), 3u);
    EXPECT_EQ(hits[0], (std::vector<SubscriptionId>{1}))
        << "prefilter=" << prefilter;
    std::sort(hits[1].begin(), hits[1].end());
    EXPECT_EQ(hits[1], (std::vector<SubscriptionId>{1, 2}))
        << "prefilter=" << prefilter;
    EXPECT_EQ(hits[2], (std::vector<SubscriptionId>{1}))
        << "prefilter=" << prefilter;

    // The accounting shows the routing decision: with pre-filtering the
    // bare and unrelated events skip every anchor shard; without it every
    // event reaches every shard.
    if (prefilter) {
      EXPECT_GT(m.events_skipped(), 0u);
      EXPECT_LT(m.events_routed(),
                (m.shard_count() + 1) * 4);  // 1 single + 3 batched events
    } else {
      EXPECT_EQ(m.events_skipped(), 0u);
      EXPECT_EQ(m.events_routed(), (m.shard_count() + 1) * 4);
    }
  }
}

/// The pre-filter is pure routing: on a randomized workload the batch
/// output is byte-identical (same order, not just same sets) with it on
/// or off, while the counters prove shards were actually skipped.
TEST(ShardedPrefilter, OutputByteIdenticalOnOrOff) {
  util::Rng rng(0xf117e5);
  std::vector<Filter> filters;
  for (int i = 0; i < 120; ++i) filters.push_back(scenario_filter(rng));
  filters.push_back(Filter());  // one universal filter in the mix
  std::vector<Event> events;
  for (int i = 0; i < 60; ++i) events.push_back(scenario_event(rng, i));
  events.push_back(Event());  // and one attribute-free event

  for (const std::string inner : {"anchor-index", "counting",
                                  "brute-force"}) {
    ShardedMatcher on(ShardedMatcher::Config{4, 0, inner, true});
    ShardedMatcher off(ShardedMatcher::Config{4, 0, inner, false});
    for (std::size_t i = 0; i < filters.size(); ++i) {
      on.add(i + 1, filters[i]);
      off.add(i + 1, filters[i]);
    }
    std::vector<std::vector<SubscriptionId>> hits_on;
    std::vector<std::vector<SubscriptionId>> hits_off;
    on.match_batch(events, hits_on);
    off.match_batch(events, hits_off);
    EXPECT_EQ(hits_on, hits_off) << inner;
    EXPECT_GT(on.events_skipped(), 0u) << inner;
    EXPECT_EQ(off.events_skipped(), 0u) << inner;
    EXPECT_EQ(on.events_routed() + on.events_skipped(),
              off.events_routed())
        << inner;
  }
}

/// The pre-filter's sub-batches are index spans over the original event
/// storage: match_batch must not copy a single Event, however sparse the
/// per-shard slices come out (the PR 3 gather-by-copy path is gone).
TEST(ShardedPrefilter, SubBatchesPerformZeroEventCopies) {
  util::Rng rng(0x2e20c0);
  ShardedMatcher m(ShardedMatcher::Config{8, 0, "anchor-index", true});
  for (int i = 0; i < 200; ++i) m.add(i + 1, scenario_filter(rng));
  std::vector<Event> events;
  for (int i = 0; i < 64; ++i) events.push_back(scenario_event(rng, i));

  std::vector<std::vector<SubscriptionId>> hits;
  const std::uint64_t copies_before = Event::copy_count();
  for (int round = 0; round < 5; ++round) m.match_batch(events, hits);
  EXPECT_EQ(Event::copy_count(), copies_before);
  EXPECT_GT(m.events_skipped(), 0u);  // the pre-filter did prune shards
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardingDeterminism,
                         ::testing::Values(7, 19, 31));

// --- RoutingTable-level sharded wiring --------------------------------------

TEST(ShardedRoutingTable, KnobsBuildShardedEngine) {
  // shard_count/worker_threads wrap a plain engine name...
  RoutingTable wrapped(RoutingTable::Config{true, "counting", true, 4, 2});
  EXPECT_EQ(wrapped.matcher().name(), "sharded:counting");
  // ...a "sharded:" name honors the knobs as given...
  RoutingTable named(
      RoutingTable::Config{true, "sharded:anchor-index", true, 2, 0});
  EXPECT_EQ(named.matcher().name(), "sharded:anchor-index");
  EXPECT_EQ(dynamic_cast<const ShardedMatcher&>(named.matcher())
                .shard_count(),
            2u);
  // ...and with the auto default (0) a "sharded:" name gets the same
  // shard count as registry creation by name.
  RoutingTable auto_sharded(
      RoutingTable::Config{true, "sharded:anchor-index"});
  EXPECT_EQ(dynamic_cast<const ShardedMatcher&>(auto_sharded.matcher())
                .shard_count(),
            kDefaultShardCount);
  // ...and the 1/0 defaults stay on the plain engine (ablation baseline).
  RoutingTable plain(RoutingTable::Config{true, "anchor-index"});
  EXPECT_EQ(plain.matcher().name(), "anchor-index");
  // Unknown inner engines still fail with the canonical registry error.
  EXPECT_THROW(
      RoutingTable(RoutingTable::Config{true, "sharded:no-such", true, 4, 0}),
      std::invalid_argument);
}

TEST(ShardedRoutingTable, MatchAgreesAcrossShardAndWorkerConfigs) {
  util::Rng rng(0xc0de);
  std::vector<Filter> filters;
  for (int i = 0; i < 80; ++i) filters.push_back(scenario_filter(rng));
  std::vector<Event> events;
  for (int i = 0; i < 40; ++i) events.push_back(scenario_event(rng, i));

  auto destinations = [](const RoutingTable& table,
                         const std::vector<Event>& evs) {
    std::vector<std::vector<RoutingTable::Destination>> hits;
    table.match_batch(evs, hits);
    std::vector<
        std::vector<std::tuple<RoutingTable::IfaceId, bool, SubscriptionId>>>
        out;
    for (const auto& per_event : hits) {
      std::vector<std::tuple<RoutingTable::IfaceId, bool, SubscriptionId>>
          sig;
      for (const auto& d : per_event) {
        sig.emplace_back(d.iface, d.is_broker, d.client_sub);
      }
      std::sort(sig.begin(), sig.end());
      out.push_back(std::move(sig));
    }
    return out;
  };

  std::vector<RoutingTable> tables;
  tables.emplace_back(RoutingTable::Config{true, "anchor-index"});
  tables.emplace_back(RoutingTable::Config{true, "anchor-index", true, 4, 0});
  tables.emplace_back(RoutingTable::Config{true, "anchor-index", true, 4, 4});
  tables.emplace_back(RoutingTable::Config{true, "anchor-index", true, 1, 1});
  for (RoutingTable& table : tables) {
    table.add_broker_iface(1);
    for (std::size_t i = 0; i < filters.size(); ++i) {
      if (i % 4 == 0) {
        table.broker_subscribe(1, filters[i]);
      } else {
        table.client_subscribe(100 + i % 3, i, filters[i]);
      }
    }
  }
  const auto reference = destinations(tables.front(), events);
  for (std::size_t t = 1; t < tables.size(); ++t) {
    EXPECT_EQ(destinations(tables[t], events), reference) << "table " << t;
  }
}

}  // namespace
}  // namespace reef::pubsub

// --- util::ThreadPool -------------------------------------------------------

namespace reef::util {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (const std::size_t threads : {0u, 1u, 3u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.thread_count(), threads);
    for (const std::size_t n : {0u, 1u, 2u, 64u}) {
      std::vector<std::atomic<int>> counts(n);
      pool.parallel_for(n, [&](std::size_t i) {
        counts[i].fetch_add(1, std::memory_order_relaxed);
      });
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(counts[i].load(), 1)
            << "threads=" << threads << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(8, [&](std::size_t i) {
      total.fetch_add(i, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 200u * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7));
}

TEST(ThreadPool, PropagatesFirstException) {
  // Pooled and inline modes share the contract: all indices run, the
  // first exception is rethrown afterwards, the pool stays usable.
  for (const std::size_t threads : {2u, 0u}) {
    ThreadPool pool(threads);
    std::atomic<int> ran{0};
    EXPECT_THROW(
        pool.parallel_for(16,
                          [&](std::size_t i) {
                            ran.fetch_add(1, std::memory_order_relaxed);
                            if (i % 2 == 0) {
                              throw std::runtime_error("task failure");
                            }
                          }),
        std::runtime_error);
    EXPECT_EQ(ran.load(), 16) << "threads=" << threads;
    std::atomic<int> after{0};
    pool.parallel_for(4, [&](std::size_t) {
      after.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(after.load(), 4) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace reef::util
