// Property tests of the broker overlay: on random tree topologies with
// random subscriber placement, matching events reach every interested
// client exactly once, covering on/off never changes delivery semantics,
// and unsubscription drains all routing state.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "pubsub/client.h"
#include "pubsub/overlay.h"
#include "util/rng.h"

namespace reef::pubsub {
namespace {

struct Scenario {
  sim::Simulator sim;
  sim::Network net;
  std::unique_ptr<Overlay> overlay;
  std::vector<std::unique_ptr<Client>> clients;
  /// client index -> set of feed ids subscribed
  std::vector<std::vector<std::size_t>> interests;
  std::map<std::pair<std::size_t, std::size_t>, int> deliveries;

  explicit Scenario(std::uint64_t seed, bool covering)
      : net(sim, net_config(seed)) {
    util::Rng rng(seed);
    Broker::Config broker_config;
    broker_config.covering_enabled = covering;
    const std::size_t brokers = 2 + rng.index(7);
    overlay = std::make_unique<Overlay>(
        Overlay::random_tree(sim, net, brokers, rng, broker_config));

    const std::size_t client_count = 3 + rng.index(8);
    const std::size_t feed_universe = 5;
    for (std::size_t c = 0; c < client_count; ++c) {
      auto client = std::make_unique<Client>(sim, net,
                                             "c" + std::to_string(c));
      client->connect(overlay->broker(rng.index(brokers)));
      std::vector<std::size_t> feeds;
      const std::size_t n_subs = 1 + rng.index(3);
      for (std::size_t s = 0; s < n_subs; ++s) {
        const std::size_t feed = rng.index(feed_universe);
        if (std::find(feeds.begin(), feeds.end(), feed) != feeds.end()) {
          continue;
        }
        feeds.push_back(feed);
        client->subscribe(
            Filter().and_(eq("feed", static_cast<std::int64_t>(feed))),
            [this, c, feed](const Event&, SubscriptionId) {
              ++deliveries[{c, feed}];
            });
      }
      interests.push_back(std::move(feeds));
      clients.push_back(std::move(client));
    }
    sim.run_until(sim.now() + sim::kMinute);
  }

  static sim::Network::Config net_config(std::uint64_t seed) {
    sim::Network::Config config;
    config.default_latency = sim::kMillisecond;
    config.jitter_fraction = 0.5;
    config.seed = seed;
    return config;
  }
};

class OverlayProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OverlayProperty, ExactlyOnceDeliveryToAllInterestedClients) {
  for (const bool covering : {true, false}) {
    Scenario scenario(GetParam(), covering);
    // One publisher per broker so events enter at every point of the tree.
    std::vector<std::unique_ptr<Client>> publishers;
    for (std::size_t b = 0; b < scenario.overlay->size(); ++b) {
      auto p = std::make_unique<Client>(scenario.sim, scenario.net,
                                        "p" + std::to_string(b));
      p->connect(scenario.overlay->broker(b));
      publishers.push_back(std::move(p));
    }
    scenario.sim.run_until(scenario.sim.now() + sim::kMinute);

    util::Rng rng(GetParam() ^ 0xfeed);
    std::vector<int> published_per_feed(5, 0);
    for (int i = 0; i < 40; ++i) {
      const std::size_t feed = rng.index(5);
      const std::size_t broker = rng.index(publishers.size());
      publishers[broker]->publish(
          Event().with("feed", static_cast<std::int64_t>(feed)));
      ++published_per_feed[feed];
    }
    scenario.sim.run_until(scenario.sim.now() + sim::kMinute);

    for (std::size_t c = 0; c < scenario.clients.size(); ++c) {
      for (const std::size_t feed : scenario.interests[c]) {
        EXPECT_EQ((scenario.deliveries[{c, feed}]), published_per_feed[feed])
            << "client " << c << " feed " << feed << " covering="
            << covering;
      }
      // No spurious deliveries for feeds the client never subscribed to.
      int total = 0;
      for (const auto& [key, count] : scenario.deliveries) {
        if (key.first == c) total += count;
      }
      int expected = 0;
      for (const std::size_t feed : scenario.interests[c]) {
        expected += published_per_feed[feed];
      }
      EXPECT_EQ(total, expected) << "client " << c;
    }
  }
}

TEST_P(OverlayProperty, UnsubscribeDrainsAllRoutingState) {
  Scenario scenario(GetParam(), true);
  // An extra client subscribes to every feed, then retracts everything;
  // the overlay-wide routing state must shrink back.
  auto extra = std::make_unique<Client>(scenario.sim, scenario.net, "extra");
  extra->connect(scenario.overlay->broker(0));
  std::vector<SubscriptionId> ids;
  for (int feed = 0; feed < 5; ++feed) {
    ids.push_back(extra->subscribe(
        Filter().and_(eq("feed", static_cast<std::int64_t>(feed)))));
  }
  scenario.sim.run_until(scenario.sim.now() + sim::kMinute);
  const std::size_t with_extra = scenario.overlay->total_table_size();
  for (const auto id : ids) extra->unsubscribe(id);
  scenario.sim.run_until(scenario.sim.now() + sim::kMinute);
  EXPECT_LT(scenario.overlay->total_table_size(), with_extra);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverlayProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace reef::pubsub
