// Property tests of the broker overlay: on random tree topologies with
// random subscriber placement, matching events reach every interested
// client exactly once, covering on/off never changes delivery semantics,
// and unsubscription drains all routing state.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>

#include "pubsub/client.h"
#include "pubsub/matcher_registry.h"
#include "pubsub/overlay.h"
#include "util/rng.h"

namespace reef::pubsub {
namespace {

struct Scenario {
  sim::Simulator sim;
  sim::Network net;
  std::unique_ptr<Overlay> overlay;
  std::vector<std::unique_ptr<Client>> clients;
  /// client index -> set of feed ids subscribed
  std::vector<std::vector<std::size_t>> interests;
  std::map<std::pair<std::size_t, std::size_t>, int> deliveries;

  explicit Scenario(std::uint64_t seed, bool covering)
      : net(sim, net_config(seed)) {
    util::Rng rng(seed);
    Broker::Config broker_config;
    broker_config.covering_enabled = covering;
    const std::size_t brokers = 2 + rng.index(7);
    overlay = std::make_unique<Overlay>(
        Overlay::random_tree(sim, net, brokers, rng, broker_config));

    const std::size_t client_count = 3 + rng.index(8);
    const std::size_t feed_universe = 5;
    for (std::size_t c = 0; c < client_count; ++c) {
      auto client = std::make_unique<Client>(sim, net,
                                             "c" + std::to_string(c));
      client->connect(overlay->broker(rng.index(brokers)));
      std::vector<std::size_t> feeds;
      const std::size_t n_subs = 1 + rng.index(3);
      for (std::size_t s = 0; s < n_subs; ++s) {
        const std::size_t feed = rng.index(feed_universe);
        if (std::find(feeds.begin(), feeds.end(), feed) != feeds.end()) {
          continue;
        }
        feeds.push_back(feed);
        client->subscribe(
            Filter().and_(eq("feed", static_cast<std::int64_t>(feed))),
            [this, c, feed](const Event&, SubscriptionId) {
              ++deliveries[{c, feed}];
            });
      }
      interests.push_back(std::move(feeds));
      clients.push_back(std::move(client));
    }
    sim.run_until(sim.now() + sim::kMinute);
  }

  static sim::Network::Config net_config(std::uint64_t seed) {
    sim::Network::Config config;
    config.default_latency = sim::kMillisecond;
    config.jitter_fraction = 0.5;
    config.seed = seed;
    return config;
  }
};

class OverlayProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OverlayProperty, ExactlyOnceDeliveryToAllInterestedClients) {
  for (const bool covering : {true, false}) {
    Scenario scenario(GetParam(), covering);
    // One publisher per broker so events enter at every point of the tree.
    std::vector<std::unique_ptr<Client>> publishers;
    for (std::size_t b = 0; b < scenario.overlay->size(); ++b) {
      auto p = std::make_unique<Client>(scenario.sim, scenario.net,
                                        "p" + std::to_string(b));
      p->connect(scenario.overlay->broker(b));
      publishers.push_back(std::move(p));
    }
    scenario.sim.run_until(scenario.sim.now() + sim::kMinute);

    util::Rng rng(GetParam() ^ 0xfeed);
    std::vector<int> published_per_feed(5, 0);
    for (int i = 0; i < 40; ++i) {
      const std::size_t feed = rng.index(5);
      const std::size_t broker = rng.index(publishers.size());
      publishers[broker]->publish(
          Event().with("feed", static_cast<std::int64_t>(feed)));
      ++published_per_feed[feed];
    }
    scenario.sim.run_until(scenario.sim.now() + sim::kMinute);

    for (std::size_t c = 0; c < scenario.clients.size(); ++c) {
      for (const std::size_t feed : scenario.interests[c]) {
        EXPECT_EQ((scenario.deliveries[{c, feed}]), published_per_feed[feed])
            << "client " << c << " feed " << feed << " covering="
            << covering;
      }
      // No spurious deliveries for feeds the client never subscribed to.
      int total = 0;
      for (const auto& [key, count] : scenario.deliveries) {
        if (key.first == c) total += count;
      }
      int expected = 0;
      for (const std::size_t feed : scenario.interests[c]) {
        expected += published_per_feed[feed];
      }
      EXPECT_EQ(total, expected) << "client " << c;
    }
  }
}

TEST_P(OverlayProperty, UnsubscribeDrainsAllRoutingState) {
  Scenario scenario(GetParam(), true);
  // An extra client subscribes to every feed, then retracts everything;
  // the overlay-wide routing state must shrink back.
  auto extra = std::make_unique<Client>(scenario.sim, scenario.net, "extra");
  extra->connect(scenario.overlay->broker(0));
  std::vector<SubscriptionId> ids;
  for (int feed = 0; feed < 5; ++feed) {
    ids.push_back(extra->subscribe(
        Filter().and_(eq("feed", static_cast<std::int64_t>(feed)))));
  }
  scenario.sim.run_until(scenario.sim.now() + sim::kMinute);
  const std::size_t with_extra = scenario.overlay->total_table_size();
  for (const auto id : ids) extra->unsubscribe(id);
  scenario.sim.run_until(scenario.sim.now() + sim::kMinute);
  EXPECT_LT(scenario.overlay->total_table_size(), with_extra);
}

// --- batch/engine equivalence on randomized filter/event sets ---------------

Filter random_overlay_filter(util::Rng& rng) {
  static const std::vector<std::string> attrs{"feed", "stream", "price",
                                              "text"};
  static const std::vector<std::string> strings{"a", "b", "ab", "c"};
  std::vector<Constraint> cs;
  const std::size_t n = 1 + rng.index(3);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string& attr = attrs[rng.index(attrs.size())];
    switch (rng.index(5)) {
      case 0:
        cs.push_back(eq(attr, static_cast<std::int64_t>(rng.index(6))));
        break;
      case 1:
        cs.push_back(eq(attr, strings[rng.index(strings.size())]));
        break;
      case 2:
        cs.push_back(ge(attr, static_cast<double>(rng.index(6))));
        break;
      case 3:
        cs.push_back(prefix(attr, strings[rng.index(strings.size())]));
        break;
      default:
        cs.push_back(exists(attr));
        break;
    }
  }
  return Filter(std::move(cs));
}

Event random_overlay_event(util::Rng& rng) {
  static const std::vector<std::string> attrs{"feed", "stream", "price",
                                              "text"};
  static const std::vector<std::string> strings{"a", "b", "ab", "c"};
  Event e;
  const std::size_t n = 1 + rng.index(4);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string& attr = attrs[rng.index(attrs.size())];
    if (rng.chance(0.6)) {
      e.with(attr, static_cast<std::int64_t>(rng.index(6)));
    } else {
      e.with(attr, strings[rng.index(strings.size())]);
    }
  }
  return e;
}

/// Property (and PR acceptance gate): on randomized filter/event sets,
/// every registry engine's match_batch equals its own per-event match,
/// and both equal the brute-force oracle.
TEST_P(OverlayProperty, MatchBatchEqualsPerEventMatchAgainstOracle) {
  util::Rng rng(GetParam() ^ 0xbead);
  std::vector<Filter> filters;
  for (int i = 0; i < 150; ++i) {
    filters.push_back(random_overlay_filter(rng));
  }
  std::vector<Event> events;
  for (int i = 0; i < 64; ++i) {
    events.push_back(random_overlay_event(rng));
  }

  BruteForceMatcher oracle;
  for (std::size_t i = 0; i < filters.size(); ++i) {
    oracle.add(i + 1, filters[i]);
  }

  for (const auto& engine_name : MatcherRegistry::instance().names()) {
    const auto engine = make_matcher(engine_name);
    for (std::size_t i = 0; i < filters.size(); ++i) {
      engine->add(i + 1, filters[i]);
    }
    std::vector<std::vector<SubscriptionId>> batched;
    engine->match_batch(events, batched);
    ASSERT_EQ(batched.size(), events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
      auto expected = oracle.match(events[i]);
      auto per_event = engine->match(events[i]);
      auto from_batch = batched[i];
      std::sort(expected.begin(), expected.end());
      std::sort(per_event.begin(), per_event.end());
      std::sort(from_batch.begin(), from_batch.end());
      ASSERT_EQ(per_event, expected)
          << engine_name << " diverges from oracle on "
          << events[i].to_string();
      ASSERT_EQ(from_batch, expected)
          << engine_name << "::match_batch diverges on "
          << events[i].to_string();
    }
  }
}

/// Every registry engine drives the full overlay to identical deliveries.
TEST_P(OverlayProperty, AllEnginesDeliverIdenticallyThroughOverlay) {
  std::map<std::string, std::map<std::pair<std::size_t, std::size_t>, int>>
      per_engine;
  for (const auto& engine_name : MatcherRegistry::instance().names()) {
    sim::Simulator sim;
    sim::Network net(sim, Scenario::net_config(GetParam()));
    util::Rng rng(GetParam());
    Broker::Config config;
    config.matcher_engine = engine_name;
    Overlay overlay = Overlay::chain(sim, net, 3, config);
    std::vector<std::unique_ptr<Client>> clients;
    std::map<std::pair<std::size_t, std::size_t>, int> deliveries;
    for (std::size_t c = 0; c < 4; ++c) {
      auto client = std::make_unique<Client>(sim, net,
                                             "c" + std::to_string(c));
      client->connect(overlay.broker(c % 3));
      for (std::size_t feed = c % 2; feed < 4; feed += 2) {
        client->subscribe(
            Filter().and_(eq("feed", static_cast<std::int64_t>(feed))),
            [&deliveries, c, feed](const Event&, SubscriptionId) {
              ++deliveries[{c, feed}];
            });
      }
      clients.push_back(std::move(client));
    }
    Client pub(sim, net, "pub");
    pub.connect(overlay.broker(0));
    sim.run_until(sim.now() + sim::kMinute);
    for (int i = 0; i < 30; ++i) {
      pub.publish(
          Event().with("feed", static_cast<std::int64_t>(rng.index(4))));
    }
    sim.run_until(sim.now() + sim::kMinute);
    per_engine[engine_name] = deliveries;
  }
  const auto& reference = per_engine.begin()->second;
  for (const auto& [engine_name, deliveries] : per_engine) {
    EXPECT_EQ(deliveries, reference) << engine_name;
  }
}

/// Sharded engines drive the overlay to *order-identical* deliveries: for
/// a seeded workload, "sharded:<inner>" (4 shards, with and without worker
/// threads, event pre-filtering on and off) must produce the same
/// per-client delivery sequence as the unsharded inner engine — not just
/// the same delivery counts. The shard merge is ordered by shard index,
/// the per-interface grouping in the broker is set-based per event, and a
/// pre-filtered shard contributes exactly its full-batch hits, so the wire
/// schedule cannot depend on shard placement, thread scheduling, or the
/// pre-filter. The bare "sharded:" registry name (default config,
/// pre-filter on) rides in the matrix so registry-created engines stay
/// covered too.
TEST_P(OverlayProperty, ShardedEnginesDeliverInIdenticalOrder) {
  struct EngineSetup {
    std::string engine;
    std::size_t shards;
    std::size_t workers;
    bool prefilter = true;
  };
  for (const std::string inner : {"anchor-index", "counting"}) {
    std::map<std::string, std::vector<std::string>> logs;
    for (const EngineSetup& setup :
         {EngineSetup{inner, 1, 0},
          EngineSetup{"sharded:" + inner, 4, 0},
          EngineSetup{"sharded:" + inner, 4, 0, false},
          EngineSetup{"sharded:" + inner, 4, 2},
          EngineSetup{"sharded:" + inner, 4, 2, false}}) {
      sim::Simulator sim;
      sim::Network net(sim, Scenario::net_config(GetParam()));
      util::Rng rng(GetParam() ^ 0x0dde);
      Broker::Config config;
      config.matcher_engine = setup.engine;
      config.shard_count = setup.shards;
      config.worker_threads = setup.workers;
      config.prefilter_enabled = setup.prefilter;
      Overlay overlay = Overlay::chain(sim, net, 3, config);
      std::vector<std::string> log;
      std::vector<std::unique_ptr<Client>> clients;
      for (std::size_t c = 0; c < 4; ++c) {
        auto client = std::make_unique<Client>(sim, net,
                                               "c" + std::to_string(c));
        client->connect(overlay.broker(c % 3));
        for (int i = 0; i < 6; ++i) {
          client->subscribe(random_overlay_filter(rng),
                            [&log, c](const Event& e, SubscriptionId s) {
                              log.push_back("c" + std::to_string(c) + "/s" +
                                            std::to_string(s) + ":" +
                                            e.to_string());
                            });
        }
        clients.push_back(std::move(client));
      }
      Client pub(sim, net, "pub");
      pub.connect(overlay.broker(1));
      sim.run_until(sim.now() + sim::kMinute);
      for (int burst = 0; burst < 10; ++burst) {
        std::vector<Event> bundle;
        for (int i = 0; i < 5; ++i) {
          bundle.push_back(random_overlay_event(rng));
        }
        pub.publish_batch(std::move(bundle));
        sim.run_until(sim.now() + sim::kSecond);
      }
      sim.run_until(sim.now() + sim::kMinute);
      const std::string label =
          setup.engine + "/s" + std::to_string(setup.shards) + "/w" +
          std::to_string(setup.workers) +
          (setup.prefilter ? "/pf-on" : "/pf-off");
      logs[label] = std::move(log);
    }
    const auto& reference = logs.begin()->second;
    EXPECT_FALSE(reference.empty()) << inner;
    for (const auto& [label, log] : logs) {
      EXPECT_EQ(log, reference) << label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverlayProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace reef::pubsub
