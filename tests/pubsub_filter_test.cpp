#include <gtest/gtest.h>

#include "pubsub/constraint.h"
#include "pubsub/event.h"
#include "pubsub/filter.h"
#include "util/rng.h"

namespace reef::pubsub {
namespace {

// --- Value --------------------------------------------------------------------

TEST(Value, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(42).is_numeric());
  EXPECT_TRUE(Value(4.2).is_numeric());
  EXPECT_TRUE(Value("x").is_string());
  EXPECT_EQ(Value(42).as_int(), 42);
  EXPECT_EQ(Value("x").as_string(), "x");
}

TEST(Value, CrossTypeNumericEquality) {
  EXPECT_TRUE(Value(3).equals(Value(3.0)));
  EXPECT_TRUE(Value(3.0).equals(Value(3)));
  EXPECT_FALSE(Value(3).equals(Value(3.5)));
  // strict operator== distinguishes representations
  EXPECT_FALSE(Value(3) == Value(3.0));
  EXPECT_TRUE(Value(3) == Value(3));
}

TEST(Value, CrossTypeNumericHashEquality) {
  EXPECT_EQ(Value(3).hash(), Value(3.0).hash());
}

TEST(Value, IncompatibleComparisonsReturnNullopt) {
  EXPECT_FALSE(Value::compare(Value("a"), Value(1)).has_value());
  EXPECT_FALSE(Value::compare(Value(true), Value(1)).has_value());
  EXPECT_FALSE(Value::compare(Value(), Value(1)).has_value());
}

TEST(Value, Ordering) {
  EXPECT_EQ(*Value::compare(Value(1), Value(2)), std::strong_ordering::less);
  EXPECT_EQ(*Value::compare(Value("b"), Value("a")),
            std::strong_ordering::greater);
  EXPECT_EQ(*Value::compare(Value(2.5), Value(2.5)),
            std::strong_ordering::equal);
  EXPECT_EQ(*Value::compare(Value(false), Value(true)),
            std::strong_ordering::less);
}

TEST(Event, BuildLookupAndCanonicalText) {
  const Event e = Event().with("b", 2).with("a", "x").with("b", 3);
  EXPECT_EQ(e.size(), 2u);  // b overwritten
  ASSERT_NE(e.find("b"), nullptr);
  EXPECT_EQ(e.find("b")->as_int(), 3);
  EXPECT_EQ(e.find("missing"), nullptr);
  EXPECT_EQ(e.to_string(), "{a=\"x\", b=3}");
  EXPECT_GT(e.wire_size(), 0u);
}

// --- Constraint matching ------------------------------------------------------

TEST(Constraint, NumericOperators) {
  EXPECT_TRUE(eq("p", 5).matches(Value(5.0)));
  EXPECT_FALSE(eq("p", 5).matches(Value(6)));
  EXPECT_TRUE(ne("p", 5).matches(Value(6)));
  EXPECT_FALSE(ne("p", 5).matches(Value(5)));
  EXPECT_FALSE(ne("p", 5).matches(Value("abc")));  // incompatible: no match
  EXPECT_TRUE(lt("p", 5).matches(Value(4)));
  EXPECT_FALSE(lt("p", 5).matches(Value(5)));
  EXPECT_TRUE(le("p", 5).matches(Value(5)));
  EXPECT_TRUE(gt("p", 5).matches(Value(5.1)));
  EXPECT_TRUE(ge("p", 5).matches(Value(5)));
  EXPECT_FALSE(ge("p", 5).matches(Value(4.9)));
}

TEST(Constraint, StringOperators) {
  EXPECT_TRUE(prefix("u", "http://a").matches(Value("http://a/b")));
  EXPECT_FALSE(prefix("u", "http://a").matches(Value("https://a")));
  EXPECT_TRUE(suffix("u", ".rss").matches(Value("feed.rss")));
  EXPECT_FALSE(suffix("u", ".rss").matches(Value("feed.atom")));
  EXPECT_TRUE(contains("t", "news").matches(Value("the news today")));
  EXPECT_FALSE(contains("t", "news").matches(Value("weather")));
  EXPECT_FALSE(contains("t", "news").matches(Value(42)));  // non-string
  EXPECT_TRUE(lt("s", "b").matches(Value("a")));  // lexicographic
}

TEST(Constraint, ExistsMatchesAnyValue) {
  EXPECT_TRUE(exists("x").matches(Value(1)));
  EXPECT_TRUE(exists("x").matches(Value("s")));
  EXPECT_TRUE(exists("x").matches(Value(false)));
  EXPECT_FALSE(exists("x").matches(Value()));
}

// --- Covering: directed examples ------------------------------------------------

TEST(Covering, ExistsCoversEverything) {
  EXPECT_TRUE(exists("p").covers(eq("p", 5)));
  EXPECT_TRUE(exists("p").covers(lt("p", 5)));
  EXPECT_TRUE(exists("p").covers(contains("p", "x")));
  EXPECT_FALSE(exists("q").covers(eq("p", 5)));  // different attribute
}

TEST(Covering, RangeExamples) {
  EXPECT_TRUE(lt("p", 10).covers(lt("p", 5)));
  EXPECT_TRUE(lt("p", 10).covers(le("p", 9)));
  EXPECT_TRUE(lt("p", 10).covers(eq("p", 3)));
  EXPECT_FALSE(lt("p", 10).covers(le("p", 10)));
  EXPECT_FALSE(lt("p", 10).covers(lt("p", 11)));
  EXPECT_TRUE(ge("p", 5).covers(gt("p", 5)));
  EXPECT_TRUE(ge("p", 5).covers(eq("p", 5)));
  EXPECT_FALSE(gt("p", 5).covers(eq("p", 5)));
  EXPECT_TRUE(le("p", 5).covers(le("p", 5)));
}

TEST(Covering, NeExamples) {
  EXPECT_TRUE(ne("p", 5).covers(eq("p", 4)));
  EXPECT_FALSE(ne("p", 5).covers(eq("p", 5)));
  EXPECT_TRUE(ne("p", 5).covers(lt("p", 5)));
  EXPECT_FALSE(ne("p", 5).covers(lt("p", 6)));
  EXPECT_TRUE(ne("u", "x").covers(prefix("u", "y")));
  EXPECT_FALSE(ne("u", "yz").covers(prefix("u", "y")));
}

TEST(Covering, StringExamples) {
  EXPECT_TRUE(prefix("u", "http://").covers(prefix("u", "http://a.com")));
  EXPECT_FALSE(prefix("u", "http://a.com").covers(prefix("u", "http://")));
  EXPECT_TRUE(prefix("u", "ab").covers(eq("u", "abc")));
  EXPECT_TRUE(suffix("u", ".rss").covers(eq("u", "feed.rss")));
  EXPECT_TRUE(contains("u", "b").covers(contains("u", "abc")));
  EXPECT_FALSE(contains("u", "abc").covers(contains("u", "b")));
  EXPECT_TRUE(contains("u", "b").covers(prefix("u", "abc")));
  EXPECT_TRUE(contains("u", "b").covers(eq("u", "abc")));
}

TEST(Covering, CrossTypeNumericEq) {
  EXPECT_TRUE(eq("p", 3).covers(eq("p", 3.0)));
  EXPECT_TRUE(eq("p", 3.0).covers(eq("p", 3)));
}

TEST(Covering, InSetAlgebra) {
  const Constraint s = in_("p", {Value(1), Value(2), Value(3)});
  // A set covers equality on any member (cross-type included) and any
  // subset — and nothing wider.
  EXPECT_TRUE(s.covers(eq("p", 2)));
  EXPECT_TRUE(s.covers(eq("p", 2.0)));
  EXPECT_FALSE(s.covers(eq("p", 4)));
  EXPECT_TRUE(s.covers(in_("p", {Value(1), Value(3)})));
  EXPECT_FALSE(s.covers(in_("p", {Value(1), Value(4)})));
  EXPECT_FALSE(s.covers(lt("p", 3)));  // ranges admit non-members
  // Wider constraints cover a set exactly when they admit every member.
  EXPECT_TRUE(le("p", 3).covers(s));
  EXPECT_FALSE(lt("p", 3).covers(s));
  EXPECT_TRUE(exists("p").covers(s));
  EXPECT_TRUE(ne("p", 9).covers(s));
  EXPECT_FALSE(ne("p", 2).covers(s));
  const Constraint urls =
      in_("u", {Value("http://a/x"), Value("http://a/y")});
  EXPECT_TRUE(prefix("u", "http://a").covers(urls));
  EXPECT_FALSE(prefix("u", "http://b").covers(urls));
  // The empty set matches nothing: everything covers it vacuously, and it
  // covers only itself.
  const Constraint empty = in_("p", {});
  EXPECT_TRUE(eq("p", 1).covers(empty));
  EXPECT_TRUE(lt("p", 0).covers(empty));
  EXPECT_TRUE(s.covers(empty));
  EXPECT_TRUE(empty.covers(in_("p", {})));
  EXPECT_FALSE(empty.covers(eq("p", 1)));
}

// --- Covering soundness (property) ----------------------------------------------
//
// For randomly generated constraint pairs, whenever covers() claims c1
// covers c2, no probe value may match c2 without matching c1.

class CoveringProperty : public ::testing::TestWithParam<std::uint64_t> {};

Value random_scalar(util::Rng& rng, bool allow_bool = false) {
  static const std::vector<std::string> strings{
      "a", "b", "ab", "abc", "bc", "x", "http://a", "http://b", ""};
  if (rng.chance(0.4)) return Value(strings[rng.index(strings.size())]);
  if (allow_bool && rng.chance(0.1)) return Value(rng.chance(0.5));
  if (rng.chance(0.5)) {
    return Value(static_cast<std::int64_t>(rng.uniform_u64(0, 8)));
  }
  return Value(static_cast<double>(rng.uniform_u64(0, 8)) + 0.5);
}

Constraint random_constraint(util::Rng& rng) {
  // Set membership sits outside the scalar-op enum range; generate it
  // explicitly so every covering property sees in-vs-everything pairs.
  if (rng.chance(0.2)) {
    std::vector<Value> members;
    const std::size_t count = rng.index(4);  // 0..3: empty sets too
    for (std::size_t j = 0; j < count; ++j) {
      members.push_back(random_scalar(rng, /*allow_bool=*/true));
    }
    return Constraint("p", std::move(members));
  }
  const auto op = static_cast<Op>(rng.index(10));
  const bool string_flavored =
      op == Op::kPrefix || op == Op::kSuffix || op == Op::kContains;
  Value value;
  if (string_flavored) {
    static const std::vector<std::string> strings{
        "a", "b", "ab", "abc", "bc", "x", "http://a", "http://b", ""};
    value = Value(strings[rng.index(strings.size())]);
  } else {
    value = random_scalar(rng);
  }
  return Constraint("p", op, value);
}

std::vector<Value> probe_values() {
  std::vector<Value> probes;
  for (int i = -1; i <= 9; ++i) probes.emplace_back(std::int64_t{i});
  for (double d : {-0.5, 0.5, 1.5, 2.5, 3.5, 4.5, 7.5, 8.5}) {
    probes.emplace_back(d);
  }
  for (const char* s : {"", "a", "b", "ab", "abc", "abcd", "bc", "x", "xa",
                        "http://a", "http://a/b", "http://b"}) {
    probes.emplace_back(s);
  }
  probes.emplace_back(true);
  probes.emplace_back(false);
  return probes;
}

TEST_P(CoveringProperty, CoversImpliesImplication) {
  util::Rng rng(GetParam());
  const auto probes = probe_values();
  for (int trial = 0; trial < 2000; ++trial) {
    const Constraint c1 = random_constraint(rng);
    const Constraint c2 = random_constraint(rng);
    if (!c1.covers(c2)) continue;
    for (const Value& v : probes) {
      if (c2.matches(v)) {
        EXPECT_TRUE(c1.matches(v))
            << c1.to_string() << " claims to cover " << c2.to_string()
            << " but value " << v.to_string() << " matches only the latter";
      }
    }
  }
}

TEST_P(CoveringProperty, CoveringIsReflexive) {
  util::Rng rng(GetParam() ^ 0xabc);
  for (int trial = 0; trial < 500; ++trial) {
    const Constraint c = random_constraint(rng);
    EXPECT_TRUE(c.covers(c)) << c.to_string();
  }
}

TEST_P(CoveringProperty, CoveringIsTransitiveOnSamples) {
  util::Rng rng(GetParam() ^ 0xdef);
  for (int trial = 0; trial < 3000; ++trial) {
    const Constraint a = random_constraint(rng);
    const Constraint b = random_constraint(rng);
    const Constraint c = random_constraint(rng);
    if (a.covers(b) && b.covers(c)) {
      // Transitivity must hold semantically; verify via probes.
      for (const Value& v : probe_values()) {
        if (c.matches(v)) {
          EXPECT_TRUE(a.matches(v))
              << a.to_string() << " > " << b.to_string() << " > "
              << c.to_string() << " broken at " << v.to_string();
        }
      }
    }
  }
}

// Range/prefix-focused soundness: hammer exactly the op pairs the new
// sorted indexes serve (lt/le/gt/ge, prefix/suffix/contains), with
// bounds and probe values pinned to the edges the indexes binary-search
// on — strict-vs-inclusive collisions at shared magnitudes, cross-type
// int/double bounds, multi-length prefix patterns, and the 2^53
// neighborhood where int/double comparison must stay exact.

Constraint random_range_prefix_constraint(util::Rng& rng) {
  constexpr std::int64_t kBig = 9007199254740992;  // 2^53
  static constexpr Op kOps[] = {Op::kLt, Op::kLe,     Op::kGt,
                                Op::kGe, Op::kPrefix, Op::kSuffix,
                                Op::kContains, Op::kEq};
  const Op op = kOps[rng.index(8)];
  if (op == Op::kPrefix || op == Op::kSuffix || op == Op::kContains) {
    static const std::vector<std::string> patterns{
        "", "/", "/a", "/a/b", "/a/b/c", "/b", "x", "a"};
    return Constraint("p", op, Value(patterns[rng.index(patterns.size())]));
  }
  Value bound;
  switch (rng.index(3)) {
    case 0:
      bound = Value(static_cast<std::int64_t>(rng.index(4)));
      break;
    case 1:
      bound = Value(0.5 * static_cast<double>(rng.index(8)));
      break;
    default:
      bound = rng.chance(0.5)
                  ? Value(kBig - 1 + static_cast<std::int64_t>(rng.index(3)))
                  : Value(9007199254740992.0);
      break;
  }
  return Constraint("p", op, bound);
}

std::vector<Value> boundary_probe_values() {
  constexpr std::int64_t kBig = 9007199254740992;
  std::vector<Value> probes;
  for (std::int64_t i = -1; i <= 4; ++i) probes.emplace_back(i);
  for (double d : {-0.5, 0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5}) {
    probes.emplace_back(d);
  }
  for (std::int64_t i = kBig - 2; i <= kBig + 2; ++i) probes.emplace_back(i);
  probes.emplace_back(9007199254740992.0);
  for (const char* s :
       {"", "/", "/a", "/a/b", "/a/b/c", "/b", "/b/x", "a", "x", "xa"}) {
    probes.emplace_back(s);
  }
  return probes;
}

TEST_P(CoveringProperty, RangePrefixPairsStaySound) {
  util::Rng rng(GetParam() ^ 0x5eed);
  const auto probes = boundary_probe_values();
  for (int trial = 0; trial < 4000; ++trial) {
    const Constraint c1 = random_range_prefix_constraint(rng);
    const Constraint c2 = random_range_prefix_constraint(rng);
    if (!c1.covers(c2)) continue;
    for (const Value& v : probes) {
      if (c2.matches(v)) {
        EXPECT_TRUE(c1.matches(v))
            << c1.to_string() << " claims to cover " << c2.to_string()
            << " but value " << v.to_string() << " matches only the latter";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoveringProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// --- Filter ---------------------------------------------------------------------

TEST(Filter, EmptyMatchesEverythingAndCoversEverything) {
  const Filter empty;
  EXPECT_TRUE(empty.matches(Event()));
  EXPECT_TRUE(empty.matches(Event().with("x", 1)));
  EXPECT_TRUE(empty.covers(Filter().and_(eq("x", 1))));
  EXPECT_FALSE(Filter().and_(eq("x", 1)).covers(empty));
  EXPECT_EQ(empty.to_string(), "[*]");
}

TEST(Filter, ConjunctionRequiresAllConstraints) {
  const Filter f =
      Filter().and_(eq("sym", "ACME")).and_(gt("price", 10.0));
  EXPECT_TRUE(f.matches(Event().with("sym", "ACME").with("price", 11)));
  EXPECT_FALSE(f.matches(Event().with("sym", "ACME").with("price", 9)));
  EXPECT_FALSE(f.matches(Event().with("sym", "X").with("price", 11)));
  EXPECT_FALSE(f.matches(Event().with("price", 11)));  // missing attribute
}

TEST(Filter, CanonicalizationSortsAndDedupes) {
  const Filter a = Filter().and_(gt("p", 1)).and_(eq("a", 2)).and_(gt("p", 1));
  const Filter b = Filter().and_(eq("a", 2)).and_(gt("p", 1));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.key(), b.key());
  EXPECT_EQ(a.size(), 2u);
}

TEST(Filter, CoveringExamples) {
  const Filter broad = Filter().and_(eq("stream", "feed"));
  const Filter narrow =
      Filter().and_(eq("stream", "feed")).and_(eq("feed", "http://x/f.rss"));
  EXPECT_TRUE(broad.covers(narrow));
  EXPECT_FALSE(narrow.covers(broad));
  EXPECT_TRUE(narrow.covers(narrow));
}

TEST(Filter, CoveringSoundOnEvents) {
  util::Rng rng(77);
  const auto probes = probe_values();
  for (int trial = 0; trial < 1500; ++trial) {
    std::vector<Constraint> c1s, c2s;
    for (std::size_t i = 0; i < 1 + rng.index(2); ++i) {
      c1s.push_back(random_constraint(rng));
    }
    for (std::size_t i = 0; i < 1 + rng.index(2); ++i) {
      c2s.push_back(random_constraint(rng));
    }
    const Filter f1(c1s);
    const Filter f2(c2s);
    if (!f1.covers(f2)) continue;
    for (const Value& v : probes) {
      const Event e = Event().with("p", v);
      if (f2.matches(e)) {
        EXPECT_TRUE(f1.matches(e))
            << f1.to_string() << " vs " << f2.to_string() << " at "
            << v.to_string();
      }
    }
  }
}

}  // namespace
}  // namespace reef::pubsub
