// RoutingTable in isolation: covering-pruned forwarding diffs, unsubscribe
// retraction, replace semantics, and destination resolution — no simulated
// network involved.
#include <gtest/gtest.h>

#include <algorithm>

#include "pubsub/matcher_registry.h"
#include "pubsub/routing_table.h"

namespace reef::pubsub {
namespace {

constexpr RoutingTable::IfaceId kNeighbor = 100;
constexpr RoutingTable::IfaceId kOtherNeighbor = 101;
constexpr RoutingTable::IfaceId kClient = 200;

Filter feed(const std::string& url) {
  return Filter().and_(eq("stream", "feed")).and_(eq("feed", url));
}

Filter broad() { return Filter().and_(eq("stream", "feed")); }

std::vector<std::string> keys(const std::vector<Filter>& filters) {
  std::vector<std::string> out;
  for (const auto& f : filters) out.push_back(f.key());
  std::sort(out.begin(), out.end());
  return out;
}

TEST(RoutingTable, RefreshForwardsNewClientSubscription) {
  RoutingTable table;
  table.add_broker_iface(kNeighbor);
  table.client_subscribe(kClient, 1, feed("http://x/a"));
  auto diff = table.refresh(kNeighbor);
  ASSERT_EQ(diff.subscribe.size(), 1u);
  EXPECT_TRUE(diff.unsubscribe.empty());
  EXPECT_EQ(diff.subscribe[0], feed("http://x/a"));
  EXPECT_EQ(table.forwarded_size(kNeighbor), 1u);

  // A second refresh with no state change is a no-op diff.
  EXPECT_TRUE(table.refresh(kNeighbor).empty());
}

TEST(RoutingTable, CoveringPrunesNarrowFilters) {
  RoutingTable table;
  table.add_broker_iface(kNeighbor);
  table.client_subscribe(kClient, 1, broad());
  table.client_subscribe(kClient, 2, feed("http://x/a"));
  table.client_subscribe(kClient, 3, feed("http://x/b"));
  auto diff = table.refresh(kNeighbor);
  // Only the broad filter crosses; the narrow ones are covered.
  ASSERT_EQ(diff.subscribe.size(), 1u);
  EXPECT_EQ(diff.subscribe[0], broad());
  EXPECT_EQ(table.forwarded_size(kNeighbor), 1u);
  EXPECT_EQ(table.size(), 3u);
}

TEST(RoutingTable, CoveringDisabledForwardsEverything) {
  RoutingTable table(
      RoutingTable::Config{/*covering_enabled=*/false, "anchor-index"});
  table.add_broker_iface(kNeighbor);
  table.client_subscribe(kClient, 1, broad());
  table.client_subscribe(kClient, 2, feed("http://x/a"));
  auto diff = table.refresh(kNeighbor);
  EXPECT_EQ(diff.subscribe.size(), 2u);
  EXPECT_EQ(table.forwarded_size(kNeighbor), 2u);
}

TEST(RoutingTable, UnsubscribeDiffRetractsAndUncovers) {
  RoutingTable table;
  table.add_broker_iface(kNeighbor);
  table.client_subscribe(kClient, 1, broad());
  table.client_subscribe(kClient, 2, feed("http://x/a"));
  table.refresh(kNeighbor);

  // Retracting the broad filter must unsubscribe it and re-expose the
  // narrow one in the same diff.
  EXPECT_TRUE(table.client_unsubscribe(kClient, 1));
  auto diff = table.refresh(kNeighbor);
  EXPECT_EQ(keys(diff.unsubscribe), keys({broad()}));
  EXPECT_EQ(keys(diff.subscribe), keys({feed("http://x/a")}));
  EXPECT_EQ(table.forwarded_size(kNeighbor), 1u);

  // Retracting the last filter drains the forwarded set.
  EXPECT_TRUE(table.client_unsubscribe(kClient, 2));
  diff = table.refresh(kNeighbor);
  EXPECT_TRUE(diff.subscribe.empty());
  EXPECT_EQ(diff.unsubscribe.size(), 1u);
  EXPECT_EQ(table.forwarded_size(kNeighbor), 0u);
  EXPECT_EQ(table.size(), 0u);
}

TEST(RoutingTable, UnknownUnsubscribeIsRejected) {
  RoutingTable table;
  EXPECT_FALSE(table.client_unsubscribe(kClient, 99));
  EXPECT_FALSE(table.broker_unsubscribe(kNeighbor, broad()));
}

TEST(RoutingTable, ClientResubscribeReplacesExistingId) {
  RoutingTable table;
  table.add_broker_iface(kNeighbor);
  table.client_subscribe(kClient, 1, feed("http://x/a"));
  table.refresh(kNeighbor);
  // Re-adding the same sub id swaps the filter in place: table size stays
  // 1 and the next diff retracts the old filter, subscribes the new one.
  table.client_subscribe(kClient, 1, feed("http://x/b"));
  EXPECT_EQ(table.size(), 1u);
  auto diff = table.refresh(kNeighbor);
  EXPECT_EQ(keys(diff.subscribe), keys({feed("http://x/b")}));
  EXPECT_EQ(keys(diff.unsubscribe), keys({feed("http://x/a")}));
}

TEST(RoutingTable, BrokerResubscribeIsIdempotent) {
  RoutingTable table;
  table.add_broker_iface(kNeighbor);
  EXPECT_TRUE(table.broker_subscribe(kNeighbor, feed("http://x/a")));
  EXPECT_FALSE(table.broker_subscribe(kNeighbor, feed("http://x/a")));
  EXPECT_EQ(table.size(), 1u);
  EXPECT_TRUE(table.broker_unsubscribe(kNeighbor, feed("http://x/a")));
  EXPECT_EQ(table.size(), 0u);
}

TEST(RoutingTable, NeighborFilterNotEchoedBackInItsOwnRefresh) {
  RoutingTable table;
  table.add_broker_iface(kNeighbor);
  table.add_broker_iface(kOtherNeighbor);
  table.broker_subscribe(kNeighbor, feed("http://x/a"));
  // Never offered back to its source...
  EXPECT_TRUE(table.refresh(kNeighbor).empty());
  // ...but propagated to the other neighbor.
  auto diff = table.refresh(kOtherNeighbor);
  EXPECT_EQ(keys(diff.subscribe), keys({feed("http://x/a")}));
}

TEST(RoutingTable, MatchResolvesDestinations) {
  RoutingTable table;
  table.add_broker_iface(kNeighbor);
  table.client_subscribe(kClient, 7, feed("http://x/a"));
  table.broker_subscribe(kNeighbor, broad());

  std::vector<RoutingTable::Destination> hits;
  table.match(Event().with("stream", "feed").with("feed", "http://x/a"),
              hits);
  ASSERT_EQ(hits.size(), 2u);
  const auto client_hit = std::find_if(
      hits.begin(), hits.end(),
      [](const RoutingTable::Destination& d) { return !d.is_broker; });
  const auto broker_hit = std::find_if(
      hits.begin(), hits.end(),
      [](const RoutingTable::Destination& d) { return d.is_broker; });
  ASSERT_NE(client_hit, hits.end());
  ASSERT_NE(broker_hit, hits.end());
  EXPECT_EQ(client_hit->iface, kClient);
  EXPECT_EQ(client_hit->client_sub, 7u);
  EXPECT_EQ(broker_hit->iface, kNeighbor);
}

TEST(RoutingTable, MatchBatchAgreesWithPerEventMatch) {
  RoutingTable table;
  table.add_broker_iface(kNeighbor);
  table.client_subscribe(kClient, 1, feed("http://x/a"));
  table.client_subscribe(kClient, 2, broad());
  table.broker_subscribe(kNeighbor, Filter().and_(gt("price", 10)));

  std::vector<Event> events;
  events.push_back(Event().with("stream", "feed").with("feed", "http://x/a"));
  events.push_back(Event().with("stream", "feed").with("feed", "http://x/b"));
  events.push_back(Event().with("price", 25));
  events.push_back(Event().with("price", 5));

  std::vector<std::vector<RoutingTable::Destination>> batched;
  table.match_batch(events, batched);
  ASSERT_EQ(batched.size(), events.size());
  auto sig = [](std::vector<RoutingTable::Destination> hits) {
    std::vector<std::tuple<RoutingTable::IfaceId, bool, SubscriptionId>> out;
    for (const auto& d : hits) out.emplace_back(d.iface, d.is_broker, d.client_sub);
    std::sort(out.begin(), out.end());
    return out;
  };
  for (std::size_t i = 0; i < events.size(); ++i) {
    std::vector<RoutingTable::Destination> single;
    table.match(events[i], single);
    EXPECT_EQ(sig(batched[i]), sig(single)) << "event " << i;
  }
}

TEST(RoutingTable, EngineSelectedThroughRegistry) {
  for (const auto& engine : MatcherRegistry::instance().names()) {
    RoutingTable table(RoutingTable::Config{true, engine});
    EXPECT_EQ(table.matcher().name(), engine);
    table.client_subscribe(kClient, 1, feed("http://x/a"));
    std::vector<RoutingTable::Destination> hits;
    table.match(Event().with("stream", "feed").with("feed", "http://x/a"),
                hits);
    EXPECT_EQ(hits.size(), 1u) << engine;
  }
  EXPECT_THROW(
      RoutingTable(RoutingTable::Config{true, "no-such-engine"}),
      std::invalid_argument);
}

}  // namespace
}  // namespace reef::pubsub
