// RoutingTable in isolation: covering-pruned forwarding diffs, unsubscribe
// retraction, replace semantics, and destination resolution — no simulated
// network involved.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "pubsub/matcher_registry.h"
#include "pubsub/routing_table.h"
#include "util/rng.h"

namespace reef::pubsub {
namespace {

constexpr RoutingTable::IfaceId kNeighbor = 100;
constexpr RoutingTable::IfaceId kOtherNeighbor = 101;
constexpr RoutingTable::IfaceId kClient = 200;

Filter feed(const std::string& url) {
  return Filter().and_(eq("stream", "feed")).and_(eq("feed", url));
}

Filter broad() { return Filter().and_(eq("stream", "feed")); }

std::vector<std::string> keys(const std::vector<Filter>& filters) {
  std::vector<std::string> out;
  for (const auto& f : filters) out.push_back(f.key());
  std::sort(out.begin(), out.end());
  return out;
}

TEST(RoutingTable, RefreshForwardsNewClientSubscription) {
  RoutingTable table;
  table.add_broker_iface(kNeighbor);
  table.client_subscribe(kClient, 1, feed("http://x/a"));
  auto diff = table.refresh(kNeighbor);
  ASSERT_EQ(diff.subscribe.size(), 1u);
  EXPECT_TRUE(diff.unsubscribe.empty());
  EXPECT_EQ(diff.subscribe[0], feed("http://x/a"));
  EXPECT_EQ(table.forwarded_size(kNeighbor), 1u);

  // A second refresh with no state change is a no-op diff.
  EXPECT_TRUE(table.refresh(kNeighbor).empty());
}

TEST(RoutingTable, CoveringPrunesNarrowFilters) {
  RoutingTable table;
  table.add_broker_iface(kNeighbor);
  table.client_subscribe(kClient, 1, broad());
  table.client_subscribe(kClient, 2, feed("http://x/a"));
  table.client_subscribe(kClient, 3, feed("http://x/b"));
  auto diff = table.refresh(kNeighbor);
  // Only the broad filter crosses; the narrow ones are covered.
  ASSERT_EQ(diff.subscribe.size(), 1u);
  EXPECT_EQ(diff.subscribe[0], broad());
  EXPECT_EQ(table.forwarded_size(kNeighbor), 1u);
  EXPECT_EQ(table.size(), 3u);
}

TEST(RoutingTable, CoveringDisabledForwardsEverything) {
  RoutingTable table(
      RoutingTable::Config{/*covering_enabled=*/false, "anchor-index"});
  table.add_broker_iface(kNeighbor);
  table.client_subscribe(kClient, 1, broad());
  table.client_subscribe(kClient, 2, feed("http://x/a"));
  auto diff = table.refresh(kNeighbor);
  EXPECT_EQ(diff.subscribe.size(), 2u);
  EXPECT_EQ(table.forwarded_size(kNeighbor), 2u);
}

TEST(RoutingTable, UnsubscribeDiffRetractsAndUncovers) {
  RoutingTable table;
  table.add_broker_iface(kNeighbor);
  table.client_subscribe(kClient, 1, broad());
  table.client_subscribe(kClient, 2, feed("http://x/a"));
  table.refresh(kNeighbor);

  // Retracting the broad filter must unsubscribe it and re-expose the
  // narrow one in the same diff.
  EXPECT_TRUE(table.client_unsubscribe(kClient, 1));
  auto diff = table.refresh(kNeighbor);
  EXPECT_EQ(keys(diff.unsubscribe), keys({broad()}));
  EXPECT_EQ(keys(diff.subscribe), keys({feed("http://x/a")}));
  EXPECT_EQ(table.forwarded_size(kNeighbor), 1u);

  // Retracting the last filter drains the forwarded set.
  EXPECT_TRUE(table.client_unsubscribe(kClient, 2));
  diff = table.refresh(kNeighbor);
  EXPECT_TRUE(diff.subscribe.empty());
  EXPECT_EQ(diff.unsubscribe.size(), 1u);
  EXPECT_EQ(table.forwarded_size(kNeighbor), 0u);
  EXPECT_EQ(table.size(), 0u);
}

TEST(RoutingTable, UnknownUnsubscribeIsRejected) {
  RoutingTable table;
  EXPECT_FALSE(table.client_unsubscribe(kClient, 99));
  EXPECT_FALSE(table.broker_unsubscribe(kNeighbor, broad()));
}

TEST(RoutingTable, ClientResubscribeReplacesExistingId) {
  RoutingTable table;
  table.add_broker_iface(kNeighbor);
  table.client_subscribe(kClient, 1, feed("http://x/a"));
  table.refresh(kNeighbor);
  // Re-adding the same sub id swaps the filter in place: table size stays
  // 1 and the next diff retracts the old filter, subscribes the new one.
  table.client_subscribe(kClient, 1, feed("http://x/b"));
  EXPECT_EQ(table.size(), 1u);
  auto diff = table.refresh(kNeighbor);
  EXPECT_EQ(keys(diff.subscribe), keys({feed("http://x/b")}));
  EXPECT_EQ(keys(diff.unsubscribe), keys({feed("http://x/a")}));
}

TEST(RoutingTable, BrokerResubscribeIsIdempotent) {
  RoutingTable table;
  table.add_broker_iface(kNeighbor);
  EXPECT_TRUE(table.broker_subscribe(kNeighbor, feed("http://x/a")));
  EXPECT_FALSE(table.broker_subscribe(kNeighbor, feed("http://x/a")));
  EXPECT_EQ(table.size(), 1u);
  EXPECT_TRUE(table.broker_unsubscribe(kNeighbor, feed("http://x/a")));
  EXPECT_EQ(table.size(), 0u);
}

TEST(RoutingTable, NeighborFilterNotEchoedBackInItsOwnRefresh) {
  RoutingTable table;
  table.add_broker_iface(kNeighbor);
  table.add_broker_iface(kOtherNeighbor);
  table.broker_subscribe(kNeighbor, feed("http://x/a"));
  // Never offered back to its source...
  EXPECT_TRUE(table.refresh(kNeighbor).empty());
  // ...but propagated to the other neighbor.
  auto diff = table.refresh(kOtherNeighbor);
  EXPECT_EQ(keys(diff.subscribe), keys({feed("http://x/a")}));
}

TEST(RoutingTable, MatchResolvesDestinations) {
  RoutingTable table;
  table.add_broker_iface(kNeighbor);
  table.client_subscribe(kClient, 7, feed("http://x/a"));
  table.broker_subscribe(kNeighbor, broad());

  std::vector<RoutingTable::Destination> hits;
  table.match(Event().with("stream", "feed").with("feed", "http://x/a"),
              hits);
  ASSERT_EQ(hits.size(), 2u);
  const auto client_hit = std::find_if(
      hits.begin(), hits.end(),
      [](const RoutingTable::Destination& d) { return !d.is_broker; });
  const auto broker_hit = std::find_if(
      hits.begin(), hits.end(),
      [](const RoutingTable::Destination& d) { return d.is_broker; });
  ASSERT_NE(client_hit, hits.end());
  ASSERT_NE(broker_hit, hits.end());
  EXPECT_EQ(client_hit->iface, kClient);
  EXPECT_EQ(client_hit->client_sub, 7u);
  EXPECT_EQ(broker_hit->iface, kNeighbor);
}

TEST(RoutingTable, MatchBatchAgreesWithPerEventMatch) {
  RoutingTable table;
  table.add_broker_iface(kNeighbor);
  table.client_subscribe(kClient, 1, feed("http://x/a"));
  table.client_subscribe(kClient, 2, broad());
  table.broker_subscribe(kNeighbor, Filter().and_(gt("price", 10)));

  std::vector<Event> events;
  events.push_back(Event().with("stream", "feed").with("feed", "http://x/a"));
  events.push_back(Event().with("stream", "feed").with("feed", "http://x/b"));
  events.push_back(Event().with("price", 25));
  events.push_back(Event().with("price", 5));

  std::vector<std::vector<RoutingTable::Destination>> batched;
  table.match_batch(events, batched);
  ASSERT_EQ(batched.size(), events.size());
  auto sig = [](std::vector<RoutingTable::Destination> hits) {
    std::vector<std::tuple<RoutingTable::IfaceId, bool, SubscriptionId>> out;
    for (const auto& d : hits) out.emplace_back(d.iface, d.is_broker, d.client_sub);
    std::sort(out.begin(), out.end());
    return out;
  };
  for (std::size_t i = 0; i < events.size(); ++i) {
    std::vector<RoutingTable::Destination> single;
    table.match(events[i], single);
    EXPECT_EQ(sig(batched[i]), sig(single)) << "event " << i;
  }
}

// --- indexed covering check vs the naive pairwise oracle --------------------

Filter churn_filter(util::Rng& rng) {
  // The Reef-like population the indexed cover check targets: per-feed
  // equality subscriptions (massively redundant attributes, distinct
  // values), broad stream filters that cover them, price ranges, prefix
  // content filters, and the occasional universal subscription.
  switch (rng.index(6)) {
    case 0:
    case 1:
    case 2:
      return feed("http://s" + std::to_string(rng.index(200)) + "/f");
    case 3:
      return rng.chance(0.05)
                 ? broad()
                 : Filter().and_(eq("stream", "quotes"))
                       .and_(ge("price", static_cast<double>(rng.index(50))));
    case 4:
      return Filter().and_(prefix(
          "feed", "http://s" + std::to_string(rng.index(20))));
    default:
      return rng.chance(0.02) ? Filter()
                              : Filter().and_(exists("price")).and_(lt(
                                    "price",
                                    static_cast<double>(rng.index(80))));
  }
}

/// Regression gate for the signature-indexed covering check: a table under
/// 1k-filter churn must hand every neighbor forwarding diffs identical to
/// the naive-pairwise-loop table fed the same operations.
TEST(RoutingTable, IndexedCoveringMatchesNaiveDiffsUnder1kChurn) {
  util::Rng rng(0xc0ffee);
  RoutingTable indexed(
      RoutingTable::Config{true, "anchor-index", /*cover_index_enabled=*/true});
  RoutingTable naive(RoutingTable::Config{true, "anchor-index",
                                          /*cover_index_enabled=*/false});
  for (RoutingTable* table : {&indexed, &naive}) {
    table->add_broker_iface(kNeighbor);
    table->add_broker_iface(kOtherNeighbor);
  }

  const auto diff_signature = [](const RoutingTable::Diff& diff) {
    std::vector<std::string> sig;
    sig.reserve(diff.subscribe.size() + diff.unsubscribe.size() + 1);
    for (const Filter& f : diff.subscribe) sig.push_back("+" + f.key());
    sig.push_back("|");
    for (const Filter& f : diff.unsubscribe) sig.push_back("-" + f.key());
    return sig;
  };

  std::vector<SubscriptionId> live;
  SubscriptionId next_id = 1;
  std::size_t added = 0;
  int checked_diffs = 0;
  for (int round = 0; round < 80; ++round) {
    // Churn burst: additions dominate until 1k filters went in, then the
    // mix turns removal-only so covering filters get retracted and the
    // filters they covered resurface in the diffs.
    for (int step = 0; step < 20; ++step) {
      const bool add = added < 1000 && (live.empty() || rng.chance(0.75));
      if (add) {
        const Filter f = churn_filter(rng);
        // Client interface derived from the id so the unsubscribe below
        // can reconstruct the same (client, id) pair.
        const RoutingTable::IfaceId client = 300 + next_id % 4;
        indexed.client_subscribe(client, next_id, f);
        naive.client_subscribe(client, next_id, f);
        live.push_back(next_id);
        ++next_id;
        ++added;
      } else if (!live.empty()) {
        const std::size_t idx = rng.index(live.size());
        const RoutingTable::IfaceId client = 300 + live[idx] % 4;
        EXPECT_TRUE(indexed.client_unsubscribe(client, live[idx]));
        EXPECT_TRUE(naive.client_unsubscribe(client, live[idx]));
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
      }
    }
    for (const auto neighbor : {kNeighbor, kOtherNeighbor}) {
      const auto from_indexed = diff_signature(indexed.refresh(neighbor));
      const auto from_naive = diff_signature(naive.refresh(neighbor));
      ASSERT_EQ(from_indexed, from_naive)
          << "round " << round << " neighbor " << neighbor;
      if (from_indexed.size() > 1) ++checked_diffs;
      EXPECT_EQ(indexed.forwarded_size(neighbor),
                naive.forwarded_size(neighbor));
    }
  }
  EXPECT_EQ(added, 1000u);
  EXPECT_GT(checked_diffs, 10);  // the churn actually produced diffs

  // Final direct check: a fresh neighbor's first refresh carries the
  // complete covering-minimal form of the final population, so the two
  // reductions are compared in full, not just their churn deltas.
  constexpr RoutingTable::IfaceId kFreshNeighbor = 150;
  indexed.add_broker_iface(kFreshNeighbor);
  naive.add_broker_iface(kFreshNeighbor);
  const auto full_indexed = diff_signature(indexed.refresh(kFreshNeighbor));
  const auto full_naive = diff_signature(naive.refresh(kFreshNeighbor));
  EXPECT_GT(full_indexed.size(), 1u);
  EXPECT_EQ(full_indexed, full_naive);
}

/// Direct equivalence of the two reductions on adversarial shapes the
/// churn mix may miss: equivalent filters (canonical-representative
/// tie-break), chains of mutual covering, and universal filters.
TEST(RoutingTable, MinimalCoverIndexedEqualsNaiveOnEdgeCases) {
  const auto run_both = [](const std::vector<Filter>& filters) {
    std::map<std::string, Filter> input;
    for (const Filter& f : filters) input.emplace(f.key(), f);
    const auto a = RoutingTable::minimal_cover_indexed(input);
    const auto b = RoutingTable::minimal_cover_naive(input);
    EXPECT_EQ(a.size(), b.size());
    auto it_a = a.begin();
    for (const auto& [key, filter] : b) {
      if (it_a == a.end()) {
        ADD_FAILURE() << "indexed cover missing key " << key;
        break;
      }
      EXPECT_EQ(it_a->first, key);
      EXPECT_EQ(it_a->second, filter);
      ++it_a;
    }
    return a;
  };

  // Universal filter covers everything (and survives alone).
  auto cover = run_both({Filter(), broad(), feed("http://x/a")});
  EXPECT_EQ(cover.size(), 1u);
  EXPECT_TRUE(cover.begin()->second.empty());

  // Cross-type numeric equality: eq(p, 3) and eq(p, 3.0) are equivalent
  // but have distinct keys — exactly one survives, via the tie-break.
  cover = run_both({Filter().and_(eq("p", 3)), Filter().and_(eq("p", 3.0))});
  EXPECT_EQ(cover.size(), 1u);

  // Range chains: ge 10 covers ge 20 covers ge 30.
  cover = run_both({Filter().and_(ge("p", 10.0)),
                    Filter().and_(ge("p", 20.0)),
                    Filter().and_(ge("p", 30.0))});
  EXPECT_EQ(cover.size(), 1u);

  // Prefix covers longer prefix and equality; exists covers them all.
  run_both({Filter().and_(prefix("u", "http://a")),
            Filter().and_(prefix("u", "http://a/b")),
            Filter().and_(eq("u", "http://a/b/c")),
            Filter().and_(exists("u"))});

  // Incomparable mix stays intact.
  cover = run_both({feed("http://x/a"), feed("http://x/b"),
                    Filter().and_(ge("price", 5.0))});
  EXPECT_EQ(cover.size(), 3u);
}

TEST(RoutingTable, EngineSelectedThroughRegistry) {
  for (const auto& engine : MatcherRegistry::instance().names()) {
    RoutingTable table(RoutingTable::Config{true, engine});
    EXPECT_EQ(table.matcher().name(), engine);
    table.client_subscribe(kClient, 1, feed("http://x/a"));
    std::vector<RoutingTable::Destination> hits;
    table.match(Event().with("stream", "feed").with("feed", "http://x/a"),
                hits);
    EXPECT_EQ(hits.size(), 1u) << engine;
  }
  EXPECT_THROW(
      RoutingTable(RoutingTable::Config{true, "no-such-engine"}),
      std::invalid_argument);
}

// --- churn-driven structural maintenance -------------------------------------

TEST(RoutingTable, ChurnTriggersMaintainOnSchedule) {
  RoutingTable::Config config;
  config.engine = "anchor-index";
  config.maintain_churn_threshold = 10;
  config.maintain_max_bucket = 4;
  config.maintain_skew_ratio = 0;  // churn-count-only scheduling under test
  RoutingTable table(config);
  EXPECT_EQ(table.maintain_runs(), 0u);
  // 25 adds = two full churn windows of 10 (plus 5 left over).
  for (SubscriptionId id = 1; id <= 25; ++id) {
    table.client_subscribe(kClient, id,
                           Filter().and_(eq("hot", 1)).and_(
                               eq("user", static_cast<std::int64_t>(id))));
  }
  EXPECT_EQ(table.maintain_runs(), 2u);
  // Removes count toward the same budget: 5 pending + 5 removes trips it.
  for (SubscriptionId id = 1; id <= 5; ++id) {
    table.client_unsubscribe(kClient, id);
  }
  EXPECT_EQ(table.maintain_runs(), 3u);
}

TEST(RoutingTable, MaintainMovesStrandedAnchorsWithoutChangingMatches) {
  // Adversarial churn shaped like the IndexMatcher rebalance test, driven
  // purely through the production subscribe/unsubscribe path: ballast
  // inflates the (user=i) buckets, two-anchor filters land on (hot=1)
  // while it is cheap, then single-anchor filters pile onto it. The
  // maintained table must re-anchor the stranded filters (changes > 0)
  // and keep matching identical to an unmaintained twin.
  RoutingTable::Config maintained_config;
  maintained_config.engine = "anchor-index";
  maintained_config.maintain_churn_threshold = 8;
  maintained_config.maintain_max_bucket = 4;
  maintained_config.maintain_skew_ratio = 0;  // maintain on every window
  RoutingTable maintained(maintained_config);
  RoutingTable::Config plain_config;
  plain_config.engine = "anchor-index";
  plain_config.maintain_churn_threshold = 0;  // ablation baseline
  RoutingTable plain(plain_config);

  SubscriptionId next = 1;
  const auto subscribe_both = [&](const Filter& f) {
    maintained.client_subscribe(kClient, next, f);
    plain.client_subscribe(kClient, next, f);
    ++next;
  };
  for (std::int64_t user = 1; user <= 6; ++user) {
    for (std::int64_t n = 0; n < 8; ++n) {
      subscribe_both(Filter().and_(eq("user", user)).and_(ge("score", n)));
    }
  }
  for (std::int64_t user = 1; user <= 6; ++user) {
    subscribe_both(Filter().and_(eq("hot", 1)).and_(eq("user", user)));
  }
  for (int i = 0; i < 30; ++i) {
    subscribe_both(Filter().and_(eq("hot", 1)));
  }
  EXPECT_GT(maintained.maintain_runs(), 0u);
  EXPECT_GT(maintained.maintain_changes(), 0u);
  EXPECT_EQ(plain.maintain_runs(), 0u);

  const auto destinations = [](const RoutingTable& table, const Event& e) {
    std::vector<RoutingTable::Destination> hits;
    table.match(e, hits);
    std::vector<SubscriptionId> subs;
    for (const auto& d : hits) subs.push_back(d.client_sub);
    std::sort(subs.begin(), subs.end());
    return subs;
  };
  for (const Event& probe :
       {Event().with("hot", 1).with("user", 3),
        Event().with("user", 2).with("score", 5), Event().with("hot", 1)}) {
    EXPECT_EQ(destinations(maintained, probe), destinations(plain, probe))
        << probe.to_string();
  }
}

// --- skew-triggered maintenance ----------------------------------------------

TEST(RoutingTable, SkewTriggerSkipsMaintainOnBalancedWorkload) {
  // Distinct single-value equality buckets: largest == mean == 1, so no
  // churn window ever finds skew and every scheduled pass is skipped —
  // the no-op passes the skew trigger exists to cut.
  RoutingTable::Config config;
  config.engine = "anchor-index";
  config.maintain_churn_threshold = 10;
  config.maintain_max_bucket = 4;
  config.maintain_skew_ratio = 4;
  RoutingTable table(config);
  for (SubscriptionId id = 1; id <= 35; ++id) {
    table.client_subscribe(kClient, id,
                           Filter().and_(eq("user",
                                            static_cast<std::int64_t>(id))));
  }
  EXPECT_EQ(table.maintain_runs(), 0u);
  EXPECT_EQ(table.maintain_skew_triggers(), 0u);
}

TEST(RoutingTable, SkewUnderRebalanceBoundNeverFires) {
  // Ratio-skewed but under maintain_max_bucket: one bucket of ~12 filters
  // over a singleton mean trips the ratio, yet rebalance only moves
  // filters out of buckets larger than max_bucket — a pass would be a
  // provable no-op, so neither the early trigger nor the scheduled pass
  // may burn one. (Regression: an earlier cut fired on ratio alone and
  // re-ran a no-op maintain every check interval, forever.)
  RoutingTable::Config config;
  config.engine = "anchor-index";
  config.maintain_churn_threshold = 16;
  config.maintain_max_bucket = 64;
  config.maintain_skew_ratio = 8;
  RoutingTable table(config);
  SubscriptionId next = 1;
  for (int i = 0; i < 12; ++i) {
    table.client_subscribe(kClient, next++, Filter().and_(eq("hot", 1)));
  }
  for (int i = 0; i < 60; ++i) {
    table.client_subscribe(kClient, next++,
                           Filter().and_(eq("user",
                                            static_cast<std::int64_t>(i))));
  }
  EXPECT_EQ(table.maintain_runs(), 0u);
  EXPECT_EQ(table.maintain_skew_triggers(), 0u);
}

TEST(RoutingTable, SkewTriggerFiresMaintainBeforeChurnThreshold) {
  // One bucket (hot=1) grows while the rest stay at size 1. The skew
  // check samples every threshold/8 = 10 churn ops, so the first pass
  // fires as soon as largest > ratio * mean — far before the 80-op churn
  // window that pure churn-count scheduling would wait for.
  RoutingTable::Config config;
  config.engine = "anchor-index";
  config.maintain_churn_threshold = 80;
  config.maintain_max_bucket = 4;
  config.maintain_skew_ratio = 4;
  RoutingTable table(config);
  SubscriptionId next = 1;
  for (int i = 0; i < 9; ++i) {
    table.client_subscribe(kClient, next,
                           Filter().and_(eq("user",
                                            static_cast<std::int64_t>(next))));
    ++next;
  }
  std::size_t ops = 9;
  while (table.maintain_skew_triggers() == 0 && ops < 60) {
    table.client_subscribe(kClient, next++, Filter().and_(eq("hot", 1)));
    ++ops;
  }
  EXPECT_GE(table.maintain_skew_triggers(), 1u);
  EXPECT_GE(table.maintain_runs(), 1u);
  EXPECT_LT(ops, config.maintain_churn_threshold)
      << "skew trigger should fire before the churn window closes";

  // The trigger only reschedules maintenance; matching is untouched.
  std::vector<RoutingTable::Destination> hits;
  table.match(Event().with("hot", 1), hits);
  EXPECT_EQ(hits.size(), ops - 9);
}

TEST(RoutingTable, BalancedButOversizedBucketsStillGetScheduledMaintenance) {
  // Four hot buckets growing in lockstep: the largest/mean ratio never
  // trips (they are all the same size), but every bucket exceeds
  // maintain_max_bucket, so rebalance has real work — the scheduled pass
  // must run, not be skipped as "balanced". Regression pin for the skip
  // being exact (skip only when no bucket exceeds the rebalance bound).
  RoutingTable::Config config;
  config.engine = "anchor-index";
  config.maintain_churn_threshold = 10;
  config.maintain_max_bucket = 2;
  config.maintain_skew_ratio = 100;  // ratio alone would never fire
  RoutingTable table(config);
  SubscriptionId next = 1;
  // One two-eq filter per hot attribute first (anchors on the then-empty
  // hot bucket), then uniform piles of pinned single-eq filters.
  for (int k = 0; k < 4; ++k) {
    table.client_subscribe(kClient, next++,
                           Filter()
                               .and_(eq("h" + std::to_string(k), 1))
                               .and_(eq("user",
                                        static_cast<std::int64_t>(100 + k))));
  }
  for (int i = 0; i < 36; ++i) {
    table.client_subscribe(kClient, next++,
                           Filter().and_(eq("h" + std::to_string(i % 4), 1)));
  }
  EXPECT_EQ(table.maintain_skew_triggers(), 0u);
  EXPECT_GT(table.maintain_runs(), 0u);
  // The stranded two-eq filters were re-anchored onto their user buckets.
  EXPECT_GT(table.maintain_changes(), 0u);
}

TEST(RoutingTable, SkewBackoffStopsRefiringOnPinnedHotBucket) {
  // Single-eq filters (eq(hot, 1) and nothing else) are pinned: rebalance
  // cannot re-anchor them anywhere. Without backoff the skew trigger
  // re-fires a futile maintain every threshold/8 churn ops forever; with
  // it, the first zero-change pass stands the trigger down and
  // maintain_skew_triggers() stops climbing while the bucket only grows.
  RoutingTable::Config config;
  config.engine = "anchor-index";
  config.maintain_churn_threshold = 80;
  config.maintain_max_bucket = 4;
  config.maintain_skew_ratio = 4;
  RoutingTable table(config);
  SubscriptionId next = 1;
  for (int i = 0; i < 9; ++i) {
    table.client_subscribe(kClient, next,
                           Filter().and_(eq("user",
                                            static_cast<std::int64_t>(next))));
    ++next;
  }
  std::vector<SubscriptionId> pinned;
  for (int i = 0; i < 120; ++i) {
    pinned.push_back(next);
    table.client_subscribe(kClient, next++, Filter().and_(eq("hot", 1)));
  }
  EXPECT_EQ(table.maintain_skew_triggers(), 1u)
      << "exactly one early fire; the zero-change pass must back off";
  EXPECT_GT(table.maintain_backoff_skips(), 0u);
  // Scheduled passes are never suppressed: repair stays guaranteed at the
  // churn cadence even while the trigger is standing down.
  EXPECT_GE(table.maintain_runs(), 2u);
  EXPECT_EQ(table.maintain_changes(), 0u);

  // A *different* bucket overtaking the pinned one must re-arm the
  // trigger: the backoff tracks bucket identity, not just size, because
  // the newcomer could be movable. (Here it is pinned too, so the table
  // fires exactly once more, then backs off on the new bucket.)
  std::vector<SubscriptionId> warm;
  for (int i = 0; i < 140; ++i) {
    warm.push_back(next);
    table.client_subscribe(kClient, next++, Filter().and_(eq("warm", 1)));
  }
  EXPECT_EQ(table.maintain_skew_triggers(), 2u)
      << "the overtaking warm bucket must fire once, then back off";

  // Shrinking the now-largest bucket below the zero-change snapshot
  // re-arms the trigger as well: the next sampled skew check may fire.
  for (std::size_t i = 0; i < warm.size() - 10; ++i) {
    table.client_unsubscribe(kClient, warm[i]);
  }
  EXPECT_GE(table.maintain_skew_triggers(), 3u);
}

TEST(RoutingTable, ShrinkSideBackoffReArmsOncePerEpisode) {
  // Regression pin for the shrink-side re-arm being one-shot. A pinned
  // hot bucket *draining* one filter at a time is strictly smaller at
  // every skew sample; the old re-arm condition (largest < snapshot)
  // bought a futile maintain pass per sample for the whole drain. Fixed:
  // the first re-armed pass proves the bucket is still pinned at the
  // smaller size, and the episode's shrink re-arm is spent until the
  // largest-bucket identity changes or a pass moves something.
  RoutingTable::Config config;
  config.engine = "anchor-index";
  config.maintain_churn_threshold = 80;
  config.maintain_max_bucket = 4;
  config.maintain_skew_ratio = 4;
  RoutingTable table(config);
  SubscriptionId next = 1;
  for (int i = 0; i < 9; ++i) {
    table.client_subscribe(kClient, next,
                           Filter().and_(eq("user",
                                            static_cast<std::int64_t>(next))));
    ++next;
  }
  std::vector<SubscriptionId> pinned;
  for (int i = 0; i < 100; ++i) {
    pinned.push_back(next);
    table.client_subscribe(kClient, next++, Filter().and_(eq("hot", 1)));
  }
  ASSERT_EQ(table.maintain_skew_triggers(), 1u);
  const std::uint64_t skips_before_drain = table.maintain_backoff_skips();

  // Drain 60 pinned filters one by one — six strictly-shrinking skew
  // samples (plus one scheduled pass mid-drain). Exactly one of them may
  // re-fire the trigger; every later shrinking sample stays suppressed.
  for (int i = 0; i < 60; ++i) {
    table.client_unsubscribe(kClient, pinned[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(table.maintain_skew_triggers(), 2u)
      << "a draining pinned bucket must re-arm once, not once per sample";
  EXPECT_GT(table.maintain_backoff_skips(), skips_before_drain)
      << "post-re-arm shrinking samples are suppressed, and counted";
  EXPECT_EQ(table.maintain_changes(), 0u);
}

TEST(RoutingTable, SkewRatioZeroKeepsChurnCountScheduling) {
  // Ablation: ratio 0 must reproduce the PR 3 unconditional schedule even
  // on a perfectly balanced workload.
  RoutingTable::Config config;
  config.engine = "anchor-index";
  config.maintain_churn_threshold = 10;
  config.maintain_skew_ratio = 0;
  RoutingTable table(config);
  for (SubscriptionId id = 1; id <= 20; ++id) {
    table.client_subscribe(kClient, id,
                           Filter().and_(eq("user",
                                            static_cast<std::int64_t>(id))));
  }
  EXPECT_EQ(table.maintain_runs(), 2u);
  EXPECT_EQ(table.maintain_skew_triggers(), 0u);
}

}  // namespace
}  // namespace reef::pubsub
